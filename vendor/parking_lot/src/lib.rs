//! Offline stub of `parking_lot`: `Mutex`/`RwLock` over their `std::sync`
//! counterparts. Lock poisoning (which parking_lot does not have) is
//! converted to a panic, matching parking_lot's panic-on-poisoned-holder
//! behavior closely enough for in-process use.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex with parking_lot's unpoisonable API.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's unpoisonable API.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
