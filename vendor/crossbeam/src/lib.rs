//! Offline stub of `crossbeam`: scoped threads over `std::thread::scope`.
//!
//! Behavioral note: real crossbeam collects child panics and returns them
//! through the `Result`; `std::thread::scope` re-raises a child panic when
//! the scope closes, so here a worker panic propagates instead of
//! surfacing as `Err`. Callers that `.expect()` the result observe the
//! same outcome (a panic with the worker's message) either way.

/// A scope handle for spawning borrowing threads.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread inside the scope. The closure receives the scope
    /// again (crossbeam's signature) so it can spawn nested work.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let reentry = *self;
        self.inner.spawn(move || f(&reentry))
    }
}

/// Runs `f` with a scope whose spawned threads may borrow from the
/// enclosing stack frame; joins them all before returning.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }
}
