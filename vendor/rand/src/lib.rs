//! Offline stub of the `rand` crate: the subset the workspace uses.
//!
//! Both [`rngs::SmallRng`] and [`rngs::StdRng`] are xoshiro256++
//! generators seeded through SplitMix64 — high-quality, fast, and fully
//! deterministic, but their streams do **not** match the upstream crate.
//! Everything in the workspace that depends on determinism only requires
//! same-seed ⇒ same-stream, which holds.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling interface.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a uniform value of `T` over its full range (floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

/// Types samplable uniformly over their natural domain.
pub trait Standard {
    /// Draws one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ core shared by both generator types.
    #[derive(Clone, Debug)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion (Vigna's recommendation).
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }

        #[inline]
        fn next(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    /// A small fast generator (stub: xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    /// The "standard" generator (stub: xoshiro256++ on a distinct stream).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Offset stream so StdRng(seed) != SmallRng(seed).
            StdRng(Xoshiro256::from_u64(seed ^ 0x5D4E_9C2B_A753_F18D))
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = r.gen_range(2.0..3.0f64);
            assert!((2.0..3.0).contains(&f));
            let i = r.gen_range(0..7usize);
            assert!(i < 7);
            let j = r.gen_range(5..=9u32);
            assert!((5..=9).contains(&j));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[r.gen_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "skewed bucket: {b}");
        }
    }
}
