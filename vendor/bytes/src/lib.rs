//! Offline stub of the `bytes` crate: the subset the workspace uses.
//!
//! `Bytes` is a cheaply cloneable view into shared immutable storage;
//! `BytesMut` is a growable buffer that freezes into `Bytes`. The `Buf`
//! and `BufMut` traits read/write big-endian integers and floats, exactly
//! like the real crate's default methods.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, sliceable view into shared immutable bytes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Remaining length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-view of the given range (of the current view).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor (big-endian, like the real crate).
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    /// Advances the cursor by `n`.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }
    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }
    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
    /// Reads a big-endian f64.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        dst.copy_from_slice(&self.as_slice()[..dst.len()]);
        self.start += dst.len();
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

/// Write access to a growable byte buffer (big-endian).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Writes a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian f64.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16(0xABCD);
        b.put_u32(0xDEADBEEF);
        b.put_u64(0x0123456789ABCDEF);
        b.put_f64(-1.5);
        let mut f = b.freeze();
        assert_eq!(f.len(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(f.get_u8(), 7);
        assert_eq!(f.get_u16(), 0xABCD);
        assert_eq!(f.get_u32(), 0xDEADBEEF);
        assert_eq!(f.get_u64(), 0x0123456789ABCDEF);
        assert_eq!(f.get_f64(), -1.5);
        assert!(f.is_empty());
    }

    #[test]
    fn slices_share_storage() {
        let b: Bytes = vec![1, 2, 3, 4, 5].into();
        let s = b.slice(1..4);
        assert_eq!(&*s, &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(&*s2, &[2, 3]);
    }
}
