//! Offline stub of `proptest`: deterministic random-sampling property
//! tests, no shrinking.
//!
//! Provides the subset this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(ProptestConfig::with_cases(N))]`
//! header, range / tuple / vec / option strategies, `any::<T>()`,
//! `Strategy::prop_map`, `prop::sample::Index`, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking** — a failing case panics with the assertion message
//!   and the case number, not a minimized input.
//! * **Deterministic seeding** — each test's RNG is seeded from a hash of
//!   its module path and name, so failures reproduce exactly across runs.
//! * Failure output does not include the sampled inputs.

/// Test-runner configuration and RNG.
pub mod test_runner {
    /// Property-test configuration (the subset used: case count).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// The deterministic test RNG (xoshiro256++ behind SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds from a raw 64-bit value.
        pub fn from_seed_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Seeds deterministically from a test's full name.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test path: stable across runs and platforms.
            let mut h = 0xcbf29ce484222325u64;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Self::from_seed_u64(h)
        }

        /// The next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// A uniform f64 in `[0, 1)`.
        #[inline]
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform usize in `[0, n)`; `n` must be positive.
        #[inline]
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values (stub: sampling only, no value tree).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `f` (re-samples up to a bound).
        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone, Debug)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive samples");
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.next_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: strategy::Strategy<Value = Self>;
    /// Constructs the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// A full-domain strategy for a primitive (helper behind [`any`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl strategy::Strategy for FullRange<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl strategy::Strategy for FullRange<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;
    fn arbitrary() -> Self::Strategy {
        FullRange(std::marker::PhantomData)
    }
}

impl strategy::Strategy for FullRange<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut test_runner::TestRng) -> f64 {
        // Finite floats spanning many magnitudes (no NaN/inf in the stub).
        let mag = rng.next_f64() * 600.0 - 300.0; // exponent in [-300, 300)
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * rng.next_f64() * 10f64.powf(mag / 10.0)
    }
}

impl Arbitrary for f64 {
    type Strategy = FullRange<f64>;
    fn arbitrary() -> Self::Strategy {
        FullRange(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Sub-strategy namespaces (`prop::collection::vec` etc.).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// A half-open range of collection sizes (`lo..hi`).
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end() + 1,
                }
            }
        }

        /// A strategy for `Vec<S::Value>` with a sampled length.
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            len: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.lo + rng.below(self.len.hi - self.len.lo);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Vectors of `element` values with a length drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                len: len.into(),
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// A strategy yielding `Some` three times out of four.
        #[derive(Clone, Debug)]
        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 3 == 0 {
                    None
                } else {
                    Some(self.0.sample(rng))
                }
            }
        }

        /// `Option<S::Value>` with mostly-`Some` weighting.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use crate::{Arbitrary, FullRange};

        /// An index into a collection of as-yet-unknown size.
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        pub struct Index(u64);

        impl Index {
            /// Resolves against a concrete size (must be positive).
            pub fn index(&self, size: usize) -> usize {
                assert!(size > 0, "Index::index(0)");
                (self.0 % size as u64) as usize
            }
        }

        impl Strategy for FullRange<Index> {
            type Value = Index;
            fn sample(&self, rng: &mut TestRng) -> Index {
                Index(rng.next_u64())
            }
        }

        impl Arbitrary for Index {
            type Strategy = FullRange<Index>;
            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let __cfg: $crate::test_runner::Config = $cfg;
            let __strategy = ($($strat,)+);
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                let ($($arg,)+) = __strategy.sample(&mut __rng);
                let __run = || {
                    $body
                };
                __run();
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Asserts inside a property body (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property body (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5.0..6.0f64), n in 1usize..4) {
            prop_assert!(a < 10);
            prop_assert!((5.0..6.0).contains(&b));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn collections_and_options(
            v in prop::collection::vec(0i64..100, 2..9),
            o in prop::option::of(any::<bool>()),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| (0..100).contains(&x)));
            let _ = o;
            prop_assert!(idx.index(v.len()) < v.len());
        }

        #[test]
        fn mapping_and_assume(x in (0u64..1000).prop_map(|v| v * 2)) {
            prop_assume!(x > 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        let mut c = TestRng::for_test("x::z");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
