//! Offline stub of `serde`. The workspace only names serde behind the
//! `airshare-geom/serde` feature, which is **off** by default; this shell
//! exists purely so dependency resolution succeeds offline. Enabling that
//! feature requires restoring the real crate (delete the
//! `[patch.crates-io]` entry with network access available).
