//! Offline stub of `criterion`: runs each benchmark closure a fixed
//! number of iterations and prints mean wall-clock time per iteration.
//! No statistics, warm-up, outlier analysis, or HTML reports — just
//! enough to keep `cargo bench` / `cargo test --benches` building and
//! producing comparable rough numbers offline.

use std::time::Instant;

pub use std::hint::black_box;

/// Measurement driver passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration from the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Times `f` over a fixed iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// Top-level benchmark registry (stub: configuration is mostly ignored).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets the nominal sample size (used to scale iteration count).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Configuration hook accepted for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let iters = (self.sample_size as u64).max(10);
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            iters,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let iters = (self.sample_size as u64).max(10);
        run_one(id, iters, f);
        self
    }

    /// Final-report hook accepted for API compatibility.
    pub fn final_summary(&mut self) {}
}

/// A parameterized benchmark label (`group/function/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Builds a label from the parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    iters: u64,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.iters, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.iters, |b| {
            f(b, input)
        });
        self
    }

    /// Closes the group (no-op in the stub).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: u64, mut f: F) {
    let mut b = Bencher {
        iters,
        last_ns: 0.0,
    };
    f(&mut b);
    if b.last_ns >= 1_000_000.0 {
        println!("{label:<48} {:>12.3} ms/iter", b.last_ns / 1_000_000.0);
    } else if b.last_ns >= 1_000.0 {
        println!("{label:<48} {:>12.3} us/iter", b.last_ns / 1_000.0);
    } else {
        println!("{label:<48} {:>12.1} ns/iter", b.last_ns);
    }
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut g = c.benchmark_group("tiny");
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        g.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n) * 3)
        });
        g.finish();
    }

    #[test]
    fn group_and_macros_run() {
        criterion_group! {
            name = benches;
            config = Criterion::default().sample_size(5);
            targets = tiny
        }
        benches();
    }
}
