//! The replay-parity contract, enforced at the engine level.
//!
//! `Simulation::run_recording` captures a seeded workload (per-epoch
//! fleet state + per-query inputs and answers); a `LiveWorld` built from
//! the same configuration, driven in barrier order with those inputs,
//! must produce the **identical** answer set, `AnswerQuality` label,
//! and final `SimReport` — because both sides share the same world
//! construction and the same query-resolution path. The serving layer
//! (`airshare-serve`) builds on this: if this test holds, service
//! parity reduces to delivering the same inputs in the same order.

use airshare_broadcast::QueryScratch;
use airshare_exec::ExecPool;
use airshare_obs::NoopRecorder;
use airshare_sim::{
    params, ChurnConfig, FaultConfig, LiveQuery, LiveWorld, QueryKind, SimConfig, Simulation,
};

fn base_cfg(kind: QueryKind, seed: u64) -> SimConfig {
    let mut p = params::la_city().scaled(0.005);
    p.cache_size = 30;
    let mut cfg = SimConfig::paper_defaults(p, kind, seed);
    cfg.warmup_min = 5.0;
    cfg.measure_min = 10.0;
    cfg.validate = true;
    cfg.hilbert_order = 6;
    cfg
}

/// Records a workload, replays it against a `LiveWorld` on `threads`
/// workers, and asserts per-query and whole-report parity.
fn assert_replay_parity(cfg: SimConfig, threads: usize) {
    let (report, trace) = Simulation::try_new(cfg.clone()).unwrap().run_recording();
    assert!(!trace.queries.is_empty(), "workload recorded no queries");
    assert_eq!(trace.hosts, cfg.params.mh_number);

    let mut live = LiveWorld::try_new(cfg).unwrap();
    let pool = ExecPool::fixed(threads);
    let mut ctxs: Vec<(NoopRecorder, QueryScratch)> =
        (0..threads).map(|_| (NoopRecorder, QueryScratch::new())).collect();
    let mut rec = NoopRecorder;

    for (host, &up) in trace.initial_online.iter().enumerate() {
        if up {
            live.connect(host);
        }
    }

    let mut answered = 0usize;
    for er in &trace.epochs {
        // Barrier order: churn, then positions, then the epoch commit.
        for &(host, planned_epoch, up) in &er.churn {
            if up {
                live.reconnect(host as usize, planned_epoch, &mut rec);
            } else {
                live.disconnect(host as usize, planned_epoch, &mut rec);
            }
        }
        for &(host, pos) in &er.moved {
            live.update_position(host as usize, pos);
        }
        live.begin_epoch(er.epoch);

        let batch: Vec<LiveQuery> = trace
            .queries
            .iter()
            .filter(|q| q.epoch == er.epoch)
            .map(|q| LiveQuery {
                nonce: q.nonce,
                host: q.host as usize,
                at_min: q.at_min,
                pos: q.pos,
                heading: q.heading,
                spec: q.spec,
            })
            .collect();
        let answers = live.execute_epoch(batch, &pool, &mut ctxs);

        let expected: Vec<_> = trace.queries.iter().filter(|q| q.epoch == er.epoch).collect();
        assert_eq!(answers.len(), expected.len());
        for (got, want) in answers.iter().zip(&expected) {
            assert_eq!(got.nonce, want.nonce);
            assert_eq!(got.host, want.host);
            assert_eq!(
                got.ids, want.ids,
                "answer set diverged at nonce {} (host {})",
                want.nonce, want.host
            );
            assert_eq!(
                got.quality, want.quality,
                "answer quality diverged at nonce {}",
                want.nonce
            );
            answered += 1;
        }
    }
    assert_eq!(answered, trace.queries.len(), "replay skipped queries");
    assert_eq!(
        live.report(),
        &report,
        "live replay's report diverged from the recording run's"
    );
}

#[test]
fn recording_run_report_matches_plain_run() {
    for kind in [QueryKind::Knn, QueryKind::Window] {
        let plain = Simulation::try_new(base_cfg(kind, 42)).unwrap().run();
        let (recorded, trace) = Simulation::try_new(base_cfg(kind, 42))
            .unwrap()
            .run_recording();
        assert_eq!(recorded, plain, "recording changed the run ({kind:?})");
        // Nonces are the global event indices: strictly increasing.
        assert!(trace.queries.windows(2).all(|w| w[0].nonce < w[1].nonce));
        assert!(trace.measured() > 0);
    }
}

#[test]
fn knn_replay_is_bit_identical() {
    assert_replay_parity(base_cfg(QueryKind::Knn, 42), 1);
}

#[test]
fn window_replay_is_bit_identical() {
    assert_replay_parity(base_cfg(QueryKind::Window, 42), 1);
}

#[test]
fn replay_parity_holds_across_thread_counts() {
    for threads in [2, 4, 8] {
        assert_replay_parity(base_cfg(QueryKind::Knn, 7), threads);
    }
}

#[test]
fn replay_parity_holds_under_chaos() {
    // Churn + outages + channel faults all active: the replay must
    // reproduce crash wipes, cold restarts, outage-served Stale/Failed
    // answers, and per-nonce fault coin flips.
    let mut cfg = base_cfg(QueryKind::Knn, 1234);
    cfg.churn = ChurnConfig {
        crash_prob: 0.05,
        restart_prob: 0.4,
        late_join_frac: 0.2,
    };
    cfg.outages = vec![(2, 4)];
    cfg.faults = FaultConfig {
        bucket_loss_prob: 0.05,
        peer_drop_prob: 0.1,
        ..FaultConfig::default()
    };
    assert_replay_parity(cfg, 4);
}
