//! Simulator bookkeeping invariants on micro configurations — fast
//! checks that hold for *every* parameter combination, complementing the
//! scenario tests in `engine.rs` and the trend tests in the umbrella
//! crate.

use airshare_cache::ReplacementPolicy;
use airshare_exec::ExecPool;
use airshare_sim::{params, BackendKind, MobilityModel, QueryKind, SimConfig, Simulation};

fn micro(kind: QueryKind, seed: u64) -> SimConfig {
    let p = params::synthetic_suburbia().scaled(0.004);
    let mut cfg = SimConfig::paper_defaults(p, kind, seed);
    cfg.warmup_min = 10.0;
    cfg.measure_min = 10.0;
    cfg.hilbert_order = 6;
    cfg
}

#[test]
fn resolution_counters_partition_totals() {
    for kind in [QueryKind::Knn, QueryKind::Window] {
        for seed in [1, 2, 3] {
            let r = Simulation::try_new(micro(kind, seed)).unwrap().run();
            assert_eq!(
                r.queries.total,
                r.queries.by_peers + r.queries.by_approx + r.queries.by_broadcast,
                "{kind:?} seed {seed}"
            );
            let pct_sum =
                r.queries.pct_peers() + r.queries.pct_approx() + r.queries.pct_broadcast();
            if r.queries.total > 0 {
                assert!((pct_sum - 100.0).abs() < 1e-9, "{pct_sum}");
            }
            // Broadcast accounting matches the counter.
            assert_eq!(r.broadcast_latency.count, r.queries.by_broadcast);
            assert_eq!(r.broadcast_tuning.count, r.queries.by_broadcast);
        }
    }
}

#[test]
fn latency_identity_holds() {
    let r = Simulation::try_new(micro(QueryKind::Knn, 7)).unwrap().run();
    // overall mean latency = (broadcast latency sum) / total.
    if r.queries.total > 0 {
        let expect = r.broadcast_latency.sum as f64 / r.queries.total as f64;
        assert!((r.overall_mean_latency() - expect).abs() < 1e-12);
    }
    // The baseline is recorded once per measured query.
    assert_eq!(r.baseline_latency.count, r.queries.total);
}

#[test]
fn every_policy_and_mobility_combination_runs() {
    for policy in [
        ReplacementPolicy::DirectionDistance,
        ReplacementPolicy::DistanceOnly,
        ReplacementPolicy::Lru,
    ] {
        for mobility in [
            MobilityModel::RandomWaypoint,
            MobilityModel::GridRoads {
                spacing_milli_mi: 200,
            },
        ] {
            let mut cfg = micro(QueryKind::Knn, 4);
            cfg.policy = policy;
            cfg.mobility = mobility;
            cfg.validate = true;
            let r = Simulation::try_new(cfg).unwrap().run();
            assert_eq!(r.exact_mismatches, 0, "{policy:?}/{mobility:?}");
        }
    }
}

#[test]
fn clip_domain_only_raises_approximate_acceptance() {
    let pcts = |clip: bool| {
        let mut cfg = micro(QueryKind::Knn, 9);
        cfg.warmup_min = 30.0;
        cfg.clip_domain = clip;
        let r = Simulation::try_new(cfg).unwrap().run();
        (r.queries.pct_approx(), r.queries.pct_peers())
    };
    let (approx_off, peers_off) = pcts(false);
    let (approx_on, peers_on) = pcts(true);
    // Clipping never lowers a correctness estimate, so acceptance can
    // only grow; verification (Lemma 3.1) is untouched.
    assert!(
        approx_on + 1e-9 >= approx_off,
        "clipping reduced approx: {approx_on} < {approx_off}"
    );
    // Verified fractions may drift through cache feedback but stay close.
    assert!((peers_on - peers_off).abs() < 15.0);
}

#[test]
fn zero_queries_yield_empty_report() {
    let mut cfg = micro(QueryKind::Knn, 5);
    cfg.warmup_min = 5.0;
    cfg.measure_min = 0.0;
    let r = Simulation::try_new(cfg).unwrap().run();
    assert_eq!(r.queries.total, 0);
    assert_eq!(r.overall_mean_latency(), 0.0);
    assert_eq!(r.mean_peers_contacted(), 0.0);
}

#[test]
fn rtree_backend_runs_exactly_and_deterministically() {
    for kind in [QueryKind::Knn, QueryKind::Window] {
        let mut cfg = micro(kind, 11);
        cfg.backend = BackendKind::Rtree;
        cfg.validate = true;
        let serial = Simulation::try_new(cfg.clone()).unwrap().run();
        // The R-tree backend must answer every broadcast query exactly:
        // the engine cross-checks each result against brute force.
        assert_eq!(serial.exact_mismatches, 0, "{kind:?}");
        assert_eq!(
            serial.queries.total,
            serial.queries.by_peers + serial.queries.by_approx + serial.queries.by_broadcast
        );
        assert!(serial.queries.by_broadcast > 0, "{kind:?} exercised the air index");
        // Epoch-sharded parallel execution is bit-identical for this
        // backend too, at every pool width.
        for threads in [2, 4] {
            let parallel = Simulation::try_new(cfg.clone())
                .unwrap()
                .run_parallel(&ExecPool::fixed(threads));
            assert_eq!(
                (parallel.queries.total, parallel.broadcast_latency.sum),
                (serial.queries.total, serial.broadcast_latency.sum),
                "{kind:?} at {threads} threads"
            );
        }
    }
}

#[test]
fn seeds_change_outcomes_but_not_structure() {
    let a = Simulation::try_new(micro(QueryKind::Knn, 100)).unwrap().run();
    let b = Simulation::try_new(micro(QueryKind::Knn, 200)).unwrap().run();
    // Different seeds → different workloads (almost surely).
    assert_ne!(
        (a.queries.total, a.broadcast_latency.sum),
        (b.queries.total, b.broadcast_latency.sum)
    );
}
