//! Pins fixed-seed simulation output to values captured **before** the
//! hot-path optimization pass (table-driven Hilbert codec, iterative
//! decomposition, scratch-buffer query path, closed-form schedule math).
//!
//! Every optimization in that pass claims bit-identical results; this
//! test is the end-to-end enforcement. If any of these numbers moves,
//! an "optimization" changed observable behavior and must be fixed, or
//! the change is intentionally semantic and the pins must be re-captured
//! with a note in the commit message explaining why.
//!
//! Reference values were captured at commit 5566f57 (the last commit
//! before the optimization pass) on the exact configuration below.

use airshare_exec::ExecPool;
use airshare_sim::{params, QueryKind, SimConfig, SimReport, Simulation};

/// The same configuration as the engine's `tiny_cfg` unit-test helper:
/// small enough to run in well under a second, large enough to exercise
/// peer resolution, the approximate tier, bound filtering, window
/// reduction, and the broadcast fallback.
fn pin_cfg(kind: QueryKind) -> SimConfig {
    let mut p = params::la_city().scaled(0.005);
    p.cache_size = 30;
    let mut cfg = SimConfig::paper_defaults(p, kind, 42);
    cfg.warmup_min = 5.0;
    cfg.measure_min = 10.0;
    cfg.validate = true;
    cfg.hilbert_order = 6;
    cfg
}

/// The pinned slice of a report. Floats are compared via `to_bits`, so
/// the pin is exact, not epsilon-approximate.
#[derive(Debug, PartialEq, Eq)]
struct Pin {
    total: u64,
    by_peers: u64,
    by_approx: u64,
    by_broadcast: u64,
    broadcast_latency_sum: u64,
    broadcast_latency_count: u64,
    broadcast_latency_max: u64,
    broadcast_tuning_sum: u64,
    broadcast_buckets_sum: u64,
    baseline_latency_sum: u64,
    baseline_tuning_sum: u64,
    filter_saved_buckets: u64,
    share_peers_contacted: u64,
    share_peers_with_data: u64,
    share_pois: u64,
    exact_mismatches: u64,
    calibration_len: usize,
    partial_coverage_sum_bits: u64,
    partial_coverage_count: u64,
}

impl Pin {
    fn of(r: &SimReport) -> Self {
        Pin {
            total: r.queries.total,
            by_peers: r.queries.by_peers,
            by_approx: r.queries.by_approx,
            by_broadcast: r.queries.by_broadcast,
            broadcast_latency_sum: r.broadcast_latency.sum,
            broadcast_latency_count: r.broadcast_latency.count,
            broadcast_latency_max: r.broadcast_latency.max,
            broadcast_tuning_sum: r.broadcast_tuning.sum,
            broadcast_buckets_sum: r.broadcast_buckets.sum,
            baseline_latency_sum: r.baseline_latency.sum,
            baseline_tuning_sum: r.baseline_tuning.sum,
            filter_saved_buckets: r.filter_saved_buckets,
            share_peers_contacted: r.share_peers_contacted,
            share_peers_with_data: r.share_peers_with_data,
            share_pois: r.share_pois,
            exact_mismatches: r.exact_mismatches,
            calibration_len: r.calibration.len(),
            partial_coverage_sum_bits: r.partial_coverage_sum.to_bits(),
            partial_coverage_count: r.partial_coverage_count,
        }
    }
}

/// Captured pre-optimization reference for the kNN workload.
const KNN_PIN: Pin = Pin {
    total: 287,
    by_peers: 100,
    by_approx: 78,
    by_broadcast: 109,
    broadcast_latency_sum: 476,
    broadcast_latency_count: 109,
    broadcast_latency_max: 5,
    broadcast_tuning_sum: 423,
    broadcast_buckets_sum: 205,
    baseline_latency_sum: 1295,
    baseline_tuning_sum: 1141,
    filter_saved_buckets: 6,
    share_peers_contacted: 4980,
    share_peers_with_data: 2266,
    share_pois: 14344,
    exact_mismatches: 0,
    calibration_len: 78,
    partial_coverage_sum_bits: 0x0,
    partial_coverage_count: 0,
};

/// Captured pre-optimization reference for the window workload.
const WINDOW_PIN: Pin = Pin {
    total: 287,
    by_peers: 73,
    by_approx: 0,
    by_broadcast: 214,
    broadcast_latency_sum: 793,
    broadcast_latency_count: 214,
    broadcast_latency_max: 5,
    broadcast_tuning_sum: 691,
    broadcast_buckets_sum: 263,
    baseline_latency_sum: 1133,
    baseline_tuning_sum: 962,
    filter_saved_buckets: 0,
    share_peers_contacted: 4980,
    share_peers_with_data: 2266,
    share_pois: 1379,
    exact_mismatches: 0,
    calibration_len: 0,
    partial_coverage_sum_bits: 0x4065b28614f813fd,
    partial_coverage_count: 214,
};

#[test]
fn knn_run_matches_pre_optimization_reference() {
    let report = Simulation::try_new(pin_cfg(QueryKind::Knn)).unwrap().run();
    assert_eq!(Pin::of(&report), KNN_PIN);
}

#[test]
fn window_run_matches_pre_optimization_reference() {
    let report = Simulation::try_new(pin_cfg(QueryKind::Window))
        .unwrap()
        .run();
    assert_eq!(Pin::of(&report), WINDOW_PIN);
}

#[test]
fn parallel_runs_match_pre_optimization_reference() {
    for threads in [1, 2, 4, 8] {
        let pool = ExecPool::fixed(threads);
        let knn = Simulation::try_new(pin_cfg(QueryKind::Knn))
            .unwrap()
            .run_parallel(&pool);
        assert_eq!(Pin::of(&knn), KNN_PIN, "knn pin moved at {threads} threads");
        let window = Simulation::try_new(pin_cfg(QueryKind::Window))
            .unwrap()
            .run_parallel(&pool);
        assert_eq!(
            Pin::of(&window),
            WINDOW_PIN,
            "window pin moved at {threads} threads"
        );
    }
}
