//! The full-system simulator behind the paper's evaluation (§4).
//!
//! One [`Simulation`] wires every substrate together the way Figure 3
//! draws it: a base station broadcasting the POI file on a `(1, m)`
//! Hilbert air index, a fleet of mobile hosts moving by random waypoint
//! (or over a grid road network), per-host caches with verified-region
//! semantics, single-hop P2P sharing, and the SBNN/SBWQ algorithms
//! deciding per query whether peers suffice or the channel must be used.
//!
//! * [`params`] — the three Table 3 parameter sets (Los Angeles City,
//!   Riverside County, Synthetic Suburbia) with density-preserving
//!   scaling for laptop-sized runs.
//! * [`SimConfig`] — everything Table 4 lists, plus the knobs the
//!   ablation benches sweep.
//! * [`Simulation::run`] — the event loop; returns a [`SimReport`] with
//!   the exact series the paper's figures plot (fractions of queries
//!   solved by SBNN / approximate SBNN / the broadcast channel), access
//!   latency and tuning time, P2P traffic, and optional ground-truth
//!   validation counters.
//!
//! Everything is deterministic given the config's `seed`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod fleet;
mod live;
pub mod params;
mod report;
mod traffic;

pub use airshare_obs::{AnswerQuality, FaultStats, MetricsSnapshot};
pub use config::{
    BackendKind, ChurnConfig, ConfigError, FaultConfig, MobilityModel, ParseBackendError,
    QueryKind, SimConfig, SimConfigBuilder,
};
pub use engine::{QueryAnswer, QuerySpec, Simulation};
pub use fleet::FleetStore;
pub use live::{LiveQuery, LiveWorld};
pub use params::ParamSet;
pub use report::{LatencySummary, QualityStats, QueryStats, SimReport};
pub use traffic::{EpochRecord, RecordedQuery, TrafficTrace};
