//! The base-station side of a run, opened up for online serving.
//!
//! [`LiveWorld`] owns exactly what the closed-loop [`crate::Simulation`]
//! owns minus the fleet's mobility: the POI world, the air index behind
//! the configured backend, the `(1, m)` schedule, the chaos oracle, the
//! fault/outage layers, and per-host session state (cache, sync clock,
//! quarantine ledger). It is built by the same `build_world_core` the
//! simulator uses — same seed, same draws — and resolves queries through
//! the same `EpochCtx::process_query`, so a recorded workload replayed
//! against it is answered identically by construction (DESIGN.md §14).
//!
//! The serving layer (`airshare-serve`) drives it in barrier order:
//! churn (`connect`/`reconnect`/`disconnect`), then position updates,
//! then [`LiveWorld::begin_epoch`] (grid + cache snapshot), then one
//! [`LiveWorld::execute_epoch`] batch.

use crate::engine::{
    build_world_core, fold_outcome, EpochCtx, LiveBatchItem, LiveTask, QueryAnswer, QuerySpec,
    SyncState,
};
use crate::fleet::FleetStore;
use crate::{ConfigError, SimConfig, SimReport};
use airshare_broadcast::{
    AirIndexBackend, ChannelFaults, OutageSchedule, PoiTable, QueryScratch, Schedule,
};
use airshare_cache::{HostCache, QuarantineConfig, QuarantineLedger};
use airshare_exec::ExecPool;
use airshare_geom::{meters_to_miles, Point, Rect};
use airshare_obs::{AnswerQuality, Recorder, TraceEvent};
use airshare_p2p::NeighborGrid;
use airshare_rtree::RTree;
use std::collections::BTreeMap;

/// One query submitted to the live world: pure inputs, exactly what the
/// closed loop would have derived from mobility and the window stream.
#[derive(Clone, Debug)]
pub struct LiveQuery {
    /// Global submission order — doubles as the fault-layer nonce, so
    /// admission order fully determines fault coin flips.
    pub nonce: u64,
    /// The querying session's host id.
    pub host: usize,
    /// Query time in simulation minutes.
    pub at_min: f64,
    /// The host's position at query time.
    pub pos: Point,
    /// The host's heading (unit vector), if known.
    pub heading: Option<(f64, f64)>,
    /// What the query asks.
    pub spec: QuerySpec,
}

/// The base station as a long-lived, incrementally-driven world.
pub struct LiveWorld {
    cfg: SimConfig,
    world: Rect,
    /// The canonical POI table session caches hold handles into.
    table: PoiTable,
    index: Box<dyn AirIndexBackend>,
    schedule: Schedule,
    oracle: RTree<u32>,
    faults: Option<ChannelFaults>,
    outage: OutageSchedule,
    /// Columnar per-session state: online flags, last reported
    /// positions (offline hosts keep theirs), sync clocks, arena-backed
    /// caches, quarantine ledgers — the same [`FleetStore`] the
    /// closed-loop engine rides.
    fleet: FleetStore,
    /// Epoch-start neighbor grid over online hosts.
    grid: NeighborGrid,
    /// Epoch-start committed caches — what peers see this epoch.
    snapshot: Vec<HostCache>,
    /// The epoch currently being served.
    epoch: u64,
    range: f64,
    report: SimReport,
}

impl LiveWorld {
    /// Builds the world from a validated configuration — identical
    /// draws to [`crate::Simulation::try_new`] with the same config, so
    /// both sides agree on every POI, bucket, fault seed, and ledger.
    /// All sessions start offline with empty caches.
    pub fn try_new(cfg: SimConfig) -> Result<Self, ConfigError> {
        let mut core = build_world_core(&cfg)?;
        let n = cfg.params.mh_number;
        let range = meters_to_miles(cfg.params.tx_range_m);
        let cell = range.max(1e-3);
        // All sessions start offline; `connect` admits them. The grid
        // is retained for the world's lifetime and delta-refreshed at
        // each boundary — no per-epoch position clone.
        core.fleet.online = vec![false; n];
        let mut grid = NeighborGrid::with_bounds(&core.world, cell, n);
        grid.refresh_active(&core.fleet.positions, &core.fleet.online);
        Ok(LiveWorld {
            cfg,
            world: core.world,
            table: core.table,
            index: core.index,
            schedule: core.schedule,
            oracle: core.oracle,
            faults: core.faults,
            outage: core.outage,
            fleet: core.fleet,
            grid,
            snapshot: Vec::new(),
            epoch: 0,
            range,
            report: SimReport::default(),
        })
    }

    /// The configuration the world was built from.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Fleet capacity (maximum host id + 1).
    pub fn hosts(&self) -> usize {
        self.fleet.len()
    }

    /// The canonical POI table session caches resolve against.
    pub fn poi_table(&self) -> &PoiTable {
        &self.table
    }

    /// Read-only view of the per-session columnar state.
    pub fn fleet(&self) -> &FleetStore {
        &self.fleet
    }

    /// Whether a session is currently live.
    pub fn is_online(&self, host: usize) -> bool {
        self.fleet.is_online(host)
    }

    /// Opens a session for a host that was never online (initial join).
    /// Its sync clock stays at the world's origin — the simulator's
    /// pristine state for hosts online from the start.
    pub fn connect(&mut self, host: usize) {
        self.fleet.online[host] = true;
    }

    /// Reopens a session after a crash: the host comes back cold at
    /// `planned_epoch`'s boundary, channel unheard, owing a resync.
    /// Mirrors the simulator's restart transition exactly.
    pub fn reconnect(&mut self, host: usize, planned_epoch: u64, rec: &mut dyn Recorder) {
        self.fleet.online[host] = true;
        self.fleet.set_sync_state(
            host,
            SyncState {
                last_sync_min: planned_epoch as f64 * self.cfg.epoch_min,
                needs_resync: true,
            },
        );
        self.report.hosts_restarted += 1;
        rec.record(TraceEvent::HostRestarted {
            host: host as u32,
            epoch: planned_epoch,
        });
    }

    /// Closes a session as a crash: the host goes dark and all volatile
    /// state (cache, quarantine memory) is wiped, exactly as the
    /// simulator's crash transition does.
    pub fn disconnect(&mut self, host: usize, planned_epoch: u64, rec: &mut dyn Recorder) {
        self.fleet.online[host] = false;
        self.fleet.caches[host].clear();
        self.fleet.quarantines[host].clear();
        self.report.hosts_crashed += 1;
        rec.record(TraceEvent::HostCrashed {
            host: host as u32,
            epoch: planned_epoch,
        });
    }

    /// Records a host's position (kept while offline too, matching the
    /// simulator's always-advancing mobility streams).
    pub fn update_position(&mut self, host: usize, pos: Point) {
        self.fleet.positions[host] = pos;
    }

    /// Commits the epoch boundary: refreshes the retained neighbor grid
    /// over the online fleet at their reported positions (re-binning
    /// only hosts whose cell or online flag changed) and snapshots the
    /// committed caches peers will see. Must run after this boundary's
    /// churn and position updates, before the epoch's batch.
    pub fn begin_epoch(&mut self, epoch: u64) {
        self.grid
            .refresh_active(&self.fleet.positions, &self.fleet.online);
        // Buffer-reusing refresh: `clone_from` keeps each snapshot
        // cache's arena allocations across epochs.
        if self.snapshot.len() == self.fleet.caches.len() {
            for (s, c) in self.snapshot.iter_mut().zip(&self.fleet.caches) {
                s.clone_from(c);
            }
        } else {
            self.snapshot = self.fleet.caches.clone();
        }
        self.epoch = epoch;
    }

    /// Executes one epoch's admitted batch on the pool and commits the
    /// barrier: host state in host-id order, report outcomes in nonce
    /// order — the same commit discipline as the simulator's engine.
    ///
    /// Queries from offline sessions are answered `Failed`/empty without
    /// touching the world. Returns every query's answer, nonce-ordered.
    pub fn execute_epoch<R: Recorder + Send>(
        &mut self,
        queries: Vec<LiveQuery>,
        pool: &ExecPool,
        ctxs: &mut [(R, QueryScratch)],
    ) -> Vec<QueryAnswer> {
        let mut answers: Vec<QueryAnswer> = Vec::with_capacity(queries.len());
        let mut by_host: BTreeMap<usize, Vec<LiveBatchItem>> = BTreeMap::new();
        for q in queries {
            if !self.is_online(q.host) {
                answers.push(QueryAnswer {
                    nonce: q.nonce,
                    host: q.host as u32,
                    ids: Vec::new(),
                    quality: AnswerQuality::Failed,
                });
                continue;
            }
            by_host.entry(q.host).or_default().push(LiveBatchItem {
                nonce: q.nonce,
                at_min: q.at_min,
                pos: q.pos,
                heading: q.heading,
                spec: q.spec,
            });
        }
        // Move host state out *before* the EpochCtx borrows the world;
        // per-host queries run in nonce (= admission) order.
        let tasks: Vec<LiveTask> = by_host
            .into_iter()
            .map(|(host, mut items)| {
                items.sort_by_key(|it| it.nonce);
                LiveTask {
                    host,
                    cache: std::mem::replace(
                        &mut self.fleet.caches[host],
                        HostCache::new(0, self.cfg.policy),
                    ),
                    sync: self.fleet.sync_state(host),
                    quarantine: std::mem::replace(
                        &mut self.fleet.quarantines[host],
                        QuarantineLedger::new(QuarantineConfig::default(), 0),
                    ),
                    queries: items,
                }
            })
            .collect();

        let ctx = EpochCtx {
            cfg: &self.cfg,
            world: &self.world,
            table: &self.table,
            index: self.index.as_ref(),
            schedule: &self.schedule,
            oracle: &self.oracle,
            faults: self.faults.as_ref(),
            grid: &self.grid,
            snapshot: &self.snapshot,
            range: self.range,
            epoch: self.epoch,
            outage: &self.outage,
        };
        let done = pool.map_with(ctxs, tasks, |(rec, scratch), _, task| {
            ctx.run_live_host(task, scratch, rec)
        });

        let mut outcomes = Vec::new();
        for d in done {
            self.fleet.caches[d.host] = d.cache;
            self.fleet.set_sync_state(d.host, d.sync);
            self.fleet.quarantines[d.host] = d.quarantine;
            self.report.outage_resyncs += d.resyncs;
            outcomes.extend(d.outcomes);
            answers.extend(d.answers);
        }
        outcomes.sort_by_key(|&(nonce, _)| nonce);
        for (_, o) in outcomes {
            fold_outcome(&mut self.report, self.cfg.calibration_cap, o);
        }
        answers.sort_by_key(|a| a.nonce);
        answers
    }

    /// The accumulated service report: the same `SimReport` the
    /// simulator produces, so a full replay's report can be compared
    /// field-for-field against the recording run's.
    pub fn report(&self) -> &SimReport {
        &self.report
    }
}
