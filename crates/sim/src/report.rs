//! Simulation output: the series the paper's figures plot.
//!
//! The metric primitives and per-operation stats live in `airshare-obs`
//! (the unified stats surface); this module aggregates them into the
//! run-level [`SimReport`]. Latency-like quantities are tracked by the
//! histogram-backed [`LatencySummary`], so every report exposes
//! p50/p90/p95/p99 alongside the paper's means.

use airshare_obs::{AccessStats, AnswerQuality, FaultStats, MetricsSnapshot, ShareStats};

pub use airshare_obs::LatencySummary;

/// Per-quality answer counters (the chaos taxonomy): how many measured
/// queries resolved at each [`AnswerQuality`] tier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QualityStats {
    /// Complete and correct under validation.
    pub exact: u64,
    /// Broadcast retrieval lost buckets past the retry budget.
    pub degraded: u64,
    /// Served from cached/peer knowledge during an outage, with a
    /// staleness bound.
    pub stale: u64,
    /// Channel silent and no cached/peer knowledge covered the query.
    pub failed: u64,
}

impl QualityStats {
    /// The counter for one quality tier.
    pub fn count(&self, q: AnswerQuality) -> u64 {
        match q {
            AnswerQuality::Exact => self.exact,
            AnswerQuality::Degraded => self.degraded,
            AnswerQuality::Stale => self.stale,
            AnswerQuality::Failed => self.failed,
        }
    }

    /// Sum across all tiers (equals `QueryStats::total` on a coherent
    /// report).
    pub fn total(&self) -> u64 {
        self.exact + self.degraded + self.stale + self.failed
    }

    pub(crate) fn bump(&mut self, q: AnswerQuality) {
        match q {
            AnswerQuality::Exact => self.exact += 1,
            AnswerQuality::Degraded => self.degraded += 1,
            AnswerQuality::Stale => self.stale += 1,
            AnswerQuality::Failed => self.failed += 1,
        }
    }
}

/// Query-resolution counters — one per workload type.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Total measured queries.
    pub total: u64,
    /// Solved entirely from peers with verification (SBNN/SBWQ).
    pub by_peers: u64,
    /// Solved from peers approximately (kNN only).
    pub by_approx: u64,
    /// Solved by listening to the broadcast channel.
    pub by_broadcast: u64,
}

impl QueryStats {
    /// Percentage helpers (0–100, as the paper's y-axes).
    pub fn pct_peers(&self) -> f64 {
        percent(self.by_peers, self.total)
    }
    /// Percentage solved approximately.
    pub fn pct_approx(&self) -> f64 {
        percent(self.by_approx, self.total)
    }
    /// Percentage needing the broadcast channel.
    pub fn pct_broadcast(&self) -> f64 {
        percent(self.by_broadcast, self.total)
    }
}

fn percent(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        100.0 * n as f64 / d as f64
    }
}

/// Everything one simulation run produced.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimReport {
    /// Resolution counters for the measured window.
    pub queries: QueryStats,
    /// Access latency of broadcast-solved queries (ticks), with
    /// percentiles.
    pub broadcast_latency: LatencySummary,
    /// Tuning time of broadcast-solved queries (ticks), with percentiles.
    pub broadcast_tuning: LatencySummary,
    /// Buckets downloaded per broadcast-solved query.
    pub broadcast_buckets: LatencySummary,
    /// Latency of the pure on-air baseline for the *same* queries (what
    /// the host would have paid without sharing) — gives the latency
    /// reduction headline.
    pub baseline_latency: LatencySummary,
    /// Baseline tuning time.
    pub baseline_tuning: LatencySummary,
    /// Buckets the §3.3.3 bounds saved versus a cold on-air query, summed
    /// over broadcast-resolved kNN queries (non-negative by construction:
    /// the filtered bucket set is a subset of the cold one).
    pub filter_saved_buckets: u64,
    /// Aggregate P2P traffic.
    pub share_peers_contacted: u64,
    /// Peers that replied with data, total.
    pub share_peers_with_data: u64,
    /// POIs transferred peer-to-peer, total.
    pub share_pois: u64,
    /// Ground-truth mismatches among exact answers (must stay 0; only
    /// counted when `validate` is set).
    pub exact_mismatches: u64,
    /// For approximate answers under `validate`: (predicted correctness
    /// of the least-certain unverified entry, whole answer was correct).
    pub calibration: Vec<(f64, bool)>,
    /// Mean coverage fraction of window queries that went to broadcast.
    pub partial_coverage_sum: f64,
    /// Count behind `partial_coverage_sum`.
    pub partial_coverage_count: u64,
    /// Grouped fault counters (channel retries, lost buckets, degraded
    /// queries, dropped replies, rejected regions).
    pub faults: FaultStats,
    /// Per-quality answer counters for the measured window.
    pub quality: QualityStats,
    /// Summed staleness bound (minutes since last channel sync) over
    /// `Stale` answers.
    pub stale_age_min_sum: f64,
    /// Largest staleness bound among `Stale` answers (minutes).
    pub stale_age_min_max: f64,
    /// Chaos-oracle violations: non-`Exact` answers that broke their
    /// declared bound (kNN distances dominating truth / window subset).
    /// Counted only under `validate`; must stay 0.
    pub bound_violations: u64,
    /// Hosts that resynchronized to the air index after answering
    /// through an outage or restart.
    pub outage_resyncs: u64,
    /// Host crash transitions applied over the run (warm-up included —
    /// churn shapes the steady state the measurement sees).
    pub hosts_crashed: u64,
    /// Host restart/late-join transitions applied over the run.
    pub hosts_restarted: u64,
    /// Aggregated trace metrics, populated only by
    /// [`crate::Simulation::run_metrics`]. `None` on plain runs, keeping
    /// them comparable with pre-observability reports.
    pub metrics: Option<MetricsSnapshot>,
}

impl SimReport {
    /// Accumulates one broadcast access.
    pub(crate) fn record_air(&mut self, stats: AccessStats) {
        self.broadcast_latency.record(stats.latency);
        self.broadcast_tuning.record(stats.tuning);
        self.broadcast_buckets.record(stats.buckets);
        self.faults.retries_total += stats.retries;
        self.faults.buckets_lost_total += stats.lost_buckets;
    }

    /// Accumulates one share exchange.
    pub(crate) fn record_share(&mut self, s: &ShareStats) {
        self.share_peers_contacted += s.peers_contacted as u64;
        self.share_peers_with_data += s.peers_with_data as u64;
        self.share_pois += s.pois_received as u64;
        self.faults.replies_dropped += s.replies_dropped as u64;
        self.faults.regions_rejected += s.regions_rejected as u64;
        self.faults.peers_quarantined += s.peers_quarantined as u64;
        self.faults.quarantine_strikes += s.peers_struck as u64;
    }

    /// Accumulates one measured answer's quality grade; `stale_age_min`
    /// is the staleness bound for `Stale` answers (ignored otherwise).
    pub(crate) fn record_quality(&mut self, q: AnswerQuality, stale_age_min: f64) {
        self.quality.bump(q);
        if q == AnswerQuality::Stale {
            self.stale_age_min_sum += stale_age_min;
            self.stale_age_min_max = self.stale_age_min_max.max(stale_age_min);
        }
    }

    /// Mean staleness bound (minutes) over `Stale` answers.
    pub fn mean_stale_age_min(&self) -> f64 {
        if self.quality.stale == 0 {
            0.0
        } else {
            self.stale_age_min_sum / self.quality.stale as f64
        }
    }

    /// Mean peers contacted per query.
    pub fn mean_peers_contacted(&self) -> f64 {
        if self.queries.total == 0 {
            0.0
        } else {
            self.share_peers_contacted as f64 / self.queries.total as f64
        }
    }

    /// Mean MVR coverage of windows that needed the channel.
    pub fn mean_partial_coverage(&self) -> f64 {
        if self.partial_coverage_count == 0 {
            0.0
        } else {
            self.partial_coverage_sum / self.partial_coverage_count as f64
        }
    }

    /// Mean access latency over *all* queries, counting peer-resolved
    /// queries as zero ticks (their latency is a couple of 802.11 RTTs —
    /// microscopic against bucket airtimes).
    pub fn overall_mean_latency(&self) -> f64 {
        if self.queries.total == 0 {
            0.0
        } else {
            self.broadcast_latency.sum as f64 / self.queries.total as f64
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_statistics() {
        let mut s = LatencySummary::default();
        assert_eq!(s.mean(), 0.0);
        s.record(10);
        s.record(30);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean(), 20.0);
        assert_eq!(s.max, 30);
        assert!(s.p50() >= 8 && s.p50() <= 10, "p50 = {}", s.p50());
        assert!(s.p99() >= 24 && s.p99() <= 30, "p99 = {}", s.p99());
    }

    #[test]
    fn query_stats_percentages() {
        let q = QueryStats {
            total: 200,
            by_peers: 100,
            by_approx: 50,
            by_broadcast: 50,
        };
        assert_eq!(q.pct_peers(), 50.0);
        assert_eq!(q.pct_approx(), 25.0);
        assert_eq!(q.pct_broadcast(), 25.0);
        let empty = QueryStats::default();
        assert_eq!(empty.pct_peers(), 0.0);
    }

    #[test]
    fn overall_latency_counts_peer_queries_as_zero() {
        let mut r = SimReport::default();
        r.queries.total = 4;
        r.queries.by_broadcast = 1;
        r.record_air(AccessStats {
            latency: 100,
            tuning: 10,
            buckets: 5,
            ..Default::default()
        });
        assert_eq!(r.overall_mean_latency(), 25.0);
        assert_eq!(r.broadcast_latency.mean(), 100.0);
    }

    #[test]
    fn fault_counters_group_under_faults() {
        let mut r = SimReport::default();
        r.record_air(AccessStats {
            retries: 3,
            lost_buckets: 1,
            ..Default::default()
        });
        r.record_share(&ShareStats {
            replies_dropped: 2,
            regions_rejected: 4,
            ..Default::default()
        });
        assert_eq!(r.faults.retries_total, 3);
        assert_eq!(r.faults.buckets_lost_total, 1);
        assert_eq!(r.faults.replies_dropped, 2);
        assert_eq!(r.faults.regions_rejected, 4);
    }

    #[test]
    fn quality_counters_accumulate_and_sum() {
        let mut r = SimReport::default();
        r.record_quality(AnswerQuality::Exact, 0.0);
        r.record_quality(AnswerQuality::Exact, 0.0);
        r.record_quality(AnswerQuality::Degraded, 0.0);
        r.record_quality(AnswerQuality::Stale, 3.0);
        r.record_quality(AnswerQuality::Stale, 7.0);
        r.record_quality(AnswerQuality::Failed, 0.0);
        assert_eq!(r.quality.exact, 2);
        assert_eq!(r.quality.count(AnswerQuality::Stale), 2);
        assert_eq!(r.quality.total(), 6);
        assert_eq!(r.mean_stale_age_min(), 5.0);
        assert_eq!(r.stale_age_min_max, 7.0);
        assert_eq!(r.bound_violations, 0);
    }
}
