//! Simulation configuration (the knobs of Table 4 plus ablation flags).

use crate::ParamSet;
use airshare_cache::ReplacementPolicy;
use airshare_core::VrPolicy;

/// Which spatial query type the workload issues (the paper evaluates kNN
/// and window queries in separate experiments, §4.2 / §4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// k-nearest-neighbor queries (SBNN).
    Knn,
    /// Window queries (SBWQ).
    Window,
}

/// Which mobility model moves the hosts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MobilityModel {
    /// Random waypoint in free space (the paper's base model).
    RandomWaypoint,
    /// Waypoints constrained to a synthetic Manhattan street grid with
    /// the given spacing in miles.
    GridRoads {
        /// Street pitch in thousandths of a mile (integer so the config
        /// stays `Eq`/hashable); 250 = 0.25 mi blocks.
        spacing_milli_mi: u32,
    },
}

/// Full configuration of one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The Table 3 parameter set (possibly scaled).
    pub params: ParamSet,
    /// Workload type.
    pub query_kind: QueryKind,
    /// Master seed; every run is deterministic given it.
    pub seed: u64,
    /// Minutes of simulated time to run *after* warm-up.
    pub measure_min: f64,
    /// Warm-up minutes before measurement starts (the paper records
    /// "after the system model reached steady state").
    pub warmup_min: f64,
    /// Broadcast ticks per simulated minute (bucket airtime ⇒ channel
    /// bit-rate). 6000 ≈ 100 one-KB buckets per second on ~0.8 Mbps.
    pub ticks_per_min: u64,
    /// POIs per broadcast bucket.
    pub bucket_capacity: usize,
    /// `(1, m)` index replication factor.
    pub index_m: usize,
    /// Hilbert curve order for the air index.
    pub hilbert_order: u32,
    /// Cache replacement policy.
    pub policy: ReplacementPolicy,
    /// Bound on cached regions per host (`usize::MAX` = bounded only by
    /// the cache's own default, i.e. the POI capacity). The paper bounds
    /// caches in POIs; the region bound exists for the ablation that
    /// studies knowledge fragmentation.
    pub max_regions: usize,
    /// Anti-fragmentation overlap threshold (see
    /// `HostCache::with_subsume_overlap`); 1.0 disables it.
    pub subsume_overlap: f64,
    /// Verified-region construction for peer-answered kNN queries
    /// (sound inscribed square vs the paper's looser circumscribed MBR).
    pub vr_policy: VrPolicy,
    /// Clip Lemma 3.2's unverified areas to the bounded world. The
    /// paper's estimator assumes an unbounded Poisson field (no
    /// clipping); in a scaled-down world clipping is *more accurate* but
    /// boosts approximate acceptance far beyond the paper's regime,
    /// because the edge zone dominates a small world. Default off for
    /// figure fidelity; `exp_prob` calibrates both estimators.
    pub clip_domain: bool,
    /// Hosts accept approximate kNN answers above `min_correctness`.
    pub accept_approx: bool,
    /// Correctness threshold for approximate acceptance (paper: 0.5).
    pub min_correctness: f64,
    /// Apply §3.3.3 bound filtering on broadcast fallback.
    pub use_bound_filtering: bool,
    /// Apply §3.4.2 window reduction on broadcast fallback.
    pub use_window_reduction: bool,
    /// Merge the querying host's own cache into the MVR.
    pub use_own_cache: bool,
    /// How many wireless hops the share request travels (1 = the paper's
    /// single-hop exchange; >1 enables the multi-hop extension).
    pub p2p_hops: usize,
    /// Mobility model.
    pub mobility: MobilityModel,
    /// Neighbor-grid refresh interval in minutes (peers are filtered by
    /// exact positions afterwards, so this only bounds the candidate
    /// search slack, not correctness).
    pub epoch_min: f64,
    /// Cross-check every resolved query against the R-tree oracle and
    /// count mismatches (slower; used by tests and the Lemma 3.2
    /// experiment).
    pub validate: bool,
    /// Cap on recorded (predicted correctness, was-correct) samples for
    /// approximate answers.
    pub calibration_cap: usize,
}

impl SimConfig {
    /// The paper's defaults for a parameter set and workload, at a given
    /// seed. Measurement spans the configured `t_execution_hr` with a
    /// fixed warm-up.
    pub fn paper_defaults(params: ParamSet, query_kind: QueryKind, seed: u64) -> Self {
        Self {
            measure_min: params.t_execution_hr * 60.0,
            params,
            query_kind,
            seed,
            warmup_min: 30.0,
            ticks_per_min: 6000,
            bucket_capacity: 10,
            index_m: 4,
            hilbert_order: 8,
            policy: ReplacementPolicy::DirectionDistance,
            max_regions: usize::MAX,
            subsume_overlap: 0.75,
            vr_policy: VrPolicy::InscribedBall,
            clip_domain: false,
            accept_approx: true,
            min_correctness: 0.5,
            use_bound_filtering: true,
            use_window_reduction: true,
            use_own_cache: true,
            p2p_hops: 1,
            mobility: MobilityModel::RandomWaypoint,
            epoch_min: 0.25,
            validate: false,
            calibration_cap: 100_000,
        }
    }

    /// A laptop-scale configuration: the same densities on a smaller
    /// area, shorter run. This is what `cargo bench` uses by default;
    /// set `AIRSHARE_FULL=1` to run paper scale.
    pub fn bench_defaults(params: ParamSet, query_kind: QueryKind, seed: u64) -> Self {
        let scaled = params.scaled(0.02).with_hours(1.0);
        let mut cfg = Self::paper_defaults(scaled, query_kind, seed);
        cfg.measure_min = 40.0;
        cfg.warmup_min = 20.0;
        cfg
    }

    /// Total simulated minutes (warm-up + measurement).
    pub fn total_min(&self) -> f64 {
        self.warmup_min + self.measure_min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params;

    #[test]
    fn defaults_track_param_set() {
        let cfg = SimConfig::paper_defaults(params::la_city(), QueryKind::Knn, 1);
        assert_eq!(cfg.measure_min, 600.0);
        assert!(cfg.accept_approx);
        assert_eq!(cfg.min_correctness, 0.5);
    }

    #[test]
    fn bench_defaults_shrink_the_world() {
        let cfg = SimConfig::bench_defaults(params::la_city(), QueryKind::Knn, 1);
        assert!(cfg.params.world_mi < 4.0);
        assert!(cfg.params.mh_number < 5000);
        assert!(cfg.total_min() <= 60.0 + 1e-9);
    }
}
