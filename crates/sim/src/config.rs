//! Simulation configuration (the knobs of Table 4 plus ablation flags).

use crate::ParamSet;
use airshare_broadcast::ChannelFaults;
use airshare_cache::ReplacementPolicy;
use airshare_core::VrPolicy;
use std::fmt;

/// A [`SimConfig`] the simulator refuses to run. Every variant names a
/// knob that would otherwise panic (or silently produce nonsense) deep
/// inside a substrate crate; `Simulation::try_new` surfaces them here
/// instead.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfigError {
    /// `bucket_capacity == 0`.
    ZeroBucketCapacity,
    /// `index_m == 0`.
    ZeroIndexReplication,
    /// Hilbert order outside `1..=31`.
    BadHilbertOrder(u32),
    /// World side length is non-positive or non-finite.
    BadWorldSide(f64),
    /// No mobile hosts to simulate.
    NoHosts,
    /// Per-host query rate is non-positive or non-finite.
    BadQueryRate(f64),
    /// `ticks_per_min == 0` (no channel time would ever pass).
    ZeroTicksPerMinute,
    /// A duration knob (`measure_min` / `warmup_min`) is negative or
    /// non-finite. Carries the knob name.
    BadDuration(&'static str),
    /// `knn_k == 0` on a kNN workload: the channel fallback can never
    /// answer a 0-NN query.
    ZeroKnnK,
    /// `epoch_min` is non-positive or non-finite: the epoch-sharded
    /// engine needs a positive epoch length to group events. Carries the
    /// offending value.
    BadEpoch(f64),
    /// A probability knob is outside `[0, 1]` or non-finite. Carries the
    /// knob name and offending value.
    BadProbability(&'static str, f64),
    /// An outage window is inverted or empty (`start >= end`). Carries
    /// the offending `(start, end)` pair.
    BadOutageWindow(u64, u64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroBucketCapacity => write!(f, "bucket_capacity must be ≥ 1"),
            ConfigError::ZeroIndexReplication => write!(f, "index_m must be ≥ 1"),
            ConfigError::BadHilbertOrder(o) => {
                write!(f, "hilbert_order must be in 1..=31, got {o}")
            }
            ConfigError::BadWorldSide(s) => {
                write!(f, "params.world_mi must be positive and finite, got {s}")
            }
            ConfigError::NoHosts => write!(f, "params.mh_number must be ≥ 1"),
            ConfigError::BadQueryRate(r) => {
                write!(f, "params.query_rate must be positive and finite, got {r}")
            }
            ConfigError::ZeroTicksPerMinute => write!(f, "ticks_per_min must be ≥ 1"),
            ConfigError::BadDuration(name) => {
                write!(f, "{name} must be non-negative and finite")
            }
            ConfigError::ZeroKnnK => write!(f, "params.knn_k must be ≥ 1 for kNN workloads"),
            ConfigError::BadEpoch(v) => {
                write!(f, "epoch_min must be positive and finite, got {v}")
            }
            ConfigError::BadProbability(name, v) => {
                write!(f, "{name} must be a probability in [0, 1], got {v}")
            }
            ConfigError::BadOutageWindow(s, e) => {
                write!(f, "outage window must satisfy start < end, got [{s}, {e})")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Fault-injection knobs. All rates default to zero, which makes the
/// fault layer inert: a run with an inert `FaultConfig` is bit-identical
/// to one without the layer (decisions are hashed from the fault seed
/// rather than drawn from the simulation's RNG stream, so no other
/// randomness shifts).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Direct per-appearance bucket loss probability on the broadcast
    /// channel (a bucket whose frame fails its CRC check).
    pub bucket_loss_prob: f64,
    /// Physical bit-error rate; converted to an additional loss
    /// probability via the frame size (`1 - (1 - BER)^bits`). Composes
    /// with `bucket_loss_prob` as independent loss sources.
    pub bit_error_rate: f64,
    /// Probability that a contacted peer's share reply is lost.
    pub peer_drop_prob: f64,
    /// Probability that a contacted peer's share reply arrives
    /// structurally malformed (and, with quarantine active, gets the
    /// peer struck).
    pub peer_malform_prob: f64,
    /// Re-fetch attempts allowed per lost bucket before the query is
    /// reported degraded. Budget `N` means up to `N` re-fetches *after*
    /// the free first appearance (`N + 1` appearances examined in
    /// total); 0 means single-shot.
    pub retry_budget: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            bucket_loss_prob: 0.0,
            bit_error_rate: 0.0,
            peer_drop_prob: 0.0,
            peer_malform_prob: 0.0,
            // Inert until a rate is raised; three retries is a sane
            // starting budget once one is.
            retry_budget: 3,
        }
    }
}

impl FaultConfig {
    /// Whether every fault source is disabled.
    pub fn is_inert(&self) -> bool {
        self.bucket_loss_prob <= 0.0
            && self.bit_error_rate <= 0.0
            && self.peer_drop_prob <= 0.0
            && self.peer_malform_prob <= 0.0
    }

    /// The combined per-appearance bucket loss probability for a given
    /// frame size: direct loss and BER-derived loss as independent
    /// events.
    pub fn combined_loss_prob(&self, frame_bytes: usize) -> f64 {
        let ber = self.bit_error_rate.clamp(0.0, 1.0);
        let from_ber = 1.0 - (1.0 - ber).powf((frame_bytes * 8) as f64);
        let direct = self.bucket_loss_prob.clamp(0.0, 1.0);
        1.0 - (1.0 - direct) * (1.0 - from_ber)
    }

    /// Builds the deterministic decision source for a run. `seed` should
    /// derive from the master simulation seed so runs stay reproducible.
    pub fn channel_faults(&self, seed: u64, frame_bytes: usize) -> ChannelFaults {
        ChannelFaults::from_loss_prob(seed, self.combined_loss_prob(frame_bytes), self.retry_budget)
    }
}

/// Host-churn knobs: crashes, restarts, and late joiners, all decided
/// per `(host, epoch)` by seeded hashing so the schedule is a pure
/// function of the master seed. The default (all zeros) is inert — the
/// whole fleet is online from epoch 0 to the end, bit-identical to a
/// run without the churn layer.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChurnConfig {
    /// Per-epoch probability that an online host crashes at the next
    /// epoch boundary. A crash wipes the host's volatile state (cache,
    /// quarantine ledger, channel sync) and takes it off the air.
    pub crash_prob: f64,
    /// Per-epoch probability that a crashed host comes back online at
    /// the next epoch boundary (cold: empty cache, needs resync).
    pub restart_prob: f64,
    /// Fraction of the fleet that starts *offline* and joins at a
    /// seeded epoch mid-run (late joiners). The fleet size is fixed;
    /// this carves the tail of the host array into deferred admissions.
    pub late_join_frac: f64,
}

impl ChurnConfig {
    /// Whether churn is disabled entirely (every host online for the
    /// whole run).
    pub fn is_inert(&self) -> bool {
        self.crash_prob <= 0.0 && self.late_join_frac <= 0.0
    }
}

/// Which air-index backend the base station broadcasts
/// (see `airshare_broadcast::AirIndexBackend`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The paper's Hilbert-curve `(1, m)` index
    /// (`airshare_broadcast::AirIndex`).
    #[default]
    Hilbert,
    /// The on-air R-tree (`airshare_broadcast::RtreeAirIndex`): STR
    /// bulk-loaded leaves as data buckets, internal nodes as index
    /// buckets.
    Rtree,
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendKind::Hilbert => "hilbert",
            BackendKind::Rtree => "rtree",
        })
    }
}

/// A backend name that matched no [`BackendKind`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBackendError {
    /// The offending input, as given.
    pub input: String,
}

impl std::fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown backend {:?} (expected \"hilbert\" or \"rtree\")",
            self.input
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl std::str::FromStr for BackendKind {
    type Err = ParseBackendError;

    /// Parses a backend name as the serve binary and `exp_*` tools
    /// accept it from CLI/env: case-insensitive, surrounding whitespace
    /// ignored, `"r-tree"` tolerated as an alias.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "hilbert" => Ok(BackendKind::Hilbert),
            "rtree" | "r-tree" => Ok(BackendKind::Rtree),
            _ => Err(ParseBackendError {
                input: s.to_string(),
            }),
        }
    }
}

/// Which spatial query type the workload issues (the paper evaluates kNN
/// and window queries in separate experiments, §4.2 / §4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// k-nearest-neighbor queries (SBNN).
    Knn,
    /// Window queries (SBWQ).
    Window,
}

/// Which mobility model moves the hosts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MobilityModel {
    /// Random waypoint in free space (the paper's base model).
    RandomWaypoint,
    /// Waypoints constrained to a synthetic Manhattan street grid with
    /// the given spacing in miles.
    GridRoads {
        /// Street pitch in thousandths of a mile (integer so the config
        /// stays `Eq`/hashable); 250 = 0.25 mi blocks.
        spacing_milli_mi: u32,
    },
}

/// Full configuration of one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The Table 3 parameter set (possibly scaled).
    pub params: ParamSet,
    /// Workload type.
    pub query_kind: QueryKind,
    /// Master seed; every run is deterministic given it.
    pub seed: u64,
    /// Minutes of simulated time to run *after* warm-up.
    pub measure_min: f64,
    /// Warm-up minutes before measurement starts (the paper records
    /// "after the system model reached steady state").
    pub warmup_min: f64,
    /// Broadcast ticks per simulated minute (bucket airtime ⇒ channel
    /// bit-rate). 6000 ≈ 100 one-KB buckets per second on ~0.8 Mbps.
    pub ticks_per_min: u64,
    /// POIs per broadcast bucket.
    pub bucket_capacity: usize,
    /// `(1, m)` index replication factor.
    pub index_m: usize,
    /// Hilbert curve order for the air index.
    pub hilbert_order: u32,
    /// Which air-index backend the broadcast channel carries.
    pub backend: BackendKind,
    /// Cache replacement policy.
    pub policy: ReplacementPolicy,
    /// Bound on cached regions per host (`usize::MAX` = bounded only by
    /// the cache's own default, i.e. the POI capacity). The paper bounds
    /// caches in POIs; the region bound exists for the ablation that
    /// studies knowledge fragmentation.
    pub max_regions: usize,
    /// Anti-fragmentation overlap threshold (see
    /// `HostCache::with_subsume_overlap`); 1.0 disables it.
    pub subsume_overlap: f64,
    /// Verified-region construction for peer-answered kNN queries
    /// (sound inscribed square vs the paper's looser circumscribed MBR).
    pub vr_policy: VrPolicy,
    /// Clip Lemma 3.2's unverified areas to the bounded world. The
    /// paper's estimator assumes an unbounded Poisson field (no
    /// clipping); in a scaled-down world clipping is *more accurate* but
    /// boosts approximate acceptance far beyond the paper's regime,
    /// because the edge zone dominates a small world. Default off for
    /// figure fidelity; `exp_prob` calibrates both estimators.
    pub clip_domain: bool,
    /// Hosts accept approximate kNN answers above `min_correctness`.
    pub accept_approx: bool,
    /// Correctness threshold for approximate acceptance (paper: 0.5).
    pub min_correctness: f64,
    /// Apply §3.3.3 bound filtering on broadcast fallback.
    pub use_bound_filtering: bool,
    /// Apply §3.4.2 window reduction on broadcast fallback.
    pub use_window_reduction: bool,
    /// Merge the querying host's own cache into the MVR.
    pub use_own_cache: bool,
    /// How many wireless hops the share request travels (1 = the paper's
    /// single-hop exchange; >1 enables the multi-hop extension).
    pub p2p_hops: usize,
    /// Mobility model.
    pub mobility: MobilityModel,
    /// Epoch length in minutes: the neighbor grid is rebuilt and cache
    /// writes become visible to peers at each epoch boundary. Within an
    /// epoch every host observes the same committed snapshot, which is
    /// what makes `Simulation::run_parallel` bit-identical to the
    /// sequential run. Must be positive and finite.
    pub epoch_min: f64,
    /// Cross-check every resolved query against the R-tree oracle and
    /// count mismatches (slower; used by tests and the Lemma 3.2
    /// experiment).
    pub validate: bool,
    /// Cap on recorded (predicted correctness, was-correct) samples for
    /// approximate answers.
    pub calibration_cap: usize,
    /// Fault injection (lossy channel, flaky peers). Inert by default.
    pub faults: FaultConfig,
    /// Host churn (crashes, restarts, late joiners). Inert by default.
    pub churn: ChurnConfig,
    /// Base-station outage windows as half-open `[start, end)` *epoch*
    /// ranges: the broadcast channel is silent for every query whose
    /// event falls in a listed epoch. Empty by default (always live).
    pub outages: Vec<(u64, u64)>,
}

impl SimConfig {
    /// The paper's defaults for a parameter set and workload, at a given
    /// seed. Measurement spans the configured `t_execution_hr` with a
    /// fixed warm-up.
    pub fn paper_defaults(params: ParamSet, query_kind: QueryKind, seed: u64) -> Self {
        Self {
            measure_min: params.t_execution_hr * 60.0,
            params,
            query_kind,
            seed,
            warmup_min: 30.0,
            ticks_per_min: 6000,
            bucket_capacity: 10,
            index_m: 4,
            hilbert_order: 8,
            backend: BackendKind::Hilbert,
            policy: ReplacementPolicy::DirectionDistance,
            max_regions: usize::MAX,
            subsume_overlap: 0.75,
            vr_policy: VrPolicy::InscribedBall,
            clip_domain: false,
            accept_approx: true,
            min_correctness: 0.5,
            use_bound_filtering: true,
            use_window_reduction: true,
            use_own_cache: true,
            p2p_hops: 1,
            mobility: MobilityModel::RandomWaypoint,
            epoch_min: 0.25,
            validate: false,
            calibration_cap: 100_000,
            faults: FaultConfig::default(),
            churn: ChurnConfig::default(),
            outages: Vec::new(),
        }
    }

    /// A laptop-scale configuration: the same densities on a smaller
    /// area, shorter run. This is what `cargo bench` uses by default;
    /// set `AIRSHARE_FULL=1` to run paper scale.
    pub fn bench_defaults(params: ParamSet, query_kind: QueryKind, seed: u64) -> Self {
        let scaled = params.scaled(0.02).with_hours(1.0);
        let mut cfg = Self::paper_defaults(scaled, query_kind, seed);
        cfg.measure_min = 40.0;
        cfg.warmup_min = 20.0;
        cfg
    }

    /// Total simulated minutes (warm-up + measurement).
    pub fn total_min(&self) -> f64 {
        self.warmup_min + self.measure_min
    }

    /// Checks every knob a panic deep inside a substrate crate would
    /// otherwise punish. `Simulation::try_new` calls this; run it
    /// directly to validate externally-sourced configurations early.
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.bucket_capacity == 0 {
            return Err(ConfigError::ZeroBucketCapacity);
        }
        if self.index_m == 0 {
            return Err(ConfigError::ZeroIndexReplication);
        }
        if !(1..=31).contains(&self.hilbert_order) {
            return Err(ConfigError::BadHilbertOrder(self.hilbert_order));
        }
        let side = self.params.world_mi;
        if !(side.is_finite() && side > 0.0) {
            return Err(ConfigError::BadWorldSide(side));
        }
        if self.params.mh_number == 0 {
            return Err(ConfigError::NoHosts);
        }
        let rate = self.params.query_rate;
        if !(rate.is_finite() && rate > 0.0) {
            return Err(ConfigError::BadQueryRate(rate));
        }
        if self.ticks_per_min == 0 {
            return Err(ConfigError::ZeroTicksPerMinute);
        }
        for (name, v) in [("measure_min", self.measure_min), ("warmup_min", self.warmup_min)] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(ConfigError::BadDuration(name));
            }
        }
        if !(self.epoch_min.is_finite() && self.epoch_min > 0.0) {
            return Err(ConfigError::BadEpoch(self.epoch_min));
        }
        if self.query_kind == QueryKind::Knn && self.params.knn_k == 0 {
            return Err(ConfigError::ZeroKnnK);
        }
        for (name, v) in [
            ("min_correctness", self.min_correctness),
            ("faults.bucket_loss_prob", self.faults.bucket_loss_prob),
            ("faults.bit_error_rate", self.faults.bit_error_rate),
            ("faults.peer_drop_prob", self.faults.peer_drop_prob),
            ("faults.peer_malform_prob", self.faults.peer_malform_prob),
            ("churn.crash_prob", self.churn.crash_prob),
            ("churn.restart_prob", self.churn.restart_prob),
            ("churn.late_join_frac", self.churn.late_join_frac),
        ] {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return Err(ConfigError::BadProbability(name, v));
            }
        }
        for &(s, e) in &self.outages {
            if s >= e {
                return Err(ConfigError::BadOutageWindow(s, e));
            }
        }
        Ok(())
    }

    /// Starts a validated builder from [`SimConfig::paper_defaults`].
    /// Every knob has a setter; [`SimConfigBuilder::build`] runs
    /// [`SimConfig::check`] so an invalid combination surfaces as a
    /// [`ConfigError`] at construction instead of inside
    /// `Simulation::try_new`. Struct-literal construction keeps working
    /// for code that wants it.
    pub fn builder(params: ParamSet, query_kind: QueryKind, seed: u64) -> SimConfigBuilder {
        SimConfigBuilder {
            cfg: SimConfig::paper_defaults(params, query_kind, seed),
        }
    }
}

/// Builder for [`SimConfig`] — see [`SimConfig::builder`].
///
/// Setters are chainable and unvalidated individually; validation runs
/// once in [`SimConfigBuilder::build`], which wraps [`SimConfig::check`].
#[derive(Clone, Debug)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

macro_rules! builder_setters {
    ($( $(#[$doc:meta])* $name:ident : $ty:ty ),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, v: $ty) -> Self {
                self.cfg.$name = v;
                self
            }
        )*
    };
}

impl SimConfigBuilder {
    builder_setters! {
        /// Sets the simulated minutes measured after warm-up.
        measure_min: f64,
        /// Sets the warm-up minutes before measurement starts.
        warmup_min: f64,
        /// Sets the broadcast ticks per simulated minute.
        ticks_per_min: u64,
        /// Sets the POIs per broadcast bucket.
        bucket_capacity: usize,
        /// Sets the `(1, m)` index replication factor.
        index_m: usize,
        /// Sets the Hilbert curve order for the air index.
        hilbert_order: u32,
        /// Sets the air-index backend the channel carries.
        backend: BackendKind,
        /// Sets the cache replacement policy.
        policy: ReplacementPolicy,
        /// Sets the bound on cached regions per host.
        max_regions: usize,
        /// Sets the anti-fragmentation overlap threshold.
        subsume_overlap: f64,
        /// Sets the verified-region construction policy.
        vr_policy: VrPolicy,
        /// Sets whether Lemma 3.2 areas are clipped to the world.
        clip_domain: bool,
        /// Sets whether hosts accept approximate kNN answers.
        accept_approx: bool,
        /// Sets the correctness threshold for approximate acceptance.
        min_correctness: f64,
        /// Sets whether §3.3.3 bound filtering applies on fallback.
        use_bound_filtering: bool,
        /// Sets whether §3.4.2 window reduction applies on fallback.
        use_window_reduction: bool,
        /// Sets whether the querying host's own cache joins the MVR.
        use_own_cache: bool,
        /// Sets how many wireless hops the share request travels.
        p2p_hops: usize,
        /// Sets the mobility model.
        mobility: MobilityModel,
        /// Sets the epoch length in minutes.
        epoch_min: f64,
        /// Sets whether every resolved query is oracle-checked.
        validate: bool,
        /// Sets the calibration sample cap.
        calibration_cap: usize,
        /// Sets the fault-injection knobs.
        faults: FaultConfig,
        /// Sets the host-churn knobs.
        churn: ChurnConfig,
        /// Sets the base-station outage windows (epoch ranges).
        outages: Vec<(u64, u64)>,
    }

    /// Validates the assembled configuration ([`SimConfig::check`]) and
    /// returns it, or the first offending knob.
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        self.cfg.check()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params;

    #[test]
    fn backend_kind_parses_and_displays() {
        assert_eq!("hilbert".parse::<BackendKind>(), Ok(BackendKind::Hilbert));
        assert_eq!(" RTree\n".parse::<BackendKind>(), Ok(BackendKind::Rtree));
        assert_eq!("r-tree".parse::<BackendKind>(), Ok(BackendKind::Rtree));
        for kind in [BackendKind::Hilbert, BackendKind::Rtree] {
            assert_eq!(kind.to_string().parse::<BackendKind>(), Ok(kind));
        }
        let err = "quadtree".parse::<BackendKind>().unwrap_err();
        assert_eq!(err.input, "quadtree");
        let msg = err.to_string();
        assert!(msg.contains("quadtree") && msg.contains("hilbert") && msg.contains("rtree"));
    }

    #[test]
    fn defaults_track_param_set() {
        let cfg = SimConfig::paper_defaults(params::la_city(), QueryKind::Knn, 1);
        assert_eq!(cfg.measure_min, 600.0);
        assert!(cfg.accept_approx);
        assert_eq!(cfg.min_correctness, 0.5);
    }

    #[test]
    fn fault_config_defaults_are_inert_and_compose() {
        let f = FaultConfig::default();
        assert!(f.is_inert());
        assert_eq!(f.combined_loss_prob(228), 0.0);
        let lossy = FaultConfig {
            bucket_loss_prob: 0.1,
            bit_error_rate: 1e-4,
            ..FaultConfig::default()
        };
        assert!(!lossy.is_inert());
        let from_ber = 1.0 - (1.0 - 1e-4f64).powf(228.0 * 8.0);
        let expect = 1.0 - 0.9 * (1.0 - from_ber);
        assert!((lossy.combined_loss_prob(228) - expect).abs() < 1e-12);
        // Peer drops alone also de-inert the config.
        let flaky = FaultConfig {
            peer_drop_prob: 0.2,
            ..FaultConfig::default()
        };
        assert!(!flaky.is_inert());
        assert_eq!(flaky.combined_loss_prob(228), 0.0);
    }

    #[test]
    fn check_rejects_each_bad_knob() {
        let good = || SimConfig::paper_defaults(params::la_city(), QueryKind::Knn, 1);
        assert_eq!(good().check(), Ok(()));

        let mut c = good();
        c.bucket_capacity = 0;
        assert_eq!(c.check(), Err(ConfigError::ZeroBucketCapacity));

        let mut c = good();
        c.index_m = 0;
        assert_eq!(c.check(), Err(ConfigError::ZeroIndexReplication));

        let mut c = good();
        c.hilbert_order = 0;
        assert_eq!(c.check(), Err(ConfigError::BadHilbertOrder(0)));
        c.hilbert_order = 32;
        assert_eq!(c.check(), Err(ConfigError::BadHilbertOrder(32)));

        let mut c = good();
        c.params.world_mi = 0.0;
        assert_eq!(c.check(), Err(ConfigError::BadWorldSide(0.0)));

        let mut c = good();
        c.params.mh_number = 0;
        assert_eq!(c.check(), Err(ConfigError::NoHosts));

        let mut c = good();
        c.params.query_rate = f64::NAN;
        assert!(matches!(c.check(), Err(ConfigError::BadQueryRate(_))));

        let mut c = good();
        c.ticks_per_min = 0;
        assert_eq!(c.check(), Err(ConfigError::ZeroTicksPerMinute));

        let mut c = good();
        c.warmup_min = -1.0;
        assert_eq!(c.check(), Err(ConfigError::BadDuration("warmup_min")));

        let mut c = good();
        c.epoch_min = 0.0;
        assert_eq!(c.check(), Err(ConfigError::BadEpoch(0.0)));

        let mut c = good();
        c.epoch_min = f64::NAN;
        assert!(matches!(c.check(), Err(ConfigError::BadEpoch(_))));

        let mut c = good();
        c.params.knn_k = 0;
        assert_eq!(c.check(), Err(ConfigError::ZeroKnnK));
        // Window workloads never run kNN, so k = 0 is fine there.
        c.query_kind = QueryKind::Window;
        assert_eq!(c.check(), Ok(()));

        let mut c = good();
        c.faults.bucket_loss_prob = 1.5;
        assert_eq!(
            c.check(),
            Err(ConfigError::BadProbability("faults.bucket_loss_prob", 1.5))
        );
    }

    #[test]
    fn check_rejects_bad_chaos_knobs() {
        let good = || SimConfig::paper_defaults(params::la_city(), QueryKind::Knn, 1);
        assert_eq!(good().check(), Ok(()));

        let mut c = good();
        c.faults.peer_malform_prob = f64::NAN;
        assert!(matches!(
            c.check(),
            Err(ConfigError::BadProbability("faults.peer_malform_prob", _))
        ));

        let mut c = good();
        c.churn.crash_prob = -0.1;
        assert_eq!(
            c.check(),
            Err(ConfigError::BadProbability("churn.crash_prob", -0.1))
        );

        let mut c = good();
        c.churn.restart_prob = 2.0;
        assert_eq!(
            c.check(),
            Err(ConfigError::BadProbability("churn.restart_prob", 2.0))
        );

        let mut c = good();
        c.churn.late_join_frac = f64::INFINITY;
        assert!(matches!(
            c.check(),
            Err(ConfigError::BadProbability("churn.late_join_frac", _))
        ));

        // Inverted and empty outage windows are rejected; well-formed
        // ones pass.
        let mut c = good();
        c.outages = vec![(5, 5)];
        assert_eq!(c.check(), Err(ConfigError::BadOutageWindow(5, 5)));
        c.outages = vec![(10, 4)];
        assert_eq!(c.check(), Err(ConfigError::BadOutageWindow(10, 4)));
        c.outages = vec![(2, 6), (8, 9)];
        assert_eq!(c.check(), Ok(()));
    }

    #[test]
    fn churn_config_default_is_inert() {
        let churn = ChurnConfig::default();
        assert!(churn.is_inert());
        assert!(!ChurnConfig {
            crash_prob: 0.01,
            ..ChurnConfig::default()
        }
        .is_inert());
        assert!(!ChurnConfig {
            late_join_frac: 0.2,
            ..ChurnConfig::default()
        }
        .is_inert());
        // Malform alone also de-inerts the fault layer.
        let f = FaultConfig {
            peer_malform_prob: 0.05,
            ..FaultConfig::default()
        };
        assert!(!f.is_inert());
    }

    #[test]
    fn builder_matches_defaults_and_validates() {
        // An untouched builder is exactly paper_defaults.
        let built = SimConfig::builder(params::la_city(), QueryKind::Knn, 7)
            .build()
            .unwrap();
        let defaults = SimConfig::paper_defaults(params::la_city(), QueryKind::Knn, 7);
        assert_eq!(format!("{built:?}"), format!("{defaults:?}"));
        assert_eq!(built.backend, BackendKind::Hilbert);

        // Setters chain and stick.
        let cfg = SimConfig::builder(params::la_city(), QueryKind::Window, 7)
            .backend(BackendKind::Rtree)
            .bucket_capacity(20)
            .index_m(2)
            .validate(true)
            .faults(FaultConfig {
                bucket_loss_prob: 0.1,
                ..FaultConfig::default()
            })
            .build()
            .unwrap();
        assert_eq!(cfg.backend, BackendKind::Rtree);
        assert_eq!(cfg.bucket_capacity, 20);
        assert_eq!(cfg.index_m, 2);
        assert!(cfg.validate);
        assert_eq!(cfg.faults.bucket_loss_prob, 0.1);

        // build() rejects what check() rejects.
        assert_eq!(
            SimConfig::builder(params::la_city(), QueryKind::Knn, 7)
                .bucket_capacity(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroBucketCapacity
        );
        assert_eq!(
            SimConfig::builder(params::la_city(), QueryKind::Knn, 7)
                .epoch_min(0.0)
                .build()
                .unwrap_err(),
            ConfigError::BadEpoch(0.0)
        );
        assert!(matches!(
            SimConfig::builder(params::la_city(), QueryKind::Knn, 7)
                .outages(vec![(9, 3)])
                .build(),
            Err(ConfigError::BadOutageWindow(9, 3))
        ));
    }

    #[test]
    fn bench_defaults_shrink_the_world() {
        let cfg = SimConfig::bench_defaults(params::la_city(), QueryKind::Knn, 1);
        assert!(cfg.params.world_mi < 4.0);
        assert!(cfg.params.mh_number < 5000);
        assert!(cfg.total_min() <= 60.0 + 1e-9);
    }
}
