//! The simulation event loop.

use crate::{ConfigError, MobilityModel, QueryKind, SimConfig, SimReport};
use airshare_broadcast::{wire, AirIndex, ChannelFaults, OnAirClient, Poi, PoiCategory, Schedule};
use airshare_cache::{CacheContext, HostCache, RegionEntry};
use airshare_core::{sbnn_rec, sbwq_rec, MergedRegion, ResolvedBy, SbnnConfig, SbwqConfig};
use airshare_geom::{meters_to_miles, Point, Rect};
use airshare_hilbert::Grid;
use airshare_mobility::{
    GridRoadWaypoint, Mobility, MobilityConfig, QueryScheduler, RandomWaypoint,
};
use airshare_obs::{MetricsRecorder, NoopRecorder, Recorder, ShareStats, TraceEvent};
use airshare_p2p::{NeighborGrid, PeerReply, ShareFaults};
use airshare_rtree::RTree;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The single POI category the paper's experiments use (gas stations).
const CAT: PoiCategory = PoiCategory::GAS_STATION;

enum HostMobility {
    Waypoint(Box<RandomWaypoint>),
    Roads(Box<GridRoadWaypoint>),
}

impl Mobility for HostMobility {
    fn position_at(&mut self, t: f64) -> Point {
        match self {
            HostMobility::Waypoint(m) => m.position_at(t),
            HostMobility::Roads(m) => m.position_at(t),
        }
    }
    fn velocity_at(&mut self, t: f64) -> (f64, f64) {
        match self {
            HostMobility::Waypoint(m) => m.velocity_at(t),
            HostMobility::Roads(m) => m.velocity_at(t),
        }
    }
}

/// One full system: base station, channel, fleet, caches.
pub struct Simulation {
    cfg: SimConfig,
    world: Rect,
    pois: Vec<Poi>,
    index: AirIndex,
    schedule: Schedule,
    oracle: RTree<u32>,
    hosts: Vec<HostMobility>,
    caches: Vec<HostCache>,
    mobility_cfg: MobilityConfig,
    rng: SmallRng,
    /// Deterministic fault decision source; `None` when the fault config
    /// is inert, so the ideal-channel path pays nothing.
    faults: Option<ChannelFaults>,
    /// Monotone query counter: the nonce that makes per-query fault
    /// decisions (peer drops) unique yet reproducible.
    query_counter: u64,
}

impl Simulation {
    /// Builds the world: POIs placed uniformly at random (the paper's
    /// own Poisson-field assumption), the Hilbert air index over them,
    /// the `(1, m)` schedule, the ground-truth R-tree, and the host
    /// fleet with empty caches.
    ///
    /// Panics on configurations [`SimConfig::check`] rejects; use
    /// [`Simulation::try_new`] for externally-sourced configs.
    #[deprecated(
        since = "0.1.0",
        note = "use `Simulation::try_new`, which surfaces a typed `ConfigError` instead of panicking"
    )]
    pub fn new(cfg: SimConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("invalid SimConfig: {e}"))
    }

    /// The canonical constructor: validates the configuration first, so a
    /// bad knob surfaces as a typed [`ConfigError`] instead of a panic
    /// deep inside a substrate crate.
    pub fn try_new(cfg: SimConfig) -> Result<Self, ConfigError> {
        cfg.check()?;
        let side = cfg.params.world_mi;
        let world = Rect::from_coords(0.0, 0.0, side, side);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let pois: Vec<Poi> = (0..cfg.params.poi_number)
            .map(|i| {
                Poi::new(
                    i as u32,
                    Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)),
                )
            })
            .collect();
        let grid = Grid::new(world, cfg.hilbert_order);
        let index = AirIndex::build(pois.clone(), grid, cfg.bucket_capacity);
        let schedule = Schedule::new(index.data_buckets(), index.index_buckets(), cfg.index_m);
        let oracle = RTree::bulk_load(pois.iter().map(|p| (p.pos, p.id)).collect());
        let mut mobility_cfg = MobilityConfig::vehicular(world);
        mobility_cfg.speed_min *= cfg.params.speed_scale;
        mobility_cfg.speed_max *= cfg.params.speed_scale;
        let hosts: Vec<HostMobility> = (0..cfg.params.mh_number)
            .map(|i| {
                let seed = cfg.seed ^ (0x9E3779B97F4A7C15u64.wrapping_mul(i as u64 + 1));
                match cfg.mobility {
                    MobilityModel::RandomWaypoint => {
                        HostMobility::Waypoint(Box::new(RandomWaypoint::new(mobility_cfg, seed)))
                    }
                    MobilityModel::GridRoads { spacing_milli_mi } => {
                        HostMobility::Roads(Box::new(GridRoadWaypoint::new(
                            mobility_cfg,
                            spacing_milli_mi as f64 / 1000.0,
                            seed,
                        )))
                    }
                }
            })
            .collect();
        let caches = (0..cfg.params.mh_number)
            .map(|_| {
                let c = HostCache::new(cfg.params.cache_size, cfg.policy)
                    .with_subsume_overlap(cfg.subsume_overlap);
                if cfg.max_regions == usize::MAX {
                    c
                } else {
                    c.with_max_regions(cfg.max_regions)
                }
            })
            .collect();
        // Fault decisions are hashed from their own seed (derived from
        // the master seed), never drawn from `rng`: an inert fault config
        // leaves every other random stream untouched.
        let faults = (!cfg.faults.is_inert()).then(|| {
            cfg.faults.channel_faults(
                cfg.seed ^ 0xFA17_5EED_0000_0001,
                wire::bucket_frame_bytes(cfg.bucket_capacity),
            )
        });
        Ok(Self {
            cfg,
            world,
            pois,
            index,
            schedule,
            oracle,
            hosts,
            caches,
            mobility_cfg,
            rng,
            faults,
            query_counter: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The global POI set (for external validation).
    pub fn pois(&self) -> &[Poi] {
        &self.pois
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(&mut self) -> SimReport {
        self.run_with(&mut NoopRecorder)
    }

    /// [`Simulation::run`] with a [`MetricsRecorder`] attached: the
    /// returned report's `metrics` field carries the aggregated trace
    /// view (per-event counters plus tuning/latency percentiles over
    /// *every* query, peer-resolved ones included as zeros).
    pub fn run_metrics(&mut self) -> SimReport {
        let mut rec = MetricsRecorder::new();
        let mut report = self.run_with(&mut rec);
        report.metrics = Some(rec.snapshot());
        report
    }

    /// [`Simulation::run`], tracing every query's resolution path into
    /// `rec`. The recorder observes but never steers: a run with any
    /// recorder produces the same [`SimReport`] as a plain [`run`] —
    /// bit-identical, as the umbrella crate's golden test asserts.
    ///
    /// [`run`]: Simulation::run
    pub fn run_with(&mut self, rec: &mut dyn Recorder) -> SimReport {
        let mut report = SimReport::default();
        let cfg = self.cfg.clone();
        let range = meters_to_miles(cfg.params.tx_range_m);
        let slack = 2.0 * self.mobility_cfg.speed_max * cfg.epoch_min;
        let total_min = cfg.total_min();

        let mut scheduler =
            QueryScheduler::new(cfg.params.query_rate, cfg.params.mh_number, cfg.seed ^ 0xA5);
        let events = scheduler.events_until(total_min);

        // Initial neighbor grid at t = 0; cell = search radius.
        let cell = (range + slack).max(1e-3);
        let mut grid = self.rebuild_grid(0.0, cell);
        let mut next_epoch = cfg.epoch_min;

        for ev in events {
            while ev.time >= next_epoch {
                grid = self.rebuild_grid(next_epoch, cell);
                next_epoch += cfg.epoch_min;
            }
            self.process_query(ev.time, ev.host, &grid, range, slack, &mut report, rec);
        }
        report
    }

    fn rebuild_grid(&mut self, t: f64, cell: f64) -> NeighborGrid {
        let positions: Vec<Point> = self.hosts.iter_mut().map(|h| h.position_at(t)).collect();
        NeighborGrid::build(positions, cell)
    }

    #[allow(clippy::too_many_arguments)]
    fn process_query(
        &mut self,
        t: f64,
        host: usize,
        grid: &NeighborGrid,
        range: f64,
        slack: f64,
        report: &mut SimReport,
        rec: &mut dyn Recorder,
    ) {
        let cfg = self.cfg.clone();
        let qpos = self.hosts[host].position_at(t);
        let heading = self.hosts[host].heading_at(t);
        let measuring = t >= cfg.warmup_min;
        let nonce = self.query_counter;
        self.query_counter += 1;
        let tune_in = (t * cfg.ticks_per_min as f64) as u64;
        rec.begin_query(nonce, tune_in);
        let share_faults = ShareFaults {
            faults: self.faults.as_ref(),
            drop_prob: cfg.faults.peer_drop_prob,
            nonce,
        };

        // --- P2P gather: candidates from the (slightly stale) grid,
        // confirmed against exact current positions. Multi-hop gathers
        // (the extension) relay through grid positions directly: the
        // ε-staleness of relays is immaterial to an ablation that asks
        // "how much more knowledge do extra hops reach". Replies pass
        // through drop decisions (fault layer) and region validation, so
        // a flaky or inconsistent peer costs coverage, never correctness.
        // ---
        let mut share = ShareStats::default();
        let mut replies: Vec<PeerReply> = Vec::new();
        if cfg.p2p_hops > 1 {
            let (r, s) = airshare_p2p::gather_peer_data_multihop_checked_rec(
                host,
                qpos,
                range,
                cfg.p2p_hops,
                CAT,
                grid,
                &self.caches,
                Some(&self.world),
                share_faults,
                rec,
            );
            replies = r;
            share = s;
        } else {
            let candidates = grid.neighbors_within(qpos, range + slack, Some(host));
            for peer in candidates {
                let ppos = self.hosts[peer].position_at(t);
                if ppos.distance(qpos) > range {
                    continue;
                }
                rec.record(TraceEvent::PeerContacted { peer: peer as u32 });
                share.peers_contacted += 1;
                let regions = self.caches[peer].share_snapshot(CAT);
                if regions.is_empty() {
                    continue;
                }
                if share_faults.drops_reply(peer) {
                    rec.record(TraceEvent::PeerReplyDropped { peer: peer as u32 });
                    share.replies_dropped += 1;
                    continue;
                }
                let (regions, rejected) =
                    airshare_p2p::sanitize_regions(regions, Some(&self.world));
                share.regions_rejected += rejected;
                if regions.is_empty() {
                    continue;
                }
                rec.record(TraceEvent::CacheHit {
                    regions: regions.len() as u32,
                });
                share.peers_with_data += 1;
                share.regions_received += regions.len();
                share.pois_received += regions.iter().map(|(_, p)| p.len()).sum::<usize>();
                replies.push(PeerReply { peer, regions });
            }
        }
        let mut region_pairs: Vec<(Rect, Vec<Poi>)> = replies
            .into_iter()
            .flat_map(|r| r.regions.into_iter())
            .collect();
        if cfg.use_own_cache {
            let own = self.caches[host].share_snapshot(CAT);
            if !own.is_empty() {
                rec.record(TraceEvent::CacheHit {
                    regions: own.len() as u32,
                });
            }
            region_pairs.extend(own);
        }
        let mvr = MergedRegion::from_regions(region_pairs);

        // Window sampling needs &mut self (its RNG); do it before any
        // borrow of the channel state.
        let window = matches!(cfg.query_kind, QueryKind::Window)
            .then(|| self.sample_window(qpos));
        let client = match &self.faults {
            Some(f) => OnAirClient::with_faults(&self.index, &self.schedule, f),
            None => OnAirClient::new(&self.index, &self.schedule),
        };
        let ctx = CacheContext {
            pos: qpos,
            heading,
            now: t,
        };

        match cfg.query_kind {
            QueryKind::Knn => {
                let sbnn_cfg = SbnnConfig {
                    k: cfg.params.knn_k,
                    accept_approx: cfg.accept_approx,
                    min_correctness: cfg.min_correctness,
                    lambda: cfg.params.poi_density(),
                    use_bound_filtering: cfg.use_bound_filtering,
                    vr_policy: cfg.vr_policy,
                    domain: cfg.clip_domain.then_some(self.world),
                };
                let res = sbnn_rec(qpos, &sbnn_cfg, &mvr, Some((&client, tune_in)), rec)
                    .resolved()
                    .expect("channel fallback always resolves");
                let degraded = res.air.is_some_and(|a| a.is_degraded());

                // A degraded retrieval may be missing POIs; adopting its
                // region would cache an incomplete "verified" claim and
                // poison every peer it is later shared with.
                if !degraded {
                    if let Some((vr, pois)) = &res.adoptable {
                        self.caches[host].insert_rec(
                            CAT,
                            RegionEntry::new(*vr, pois.iter().copied(), t),
                            &ctx,
                            rec,
                        );
                    }
                }
                self.caches[host]
                    .touch(CAT, &Rect::centered_square(qpos, range), t);

                if !measuring {
                    return;
                }
                report.queries.total += 1;
                report.record_share(&share);
                if degraded {
                    report.faults.queries_degraded += 1;
                }
                match res.resolved_by {
                    ResolvedBy::PeersVerified => report.queries.by_peers += 1,
                    ResolvedBy::PeersApproximate => report.queries.by_approx += 1,
                    ResolvedBy::Broadcast => report.queries.by_broadcast += 1,
                }
                if let Some(air) = res.air {
                    report.record_air(air);
                }
                // What the pure on-air algorithm would have paid.
                if let Some(base) = client.knn(tune_in, qpos, sbnn_cfg.k) {
                    report.baseline_latency.record(base.stats.latency);
                    report.baseline_tuning.record(base.stats.tuning);
                    if let Some(air) = res.air {
                        debug_assert!(
                            air.buckets <= base.stats.buckets,
                            "bound filtering fetched more than a cold query"
                        );
                        report.filter_saved_buckets +=
                            base.stats.buckets.saturating_sub(air.buckets);
                    }
                }
                if cfg.validate && !degraded {
                    self.validate_knn(qpos, &res, report);
                }
            }
            QueryKind::Window => {
                let w = window.expect("sampled above for window workloads");
                let sbwq_cfg = SbwqConfig {
                    use_window_reduction: cfg.use_window_reduction,
                };
                let res = sbwq_rec(&w, &sbwq_cfg, &mvr, Some((&client, tune_in)), rec)
                    .resolved()
                    .expect("channel fallback always resolves");
                let degraded = res.air.is_some_and(|a| a.is_degraded());

                // A resolved window is fully known: cache it — unless
                // retrieval lost buckets, in which case the window may be
                // missing POIs and must not become a verified region.
                if !degraded {
                    self.caches[host].insert_rec(
                        CAT,
                        RegionEntry::new(w, res.pois.iter().copied(), t),
                        &ctx,
                        rec,
                    );
                }
                self.caches[host].touch(CAT, &w, t);

                if !measuring {
                    return;
                }
                report.queries.total += 1;
                report.record_share(&share);
                if degraded {
                    report.faults.queries_degraded += 1;
                }
                match res.resolved_by {
                    ResolvedBy::PeersVerified => report.queries.by_peers += 1,
                    _ => {
                        report.queries.by_broadcast += 1;
                        report.partial_coverage_sum += res.coverage;
                        report.partial_coverage_count += 1;
                    }
                }
                if let Some(air) = res.air {
                    report.record_air(air);
                }
                let base = client.window(tune_in, &w);
                report.baseline_latency.record(base.stats.latency);
                report.baseline_tuning.record(base.stats.tuning);
                if cfg.validate && !degraded {
                    let mut got: Vec<u32> = res.pois.iter().map(|p| p.id).collect();
                    got.sort_unstable();
                    let mut want: Vec<u32> = self
                        .oracle
                        .window(&w)
                        .into_iter()
                        .map(|(_, &id)| id)
                        .collect();
                    want.sort_unstable();
                    if got != want {
                        report.exact_mismatches += 1;
                    }
                }
            }
        }
    }

    fn validate_knn(
        &mut self,
        qpos: Point,
        res: &airshare_core::SbnnResult,
        report: &mut SimReport,
    ) {
        let truth = self.oracle.knn(qpos, res.neighbors.len());
        let matches = res
            .neighbors
            .iter()
            .zip(&truth)
            .all(|(a, b)| (a.distance - b.distance).abs() < 1e-9);
        match res.resolved_by {
            ResolvedBy::PeersApproximate => {
                if report.calibration.len() < self.cfg.calibration_cap {
                    let min_c = res
                        .neighbors
                        .iter()
                        .filter(|n| !n.verified)
                        .filter_map(|n| n.correctness)
                        .fold(1.0_f64, f64::min);
                    report.calibration.push((min_c, matches));
                }
            }
            _ => {
                if !matches {
                    report.exact_mismatches += 1;
                }
            }
        }
    }

    /// Samples a query window per Table 4: mean area = `window_pct` % of
    /// the search space; centre at a normally-distributed distance from
    /// the host in a uniform direction, clamped into the world.
    fn sample_window(&mut self, qpos: Point) -> Rect {
        let p = &self.cfg.params;
        let side = (p.window_pct / 100.0).sqrt() * p.world_mi;
        let dist = (self.sample_normal(p.distance_mi, p.distance_mi / 3.0)).abs();
        let theta = self.rng.gen_range(0.0..std::f64::consts::TAU);
        let center = self.world.clamp_point(Point::new(
            qpos.x + dist * theta.cos(),
            qpos.y + dist * theta.sin(),
        ));
        let half = side / 2.0;
        let w = Rect::centered_square(center, half);
        w.intersection(&self.world).unwrap_or(w)
    }

    fn sample_normal(&mut self, mean: f64, sd: f64) -> f64 {
        // Box–Muller.
        let u1: f64 = 1.0 - self.rng.gen::<f64>();
        let u2: f64 = self.rng.gen();
        mean + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params;

    fn tiny_cfg(kind: QueryKind) -> SimConfig {
        let mut p = params::la_city().scaled(0.005); // ~2 mi² world
        p.cache_size = 30;
        let mut cfg = SimConfig::paper_defaults(p, kind, 42);
        cfg.warmup_min = 5.0;
        cfg.measure_min = 10.0;
        cfg.validate = true;
        cfg.hilbert_order = 6;
        cfg
    }

    #[test]
    fn knn_simulation_answers_are_exact() {
        let mut sim = Simulation::try_new(tiny_cfg(QueryKind::Knn)).unwrap();
        let report = sim.run();
        assert!(report.queries.total > 20, "too few queries measured");
        assert_eq!(report.exact_mismatches, 0, "exact answers were wrong");
        // All resolution paths sum up.
        assert_eq!(
            report.queries.total,
            report.queries.by_peers + report.queries.by_approx + report.queries.by_broadcast
        );
        // Approximate answers were predicted with probability ≥ 0.5.
        for &(p, _) in &report.calibration {
            assert!(p >= 0.5 - 1e-9);
        }
    }

    #[test]
    fn window_simulation_answers_are_exact() {
        let mut sim = Simulation::try_new(tiny_cfg(QueryKind::Window)).unwrap();
        let report = sim.run();
        assert!(report.queries.total > 20);
        assert_eq!(report.exact_mismatches, 0);
        assert_eq!(report.queries.by_approx, 0, "windows have no approx tier");
        assert_eq!(
            report.queries.total,
            report.queries.by_peers + report.queries.by_broadcast
        );
    }

    #[test]
    fn sharing_reduces_latency_against_baseline() {
        let mut sim = Simulation::try_new(tiny_cfg(QueryKind::Knn)).unwrap();
        let report = sim.run();
        // The paper's headline: overall latency with sharing is below
        // the all-broadcast baseline (peer-solved queries cost ~0).
        assert!(
            report.overall_mean_latency() < report.baseline_latency.mean(),
            "sharing {} !< baseline {}",
            report.overall_mean_latency(),
            report.baseline_latency.mean()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let r1 = Simulation::try_new(tiny_cfg(QueryKind::Knn)).unwrap().run();
        let r2 = Simulation::try_new(tiny_cfg(QueryKind::Knn)).unwrap().run();
        assert_eq!(r1.queries.total, r2.queries.total);
        assert_eq!(r1.queries.by_peers, r2.queries.by_peers);
        assert_eq!(r1.broadcast_latency.sum, r2.broadcast_latency.sum);
    }

    #[test]
    fn zero_range_disables_sharing() {
        let mut cfg = tiny_cfg(QueryKind::Knn);
        cfg.params.tx_range_m = 0.0;
        cfg.use_own_cache = false;
        let report = Simulation::try_new(cfg).unwrap().run();
        assert_eq!(report.queries.by_peers, 0);
        assert_eq!(report.queries.by_approx, 0);
        assert_eq!(report.queries.by_broadcast, report.queries.total);
        assert_eq!(report.exact_mismatches, 0);
    }

    #[test]
    fn multihop_sharing_reaches_more_peers() {
        let reach = |hops: usize| {
            let mut cfg = tiny_cfg(QueryKind::Knn);
            cfg.p2p_hops = hops;
            cfg.measure_min = 8.0;
            let r = Simulation::try_new(cfg).unwrap().run();
            assert_eq!(r.exact_mismatches, 0, "multihop broke exactness");
            (r.mean_peers_contacted(), r.queries.pct_peers() + r.queries.pct_approx())
        };
        let (peers1, solved1) = reach(1);
        let (peers3, solved3) = reach(3);
        assert!(
            peers3 > peers1 * 1.5,
            "3 hops ({peers3:.1} peers) should reach well beyond 1 hop ({peers1:.1})"
        );
        assert!(
            solved3 + 1e-9 >= solved1 * 0.9,
            "extra knowledge should not hurt: {solved3:.1}% vs {solved1:.1}%"
        );
    }

    #[test]
    fn try_new_surfaces_config_errors() {
        let mut cfg = tiny_cfg(QueryKind::Knn);
        cfg.bucket_capacity = 0;
        assert!(matches!(
            Simulation::try_new(cfg),
            Err(crate::ConfigError::ZeroBucketCapacity)
        ));
        assert!(Simulation::try_new(tiny_cfg(QueryKind::Knn)).is_ok());
    }

    #[test]
    fn inert_fault_config_is_bit_identical() {
        // Raising the retry budget (or any knob that keeps all rates at
        // zero) must not shift a single number: fault decisions are
        // hashed, not drawn from the simulation's RNG stream.
        let base = Simulation::try_new(tiny_cfg(QueryKind::Knn)).unwrap().run();
        let mut cfg = tiny_cfg(QueryKind::Knn);
        cfg.faults.retry_budget = 99;
        let with_inert = Simulation::try_new(cfg).unwrap().run();
        assert_eq!(base.queries.total, with_inert.queries.total);
        assert_eq!(base.queries.by_peers, with_inert.queries.by_peers);
        assert_eq!(base.queries.by_approx, with_inert.queries.by_approx);
        assert_eq!(base.broadcast_latency.sum, with_inert.broadcast_latency.sum);
        assert_eq!(base.broadcast_tuning.sum, with_inert.broadcast_tuning.sum);
        assert_eq!(base.share_pois, with_inert.share_pois);
        assert_eq!(with_inert.faults.retries_total, 0);
        assert_eq!(with_inert.faults.buckets_lost_total, 0);
        assert_eq!(with_inert.faults.queries_degraded, 0);
        assert_eq!(with_inert.faults.replies_dropped, 0);
    }

    #[test]
    fn lossy_channel_never_silently_wrong() {
        // Deep retry budget: every loss is recovered, answers stay exact.
        let mut cfg = tiny_cfg(QueryKind::Knn);
        cfg.faults.bucket_loss_prob = 0.15;
        cfg.faults.retry_budget = 50;
        let recovered = Simulation::try_new(cfg).unwrap().run();
        assert!(recovered.faults.retries_total > 0, "15% loss produced no retries");
        assert_eq!(recovered.faults.buckets_lost_total, 0);
        assert_eq!(recovered.faults.queries_degraded, 0);
        assert_eq!(recovered.exact_mismatches, 0);

        // No retries allowed: losses surface as degraded queries, never
        // as validated-exact wrong answers.
        let mut cfg = tiny_cfg(QueryKind::Knn);
        cfg.faults.bucket_loss_prob = 0.3;
        cfg.faults.retry_budget = 0;
        let degraded = Simulation::try_new(cfg).unwrap().run();
        assert!(degraded.faults.buckets_lost_total > 0, "30% loss with no retries lost nothing");
        assert!(degraded.faults.queries_degraded > 0);
        assert_eq!(degraded.exact_mismatches, 0);
    }

    #[test]
    fn lossy_window_queries_stay_exact() {
        let mut cfg = tiny_cfg(QueryKind::Window);
        cfg.faults.bucket_loss_prob = 0.15;
        cfg.faults.retry_budget = 50;
        let report = Simulation::try_new(cfg).unwrap().run();
        assert!(report.faults.retries_total > 0);
        assert_eq!(report.faults.queries_degraded, 0);
        assert_eq!(report.exact_mismatches, 0);
    }

    #[test]
    fn dropped_peer_replies_degrade_to_broadcast() {
        let mut cfg = tiny_cfg(QueryKind::Knn);
        cfg.faults.peer_drop_prob = 1.0;
        cfg.use_own_cache = false;
        let report = Simulation::try_new(cfg).unwrap().run();
        assert!(report.faults.replies_dropped > 0, "total drop produced no drops");
        // With every reply lost and no own cache, nothing resolves by
        // peers — but every answer is still exact via the channel.
        assert_eq!(report.queries.by_peers, 0);
        assert_eq!(report.queries.by_approx, 0);
        assert_eq!(report.exact_mismatches, 0);
    }

    #[test]
    fn faulty_runs_are_deterministic_given_seed() {
        let cfg = || {
            let mut c = tiny_cfg(QueryKind::Knn);
            c.faults.bucket_loss_prob = 0.1;
            c.faults.peer_drop_prob = 0.1;
            c.faults.retry_budget = 2;
            c
        };
        let r1 = Simulation::try_new(cfg()).unwrap().run();
        let r2 = Simulation::try_new(cfg()).unwrap().run();
        assert_eq!(r1.queries.total, r2.queries.total);
        assert_eq!(r1.broadcast_latency.sum, r2.broadcast_latency.sum);
        assert_eq!(r1.faults.retries_total, r2.faults.retries_total);
        assert_eq!(r1.faults.buckets_lost_total, r2.faults.buckets_lost_total);
        assert_eq!(r1.faults.queries_degraded, r2.faults.queries_degraded);
        assert_eq!(r1.faults.replies_dropped, r2.faults.replies_dropped);
    }

    #[test]
    fn loss_raises_latency_monotonically() {
        let run = |loss: f64| {
            let mut cfg = tiny_cfg(QueryKind::Knn);
            cfg.validate = false;
            cfg.faults.bucket_loss_prob = loss;
            cfg.faults.retry_budget = 50;
            Simulation::try_new(cfg).unwrap().run().broadcast_latency.mean()
        };
        let (l0, l10, l20) = (run(0.0), run(0.10), run(0.20));
        assert!(l10 > l0, "10% loss should cost latency: {l10} !> {l0}");
        assert!(l20 > l10, "20% loss should cost more: {l20} !> {l10}");
    }

    #[test]
    fn grid_roads_mobility_runs() {
        let mut cfg = tiny_cfg(QueryKind::Knn);
        cfg.mobility = MobilityModel::GridRoads {
            spacing_milli_mi: 250,
        };
        cfg.measure_min = 5.0;
        let report = Simulation::try_new(cfg).unwrap().run();
        assert!(report.queries.total > 0);
        assert_eq!(report.exact_mismatches, 0);
    }
}
