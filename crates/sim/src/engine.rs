//! The simulation event loop: epoch-sharded, deterministically parallel.
//!
//! Queries are grouped by *epoch* (the neighbor-grid refresh interval).
//! Within one epoch every host observes the same committed world: peer
//! positions from the epoch-start [`NeighborGrid`] and peer caches from
//! the epoch-start snapshot. A host's own cache stays live to itself, and
//! its writes commit at the epoch barrier in host-id order. Per-query
//! randomness comes from RNG streams seed-split per `(host, epoch)`, and
//! per-query outcomes are folded into the report in global event order —
//! so [`Simulation::run_parallel`] is **bit-identical** to the sequential
//! [`Simulation::run`] for every thread count.

use crate::fleet::FleetStore;
use crate::traffic::{EpochRecord, RecordedQuery, TrafficTrace};
use crate::{BackendKind, ConfigError, MobilityModel, QueryKind, SimConfig, SimReport};
use airshare_broadcast::{
    wire, AirIndex, AirIndexBackend, BuildParams, ChannelFaults, OnAirClient, OutageSchedule, Poi,
    PoiCategory, PoiId, PoiTable, QueryScratch, RtreeAirIndex, Schedule,
};
use airshare_cache::{CacheContext, HostCache, QuarantineConfig, QuarantineLedger};
use airshare_core::{
    sbnn_rec, sbwq_rec, MergedRegion, ResolvedBy, SbnnConfig, SbnnOutcome, SbwqConfig, SbwqOutcome,
};
use airshare_exec::{split_seed, ExecPool};
use airshare_geom::{meters_to_miles, Point, Rect};
use airshare_mobility::{
    GridRoadWaypoint, Mobility, MobilityConfig, QueryEvent, QueryScheduler, RandomWaypoint,
};
use airshare_obs::{
    AccessStats, AnswerQuality, MetricsRecorder, NoopRecorder, PhaseTimes, Recorder, ShareStats,
    TraceEvent,
};
use airshare_p2p::{NeighborGrid, ShareFaults};
use airshare_rtree::RTree;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::Instant;

/// The single POI category the paper's experiments use (gas stations).
const CAT: PoiCategory = PoiCategory::GAS_STATION;

/// Salt separating the window-sampling seed domain from every other
/// stream derived from the master seed.
const WINDOW_SEED_SALT: u64 = 0x5EED_0001_CAFE_F00D;

/// Seed domain for the churn decision source (crash schedule).
const CHURN_SEED_SALT: u64 = 0xC4A0_5EED_0000_0002;

/// Key salt decorrelating restart decisions from crash decisions for
/// the same `(host, epoch)` pair.
const RESTART_KEY_SALT: u64 = 0x9E57_A27A_0000_0002;

/// Seed domain for late-joiner admission epochs.
const JOIN_SEED_SALT: u64 = 0x10A7_5EED_0000_0003;

/// Seed domain for per-host quarantine backoff jitter.
const QUARANTINE_SEED_SALT: u64 = 0x0A42_A7F1_5EED_0005;

/// A host's relationship to the broadcast channel.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SyncState {
    /// Simulated minute of the last successful channel access (or of
    /// coming online). Bounds the staleness of outage-served answers.
    pub(crate) last_sync_min: f64,
    /// The host answered queries without the channel (outage) or just
    /// came online; its next successful access counts as a resync.
    pub(crate) needs_resync: bool,
}

/// What one query asks — decoupled from the run-level [`QueryKind`]
/// knob so recorded traffic can replay its sampled windows verbatim and
/// the live service (`airshare-serve`) can mix query kinds per request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QuerySpec {
    /// The `k` nearest neighbors around the querying position.
    Knn {
        /// Neighbors requested.
        k: usize,
    },
    /// All POIs inside a rectangle.
    Window {
        /// The query window.
        rect: Rect,
    },
}

/// One query's answer as a client receives it: the POI id set plus the
/// answer's quality grade. Produced for every query — warm-up included —
/// so a replay can check parity over the whole workload.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryAnswer {
    /// The query's global nonce (the simulator's event index, or the
    /// service's admission ticket).
    pub nonce: u64,
    /// The querying host.
    pub host: u32,
    /// Result POI ids, in resolution order.
    pub ids: Vec<u32>,
    /// Quality grade of the answer.
    pub quality: AnswerQuality,
}

enum HostMobility {
    /// Stored inline: at a million hosts, one heap box per waypoint
    /// stream is pure pointer-chasing overhead.
    Waypoint(RandomWaypoint),
    Roads(Box<GridRoadWaypoint>),
    /// Placeholder left behind while the host's state is moved into an
    /// epoch task; restored at the barrier, never observed in between.
    Vacant,
}

impl Mobility for HostMobility {
    fn position_at(&mut self, t: f64) -> Point {
        match self {
            HostMobility::Waypoint(m) => m.position_at(t),
            HostMobility::Roads(m) => m.position_at(t),
            HostMobility::Vacant => unreachable!("host state vacated into an epoch task"),
        }
    }
    fn velocity_at(&mut self, t: f64) -> (f64, f64) {
        match self {
            HostMobility::Waypoint(m) => m.velocity_at(t),
            HostMobility::Roads(m) => m.velocity_at(t),
            HostMobility::Vacant => unreachable!("host state vacated into an epoch task"),
        }
    }
}

/// How one query was resolved, as the report counts it.
enum Resolution {
    Peers,
    Approx,
    Broadcast,
}

/// Everything one measured query contributes to the report. Buffered
/// shard-locally and folded in global event order at the epoch barrier,
/// so float and counter accumulation order is independent of scheduling.
pub(crate) struct QueryOutcome {
    share: ShareStats,
    /// The answer's quality tier (replaces the old binary degraded
    /// flag): `Exact`, `Degraded` (lossy retrieval), `Stale` or `Failed`
    /// (outage-served).
    quality: AnswerQuality,
    /// Staleness bound in minutes, for `Stale` answers.
    stale_age_min: f64,
    /// The answer broke its declared bound under the chaos oracle
    /// (validate runs only; must never happen).
    bound_violation: bool,
    resolution: Resolution,
    air: Option<AccessStats>,
    /// On-air baseline `(latency, tuning)` for the same query.
    baseline: Option<(u64, u64)>,
    filter_saved: u64,
    /// MVR coverage, for window queries that needed the channel.
    window_coverage: Option<f64>,
    /// Lemma 3.2 calibration sample, for validated approximate answers.
    calibration: Option<(f64, bool)>,
    mismatch: bool,
}

/// One host's slice of an epoch: its mutable state moved out of the
/// simulation, plus its time-ordered events.
struct HostTask {
    host: usize,
    mobility: HostMobility,
    cache: HostCache,
    rng: SmallRng,
    sync: SyncState,
    quarantine: QuarantineLedger,
    /// `(global event index, query time)`, time-ordered.
    events: Vec<(u64, f64)>,
}

/// One host's mutable state, borrowed for a single query. Position,
/// heading, and the query spec are inputs to `process_query` instead —
/// the closed loop derives them from mobility + the window stream, the
/// live service takes them straight off the wire.
pub(crate) struct QueryHostState<'a> {
    host: usize,
    cache: &'a mut HostCache,
    sync: &'a mut SyncState,
    quarantine: &'a mut QuarantineLedger,
    resyncs: &'a mut u64,
}

struct HostDone {
    host: usize,
    mobility: HostMobility,
    cache: HostCache,
    sync: SyncState,
    quarantine: QuarantineLedger,
    /// Resync transitions this shard performed (warm-up included).
    resyncs: u64,
    outcomes: Vec<(u64, QueryOutcome)>,
}

/// The immutable world every worker shares within one epoch. Shared by
/// the closed-loop engine and the serving layer's `LiveWorld`, which is
/// what makes replay parity a structural property rather than a test.
pub(crate) struct EpochCtx<'a> {
    pub(crate) cfg: &'a SimConfig,
    pub(crate) world: &'a Rect,
    /// The canonical POI table peer-shared handles resolve against.
    pub(crate) table: &'a PoiTable,
    pub(crate) index: &'a dyn AirIndexBackend,
    pub(crate) schedule: &'a Schedule,
    pub(crate) oracle: &'a RTree<u32>,
    pub(crate) faults: Option<&'a ChannelFaults>,
    pub(crate) grid: &'a NeighborGrid,
    /// Previous epoch's committed caches — what peers see.
    pub(crate) snapshot: &'a [HostCache],
    pub(crate) range: f64,
    /// This epoch's number (outage membership, quarantine clock).
    pub(crate) epoch: u64,
    /// Base-station outage windows over epoch numbers.
    pub(crate) outage: &'a OutageSchedule,
}

/// One query handed to the engine by the serving layer: inputs only,
/// everything the closed loop would have derived from mobility.
pub(crate) struct LiveBatchItem {
    pub(crate) nonce: u64,
    pub(crate) at_min: f64,
    pub(crate) pos: Point,
    pub(crate) heading: Option<(f64, f64)>,
    pub(crate) spec: QuerySpec,
}

/// One host's slice of a service epoch batch.
pub(crate) struct LiveTask {
    pub(crate) host: usize,
    pub(crate) cache: HostCache,
    pub(crate) sync: SyncState,
    pub(crate) quarantine: QuarantineLedger,
    /// Nonce-ordered queries for this host.
    pub(crate) queries: Vec<LiveBatchItem>,
}

/// A [`LiveTask`]'s committed result.
pub(crate) struct LiveDone {
    pub(crate) host: usize,
    pub(crate) cache: HostCache,
    pub(crate) sync: SyncState,
    pub(crate) quarantine: QuarantineLedger,
    pub(crate) resyncs: u64,
    pub(crate) outcomes: Vec<(u64, QueryOutcome)>,
    pub(crate) answers: Vec<QueryAnswer>,
}

/// Who executes the epoch's host tasks.
enum Driver<'d> {
    /// One thread, one recorder, tasks in host-id order.
    Sequential(&'d mut dyn Recorder),
    /// Sequential, additionally capturing the full workload (per-epoch
    /// fleet state + per-query inputs and answers) into a trace.
    Recording {
        rec: &'d mut dyn Recorder,
        trace: &'d mut TrafficTrace,
    },
    /// Pool workers with inert recorders.
    Parallel { pool: &'d ExecPool },
    /// Pool workers, each folding into its own shard-local recorder.
    ParallelMetrics {
        pool: &'d ExecPool,
        recorders: &'d mut Vec<MetricsRecorder>,
    },
}

/// One full system: base station, channel, fleet, caches.
pub struct Simulation {
    cfg: SimConfig,
    world: Rect,
    /// The canonical POI table: the one copy of every POI payload.
    /// Caches, peer replies, and the index all refer into it by handle.
    table: PoiTable,
    /// The broadcast organization, behind the backend trait: the
    /// `BackendKind` knob picks the concrete index at build time.
    index: Box<dyn AirIndexBackend>,
    schedule: Schedule,
    oracle: RTree<u32>,
    hosts: Vec<HostMobility>,
    /// Columnar per-host mutable state (online flags, positions, sync
    /// scalars, caches, quarantine ledgers).
    fleet: FleetStore,
    /// Deterministic fault decision source; `None` when the fault config
    /// is inert, so the ideal-channel path pays nothing.
    faults: Option<ChannelFaults>,
    /// Precomputed churn transitions `(epoch, host, comes_online)`,
    /// sorted by `(epoch, host)`; a pure function of the master seed.
    churn_plan: Vec<(u64, usize, bool)>,
    /// First `churn_plan` entry not yet applied.
    churn_cursor: usize,
    /// Base-station silence windows over epoch numbers.
    outage: OutageSchedule,
    /// Wall-clock phase breakdown of the most recent run (advance /
    /// grid / query / snapshot). Measurement only — never part of the
    /// simulation's output.
    phases: PhaseTimes,
}

impl Simulation {
    /// Builds the world: POIs placed uniformly at random (the paper's
    /// own Poisson-field assumption), the Hilbert air index over them,
    /// the `(1, m)` schedule, the ground-truth R-tree, and the host
    /// fleet with empty caches. Validates the configuration first, so a
    /// bad knob surfaces as a typed [`ConfigError`] instead of a panic
    /// deep inside a substrate crate.
    pub fn try_new(cfg: SimConfig) -> Result<Self, ConfigError> {
        let mut core = build_world_core(&cfg)?;
        let mut mobility_cfg = MobilityConfig::vehicular(core.world);
        mobility_cfg.speed_min *= cfg.params.speed_scale;
        mobility_cfg.speed_max *= cfg.params.speed_scale;
        // Every stream is seeded per host, independent of construction
        // order, so the fleet can be built in parallel chunks — the
        // result is the same vector a sequential loop produces.
        let hosts: Vec<HostMobility> =
            par_init(&ExecPool::from_env(), cfg.params.mh_number, |i| {
                let seed = cfg.seed ^ (0x9E3779B97F4A7C15u64.wrapping_mul(i as u64 + 1));
                match cfg.mobility {
                    MobilityModel::RandomWaypoint => {
                        HostMobility::Waypoint(RandomWaypoint::new(mobility_cfg, seed))
                    }
                    MobilityModel::GridRoads { spacing_milli_mi } => {
                        HostMobility::Roads(Box::new(GridRoadWaypoint::new(
                            mobility_cfg,
                            spacing_milli_mi as f64 / 1000.0,
                            seed,
                        )))
                    }
                }
            });
        let (online, churn_plan) = plan_churn(&cfg);
        core.fleet.online = online;
        Ok(Self {
            cfg,
            world: core.world,
            table: core.table,
            index: core.index,
            schedule: core.schedule,
            oracle: core.oracle,
            hosts,
            fleet: core.fleet,
            faults: core.faults,
            churn_plan,
            churn_cursor: 0,
            outage: core.outage,
            phases: PhaseTimes::default(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The global POI set (for external validation).
    pub fn pois(&self) -> &[Poi] {
        self.table.as_slice()
    }

    /// The canonical POI table every cached or peer-shared handle
    /// resolves against.
    pub fn poi_table(&self) -> &PoiTable {
        &self.table
    }

    /// Read-only view of the fleet's columnar state.
    pub fn fleet(&self) -> &FleetStore {
        &self.fleet
    }

    /// Wall-clock breakdown of the most recent run's epoch loop
    /// (advance / grid / query / snapshot), for perf attribution.
    /// Zeroed until a run completes. Available after *any* entry point,
    /// including the plain [`Simulation::run`]; the `run_*metrics`
    /// variants additionally copy it into the report's snapshot.
    pub fn phase_times(&self) -> PhaseTimes {
        self.phases
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(&mut self) -> SimReport {
        self.run_with(&mut NoopRecorder)
    }

    /// [`Simulation::run`] with a [`MetricsRecorder`] attached: the
    /// returned report's `metrics` field carries the aggregated trace
    /// view (per-event counters plus tuning/latency percentiles over
    /// *every* query, peer-resolved ones included as zeros).
    pub fn run_metrics(&mut self) -> SimReport {
        let mut rec = MetricsRecorder::new();
        let mut report = self.run_engine(Driver::Sequential(&mut rec));
        let mut snapshot = rec.snapshot();
        snapshot.phases = self.phases;
        report.metrics = Some(snapshot);
        report
    }

    /// [`Simulation::run`], tracing every query's resolution path into
    /// `rec`. The recorder observes but never steers: a run with any
    /// recorder produces the same [`SimReport`] as a plain [`run`] —
    /// bit-identical, as the umbrella crate's golden test asserts.
    ///
    /// Events are traced in commit order (host-id order within each
    /// epoch), which is also deterministic.
    ///
    /// [`run`]: Simulation::run
    pub fn run_with(&mut self, rec: &mut dyn Recorder) -> SimReport {
        self.run_engine(Driver::Sequential(rec))
    }

    /// Runs sequentially while recording the full workload into a
    /// [`TrafficTrace`]: per-epoch fleet state (positions, online flags,
    /// churn transitions) plus every query's inputs *and* its
    /// oracle-checked answer (POI ids + [`AnswerQuality`]). The report
    /// is bit-identical to a plain [`Simulation::run`]; the trace is
    /// what `airshare-serve`'s replay client drives against the live
    /// service, asserting answer-set parity.
    pub fn run_recording(&mut self) -> (SimReport, TrafficTrace) {
        let mut trace = TrafficTrace {
            seed: self.cfg.seed,
            hosts: self.cfg.params.mh_number,
            epoch_min: self.cfg.epoch_min,
            ..TrafficTrace::default()
        };
        let mut noop = NoopRecorder;
        let report = self.run_engine(Driver::Recording {
            rec: &mut noop,
            trace: &mut trace,
        });
        // Per-epoch recording appends in host-id order; replay wants
        // global (nonce) order, which is also time order.
        trace.queries.sort_by_key(|q| q.nonce);
        (report, trace)
    }

    /// Runs the simulation with each epoch's host shards fanned out
    /// across `pool`'s workers.
    ///
    /// The report is **bit-identical** to [`Simulation::run`] for every
    /// thread count (including 1): within an epoch shards share no
    /// mutable state, every RNG draw comes from a seed-split
    /// per-`(host, epoch)` stream, and outcomes are committed in global
    /// event order at the barrier. Scheduling affects only wall-clock
    /// time. `tests/parallel.rs` asserts this end to end.
    pub fn run_parallel(&mut self, pool: &ExecPool) -> SimReport {
        self.run_engine(Driver::Parallel { pool })
    }

    /// [`Simulation::run_parallel`] with per-worker [`MetricsRecorder`]s:
    /// each worker records into its own shard, and the shards are merged
    /// associatively into the report's `metrics` snapshot — equal to the
    /// snapshot a sequential [`Simulation::run_metrics`] produces.
    pub fn run_parallel_metrics(&mut self, pool: &ExecPool) -> SimReport {
        let mut recorders: Vec<MetricsRecorder> =
            (0..pool.threads()).map(|_| MetricsRecorder::new()).collect();
        let mut report = self.run_engine(Driver::ParallelMetrics {
            pool,
            recorders: &mut recorders,
        });
        let mut merged = MetricsRecorder::new();
        for rec in &recorders {
            merged.merge(rec);
        }
        let mut snapshot = merged.snapshot();
        snapshot.phases = self.phases;
        report.metrics = Some(snapshot);
        report
    }

    /// The epoch loop shared by every public entry point.
    ///
    /// Per epoch: rebuild the neighbor grid at the epoch boundary,
    /// snapshot the committed caches, move each active host's state into
    /// its shard task, execute the shards (inline or on the pool), then
    /// commit state back in host-id order and fold outcomes in global
    /// event order.
    fn run_engine(&mut self, driver: Driver<'_>) -> SimReport {
        // Per-worker `(recorder, scratch)` state, hoisted out of the
        // epoch loop: the scratch buffers reach their high-water marks
        // during warm-up and every later index-path query runs without
        // heap allocation.
        enum Workers<'d> {
            Sequential(&'d mut dyn Recorder, QueryScratch),
            Recording(&'d mut dyn Recorder, QueryScratch, &'d mut TrafficTrace),
            Parallel(&'d ExecPool, Vec<(NoopRecorder, QueryScratch)>),
            ParallelMetrics(&'d ExecPool, Vec<(&'d mut MetricsRecorder, QueryScratch)>),
        }
        // The pool the *fleet* phases (advance, churn application) fan
        // out on — the same pool the query shards use. Sequential and
        // recording drivers advance inline.
        let fleet_pool: Option<ExecPool> = match &driver {
            Driver::Parallel { pool } => Some((*pool).clone()),
            Driver::ParallelMetrics { pool, .. } => Some((*pool).clone()),
            _ => None,
        };
        let mut workers = match driver {
            Driver::Sequential(rec) => Workers::Sequential(rec, QueryScratch::new()),
            Driver::Recording { rec, trace } => {
                Workers::Recording(rec, QueryScratch::new(), trace)
            }
            Driver::Parallel { pool } => Workers::Parallel(
                pool,
                (0..pool.threads())
                    .map(|_| (NoopRecorder, QueryScratch::new()))
                    .collect(),
            ),
            Driver::ParallelMetrics { pool, recorders } => Workers::ParallelMetrics(
                pool,
                recorders
                    .iter_mut()
                    .map(|r| (r, QueryScratch::new()))
                    .collect(),
            ),
        };

        let cfg = self.cfg.clone();
        let range = meters_to_miles(cfg.params.tx_range_m);
        let cell = range.max(1e-3);
        let epoch_len = cfg.epoch_min;

        let mut scheduler =
            QueryScheduler::new(cfg.params.query_rate, cfg.params.mh_number, cfg.seed ^ 0xA5);
        let horizon = cfg.total_min();

        if let Workers::Recording(_, _, trace) = &mut workers {
            // Pristine churn-plan state: who is on the air before the
            // first epoch's transitions apply.
            trace.initial_online = self.fleet.online.clone();
        }

        let mut report = SimReport::default();
        let mut phases = PhaseTimes::default();
        // The neighbor grid is *retained* across epochs: pre-sized to
        // the world's extent once, then delta-refreshed at each boundary
        // (only hosts whose cell or online flag changed are re-binned).
        // No per-epoch position clone, no from-scratch rebuild.
        let mut grid = NeighborGrid::with_bounds(&self.world, cell, cfg.params.mh_number);
        // The committed cache state peers observe, maintained
        // *incrementally*: cloned whole once, then only hosts whose
        // cache changed (a commit or a crash wipe) are re-cloned at the
        // next boundary. `HostCache::clone_from` reuses the snapshot's
        // buffers, so a warm steady state refreshes without allocating.
        let mut snapshot: Vec<HostCache> = self.fleet.caches.clone();
        let mut dirty: Vec<usize> = Vec::new();
        // Events are pulled from the scheduler one epoch at a time into
        // a reused buffer — memory stays O(hosts + live epoch) instead
        // of materializing the whole run's event list. The draw sequence
        // (time, then host, per event) is exactly what a full
        // `events_until(horizon)` would have produced.
        let mut epoch_events: Vec<QueryEvent> = Vec::new();
        let mut next_index: u64 = 0;
        // Recording keeps the previous epoch's recorded positions so
        // the trace can carry per-epoch *deltas* instead of full
        // position vectors.
        let mut last_rec_positions: Option<Vec<Point>> = None;
        while scheduler.peek_time() < horizon {
            let first = scheduler.next_query();
            let epoch = (first.time / epoch_len) as u64;
            epoch_events.clear();
            epoch_events.push(first);
            while scheduler.peek_time() < horizon
                && (scheduler.peek_time() / epoch_len) as u64 == epoch
            {
                epoch_events.push(scheduler.next_query());
            }

            // Churn transitions due at or before this epoch's boundary
            // (epochs without events are caught up lazily). This serial
            // pass records events and counters in plan order —
            // identically under every driver, so trace logs stay
            // byte-identical — and *collects* the per-host state
            // mutations for the chunked fleet-advance pass below.
            let t_phase = Instant::now();
            let mut epoch_churn: Vec<(u32, u64, bool)> = Vec::new();
            let mut transitions: Vec<(usize, u64, bool)> = Vec::new();
            while self.churn_cursor < self.churn_plan.len()
                && self.churn_plan[self.churn_cursor].0 <= epoch
            {
                let (e, h, up) = self.churn_plan[self.churn_cursor];
                self.churn_cursor += 1;
                transitions.push((h, e, up));
                let event = if up {
                    report.hosts_restarted += 1;
                    TraceEvent::HostRestarted {
                        host: h as u32,
                        epoch: e,
                    }
                } else {
                    // Crash wipes all volatile state; the peer-visible
                    // snapshot must reflect the wipe this epoch.
                    dirty.push(h);
                    report.hosts_crashed += 1;
                    TraceEvent::HostCrashed {
                        host: h as u32,
                        epoch: e,
                    }
                };
                match &mut workers {
                    Workers::Sequential(rec, _) => rec.record(event),
                    Workers::Recording(rec, _, _) => {
                        // The trace keeps the *planned* epoch `e`, not the
                        // barrier epoch: a restart's sync clock is pinned
                        // to when the host actually came online.
                        epoch_churn.push((h as u32, e, up));
                        rec.record(event);
                    }
                    Workers::Parallel(..) => {}
                    Workers::ParallelMetrics(_, ctxs) => {
                        if let Some((rec, _)) = ctxs.first_mut() {
                            rec.record(event);
                        }
                    }
                }
            }

            // Grid positions at the epoch boundary; clamped to the first
            // event so host clocks never run backwards on the boundary's
            // floating-point edge. The stable host sort keeps each
            // host's transitions in plan (epoch) order, so the chunked
            // pass lands on the same final state the in-order walk did.
            let t_build = (epoch as f64 * epoch_len).min(epoch_events[0].time);
            transitions.sort_by_key(|&(h, _, _)| h);
            advance_fleet(
                &mut self.hosts,
                &mut self.fleet,
                &transitions,
                t_build,
                epoch_len,
                fleet_pool.as_ref(),
            );
            phases.advance_ns += t_phase.elapsed().as_nanos() as u64;
            if let Workers::Recording(_, _, trace) = &mut workers {
                // Position deltas against the previous recorded epoch:
                // the first record carries every host, later ones only
                // hosts whose position actually changed (a paused
                // waypoint host costs nothing).
                let moved: Vec<(u32, Point)> = match &mut last_rec_positions {
                    None => {
                        last_rec_positions = Some(self.fleet.positions.clone());
                        self.fleet
                            .positions
                            .iter()
                            .enumerate()
                            .map(|(h, &p)| (h as u32, p))
                            .collect()
                    }
                    Some(prev) => self
                        .fleet
                        .positions
                        .iter()
                        .zip(prev.iter_mut())
                        .enumerate()
                        .filter_map(|(h, (&now, old))| {
                            (now != *old).then(|| {
                                *old = now;
                                (h as u32, now)
                            })
                        })
                        .collect(),
                };
                trace.epochs.push(EpochRecord {
                    epoch,
                    moved,
                    online: self.fleet.online.clone(),
                    churn: std::mem::take(&mut epoch_churn),
                });
            }
            let t_phase = Instant::now();
            grid.refresh_active(&self.fleet.positions, &self.fleet.online);
            phases.grid_ns += t_phase.elapsed().as_nanos() as u64;

            // Refresh the peer-visible snapshot: only hosts dirtied
            // since the last boundary (commits and crash wipes). A
            // host's *own* inserts stay visible to itself immediately;
            // everyone else sees them from the next epoch on.
            let t_phase = Instant::now();
            dirty.sort_unstable();
            dirty.dedup();
            for &h in &dirty {
                snapshot[h].clone_from(&self.fleet.caches[h]);
            }
            dirty.clear();
            phases.snapshot_ns += t_phase.elapsed().as_nanos() as u64;

            // Shard by host: all of one host's events stay on one worker,
            // in time order. BTreeMap gives host-id task order. Offline
            // hosts pose no queries — their events vanish, but the
            // global index numbering `(i + k)` is untouched, so the
            // fold order of surviving outcomes is churn-independent.
            let t_phase = Instant::now();
            let mut by_host: BTreeMap<usize, Vec<(u64, f64)>> = BTreeMap::new();
            for (k, ev) in epoch_events.iter().enumerate() {
                if !self.fleet.online[ev.host] {
                    continue;
                }
                by_host
                    .entry(ev.host)
                    .or_default()
                    .push((next_index + k as u64, ev.time));
            }
            let tasks: Vec<HostTask> = by_host
                .into_iter()
                .map(|(host, evs)| HostTask {
                    host,
                    mobility: std::mem::replace(&mut self.hosts[host], HostMobility::Vacant),
                    cache: std::mem::replace(
                        &mut self.fleet.caches[host],
                        HostCache::new(0, cfg.policy),
                    ),
                    rng: SmallRng::seed_from_u64(split_seed(
                        cfg.seed ^ WINDOW_SEED_SALT,
                        host as u64,
                        epoch,
                    )),
                    sync: self.fleet.sync_state(host),
                    quarantine: std::mem::replace(
                        &mut self.fleet.quarantines[host],
                        QuarantineLedger::new(QuarantineConfig::default(), 0),
                    ),
                    events: evs,
                })
                .collect();

            let ctx = EpochCtx {
                cfg: &cfg,
                world: &self.world,
                table: &self.table,
                index: self.index.as_ref(),
                schedule: &self.schedule,
                oracle: &self.oracle,
                faults: self.faults.as_ref(),
                grid: &grid,
                snapshot: &snapshot,
                range,
                epoch,
                outage: &self.outage,
            };
            let done: Vec<HostDone> = match &mut workers {
                Workers::Sequential(rec, scratch) => {
                    let mut v = Vec::with_capacity(tasks.len());
                    for task in tasks {
                        v.push(ctx.run_host(task, scratch, &mut **rec, None));
                    }
                    v
                }
                Workers::Recording(rec, scratch, trace) => {
                    let mut v = Vec::with_capacity(tasks.len());
                    for task in tasks {
                        v.push(ctx.run_host(
                            task,
                            scratch,
                            &mut **rec,
                            Some(&mut trace.queries),
                        ));
                    }
                    v
                }
                Workers::Parallel(pool, ctxs) => {
                    pool.map_with(ctxs, tasks, |(rec, scratch), _, task| {
                        ctx.run_host(task, scratch, rec, None)
                    })
                }
                Workers::ParallelMetrics(pool, ctxs) => {
                    pool.map_with(ctxs, tasks, |(rec, scratch), _, task| {
                        ctx.run_host(task, scratch, &mut **rec, None)
                    })
                }
            };

            // Barrier: commit host state in host-id order (`map` returns
            // results in task order), then fold outcomes in global event
            // order so every accumulation is scheduling-independent.
            let mut outcomes: Vec<(u64, QueryOutcome)> = Vec::new();
            for d in done {
                self.hosts[d.host] = d.mobility;
                self.fleet.caches[d.host] = d.cache;
                self.fleet.set_sync_state(d.host, d.sync);
                self.fleet.quarantines[d.host] = d.quarantine;
                dirty.push(d.host);
                report.outage_resyncs += d.resyncs;
                outcomes.extend(d.outcomes);
            }
            outcomes.sort_by_key(|&(idx, _)| idx);
            for (_, o) in outcomes {
                fold_outcome(&mut report, cfg.calibration_cap, o);
            }
            phases.query_ns += t_phase.elapsed().as_nanos() as u64;
            next_index += epoch_events.len() as u64;
        }
        self.phases = phases;
        report
    }
}

impl EpochCtx<'_> {
    /// Runs one host's epoch shard: its events in time order, against
    /// the shared epoch snapshot, with all mutations host-local.
    ///
    /// Each event's query inputs (position, heading, window sample) are
    /// derived here from the host's mobility and window streams, then
    /// handed to the stream-free [`EpochCtx::process_query`]. When `tap`
    /// is set, every query's inputs and answer are captured as a
    /// [`RecordedQuery`] for service replay.
    fn run_host(
        &self,
        task: HostTask,
        scratch: &mut QueryScratch,
        rec: &mut dyn Recorder,
        mut tap: Option<&mut Vec<RecordedQuery>>,
    ) -> HostDone {
        let HostTask {
            host,
            mut mobility,
            mut cache,
            mut rng,
            mut sync,
            mut quarantine,
            events,
        } = task;
        let mut outcomes = Vec::new();
        let mut resyncs = 0u64;
        for (idx, t) in events {
            let qpos = mobility.position_at(t);
            let heading = mobility.heading_at(t);
            // The per-(host, epoch) stream's only consumer is window
            // sampling, so drawing here (instead of mid-query) leaves
            // the draw sequence untouched.
            let spec = match self.cfg.query_kind {
                QueryKind::Knn => QuerySpec::Knn {
                    k: self.cfg.params.knn_k,
                },
                QueryKind::Window => QuerySpec::Window {
                    rect: self.sample_window(qpos, &mut rng),
                },
            };
            let mut q = QueryHostState {
                host,
                cache: &mut cache,
                sync: &mut sync,
                quarantine: &mut quarantine,
                resyncs: &mut resyncs,
            };
            let mut answer = tap.as_deref_mut().map(|_| QueryAnswer {
                nonce: idx,
                host: host as u32,
                ids: Vec::new(),
                quality: AnswerQuality::Failed,
            });
            let out = self.process_query(
                idx,
                t,
                qpos,
                heading,
                &spec,
                &mut q,
                scratch,
                rec,
                answer.as_mut(),
            );
            if let Some(sink) = tap.as_deref_mut() {
                let ans = answer.expect("answer sink allocated when recording");
                sink.push(RecordedQuery {
                    nonce: idx,
                    host: host as u32,
                    at_min: t,
                    epoch: self.epoch,
                    pos: qpos,
                    heading,
                    spec,
                    ids: ans.ids,
                    quality: ans.quality,
                    measured: t >= self.cfg.warmup_min,
                });
            }
            if let Some(o) = out {
                outcomes.push((idx, o));
            }
        }
        HostDone {
            host,
            mobility,
            cache,
            sync,
            quarantine,
            resyncs,
            outcomes,
        }
    }

    /// Runs one host's slice of a *service* epoch batch: the same
    /// resolution path as [`EpochCtx::run_host`], but with every query's
    /// inputs supplied by the client instead of derived from mobility,
    /// and with an answer produced for every query.
    pub(crate) fn run_live_host(
        &self,
        task: LiveTask,
        scratch: &mut QueryScratch,
        rec: &mut dyn Recorder,
    ) -> LiveDone {
        let LiveTask {
            host,
            mut cache,
            mut sync,
            mut quarantine,
            queries,
        } = task;
        let mut outcomes = Vec::new();
        let mut answers = Vec::with_capacity(queries.len());
        let mut resyncs = 0u64;
        for item in queries {
            let mut q = QueryHostState {
                host,
                cache: &mut cache,
                sync: &mut sync,
                quarantine: &mut quarantine,
                resyncs: &mut resyncs,
            };
            let mut answer = QueryAnswer {
                nonce: item.nonce,
                host: host as u32,
                ids: Vec::new(),
                quality: AnswerQuality::Failed,
            };
            let out = self.process_query(
                item.nonce,
                item.at_min,
                item.pos,
                item.heading,
                &item.spec,
                &mut q,
                scratch,
                rec,
                Some(&mut answer),
            );
            if let Some(o) = out {
                outcomes.push((item.nonce, o));
            }
            answers.push(answer);
        }
        LiveDone {
            host,
            cache,
            sync,
            quarantine,
            resyncs,
            outcomes,
            answers,
        }
    }

    /// Resolves one query. Returns its contribution to the report, or
    /// `None` during warm-up (cache effects still apply).
    ///
    /// The query's inputs — position, heading, and the fully-sampled
    /// [`QuerySpec`] — are supplied by the caller (derived from mobility
    /// in the simulator, client-submitted in the serving layer), so this
    /// path is identical for both. When `answer` is set, the answer's
    /// POI ids and [`AnswerQuality`] are always filled in, warm-up or
    /// not: the service answers every query, while the report only
    /// counts measured ones.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn process_query(
        &self,
        nonce: u64,
        t: f64,
        qpos: Point,
        heading: Option<(f64, f64)>,
        spec: &QuerySpec,
        q: &mut QueryHostState<'_>,
        scratch: &mut QueryScratch,
        rec: &mut dyn Recorder,
        mut answer: Option<&mut QueryAnswer>,
    ) -> Option<QueryOutcome> {
        let cfg = self.cfg;
        let host = q.host;
        let measuring = t >= cfg.warmup_min;
        let tune_in = (t * cfg.ticks_per_min as f64) as u64;
        rec.begin_query(nonce, tune_in);
        let share_faults = ShareFaults {
            faults: self.faults,
            drop_prob: cfg.faults.peer_drop_prob,
            malform_prob: cfg.faults.peer_malform_prob,
            nonce,
        };
        // Base-station outage: membership is decided on the *epoch
        // number* — the same integer arithmetic that groups events —
        // so the sequential and parallel engines can never disagree on
        // a float edge.
        let silent = self.outage.is_silent(self.epoch);
        if silent {
            rec.record(TraceEvent::OutageBlocked { tick: tune_in });
        }

        // --- P2P gather against the epoch snapshot: peer positions from
        // the epoch-start grid, peer caches from the epoch-start commit.
        // The ε-staleness is bounded by the epoch length and is the price
        // of a racefree shard; replies still pass through drop decisions
        // (fault layer) and region validation, so a flaky or inconsistent
        // peer costs coverage, never correctness. ---
        let guard = Some((&mut *q.quarantine, self.epoch));
        let (replies, share) = if cfg.p2p_hops > 1 {
            airshare_p2p::gather_peer_data_multihop_guarded_rec(
                host,
                qpos,
                self.range,
                cfg.p2p_hops,
                CAT,
                self.grid,
                self.snapshot,
                self.table,
                Some(self.world),
                share_faults,
                guard,
                rec,
            )
        } else {
            airshare_p2p::gather_peer_data_guarded_rec(
                host,
                qpos,
                self.range,
                CAT,
                self.grid,
                self.snapshot,
                self.table,
                Some(self.world),
                share_faults,
                guard,
                rec,
            )
        };
        if cfg.use_own_cache {
            // Own reads are live — a host always trusts its freshest self.
            let own_regions = q.cache.region_count(CAT);
            if own_regions > 0 {
                rec.record(TraceEvent::CacheHit {
                    regions: own_regions as u32,
                });
            }
        }
        // Merge handle-level: peer regions first (reply order), then the
        // querier's own cache — all resolved once against the canonical
        // table, never materialized as owned POI vectors.
        let own = cfg
            .use_own_cache
            .then(|| q.cache.share_regions(CAT))
            .into_iter()
            .flatten();
        let mvr = MergedRegion::from_id_regions(
            self.table,
            replies
                .iter()
                .flat_map(|r| r.regions.iter().map(|(vr, ids)| (*vr, ids.as_slice())))
                .chain(own),
        );

        let client = match self.faults {
            Some(f) => OnAirClient::with_faults(self.index, self.schedule, f),
            None => OnAirClient::new(self.index, self.schedule),
        };
        let ctx = CacheContext {
            pos: qpos,
            heading,
            now: t,
        };

        match spec {
            QuerySpec::Knn { k } => {
                let sbnn_cfg = SbnnConfig {
                    k: *k,
                    accept_approx: cfg.accept_approx,
                    min_correctness: cfg.min_correctness,
                    lambda: cfg.params.poi_density(),
                    use_bound_filtering: cfg.use_bound_filtering,
                    vr_policy: cfg.vr_policy,
                    domain: cfg.clip_domain.then_some(*self.world),
                };
                let channel = (!silent).then_some((&client, tune_in));
                let res = match sbnn_rec(qpos, &sbnn_cfg, &mvr, channel, scratch, rec) {
                    SbnnOutcome::Resolved(res) => res,
                    SbnnOutcome::Unresolved(heap) => {
                        // Outage: no channel fallback. Serve whatever the
                        // merged peer/cache knowledge held, tagged Stale
                        // (or Failed when it held nothing).
                        q.sync.needs_resync = true;
                        q.cache.touch(CAT, &Rect::centered_square(qpos, self.range), t);
                        let entries = heap.entries();
                        let quality = if entries.is_empty() {
                            AnswerQuality::Failed
                        } else {
                            AnswerQuality::Stale
                        };
                        if let Some(a) = answer.as_deref_mut() {
                            a.ids = entries.iter().map(|c| c.poi.id).collect();
                            a.quality = quality;
                        }
                        if !measuring {
                            return None;
                        }
                        rec.record(TraceEvent::QueryQuality { quality });
                        let mut violation = false;
                        if cfg.validate && !entries.is_empty() {
                            // Chaos-oracle bound: a best-effort candidate
                            // set can only be farther than the truth.
                            let mut dists: Vec<f64> =
                                entries.iter().map(|c| c.distance).collect();
                            dists.sort_by(f64::total_cmp);
                            let truth = self.oracle.knn(qpos, dists.len());
                            violation = dists
                                .iter()
                                .zip(&truth)
                                .any(|(d, b)| *d + 1e-9 < b.distance);
                            debug_assert!(
                                !violation,
                                "stale kNN answer beat ground truth at t={t}"
                            );
                        }
                        return Some(QueryOutcome {
                            share,
                            quality,
                            stale_age_min: (t - q.sync.last_sync_min).max(0.0),
                            bound_violation: violation,
                            resolution: if quality == AnswerQuality::Failed {
                                Resolution::Broadcast
                            } else {
                                Resolution::Peers
                            },
                            air: None,
                            baseline: None,
                            filter_saved: 0,
                            window_coverage: None,
                            calibration: None,
                            mismatch: false,
                        });
                    }
                };
                let degraded = res.air.is_some_and(|a| a.is_degraded());
                if res.air.is_some() {
                    self.note_sync(q, t, rec);
                }

                // A degraded retrieval may be missing POIs; adopting its
                // region would cache an incomplete "verified" claim and
                // poison every peer it is later shared with.
                if !degraded {
                    if let Some((vr, pois)) = &res.adoptable {
                        let ids: Vec<PoiId> = pois.iter().map(Poi::handle).collect();
                        q.cache.insert_ids_rec(self.table, CAT, *vr, &ids, t, &ctx, rec);
                    }
                }
                q.cache.touch(CAT, &Rect::centered_square(qpos, self.range), t);

                let quality = if degraded {
                    AnswerQuality::Degraded
                } else {
                    AnswerQuality::Exact
                };
                if let Some(a) = answer.as_deref_mut() {
                    a.ids = res.neighbors.iter().map(|n| n.poi.id).collect();
                    a.quality = quality;
                }
                if !measuring {
                    return None;
                }
                rec.record(TraceEvent::QueryQuality { quality });
                let mut out = QueryOutcome {
                    share,
                    quality,
                    stale_age_min: 0.0,
                    bound_violation: false,
                    resolution: match res.resolved_by {
                        ResolvedBy::PeersVerified => Resolution::Peers,
                        ResolvedBy::PeersApproximate => Resolution::Approx,
                        ResolvedBy::Broadcast => Resolution::Broadcast,
                    },
                    air: res.air,
                    baseline: None,
                    filter_saved: 0,
                    window_coverage: None,
                    calibration: None,
                    mismatch: false,
                };
                // What the pure on-air algorithm would have paid (not
                // defined during an outage — the baseline host faces
                // the same silent channel).
                if !silent {
                    if let Some(base) =
                        client.knn_rec(tune_in, qpos, sbnn_cfg.k, scratch, &mut NoopRecorder)
                    {
                        out.baseline = Some((base.stats.latency, base.stats.tuning));
                        if let Some(air) = res.air {
                            debug_assert!(
                                air.buckets <= base.stats.buckets,
                                "bound filtering fetched more than a cold query"
                            );
                            out.filter_saved = base.stats.buckets.saturating_sub(air.buckets);
                        }
                    }
                }
                if cfg.validate && !degraded {
                    let truth = self.oracle.knn(qpos, res.neighbors.len());
                    let matches = res
                        .neighbors
                        .iter()
                        .zip(&truth)
                        .all(|(a, b)| (a.distance - b.distance).abs() < 1e-9);
                    match res.resolved_by {
                        ResolvedBy::PeersApproximate => {
                            let min_c = res
                                .neighbors
                                .iter()
                                .filter(|n| !n.verified)
                                .filter_map(|n| n.correctness)
                                .fold(1.0_f64, f64::min);
                            out.calibration = Some((min_c, matches));
                        }
                        _ => out.mismatch = !matches,
                    }
                } else if cfg.validate {
                    // Degraded bound: lost buckets can only *remove*
                    // candidates, so every returned distance must
                    // dominate the corresponding true distance.
                    let truth = self.oracle.knn(qpos, res.neighbors.len());
                    out.bound_violation = res
                        .neighbors
                        .iter()
                        .zip(&truth)
                        .any(|(a, b)| a.distance + 1e-9 < b.distance);
                    debug_assert!(
                        !out.bound_violation,
                        "degraded kNN answer beat ground truth at t={t}"
                    );
                }
                Some(out)
            }
            QuerySpec::Window { rect } => {
                let w = *rect;
                let sbwq_cfg = SbwqConfig {
                    use_window_reduction: cfg.use_window_reduction,
                };
                let channel = (!silent).then_some((&client, tune_in));
                let res = match sbwq_rec(&w, &sbwq_cfg, &mvr, channel, scratch, rec) {
                    SbwqOutcome::Resolved(res) => res,
                    SbwqOutcome::Unresolved { partial, missing } => {
                        // Outage: answer from the covered sub-windows only.
                        // The answer is a *subset* of the truth; its
                        // quality depends on how much area peers covered.
                        q.sync.needs_resync = true;
                        q.cache.touch(CAT, &w, t);
                        let wa = w.area();
                        let coverage = if wa > 0.0 {
                            let miss: f64 = missing.iter().map(Rect::area).sum();
                            (1.0 - miss / wa).clamp(0.0, 1.0)
                        } else {
                            0.0
                        };
                        let quality = if coverage > 1e-9 {
                            AnswerQuality::Stale
                        } else {
                            AnswerQuality::Failed
                        };
                        if let Some(a) = answer.as_deref_mut() {
                            a.ids = partial.iter().map(|p| p.id).collect();
                            a.quality = quality;
                        }
                        if !measuring {
                            return None;
                        }
                        rec.record(TraceEvent::QueryQuality { quality });
                        let mut violation = false;
                        if cfg.validate && !partial.is_empty() {
                            // Chaos-oracle bound: a partial window answer
                            // must be a subset of the ground truth.
                            let mut want: Vec<u32> = self
                                .oracle
                                .window(&w)
                                .into_iter()
                                .map(|(_, &id)| id)
                                .collect();
                            want.sort_unstable();
                            violation = partial
                                .iter()
                                .any(|p| want.binary_search(&p.id).is_err());
                            debug_assert!(
                                !violation,
                                "partial window answer left ground truth at t={t}"
                            );
                        }
                        return Some(QueryOutcome {
                            share,
                            quality,
                            stale_age_min: (t - q.sync.last_sync_min).max(0.0),
                            bound_violation: violation,
                            resolution: if quality == AnswerQuality::Failed {
                                Resolution::Broadcast
                            } else {
                                Resolution::Peers
                            },
                            air: None,
                            baseline: None,
                            filter_saved: 0,
                            window_coverage: None,
                            calibration: None,
                            mismatch: false,
                        });
                    }
                };
                let degraded = res.air.is_some_and(|a| a.is_degraded());
                if res.air.is_some() {
                    self.note_sync(q, t, rec);
                }

                // A resolved window is fully known: cache it — unless
                // retrieval lost buckets, in which case the window may be
                // missing POIs and must not become a verified region.
                if !degraded {
                    let ids: Vec<PoiId> = res.pois.iter().map(Poi::handle).collect();
                    q.cache.insert_ids_rec(self.table, CAT, w, &ids, t, &ctx, rec);
                }
                q.cache.touch(CAT, &w, t);

                let quality = if degraded {
                    AnswerQuality::Degraded
                } else {
                    AnswerQuality::Exact
                };
                if let Some(a) = answer {
                    a.ids = res.pois.iter().map(|p| p.id).collect();
                    a.quality = quality;
                }
                if !measuring {
                    return None;
                }
                rec.record(TraceEvent::QueryQuality { quality });
                let (resolution, window_coverage) = match res.resolved_by {
                    ResolvedBy::PeersVerified => (Resolution::Peers, None),
                    _ => (Resolution::Broadcast, Some(res.coverage)),
                };
                let baseline = (!silent).then(|| {
                    let base = client.window_rec(tune_in, &w, scratch, &mut NoopRecorder);
                    (base.stats.latency, base.stats.tuning)
                });
                let mut out = QueryOutcome {
                    share,
                    quality,
                    stale_age_min: 0.0,
                    bound_violation: false,
                    resolution,
                    air: res.air,
                    baseline,
                    filter_saved: 0,
                    window_coverage,
                    calibration: None,
                    mismatch: false,
                };
                if cfg.validate {
                    let mut got: Vec<u32> = res.pois.iter().map(|p| p.id).collect();
                    got.sort_unstable();
                    let mut want: Vec<u32> = self
                        .oracle
                        .window(&w)
                        .into_iter()
                        .map(|(_, &id)| id)
                        .collect();
                    want.sort_unstable();
                    if !degraded {
                        out.mismatch = got != want;
                    } else {
                        // Degraded bound: lost buckets only drop POIs,
                        // so the answer must stay a subset of the truth.
                        out.bound_violation =
                            got.iter().any(|id| want.binary_search(id).is_err());
                        debug_assert!(
                            !out.bound_violation,
                            "degraded window answer left ground truth at t={t}"
                        );
                    }
                }
                Some(out)
            }
        }
    }

    /// Marks a successful channel access: refreshes the host's sync
    /// clock and, if it was answering through an outage or restart,
    /// records the resynchronization.
    fn note_sync(&self, q: &mut QueryHostState<'_>, t: f64, rec: &mut dyn Recorder) {
        q.sync.last_sync_min = t;
        if q.sync.needs_resync {
            q.sync.needs_resync = false;
            *q.resyncs += 1;
            rec.record(TraceEvent::Resynced {
                host: q.host as u32,
            });
        }
    }

    /// Samples a query window per Table 4: mean area = `window_pct` % of
    /// the search space; centre at a normally-distributed distance from
    /// the host in a uniform direction, clamped into the world. Draws
    /// come from the caller's `(host, epoch)` stream.
    fn sample_window(&self, qpos: Point, rng: &mut SmallRng) -> Rect {
        let p = &self.cfg.params;
        let side = (p.window_pct / 100.0).sqrt() * p.world_mi;
        let dist = sample_normal(rng, p.distance_mi, p.distance_mi / 3.0).abs();
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        let center = self.world.clamp_point(Point::new(
            qpos.x + dist * theta.cos(),
            qpos.y + dist * theta.sin(),
        ));
        let half = side / 2.0;
        let w = Rect::centered_square(center, half);
        w.intersection(self.world).unwrap_or(w)
    }
}

/// One contiguous host range of the fleet's columns, plus the churn
/// transitions that fall inside it — the unit of work for the parallel
/// fleet-advance pass.
struct AdvanceChunk<'a> {
    /// First host id in the chunk (columns below are `start`-offset).
    start: usize,
    mobility: &'a mut [HostMobility],
    online: &'a mut [bool],
    last_sync_min: &'a mut [f64],
    needs_resync: &'a mut [bool],
    caches: &'a mut [HostCache],
    quarantines: &'a mut [QuarantineLedger],
    positions: &'a mut [Point],
    /// `(host, planned_epoch, comes_online)`, sorted by host with each
    /// host's transitions in plan (epoch) order.
    transitions: &'a [(usize, u64, bool)],
}

/// Applies one epoch boundary to the whole fleet: the collected churn
/// transitions (state mutations only — events and counters were already
/// recorded serially, in plan order, by the caller) and the mobility
/// advance to `t_build`. Positions are advanced for *every* host —
/// offline ones included — so mobility streams stay aligned across
/// churn configurations; offline hosts are merely undiscoverable.
///
/// Hosts are mutually independent here: every mutation touches only
/// host-indexed state, and each host's own transitions arrive in epoch
/// order. The work is therefore chunked over contiguous host ranges and
/// fanned out on `pool` when one is supplied — chunk scheduling cannot
/// affect the result, which is bit-identical to the sequential column
/// walk for any chunking and any thread count.
fn advance_fleet(
    hosts: &mut [HostMobility],
    fleet: &mut FleetStore,
    transitions: &[(usize, u64, bool)],
    t_build: f64,
    epoch_len: f64,
    pool: Option<&ExecPool>,
) {
    let n = hosts.len();
    let apply = |c: &mut AdvanceChunk<'_>| {
        for &(h, e, up) in c.transitions {
            let i = h - c.start;
            if up {
                // Came online cold: nothing cached, channel unheard.
                c.online[i] = true;
                c.last_sync_min[i] = e as f64 * epoch_len;
                c.needs_resync[i] = true;
            } else {
                // Crash wipes all volatile state (the caller already
                // marked the host dirty for the snapshot refresh).
                c.online[i] = false;
                c.caches[i].clear();
                c.quarantines[i].clear();
            }
        }
        for (i, m) in c.mobility.iter_mut().enumerate() {
            c.positions[i] = m.position_at(t_build);
        }
    };

    let threads = pool.map_or(1, ExecPool::threads);
    if threads <= 1 || n < 4096 {
        apply(&mut AdvanceChunk {
            start: 0,
            mobility: hosts,
            online: &mut fleet.online,
            last_sync_min: &mut fleet.last_sync_min,
            needs_resync: &mut fleet.needs_resync,
            caches: &mut fleet.caches,
            quarantines: &mut fleet.quarantines,
            positions: &mut fleet.positions,
            transitions,
        });
        return;
    }

    // Oversplit ~4× past the worker count so stealing can level uneven
    // chunks (waypoint hosts mid-pause advance much faster than ones
    // mid-leg).
    let chunk_len = n.div_ceil(threads * 4).max(1024);
    let mut chunks: Vec<AdvanceChunk<'_>> = Vec::with_capacity(n.div_ceil(chunk_len));
    let mut rest = (
        hosts,
        fleet.online.as_mut_slice(),
        fleet.last_sync_min.as_mut_slice(),
        fleet.needs_resync.as_mut_slice(),
        fleet.caches.as_mut_slice(),
        fleet.quarantines.as_mut_slice(),
        fleet.positions.as_mut_slice(),
    );
    let mut tr = transitions;
    let mut start = 0usize;
    while start < n {
        let len = chunk_len.min(n - start);
        let (mob, mob_rest) = rest.0.split_at_mut(len);
        let (onl, onl_rest) = rest.1.split_at_mut(len);
        let (lsm, lsm_rest) = rest.2.split_at_mut(len);
        let (nrs, nrs_rest) = rest.3.split_at_mut(len);
        let (cch, cch_rest) = rest.4.split_at_mut(len);
        let (qua, qua_rest) = rest.5.split_at_mut(len);
        let (pos, pos_rest) = rest.6.split_at_mut(len);
        let cut = tr.partition_point(|&(h, _, _)| h < start + len);
        let (mine, later) = tr.split_at(cut);
        tr = later;
        chunks.push(AdvanceChunk {
            start,
            mobility: mob,
            online: onl,
            last_sync_min: lsm,
            needs_resync: nrs,
            caches: cch,
            quarantines: qua,
            positions: pos,
            transitions: mine,
        });
        rest = (mob_rest, onl_rest, lsm_rest, nrs_rest, cch_rest, qua_rest, pos_rest);
        start += len;
    }
    pool.expect("threads > 1 implies a pool")
        .map(chunks, |_, mut c| apply(&mut c));
}

/// Order-preserving parallel initialization: `(0..n).map(f).collect()`
/// fanned out over `pool` in contiguous chunks. `f` must be a pure
/// function of the index (every per-host constructor in this crate is —
/// seeds are split per host, never drawn from a shared stream), which
/// makes the result independent of chunking and thread count.
fn par_init<T: Send>(pool: &ExecPool, n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if pool.threads() <= 1 || n < 4096 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(pool.threads() * 4).max(1024);
    let ranges: Vec<(usize, usize)> = (0..n)
        .step_by(chunk)
        .map(|s| (s, (s + chunk).min(n)))
        .collect();
    pool.map(ranges, |_, (s, e)| (s..e).map(&f).collect::<Vec<T>>())
        .into_iter()
        .flatten()
        .collect()
}

/// Everything the base-station side of a run owns, minus the fleet's
/// mobility. Built identically for the closed-loop [`Simulation`] and
/// the serving layer's [`crate::LiveWorld`]: same POI draws, same
/// backend build, same fault/outage/quarantine seeds — so both resolve
/// queries over the *same* world and replay parity is structural.
pub(crate) struct WorldCore {
    pub(crate) world: Rect,
    /// The canonical POI table (dense: ids are `0..poi_number`).
    pub(crate) table: PoiTable,
    pub(crate) index: Box<dyn AirIndexBackend>,
    pub(crate) schedule: Schedule,
    pub(crate) oracle: RTree<u32>,
    pub(crate) faults: Option<ChannelFaults>,
    pub(crate) outage: OutageSchedule,
    /// Columnar per-host state: everyone online, at the origin, in
    /// sync, with empty caches and pristine ledgers. Callers overwrite
    /// the online column with their own admission policy.
    pub(crate) fleet: FleetStore,
}

/// Builds the shared world: POIs placed uniformly at random (the
/// paper's Poisson-field assumption), the air index behind the
/// configured backend, the `(1, m)` schedule, the ground-truth R-tree,
/// and per-host caches/sync/quarantine state. Validates the
/// configuration first.
pub(crate) fn build_world_core(cfg: &SimConfig) -> Result<WorldCore, ConfigError> {
    cfg.check()?;
    let side = cfg.params.world_mi;
    let world = Rect::from_coords(0.0, 0.0, side, side);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let table = PoiTable::from_pois((0..cfg.params.poi_number).map(|i| {
        Poi::new(
            i as u32,
            Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)),
        )
    }));
    let build = BuildParams {
        world,
        hilbert_order: cfg.hilbert_order,
        bucket_capacity: cfg.bucket_capacity,
    };
    // The two big POI structures — the air index and the ground-truth
    // R-tree — are independent reads of the finished table, so they
    // build concurrently. Each build is a pure function of the table,
    // so the pool affects wall time only.
    let pool = ExecPool::from_env();
    // cfg.check() already vetted the capacity, so a build error here
    // is unreachable; map it anyway rather than panic.
    let (index, oracle) = pool.join(
        || -> Result<Box<dyn AirIndexBackend>, ConfigError> {
            Ok(match cfg.backend {
                BackendKind::Hilbert => Box::new(
                    <AirIndex as AirIndexBackend>::try_build(&table, &build)
                        .map_err(|_| ConfigError::ZeroBucketCapacity)?,
                ),
                BackendKind::Rtree => Box::new(
                    <RtreeAirIndex as AirIndexBackend>::try_build(&table, &build)
                        .map_err(|_| ConfigError::ZeroBucketCapacity)?,
                ),
            })
        },
        || RTree::bulk_load(table.iter().map(|p| (p.pos, p.id)).collect()),
    );
    let index = index?;
    let schedule = Schedule::try_for_backend(index.as_ref(), cfg.index_m)
        .map_err(|_| ConfigError::ZeroIndexReplication)?;
    let n = cfg.params.mh_number;
    // Per-host state is constructed in parallel chunks: caches take no
    // seed at all, and quarantine seeds are split per host — both are
    // pure functions of the host id, so chunking is invisible.
    let caches = par_init(&pool, n, |_| {
        let c = HostCache::new(cfg.params.cache_size, cfg.policy)
            .with_subsume_overlap(cfg.subsume_overlap);
        if cfg.max_regions == usize::MAX {
            c
        } else {
            c.with_max_regions(cfg.max_regions)
        }
    });
    // Fault decisions are hashed from their own seed (derived from
    // the master seed), never drawn from an RNG stream: an inert
    // fault config leaves every other random stream untouched.
    let faults = (!cfg.faults.is_inert()).then(|| {
        cfg.faults.channel_faults(
            cfg.seed ^ 0xFA17_5EED_0000_0001,
            wire::bucket_frame_bytes(cfg.bucket_capacity),
        )
    });
    let outage = OutageSchedule::new(cfg.outages.clone());
    let quarantines = par_init(&pool, n, |h| {
        QuarantineLedger::new(
            QuarantineConfig::default(),
            split_seed(cfg.seed ^ QUARANTINE_SEED_SALT, h as u64, 0),
        )
    });
    let fleet = FleetStore {
        online: vec![true; n],
        positions: vec![Point::new(0.0, 0.0); n],
        last_sync_min: vec![0.0; n],
        needs_resync: vec![false; n],
        caches,
        quarantines,
    };
    Ok(WorldCore {
        world,
        table,
        index,
        schedule,
        oracle,
        faults,
        outage,
        fleet,
    })
}

/// Precomputes the churn schedule: each host's initial online flag and
/// the full list of crash/restart/join transitions, sorted by
/// `(epoch, host)`.
///
/// Every decision is hashed from the master seed per `(host, epoch)` —
/// no RNG stream is consumed, so an inert [`crate::ChurnConfig`] leaves
/// the run bit-identical to a churn-free build. The plan is applied
/// sequentially in the epoch loop by both the sequential and parallel
/// drivers, which keeps `run_parallel` deterministic for free.
fn plan_churn(cfg: &SimConfig) -> (Vec<bool>, Vec<(u64, usize, bool)>) {
    let n = cfg.params.mh_number;
    if cfg.churn.is_inert() {
        return (vec![true; n], Vec::new());
    }
    let total_epochs = (cfg.total_min() / cfg.epoch_min).ceil() as u64 + 1;
    let late = ((n as f64) * cfg.churn.late_join_frac.clamp(0.0, 1.0)).floor() as usize;
    let join_span = total_epochs.saturating_sub(1).max(1);
    let decide = ChannelFaults::from_loss_prob(cfg.seed ^ CHURN_SEED_SALT, 0.0, 0);

    /// Where a host is in its churn lifecycle.
    enum Phase {
        /// Late joiner waiting for its admission epoch.
        NotJoined(u64),
        Online,
        Offline,
    }
    let mut phase: Vec<Phase> = (0..n)
        .map(|h| {
            if h >= n - late {
                let join =
                    1 + split_seed(cfg.seed ^ JOIN_SEED_SALT, h as u64, 0) % join_span;
                Phase::NotJoined(join)
            } else {
                Phase::Online
            }
        })
        .collect();
    let online: Vec<bool> = phase.iter().map(|p| matches!(p, Phase::Online)).collect();

    let mut plan = Vec::new();
    for e in 1..=total_epochs {
        for (h, ph) in phase.iter_mut().enumerate() {
            match ph {
                Phase::NotJoined(join) if *join == e => {
                    plan.push((e, h, true));
                    *ph = Phase::Online;
                }
                Phase::NotJoined(_) => {}
                Phase::Online => {
                    if decide.event_fires(cfg.churn.crash_prob, h as u64, e) {
                        plan.push((e, h, false));
                        *ph = Phase::Offline;
                    }
                }
                Phase::Offline => {
                    if decide.event_fires(cfg.churn.restart_prob, h as u64 ^ RESTART_KEY_SALT, e)
                    {
                        plan.push((e, h, true));
                        *ph = Phase::Online;
                    }
                }
            }
        }
    }
    (online, plan)
}

fn sample_normal(rng: &mut SmallRng, mean: f64, sd: f64) -> f64 {
    // Box–Muller.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    mean + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Folds one measured query into the report. Called in global event
/// order regardless of thread count.
pub(crate) fn fold_outcome(report: &mut SimReport, calibration_cap: usize, o: QueryOutcome) {
    report.queries.total += 1;
    report.record_share(&o.share);
    if o.quality == AnswerQuality::Degraded {
        report.faults.queries_degraded += 1;
    }
    report.record_quality(o.quality, o.stale_age_min);
    if o.bound_violation {
        report.bound_violations += 1;
    }
    match o.resolution {
        Resolution::Peers => report.queries.by_peers += 1,
        Resolution::Approx => report.queries.by_approx += 1,
        Resolution::Broadcast => report.queries.by_broadcast += 1,
    }
    if let Some(air) = o.air {
        report.record_air(air);
    }
    if let Some((latency, tuning)) = o.baseline {
        report.baseline_latency.record(latency);
        report.baseline_tuning.record(tuning);
    }
    report.filter_saved_buckets += o.filter_saved;
    if let Some(cov) = o.window_coverage {
        report.partial_coverage_sum += cov;
        report.partial_coverage_count += 1;
    }
    if o.mismatch {
        report.exact_mismatches += 1;
    }
    if let Some(sample) = o.calibration {
        if report.calibration.len() < calibration_cap {
            report.calibration.push(sample);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChurnConfig;
    use crate::params;

    fn tiny_cfg(kind: QueryKind) -> SimConfig {
        let mut p = params::la_city().scaled(0.005); // ~2 mi² world
        p.cache_size = 30;
        let mut cfg = SimConfig::paper_defaults(p, kind, 42);
        cfg.warmup_min = 5.0;
        cfg.measure_min = 10.0;
        cfg.validate = true;
        cfg.hilbert_order = 6;
        cfg
    }

    #[test]
    fn knn_simulation_answers_are_exact() {
        let mut sim = Simulation::try_new(tiny_cfg(QueryKind::Knn)).unwrap();
        let report = sim.run();
        assert!(report.queries.total > 20, "too few queries measured");
        assert_eq!(report.exact_mismatches, 0, "exact answers were wrong");
        // All resolution paths sum up.
        assert_eq!(
            report.queries.total,
            report.queries.by_peers + report.queries.by_approx + report.queries.by_broadcast
        );
        // Approximate answers were predicted with probability ≥ 0.5.
        for &(p, _) in &report.calibration {
            assert!(p >= 0.5 - 1e-9);
        }
    }

    #[test]
    fn window_simulation_answers_are_exact() {
        let mut sim = Simulation::try_new(tiny_cfg(QueryKind::Window)).unwrap();
        let report = sim.run();
        assert!(report.queries.total > 20);
        assert_eq!(report.exact_mismatches, 0);
        assert_eq!(report.queries.by_approx, 0, "windows have no approx tier");
        assert_eq!(
            report.queries.total,
            report.queries.by_peers + report.queries.by_broadcast
        );
    }

    #[test]
    fn sharing_reduces_latency_against_baseline() {
        let mut sim = Simulation::try_new(tiny_cfg(QueryKind::Knn)).unwrap();
        let report = sim.run();
        // The paper's headline: overall latency with sharing is below
        // the all-broadcast baseline (peer-solved queries cost ~0).
        assert!(
            report.overall_mean_latency() < report.baseline_latency.mean(),
            "sharing {} !< baseline {}",
            report.overall_mean_latency(),
            report.baseline_latency.mean()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let r1 = Simulation::try_new(tiny_cfg(QueryKind::Knn)).unwrap().run();
        let r2 = Simulation::try_new(tiny_cfg(QueryKind::Knn)).unwrap().run();
        assert_eq!(r1.queries.total, r2.queries.total);
        assert_eq!(r1.queries.by_peers, r2.queries.by_peers);
        assert_eq!(r1.broadcast_latency.sum, r2.broadcast_latency.sum);
    }

    #[test]
    fn run_parallel_is_bit_identical_to_run() {
        let sequential = Simulation::try_new(tiny_cfg(QueryKind::Knn)).unwrap().run();
        for threads in [1, 2, 4] {
            let parallel = Simulation::try_new(tiny_cfg(QueryKind::Knn))
                .unwrap()
                .run_parallel(&ExecPool::fixed(threads));
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn run_parallel_window_matches_run() {
        let sequential = Simulation::try_new(tiny_cfg(QueryKind::Window))
            .unwrap()
            .run();
        let parallel = Simulation::try_new(tiny_cfg(QueryKind::Window))
            .unwrap()
            .run_parallel(&ExecPool::fixed(3));
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn zero_range_disables_sharing() {
        let mut cfg = tiny_cfg(QueryKind::Knn);
        cfg.params.tx_range_m = 0.0;
        cfg.use_own_cache = false;
        let report = Simulation::try_new(cfg).unwrap().run();
        assert_eq!(report.queries.by_peers, 0);
        assert_eq!(report.queries.by_approx, 0);
        assert_eq!(report.queries.by_broadcast, report.queries.total);
        assert_eq!(report.exact_mismatches, 0);
    }

    #[test]
    fn multihop_sharing_reaches_more_peers() {
        let reach = |hops: usize| {
            let mut cfg = tiny_cfg(QueryKind::Knn);
            cfg.p2p_hops = hops;
            cfg.measure_min = 8.0;
            let r = Simulation::try_new(cfg).unwrap().run();
            assert_eq!(r.exact_mismatches, 0, "multihop broke exactness");
            (r.mean_peers_contacted(), r.queries.pct_peers() + r.queries.pct_approx())
        };
        let (peers1, solved1) = reach(1);
        let (peers3, solved3) = reach(3);
        assert!(
            peers3 > peers1 * 1.5,
            "3 hops ({peers3:.1} peers) should reach well beyond 1 hop ({peers1:.1})"
        );
        assert!(
            solved3 + 1e-9 >= solved1 * 0.9,
            "extra knowledge should not hurt: {solved3:.1}% vs {solved1:.1}%"
        );
    }

    #[test]
    fn try_new_surfaces_config_errors() {
        let mut cfg = tiny_cfg(QueryKind::Knn);
        cfg.bucket_capacity = 0;
        assert!(matches!(
            Simulation::try_new(cfg),
            Err(crate::ConfigError::ZeroBucketCapacity)
        ));
        assert!(Simulation::try_new(tiny_cfg(QueryKind::Knn)).is_ok());
    }

    #[test]
    fn inert_fault_config_is_bit_identical() {
        // Raising the retry budget (or any knob that keeps all rates at
        // zero) must not shift a single number: fault decisions are
        // hashed, not drawn from the simulation's RNG streams.
        let base = Simulation::try_new(tiny_cfg(QueryKind::Knn)).unwrap().run();
        let mut cfg = tiny_cfg(QueryKind::Knn);
        cfg.faults.retry_budget = 99;
        let with_inert = Simulation::try_new(cfg).unwrap().run();
        assert_eq!(base.queries.total, with_inert.queries.total);
        assert_eq!(base.queries.by_peers, with_inert.queries.by_peers);
        assert_eq!(base.queries.by_approx, with_inert.queries.by_approx);
        assert_eq!(base.broadcast_latency.sum, with_inert.broadcast_latency.sum);
        assert_eq!(base.broadcast_tuning.sum, with_inert.broadcast_tuning.sum);
        assert_eq!(base.share_pois, with_inert.share_pois);
        assert_eq!(with_inert.faults.retries_total, 0);
        assert_eq!(with_inert.faults.buckets_lost_total, 0);
        assert_eq!(with_inert.faults.queries_degraded, 0);
        assert_eq!(with_inert.faults.replies_dropped, 0);
    }

    #[test]
    fn lossy_channel_never_silently_wrong() {
        // Deep retry budget: every loss is recovered, answers stay exact.
        let mut cfg = tiny_cfg(QueryKind::Knn);
        cfg.faults.bucket_loss_prob = 0.15;
        cfg.faults.retry_budget = 50;
        let recovered = Simulation::try_new(cfg).unwrap().run();
        assert!(recovered.faults.retries_total > 0, "15% loss produced no retries");
        assert_eq!(recovered.faults.buckets_lost_total, 0);
        assert_eq!(recovered.faults.queries_degraded, 0);
        assert_eq!(recovered.exact_mismatches, 0);

        // No retries allowed: losses surface as degraded queries, never
        // as validated-exact wrong answers.
        let mut cfg = tiny_cfg(QueryKind::Knn);
        cfg.faults.bucket_loss_prob = 0.3;
        cfg.faults.retry_budget = 0;
        let degraded = Simulation::try_new(cfg).unwrap().run();
        assert!(degraded.faults.buckets_lost_total > 0, "30% loss with no retries lost nothing");
        assert!(degraded.faults.queries_degraded > 0);
        assert_eq!(degraded.exact_mismatches, 0);
    }

    #[test]
    fn lossy_window_queries_stay_exact() {
        let mut cfg = tiny_cfg(QueryKind::Window);
        cfg.faults.bucket_loss_prob = 0.15;
        cfg.faults.retry_budget = 50;
        let report = Simulation::try_new(cfg).unwrap().run();
        assert!(report.faults.retries_total > 0);
        assert_eq!(report.faults.queries_degraded, 0);
        assert_eq!(report.exact_mismatches, 0);
    }

    #[test]
    fn dropped_peer_replies_degrade_to_broadcast() {
        let mut cfg = tiny_cfg(QueryKind::Knn);
        cfg.faults.peer_drop_prob = 1.0;
        cfg.use_own_cache = false;
        let report = Simulation::try_new(cfg).unwrap().run();
        assert!(report.faults.replies_dropped > 0, "total drop produced no drops");
        // With every reply lost and no own cache, nothing resolves by
        // peers — but every answer is still exact via the channel.
        assert_eq!(report.queries.by_peers, 0);
        assert_eq!(report.queries.by_approx, 0);
        assert_eq!(report.exact_mismatches, 0);
    }

    #[test]
    fn faulty_runs_are_deterministic_given_seed() {
        let cfg = || {
            let mut c = tiny_cfg(QueryKind::Knn);
            c.faults.bucket_loss_prob = 0.1;
            c.faults.peer_drop_prob = 0.1;
            c.faults.retry_budget = 2;
            c
        };
        let r1 = Simulation::try_new(cfg()).unwrap().run();
        let r2 = Simulation::try_new(cfg()).unwrap().run();
        assert_eq!(r1.queries.total, r2.queries.total);
        assert_eq!(r1.broadcast_latency.sum, r2.broadcast_latency.sum);
        assert_eq!(r1.faults.retries_total, r2.faults.retries_total);
        assert_eq!(r1.faults.buckets_lost_total, r2.faults.buckets_lost_total);
        assert_eq!(r1.faults.queries_degraded, r2.faults.queries_degraded);
        assert_eq!(r1.faults.replies_dropped, r2.faults.replies_dropped);
    }

    #[test]
    fn loss_raises_latency_monotonically() {
        let run = |loss: f64| {
            let mut cfg = tiny_cfg(QueryKind::Knn);
            cfg.validate = false;
            cfg.faults.bucket_loss_prob = loss;
            cfg.faults.retry_budget = 50;
            Simulation::try_new(cfg).unwrap().run().broadcast_latency.mean()
        };
        let (l0, l10, l20) = (run(0.0), run(0.10), run(0.20));
        assert!(l10 > l0, "10% loss should cost latency: {l10} !> {l0}");
        assert!(l20 > l10, "20% loss should cost more: {l20} !> {l10}");
    }

    #[test]
    fn grid_roads_mobility_runs() {
        let mut cfg = tiny_cfg(QueryKind::Knn);
        cfg.mobility = MobilityModel::GridRoads {
            spacing_milli_mi: 250,
        };
        cfg.measure_min = 5.0;
        let report = Simulation::try_new(cfg).unwrap().run();
        assert!(report.queries.total > 0);
        assert_eq!(report.exact_mismatches, 0);
    }

    /// The full chaos stack at once: host churn, two outage windows, and
    /// malforming peers.
    fn chaos_cfg(kind: QueryKind) -> SimConfig {
        let mut cfg = tiny_cfg(kind);
        cfg.churn = ChurnConfig {
            crash_prob: 0.05,
            restart_prob: 0.4,
            late_join_frac: 0.2,
        };
        // Epochs are 0.25 min; warm-up ends at epoch 20. Two outages
        // inside the measured window: t ∈ [6, 8) and t ∈ [11, 12.5).
        cfg.outages = vec![(24, 32), (44, 50)];
        cfg.faults.peer_malform_prob = 0.2;
        cfg
    }

    #[test]
    fn chaos_runs_are_deterministic_and_parallel_identical() {
        let sequential = Simulation::try_new(chaos_cfg(QueryKind::Knn)).unwrap().run();
        assert!(sequential.hosts_crashed > 0, "5% crash rate crashed nobody");
        assert!(sequential.hosts_restarted > 0, "nobody restarted or joined");
        for threads in [1, 2, 4] {
            let parallel = Simulation::try_new(chaos_cfg(QueryKind::Knn))
                .unwrap()
                .run_parallel(&ExecPool::fixed(threads));
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn outages_degrade_to_bounded_stale_answers() {
        for kind in [QueryKind::Knn, QueryKind::Window] {
            let report = Simulation::try_new(chaos_cfg(kind)).unwrap().run();
            // Every measured query got a quality grade, and the silent
            // epochs forced some off the Exact path.
            assert_eq!(report.quality.total(), report.queries.total, "{kind:?}");
            assert!(
                report.quality.stale + report.quality.failed > 0,
                "{kind:?}: outage epochs produced no degraded service"
            );
            // The chaos oracle held: stale answers stayed within their
            // declared bound, exact answers stayed exact.
            assert_eq!(report.bound_violations, 0, "{kind:?}");
            assert_eq!(report.exact_mismatches, 0, "{kind:?}");
            if report.quality.stale > 0 {
                assert!(report.mean_stale_age_min() >= 0.0);
                assert!(report.stale_age_min_max >= report.mean_stale_age_min());
            }
            // Hosts that answered through the outage resynchronized once
            // the channel came back.
            assert!(report.outage_resyncs > 0, "{kind:?}: nobody resynced");
        }
    }

    #[test]
    fn malforming_peers_get_quarantined() {
        let mut cfg = tiny_cfg(QueryKind::Knn);
        cfg.faults.peer_malform_prob = 0.3;
        let report = Simulation::try_new(cfg).unwrap().run();
        assert!(
            report.faults.quarantine_strikes > 0,
            "30% malform rate produced no strikes"
        );
        assert!(
            report.faults.peers_quarantined > 0,
            "strikes never led to a skipped peer"
        );
        // Malformed regions are rejected before use: answers stay exact.
        assert_eq!(report.exact_mismatches, 0);
        assert!(report.faults.regions_rejected > 0);
    }

    #[test]
    fn inert_chaos_config_is_bit_identical_to_baseline() {
        let base = Simulation::try_new(tiny_cfg(QueryKind::Knn)).unwrap().run();
        let mut cfg = tiny_cfg(QueryKind::Knn);
        // Nonzero restart probability is inert when nothing ever
        // crashes and nobody joins late.
        cfg.churn = ChurnConfig {
            crash_prob: 0.0,
            restart_prob: 0.9,
            late_join_frac: 0.0,
        };
        cfg.outages = Vec::new();
        let with_inert = Simulation::try_new(cfg).unwrap().run();
        assert_eq!(base, with_inert, "inert chaos knobs shifted the run");
        assert_eq!(with_inert.hosts_crashed, 0);
        assert_eq!(with_inert.hosts_restarted, 0);
        assert_eq!(with_inert.quality.stale, 0);
        assert_eq!(with_inert.quality.failed, 0);
    }
}
