//! The paper's Table 3 parameter sets.

/// One column of Table 3: the workload and environment parameters for a
/// geographic region.
///
/// Units follow the paper: counts are absolute for a
/// `world_mi × world_mi` area, the query rate is aggregate queries per
/// minute, the transmission range is in meters, the window size in
/// percent of the search space, and the execution time in hours.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParamSet {
    /// Human-readable name.
    pub name: &'static str,
    /// `POINumber`: POIs in the system.
    pub poi_number: usize,
    /// `MHNumber`: mobile hosts in the simulation area.
    pub mh_number: usize,
    /// `CSize`: cache capacity (POIs) per data type per host.
    pub cache_size: usize,
    /// `Query`: mean queries per minute (aggregate).
    pub query_rate: f64,
    /// `TxRange`: wireless transmission range in meters.
    pub tx_range_m: f64,
    /// `kNN`: number of queried nearest neighbors.
    pub knn_k: usize,
    /// `Window`: query-window size as a percentage of the search space.
    pub window_pct: f64,
    /// `Distance`: mean distance (miles) between a querying host and the
    /// centre of its query window.
    pub distance_mi: f64,
    /// `Texecution`: simulation length in hours.
    pub t_execution_hr: f64,
    /// Side of the (square) simulation area in miles.
    pub world_mi: f64,
    /// Host speed multiplier applied by [`ParamSet::scaled`] so that the
    /// distance a host covers between two of its queries scales with the
    /// world side — without it, scaled-down worlds suffer cache
    /// staleness the paper's configuration never sees (1.0 at full
    /// scale).
    pub speed_scale: f64,
}

impl ParamSet {
    /// POI density per square mile.
    pub fn poi_density(&self) -> f64 {
        self.poi_number as f64 / (self.world_mi * self.world_mi)
    }

    /// Mobile-host density per square mile.
    pub fn mh_density(&self) -> f64 {
        self.mh_number as f64 / (self.world_mi * self.world_mi)
    }

    /// Scales the simulation region by an **area** factor while keeping
    /// every density (hosts/mi², POIs/mi², queries/min/host) fixed.
    ///
    /// Because the sharing mechanism is single-hop — a query sees only
    /// the peers within a couple hundred meters — per-query statistics
    /// depend on local densities, not on the absolute region size, so a
    /// scaled run reproduces the paper's fractions. EXPERIMENTS.md
    /// records scaled-vs-full comparisons.
    pub fn scaled(&self, area_factor: f64) -> ParamSet {
        assert!(area_factor > 0.0 && area_factor <= 1.0);
        let f = area_factor;
        ParamSet {
            name: self.name,
            poi_number: ((self.poi_number as f64 * f).round() as usize).max(20),
            mh_number: ((self.mh_number as f64 * f).round() as usize).max(10),
            query_rate: (self.query_rate * f).max(1.0),
            world_mi: self.world_mi * f.sqrt(),
            // The window workload and host kinematics are proportioned
            // to the world (window area, centre distance, and travel per
            // unit time all scale with the region side), so the coverage
            // geometry of the figures survives scaling.
            distance_mi: self.distance_mi * f.sqrt(),
            speed_scale: self.speed_scale * f.sqrt(),
            ..*self
        }
    }

    /// Shortens the run (hours) without touching densities.
    pub fn with_hours(mut self, hours: f64) -> ParamSet {
        self.t_execution_hr = hours;
        self
    }
}

/// Table 3, column 1: a very dense urban area.
pub fn la_city() -> ParamSet {
    ParamSet {
        name: "LA City",
        poi_number: 2750,
        mh_number: 93_300,
        cache_size: 50,
        query_rate: 6220.0,
        tx_range_m: 200.0,
        knn_k: 5,
        window_pct: 3.0,
        distance_mi: 1.0,
        t_execution_hr: 10.0,
        world_mi: 20.0,
        speed_scale: 1.0,
    }
}

/// Table 3, column 2: a low-density, more rural area.
pub fn riverside_county() -> ParamSet {
    ParamSet {
        name: "Riverside County",
        poi_number: 1450,
        mh_number: 9_700,
        cache_size: 50,
        query_rate: 650.0,
        tx_range_m: 200.0,
        knn_k: 5,
        window_pct: 3.0,
        distance_mi: 1.0,
        t_execution_hr: 10.0,
        world_mi: 20.0,
        speed_scale: 1.0,
    }
}

/// Table 3, column 3: the synthetic suburban blend.
pub fn synthetic_suburbia() -> ParamSet {
    ParamSet {
        name: "Synthetic Suburbia",
        poi_number: 2100,
        mh_number: 51_500,
        cache_size: 50,
        query_rate: 3440.0,
        tx_range_m: 200.0,
        knn_k: 5,
        window_pct: 3.0,
        distance_mi: 1.0,
        t_execution_hr: 10.0,
        world_mi: 20.0,
        speed_scale: 1.0,
    }
}

/// All three parameter sets in the paper's presentation order.
pub fn all() -> [ParamSet; 3] {
    [la_city(), synthetic_suburbia(), riverside_county()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values_match_paper() {
        let la = la_city();
        assert_eq!(la.poi_number, 2750);
        assert_eq!(la.mh_number, 93_300);
        assert_eq!(la.cache_size, 50);
        assert_eq!(la.query_rate, 6220.0);
        assert_eq!(la.tx_range_m, 200.0);
        assert_eq!(la.knn_k, 5);
        assert_eq!(la.window_pct, 3.0);
        assert_eq!(la.distance_mi, 1.0);
        assert_eq!(la.t_execution_hr, 10.0);

        let rc = riverside_county();
        assert_eq!(rc.poi_number, 1450);
        assert_eq!(rc.mh_number, 9_700);
        assert_eq!(rc.query_rate, 650.0);

        let sb = synthetic_suburbia();
        assert_eq!(sb.poi_number, 2100);
        assert_eq!(sb.mh_number, 51_500);
        assert_eq!(sb.query_rate, 3440.0);
    }

    #[test]
    fn density_ordering_la_gt_suburbia_gt_riverside() {
        assert!(la_city().mh_density() > synthetic_suburbia().mh_density());
        assert!(synthetic_suburbia().mh_density() > riverside_county().mh_density());
    }

    #[test]
    fn scaling_preserves_densities() {
        let la = la_city();
        let s = la.scaled(0.04);
        assert!((s.mh_density() - la.mh_density()).abs() / la.mh_density() < 0.02);
        assert!((s.poi_density() - la.poi_density()).abs() / la.poi_density() < 0.02);
        // Per-host query rate preserved.
        let per_host = la.query_rate / la.mh_number as f64;
        let per_host_s = s.query_rate / s.mh_number as f64;
        assert!((per_host - per_host_s).abs() / per_host < 0.05);
        assert!((s.world_mi - 4.0).abs() < 1e-9);
    }
}
