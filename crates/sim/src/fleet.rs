//! Columnar (struct-of-arrays) per-host fleet state.
//!
//! A million-host fleet touches host state in tight, column-at-a-time
//! sweeps: advance every position, rebuild the neighbor grid over the
//! online set, refresh sync clocks at the barrier. Keeping each of those
//! as its own flat column — instead of an array of per-host structs —
//! means a sweep reads exactly the bytes it needs and nothing else.
//!
//! [`FleetStore`] is that storage. The engine and the live world both
//! own one, built by the same `build_world_core`, so the closed-loop
//! simulator and `airshare-serve` ride the same arenas. The scalar
//! columns (`online`, `positions`, sync state) are plain `Vec`s; the
//! per-host caches and quarantine ledgers are arena-backed structures
//! from `airshare-cache` (see `EntryArena`), indexed by host id.
//!
//! Mutation stays inside the crate (the engine's epoch barrier is the
//! only writer); external callers get read-only column views.

use crate::engine::SyncState;
use airshare_cache::{HostCache, QuarantineLedger};
use airshare_geom::Point;

/// Struct-of-arrays storage for every mobile host's mutable state.
///
/// One instance holds the whole fleet; a host is an index. Columns:
/// online flags, positions, channel-sync scalars, arena-backed caches,
/// and quarantine ledgers. See the module docs for why this is columnar.
pub struct FleetStore {
    /// Which hosts are on the air (churn state).
    pub(crate) online: Vec<bool>,
    /// Host positions at the last epoch boundary (offline hosts keep
    /// their last position; the neighbor grid ignores them).
    pub(crate) positions: Vec<Point>,
    /// Minute of each host's last successful channel access.
    pub(crate) last_sync_min: Vec<f64>,
    /// Whether each host owes a resync (answered through an outage or
    /// just came online).
    pub(crate) needs_resync: Vec<bool>,
    /// Per-host verified-region caches (arena-backed, handle-based).
    pub(crate) caches: Vec<HostCache>,
    /// Per-host quarantine ledgers for misbehaving peers.
    pub(crate) quarantines: Vec<QuarantineLedger>,
}

impl FleetStore {
    /// Fleet size (maximum host id + 1).
    pub fn len(&self) -> usize {
        self.online.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.online.is_empty()
    }

    /// Whether a host is currently online. Out-of-range ids are offline.
    pub fn is_online(&self, host: usize) -> bool {
        self.online.get(host).copied().unwrap_or(false)
    }

    /// The online column.
    pub fn online(&self) -> &[bool] {
        &self.online
    }

    /// The position column (epoch-boundary positions).
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// One host's epoch-boundary position.
    pub fn position(&self, host: usize) -> Point {
        self.positions[host]
    }

    /// One host's cache (read-only; mutation is the engine's job).
    pub fn cache(&self, host: usize) -> &HostCache {
        &self.caches[host]
    }

    /// Minute of a host's last successful channel access.
    pub fn last_sync_min(&self, host: usize) -> f64 {
        self.last_sync_min[host]
    }

    /// Whether a host owes a resync on its next channel access.
    pub fn needs_resync(&self, host: usize) -> bool {
        self.needs_resync[host]
    }

    /// Assembles the `Copy` working value the query path mutates, from
    /// the sync columns.
    pub(crate) fn sync_state(&self, host: usize) -> SyncState {
        SyncState {
            last_sync_min: self.last_sync_min[host],
            needs_resync: self.needs_resync[host],
        }
    }

    /// Scatters a working sync value back into the columns.
    pub(crate) fn set_sync_state(&mut self, host: usize, s: SyncState) {
        self.last_sync_min[host] = s.last_sync_min;
        self.needs_resync[host] = s.needs_resync;
    }
}
