//! Recorded traffic: a seeded workload captured from the closed-loop
//! simulator, replayable against the live service.
//!
//! [`crate::Simulation::run_recording`] produces a [`TrafficTrace`]: the
//! fleet's per-epoch state (positions, online set, churn transitions)
//! plus every query's *inputs* (time, position, heading, fully-sampled
//! [`QuerySpec`]) and its oracle-checked *answer* (POI ids +
//! [`AnswerQuality`]). A replay client feeds the inputs to
//! `airshare-serve` and asserts the service's answers match — the
//! replay-parity contract (DESIGN.md §14).

use airshare_geom::Point;
use airshare_obs::AnswerQuality;

use crate::engine::QuerySpec;

/// One recorded query: everything the service needs to re-pose it, plus
/// the simulator's answer to check against.
#[derive(Clone, Debug, PartialEq)]
pub struct RecordedQuery {
    /// Global event index — doubles as the fault-layer nonce, so a
    /// replayed query sees the same channel-loss and peer-drop coin
    /// flips as the recorded one.
    pub nonce: u64,
    /// The querying host's id.
    pub host: u32,
    /// Query time in simulation minutes.
    pub at_min: f64,
    /// The epoch whose snapshot/grid the query executed against.
    pub epoch: u64,
    /// The host's position at query time.
    pub pos: Point,
    /// The host's heading (unit vector) at query time, if moving.
    pub heading: Option<(f64, f64)>,
    /// The fully-sampled query (window rects are drawn at record time —
    /// the service never samples).
    pub spec: QuerySpec,
    /// Answer-set POI ids, in resolution order.
    pub ids: Vec<u32>,
    /// The answer's oracle-checked quality tier.
    pub quality: AnswerQuality,
    /// Whether the query landed after warm-up (counted by the report).
    pub measured: bool,
}

/// The fleet's state for one epoch, in barrier order: churn applies
/// first, then positions, then the epoch's queries execute.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochRecord {
    /// The epoch number (epochs with no events are skipped, exactly as
    /// the engine skips them).
    pub epoch: u64,
    /// Position *deltas* against the previous recorded epoch: `(host,
    /// new position)` for every host whose position changed. The first
    /// epoch of a trace carries all hosts; replaying the deltas in
    /// epoch order reconstructs every epoch's full position vector
    /// (offline hosts keep their last position; the grid ignores them).
    /// Recording full vectors instead made trace memory scale with
    /// `hosts × epochs` — paused or slow hosts now cost nothing.
    pub moved: Vec<(u32, Point)>,
    /// The online set *after* this epoch's churn applied.
    pub online: Vec<bool>,
    /// Churn transitions at this boundary: `(host, planned_epoch,
    /// came_online)`. `planned_epoch` is the plan's epoch number (it can
    /// trail `epoch` when empty epochs were skipped) and seeds the
    /// restart's sync clock.
    pub churn: Vec<(u32, u64, bool)>,
}

/// A full recorded workload.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrafficTrace {
    /// The master seed the workload was recorded under.
    pub seed: u64,
    /// Fleet size.
    pub hosts: usize,
    /// Epoch length in minutes (the barrier cadence).
    pub epoch_min: f64,
    /// Which hosts are online before the first epoch.
    pub initial_online: Vec<bool>,
    /// Per-epoch fleet state, in execution order.
    pub epochs: Vec<EpochRecord>,
    /// Every query, sorted by nonce (global event order).
    pub queries: Vec<RecordedQuery>,
}

impl TrafficTrace {
    /// Queries that landed after warm-up (the ones the report counts).
    pub fn measured(&self) -> usize {
        self.queries.iter().filter(|q| q.measured).count()
    }
}
