//! Deterministic parallel runtime for the airshare workspace.
//!
//! The ROADMAP north-star is a system that "runs as fast as the hardware
//! allows", but raw threads and spatial simulation mix badly: float
//! accumulation order, RNG draw order, and cache commit order all leak
//! scheduling nondeterminism into results. This crate is the shared
//! answer — a small, dependency-light runtime the simulator and the
//! bench harness both sit on:
//!
//! * [`Parallelism`] — explicit sizing policy with an `AIRSHARE_THREADS`
//!   environment fallback, so one knob controls every `exp_*` binary and
//!   the CI thread matrix.
//! * [`ExecPool`] — a sized worker pool over the vendored `crossbeam`
//!   scoped threads. [`ExecPool::map`] fans a task list out with
//!   work stealing and returns results **in input order**, regardless of
//!   which worker ran what; [`ExecPool::map_with`] additionally threads a
//!   per-worker mutable context (e.g. a shard-local `MetricsRecorder`)
//!   through every task the worker executes.
//! * [`split_seed`] — the seed-splitting hash used to derive independent
//!   per-`(host, epoch)` RNG streams from one master seed, so parallel
//!   shards never share (or race on) a generator.
//!
//! The pool carries only its sizing; workers are scoped threads spawned
//! per call, so borrowed task state needs no `'static` bound and a pool
//! is freely reusable (and `Sync`) across calls. Determinism contract:
//! for a pure `f`, `pool.map(tasks, f)` returns the same vector for every
//! thread count, including 1 — scheduling affects only wall-clock time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::Mutex;

/// Environment variable consulted by [`Parallelism::from_env`] (and hence
/// [`ExecPool::from_env`]) for an explicit thread count.
pub const THREADS_ENV: &str = "AIRSHARE_THREADS";

/// Worker-pool sizing policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// Use the hardware's available parallelism (falling back to 1 when
    /// it cannot be queried).
    #[default]
    Auto,
    /// Use exactly this many workers; `Fixed(0)` is treated as 1.
    Fixed(usize),
}

impl Parallelism {
    /// Reads `AIRSHARE_THREADS`. A positive integer means
    /// [`Parallelism::Fixed`]; absent, empty, zero, or unparseable means
    /// [`Parallelism::Auto`].
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV) {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n > 0 => Parallelism::Fixed(n),
                _ => Parallelism::Auto,
            },
            Err(_) => Parallelism::Auto,
        }
    }

    /// Resolves the policy to a concrete worker count (always ≥ 1).
    #[must_use]
    pub fn resolve(self) -> usize {
        match self {
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Parallelism::Fixed(n) => n.max(1),
        }
    }
}

/// A deterministic worker pool.
///
/// The pool itself is just the resolved worker count — cheap to build,
/// `Copy`-free but `Clone`, and `Sync` so one pool can be shared across
/// a whole experiment harness. Each `map`/`map_with` call spawns scoped
/// workers, distributes tasks round-robin into per-worker queues, lets
/// idle workers steal from the back of busier queues, and scatters
/// results back into input order before returning.
#[derive(Clone, Debug)]
pub struct ExecPool {
    threads: usize,
}

impl ExecPool {
    /// Builds a pool from an explicit sizing policy.
    #[must_use]
    pub fn new(parallelism: Parallelism) -> Self {
        ExecPool {
            threads: parallelism.resolve(),
        }
    }

    /// Builds a pool with exactly `threads` workers (0 is treated as 1).
    #[must_use]
    pub fn fixed(threads: usize) -> Self {
        ExecPool::new(Parallelism::Fixed(threads))
    }

    /// Builds a pool sized by `AIRSHARE_THREADS`, falling back to the
    /// hardware's available parallelism.
    #[must_use]
    pub fn from_env() -> Self {
        ExecPool::new(Parallelism::from_env())
    }

    /// A single-worker pool: every `map` runs inline on the caller's
    /// thread. Useful as the deterministic baseline in tests.
    #[must_use]
    pub fn sequential() -> Self {
        ExecPool::fixed(1)
    }

    /// The number of workers this pool schedules onto.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` over every task, in parallel, returning results in input
    /// order. `f` receives the task's input index alongside the task.
    pub fn map<T, R, F>(&self, tasks: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let mut units = vec![(); self.threads];
        self.map_with(&mut units, tasks, |(), i, t| f(i, t))
    }

    /// Like [`ExecPool::map`], but each worker owns one of the supplied
    /// mutable contexts for the duration of the call — the idiom for
    /// shard-local accumulators that are merged after the barrier.
    ///
    /// At most `min(threads, ctxs.len())` workers run; a context is never
    /// shared between two live workers. Results come back in input order.
    ///
    /// # Panics
    /// Panics if `ctxs` is empty while `tasks` is not, or if a task
    /// panics (the worker's panic propagates).
    pub fn map_with<C, T, R, F>(&self, ctxs: &mut [C], tasks: Vec<T>, f: F) -> Vec<R>
    where
        C: Send,
        T: Send,
        R: Send,
        F: Fn(&mut C, usize, T) -> R + Sync,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        assert!(
            !ctxs.is_empty(),
            "ExecPool::map_with needs at least one worker context"
        );
        let workers = self.threads.min(ctxs.len()).min(n);
        if workers <= 1 {
            let ctx = &mut ctxs[0];
            return tasks
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(ctx, i, t))
                .collect();
        }

        // Round-robin distribution seeds locality; stealing from the
        // *back* of a victim's queue keeps owners and thieves off the
        // same end.
        let mut queues: Vec<Mutex<VecDeque<(usize, T)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, t) in tasks.into_iter().enumerate() {
            queues[i % workers].get_mut().unwrap().push_back((i, t));
        }
        let queues = &queues;
        let f = &f;

        let run = move |w: usize, ctx: &mut C| {
            let mut out = Vec::new();
            loop {
                let mut job = queues[w].lock().unwrap().pop_front();
                if job.is_none() {
                    for d in 1..workers {
                        let victim = (w + d) % workers;
                        job = queues[victim].lock().unwrap().pop_back();
                        if job.is_some() {
                            break;
                        }
                    }
                }
                match job {
                    Some((i, t)) => out.push((i, f(ctx, i, t))),
                    None => break,
                }
            }
            out
        };

        let pairs: Vec<(usize, R)> = crossbeam::scope(|s| {
            let handles: Vec<_> = ctxs[..workers]
                .iter_mut()
                .enumerate()
                .map(|(w, ctx)| s.spawn(move |_| run(w, ctx)))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("exec worker panicked"))
                .collect()
        })
        .expect("exec scope failed");

        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in pairs {
            debug_assert!(results[i].is_none(), "task {i} ran twice");
            results[i] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("task produced no result"))
            .collect()
    }

    /// Runs two independent closures, concurrently when the pool has
    /// more than one worker, and returns both results. The idiom for
    /// build-time work with exactly two coarse halves (e.g. the air
    /// index and the validation oracle), where `map`'s per-task
    /// machinery would be overhead.
    ///
    /// # Panics
    /// Propagates a panic from either closure.
    pub fn join<RA, RB>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        if self.threads <= 1 {
            return (a(), b());
        }
        crossbeam::scope(|s| {
            let hb = s.spawn(|_| b());
            let ra = a();
            (ra, hb.join().expect("exec join worker panicked"))
        })
        .expect("exec scope failed")
    }
}

impl Default for ExecPool {
    /// Equivalent to [`ExecPool::from_env`].
    fn default() -> Self {
        ExecPool::from_env()
    }
}

/// SplitMix64 finalizer: a bijective avalanche mix.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent RNG seed for one `(host, epoch)` stream from a
/// master seed.
///
/// Two chained SplitMix64 rounds, each folding in one coordinate offset
/// by a distinct odd constant; the composition of bijective mixes keeps
/// distinct `(seed, host, epoch)` triples from colliding in practice and
/// decorrelates neighboring hosts and consecutive epochs. The function is
/// pure, so a shard can derive its streams without any shared generator —
/// the root of the "bit-identical for any thread count" guarantee.
#[must_use]
pub fn split_seed(master: u64, host: u64, epoch: u64) -> u64 {
    let s = mix64(master ^ host.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    mix64(s ^ epoch.wrapping_mul(0xD1B5_4A32_D192_ED03))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fixed_zero_clamps_to_one() {
        assert_eq!(ExecPool::fixed(0).threads(), 1);
        assert_eq!(Parallelism::Fixed(0).resolve(), 1);
    }

    #[test]
    fn map_returns_results_in_input_order() {
        let pool = ExecPool::fixed(4);
        let tasks: Vec<u64> = (0..100).collect();
        let out = pool.map(tasks, |i, t| {
            assert_eq!(i as u64, t);
            t * t
        });
        assert_eq!(out, (0..100u64).map(|t| t * t).collect::<Vec<_>>());
    }

    #[test]
    fn map_is_identical_across_thread_counts() {
        let tasks: Vec<u64> = (0..257).collect();
        let reference = ExecPool::sequential().map(tasks.clone(), |i, t| split_seed(t, i as u64, 7));
        for threads in [2, 3, 4, 7, 16] {
            let got =
                ExecPool::fixed(threads).map(tasks.clone(), |i, t| split_seed(t, i as u64, 7));
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn stealing_drains_uneven_queues() {
        // Worker 0's round-robin share carries all the heavy tasks; the
        // pool still finishes and keeps order.
        let pool = ExecPool::fixed(4);
        let tasks: Vec<u32> = (0..64).collect();
        let out = pool.map(tasks, |_, t| {
            if t % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            t + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn map_with_gives_each_worker_a_private_context() {
        let pool = ExecPool::fixed(3);
        let mut tallies = vec![0usize; pool.threads()];
        let out = pool.map_with(&mut tallies, (0..50).collect::<Vec<usize>>(), |tally, i, t| {
            *tally += 1;
            assert_eq!(i, t);
            t
        });
        assert_eq!(out, (0..50).collect::<Vec<_>>());
        // Every task was tallied exactly once across the contexts.
        assert_eq!(tallies.iter().sum::<usize>(), 50);
    }

    #[test]
    fn map_with_runs_inline_on_one_context() {
        let main_thread = std::thread::current().id();
        let hits = AtomicUsize::new(0);
        let mut ctx = [0u8];
        ExecPool::fixed(8).map_with(&mut ctx, vec![1, 2, 3], |_, _, _| {
            assert_eq!(std::thread::current().id(), main_thread);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn empty_task_list_is_a_no_op() {
        let pool = ExecPool::fixed(4);
        let out: Vec<u32> = pool.map(Vec::<u32>::new(), |_, t| t);
        assert!(out.is_empty());
        let out: Vec<u32> = pool.map_with(&mut [], Vec::<u32>::new(), |(), _, t| t);
        assert!(out.is_empty());
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = ExecPool::fixed(4).join(|| 6 * 7, || "ok".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
        // Sequential pools run both inline.
        let (a, b) = ExecPool::sequential().join(|| vec![1, 2], || 9u8);
        assert_eq!(a, vec![1, 2]);
        assert_eq!(b, 9);
    }

    #[test]
    fn join_can_borrow_local_state() {
        let xs: Vec<u64> = (0..1000).collect();
        let (sum, max) = ExecPool::fixed(2).join(
            || xs.iter().sum::<u64>(),
            || xs.iter().copied().max().unwrap_or(0),
        );
        assert_eq!(sum, 499_500);
        assert_eq!(max, 999);
    }

    #[test]
    fn split_seed_separates_streams() {
        let base = split_seed(42, 0, 0);
        assert_ne!(base, split_seed(42, 1, 0), "hosts must not share streams");
        assert_ne!(base, split_seed(42, 0, 1), "epochs must not share streams");
        assert_ne!(base, split_seed(43, 0, 0), "seeds must not share streams");
        // Deterministic: same triple, same stream.
        assert_eq!(split_seed(42, 17, 3), split_seed(42, 17, 3));
        // No pairwise collisions over a small host×epoch grid.
        let mut seen = std::collections::HashSet::new();
        for host in 0..64u64 {
            for epoch in 0..64u64 {
                assert!(seen.insert(split_seed(42, host, epoch)));
            }
        }
    }

    #[test]
    fn env_fallback_parses_thread_counts() {
        // Sole test touching the env var, to avoid cross-test races.
        std::env::set_var(THREADS_ENV, "6");
        assert_eq!(Parallelism::from_env(), Parallelism::Fixed(6));
        assert_eq!(ExecPool::from_env().threads(), 6);
        std::env::set_var(THREADS_ENV, "0");
        assert_eq!(Parallelism::from_env(), Parallelism::Auto);
        std::env::set_var(THREADS_ENV, "not a number");
        assert_eq!(Parallelism::from_env(), Parallelism::Auto);
        std::env::remove_var(THREADS_ENV);
        assert_eq!(Parallelism::from_env(), Parallelism::Auto);
        assert!(ExecPool::from_env().threads() >= 1);
    }
}
