//! The `airshare-serve` binary: start the base-station service, drive a
//! recorded workload through it, and report replay parity.
//!
//! This is the service smoke entry point CI runs: it records a seeded
//! workload with the deterministic simulator, starts a lockstep service
//! over the same world, replays the workload through the full stack
//! (sessions, admission, backpressure, barriers), drains, and exits
//! nonzero unless every answer matched and the drain was clean.
//!
//! ```text
//! airshare-serve [--backend hilbert|rtree] [--kind knn|window]
//!                [--seed N] [--scale F] [--queue N] [--threads N]
//! ```
//!
//! The backend can also come from `AIRSHARE_BACKEND`; CLI wins.

use airshare_serve::{replay, ServeConfig, Service};
use airshare_sim::{params, BackendKind, QueryKind, SimConfig, Simulation};

fn fail(msg: &str) -> ! {
    eprintln!("airshare-serve: {msg}");
    std::process::exit(2);
}

struct Args {
    backend: BackendKind,
    kind: QueryKind,
    seed: u64,
    scale: f64,
    queue: usize,
    threads: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        backend: match std::env::var("AIRSHARE_BACKEND") {
            Ok(v) if !v.trim().is_empty() => v
                .parse()
                .unwrap_or_else(|e| fail(&format!("AIRSHARE_BACKEND: {e}"))),
            _ => BackendKind::Hilbert,
        },
        kind: QueryKind::Knn,
        seed: 42,
        scale: 0.005,
        queue: 256,
        threads: 4,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--backend" => {
                args.backend = val()
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("--backend: {e}")));
            }
            "--kind" => {
                args.kind = match val().trim().to_ascii_lowercase().as_str() {
                    "knn" => QueryKind::Knn,
                    "window" => QueryKind::Window,
                    other => fail(&format!("--kind: unknown kind {other:?}")),
                };
            }
            "--seed" => {
                args.seed = val()
                    .parse()
                    .unwrap_or_else(|_| fail("--seed: not a u64"));
            }
            "--scale" => {
                args.scale = val()
                    .parse()
                    .unwrap_or_else(|_| fail("--scale: not a float"));
            }
            "--queue" => {
                args.queue = val()
                    .parse()
                    .unwrap_or_else(|_| fail("--queue: not a usize"));
            }
            "--threads" => {
                args.threads = val()
                    .parse()
                    .unwrap_or_else(|_| fail("--threads: not a usize"));
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    args
}

fn main() {
    let args = parse_args();

    let mut p = params::la_city().scaled(args.scale);
    p.cache_size = 30;
    let mut cfg = SimConfig::paper_defaults(p, args.kind, args.seed);
    cfg.warmup_min = 5.0;
    cfg.measure_min = 10.0;
    cfg.validate = true;
    cfg.hilbert_order = 6;
    cfg.backend = args.backend;

    eprintln!(
        "recording workload: backend={} kind={:?} seed={} hosts={}",
        args.backend, args.kind, args.seed, cfg.params.mh_number
    );
    let (sim_report, trace) = Simulation::try_new(cfg.clone())
        .unwrap_or_else(|e| fail(&format!("bad config: {e}")))
        .run_recording();
    eprintln!(
        "recorded {} queries over {} epochs ({} measured)",
        trace.queries.len(),
        trace.epochs.len(),
        trace.measured()
    );

    let mut serve_cfg = ServeConfig::lockstep(cfg);
    serve_cfg.queue_capacity = args.queue;
    serve_cfg.threads = args.threads;
    let service =
        Service::start(serve_cfg).unwrap_or_else(|e| fail(&format!("service start: {e}")));
    let handle = service.handle();

    let outcome =
        replay(&handle, &trace).unwrap_or_else(|e| fail(&format!("replay aborted: {e}")));
    let report = service.drain();

    let report_parity = report.report == sim_report;
    println!(
        "{{\"backend\":\"{}\",\"queries\":{},\"answered\":{},\"id_mismatches\":{},\
         \"quality_mismatches\":{},\"lost\":{},\"backpressure_retries\":{},\
         \"accepted\":{},\"rejected\":{},\"epochs_committed\":{},\"drains\":{},\
         \"report_parity\":{}}}",
        args.backend,
        outcome.submitted,
        outcome.answered,
        outcome.id_mismatches,
        outcome.quality_mismatches,
        outcome.lost,
        outcome.backpressure_retries,
        report.accepted,
        report.rejected,
        report.metrics.epochs_committed_total,
        report.metrics.drains_total,
        report_parity,
    );

    if !outcome.is_clean() {
        eprintln!("replay parity FAILED: {outcome:?}");
        std::process::exit(1);
    }
    if !report_parity {
        eprintln!("service report diverged from the recording run's report");
        std::process::exit(1);
    }
    if report.metrics.drains_total != 1 {
        eprintln!("drain did not complete cleanly: {:?}", report.metrics);
        std::process::exit(1);
    }
    eprintln!("replay parity OK; service drained cleanly");
}
