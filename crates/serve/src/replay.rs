//! The replay client: drives a recorded simulator workload against a
//! running lockstep service and checks every answer.
//!
//! This is the service half of the replay-parity contract (DESIGN.md
//! §14): `crates/sim` proves record → `LiveWorld` parity at the engine
//! level; this module proves the *service* — sessions, admission queue,
//! barriers, reply channels — delivers the same inputs in the same
//! order, by asserting the answers (ids + `AnswerQuality`) coming back
//! over the wire equal the recording, per nonce.

use crate::{QueryRequest, QueryTag, ServeError, ServiceHandle};
use airshare_sim::{QueryAnswer, TrafficTrace};
use std::sync::mpsc;
use std::time::Duration;

/// How long to wait for any single answer before declaring the replay
/// wedged (generous: batches execute as soon as their fence lands).
const ANSWER_TIMEOUT: Duration = Duration::from_secs(30);

/// What a replay run observed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Queries submitted (every recorded query, measured or not).
    pub submitted: u64,
    /// Answers received before timeout.
    pub answered: u64,
    /// Submissions that bounced off a full queue and were retried —
    /// nonzero exercises the backpressure path, never a failure.
    pub backpressure_retries: u64,
    /// Answers whose POI id set diverged from the recording.
    pub id_mismatches: u64,
    /// Answers whose [`airshare_sim::AnswerQuality`] diverged.
    pub quality_mismatches: u64,
    /// Answers that never arrived.
    pub lost: u64,
}

impl ReplayReport {
    /// A clean replay: everything answered, nothing diverged.
    pub fn is_clean(&self) -> bool {
        self.submitted == self.answered
            && self.id_mismatches == 0
            && self.quality_mismatches == 0
            && self.lost == 0
    }
}

/// Replays a recorded workload against a lockstep service and verifies
/// every answer against the recording.
///
/// Drives the service in the trace's barrier order: initial sessions,
/// then per epoch — churn, position updates, the epoch's queries, and
/// the fence that releases the barrier. Submissions that hit
/// backpressure are retried (counted). Answers are collected after the
/// final fence; the caller still owns the service and should `drain` it
/// afterwards.
pub fn replay(handle: &ServiceHandle, trace: &TrafficTrace) -> Result<ReplayReport, ServeError> {
    let mut report = ReplayReport::default();
    let mut rxs: Vec<(usize, mpsc::Receiver<QueryAnswer>)> = Vec::new();

    for (host, &up) in trace.initial_online.iter().enumerate() {
        if up {
            handle.register(host, None)?;
        }
    }

    for er in &trace.epochs {
        for &(host, planned_epoch, up) in &er.churn {
            if up {
                handle.reconnect(host as usize, planned_epoch, Some(er.epoch))?;
            } else {
                handle.disconnect(host as usize, planned_epoch, Some(er.epoch))?;
            }
        }
        // Traces carry position deltas; the live world keeps each
        // host's last position, so applying them in epoch order
        // reconstructs the full vector.
        for &(host, pos) in &er.moved {
            handle.update_position(host as usize, pos, Some(er.epoch))?;
        }
        for (qi, q) in trace.queries.iter().enumerate() {
            if q.epoch != er.epoch {
                continue;
            }
            let req = QueryRequest {
                host: q.host as usize,
                pos: q.pos,
                heading: q.heading,
                spec: q.spec,
                tag: Some(QueryTag {
                    nonce: q.nonce,
                    at_min: q.at_min,
                    epoch: q.epoch,
                }),
            };
            // Backpressure loop: a bounced submission waits for the
            // scheduler to work the queue down, then retries.
            let rx = loop {
                match handle.submit(req.clone()) {
                    Ok(rx) => break rx,
                    Err(ServeError::QueueFull { .. }) => {
                        report.backpressure_retries += 1;
                        std::thread::sleep(Duration::from_micros(500));
                    }
                    Err(e) => return Err(e),
                }
            };
            report.submitted += 1;
            rxs.push((qi, rx));
        }
        handle.fence(er.epoch);
    }

    for (qi, rx) in rxs {
        let want = &trace.queries[qi];
        match rx.recv_timeout(ANSWER_TIMEOUT) {
            Ok(got) => {
                report.answered += 1;
                if got.ids != want.ids {
                    report.id_mismatches += 1;
                }
                if got.quality != want.quality {
                    report.quality_mismatches += 1;
                }
            }
            Err(_) => report.lost += 1,
        }
    }
    Ok(report)
}
