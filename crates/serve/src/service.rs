//! The long-running base-station service.
//!
//! One scheduler thread owns the [`LiveWorld`] and ticks the `(1, m)`
//! broadcast cycle in scaled wall time (or client-fenced lockstep, the
//! replay mode). Clients talk to it through a cloneable
//! [`ServiceHandle`]: session control (register / position update /
//! disconnect), query submission, and — in lockstep — epoch fences.
//!
//! The data path is the batched-admission pipeline:
//!
//! 1. `submit` pushes into a **bounded** queue, or bounces with
//!    [`ServeError::QueueFull`] and a retry-after hint (backpressure).
//! 2. The scheduler admits queued queries into the open epoch batch at
//!    a budgeted rate per broadcast tick, stamping nonce + timestamp.
//! 3. At each epoch barrier the batch executes on the `airshare-exec`
//!    pool through the *same* resolution path as the simulator, and
//!    answers flow back over per-query channels.
//!
//! Every service event — sessions, admissions, rejections, epoch
//! commits, the final drain — lands on the threaded [`Recorder`]s, and
//! `drain` returns the merged [`MetricsSnapshot`] plus the same
//! [`SimReport`] a simulation run produces.

use crate::{Pacing, ServeConfig, ServeError};
use airshare_broadcast::QueryScratch;
use airshare_exec::ExecPool;
use airshare_geom::Point;
use airshare_obs::{MetricsRecorder, MetricsSnapshot, Recorder, TraceEvent};
use airshare_sim::{ConfigError, LiveQuery, LiveWorld, QueryAnswer, QuerySpec, SimReport};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

/// How long the scheduler naps when it finds nothing to do.
const IDLE_NAP: Duration = Duration::from_micros(200);

/// Replay pinning for one submission: the recorded nonce (which drives
/// the fault layer's coin flips), timestamp, and target epoch. Required
/// under [`Pacing::Lockstep`]; rejected under [`Pacing::Scaled`], where
/// the scheduler stamps all three at admission.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryTag {
    /// Global order nonce (drives deterministic fault decisions).
    pub nonce: u64,
    /// Query time in simulated minutes.
    pub at_min: f64,
    /// The epoch whose batch the query belongs to.
    pub epoch: u64,
}

/// One query submission.
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// The querying session's host id.
    pub host: usize,
    /// The host's position at query time.
    pub pos: Point,
    /// The host's heading (unit vector), if known.
    pub heading: Option<(f64, f64)>,
    /// What the query asks.
    pub spec: QuerySpec,
    /// Replay pinning (see [`QueryTag`]).
    pub tag: Option<QueryTag>,
}

/// Session and fleet-state control, applied at epoch barriers.
enum Command {
    Register { host: usize },
    Reconnect { host: usize, planned_epoch: u64 },
    Disconnect { host: usize, planned_epoch: u64 },
    UpdatePosition { host: usize, pos: Point },
}

/// A control message staged for a barrier: `barrier: None` applies at
/// the next committed barrier, `Some(e)` at epoch `e`'s (lockstep).
struct ControlMsg {
    barrier: Option<u64>,
    cmd: Command,
}

/// An admitted-or-queued query with its reply channel.
struct Pending {
    host: usize,
    pos: Point,
    heading: Option<(f64, f64)>,
    spec: QuerySpec,
    tag: Option<QueryTag>,
    reply: mpsc::Sender<QueryAnswer>,
}

/// State shared between client handles and the scheduler thread.
struct Shared {
    state: AtomicU8,
    /// Lockstep fence: `f` means every epoch `< f` is fully submitted.
    fence: AtomicU64,
    queue: Mutex<VecDeque<Pending>>,
    control: Mutex<Vec<ControlMsg>>,
    /// Client-facing session view (the world's online set converges to
    /// this at barriers).
    sessions: Mutex<Vec<bool>>,
    /// Client-side rejection metrics (merged into the final snapshot).
    client_rec: Mutex<MetricsRecorder>,
    accepted: AtomicU64,
    rejected: AtomicU64,
    queue_capacity: usize,
    admit_per_tick: usize,
    lockstep: bool,
    capacity_hosts: usize,
}

impl Shared {
    fn retry_after_ticks(&self) -> u64 {
        (self.queue_capacity as u64 / self.admit_per_tick.max(1) as u64).max(1)
    }
}

/// Everything a drained service hands back.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// The world's accumulated report — the same [`SimReport`] a
    /// simulation run produces, enabling field-for-field replay parity.
    pub report: SimReport,
    /// Merged observability: scheduler + worker + client recorders.
    pub metrics: MetricsSnapshot,
    /// Submissions that entered the admission queue.
    pub accepted: u64,
    /// Submissions bounced by backpressure.
    pub rejected: u64,
}

/// A cloneable client handle to a running [`Service`].
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

impl ServiceHandle {
    fn check_open(&self) -> Result<(), ServeError> {
        match self.shared.state.load(Ordering::Acquire) {
            RUNNING => Ok(()),
            DRAINING => Err(ServeError::Draining),
            _ => Err(ServeError::Stopped),
        }
    }

    fn check_host(&self, host: usize) -> Result<(), ServeError> {
        if host < self.shared.capacity_hosts {
            Ok(())
        } else {
            Err(ServeError::HostOutOfRange {
                host,
                capacity: self.shared.capacity_hosts,
            })
        }
    }

    fn push_cmd(&self, barrier: Option<u64>, cmd: Command) {
        self.shared
            .control
            .lock()
            .unwrap()
            .push(ControlMsg { barrier, cmd });
    }

    /// Opens a session for a host joining fresh (cold cache, pristine
    /// sync clock). Takes effect at the given barrier epoch (`None` =
    /// the next one committed).
    pub fn register(&self, host: usize, barrier: Option<u64>) -> Result<(), ServeError> {
        self.check_open()?;
        self.check_host(host)?;
        self.shared.sessions.lock().unwrap()[host] = true;
        self.push_cmd(barrier, Command::Register { host });
        Ok(())
    }

    /// Reopens a session after a crash: the host comes back cold at
    /// `planned_epoch`, owing a resync (the simulator's restart).
    pub fn reconnect(
        &self,
        host: usize,
        planned_epoch: u64,
        barrier: Option<u64>,
    ) -> Result<(), ServeError> {
        self.check_open()?;
        self.check_host(host)?;
        self.shared.sessions.lock().unwrap()[host] = true;
        self.push_cmd(barrier, Command::Reconnect { host, planned_epoch });
        Ok(())
    }

    /// Closes a session as a crash: volatile state (cache, quarantine
    /// memory) is wiped at the barrier.
    pub fn disconnect(
        &self,
        host: usize,
        planned_epoch: u64,
        barrier: Option<u64>,
    ) -> Result<(), ServeError> {
        self.check_open()?;
        self.check_host(host)?;
        self.shared.sessions.lock().unwrap()[host] = false;
        self.push_cmd(barrier, Command::Disconnect { host, planned_epoch });
        Ok(())
    }

    /// Reports a host's position (used for the barrier's neighbor grid).
    pub fn update_position(
        &self,
        host: usize,
        pos: Point,
        barrier: Option<u64>,
    ) -> Result<(), ServeError> {
        self.check_open()?;
        self.check_host(host)?;
        self.push_cmd(barrier, Command::UpdatePosition { host, pos });
        Ok(())
    }

    /// Submits a query. On admission returns the channel the answer
    /// will arrive on; bounces with [`ServeError::QueueFull`] +
    /// retry-after when the bounded queue is full (backpressure).
    pub fn submit(
        &self,
        req: QueryRequest,
    ) -> Result<mpsc::Receiver<QueryAnswer>, ServeError> {
        self.check_open()?;
        self.check_host(req.host)?;
        if !self.shared.sessions.lock().unwrap()[req.host] {
            return Err(ServeError::UnknownSession { host: req.host });
        }
        if req.tag.is_some() != self.shared.lockstep {
            return Err(ServeError::TagMismatch);
        }
        let mut queue = self.shared.queue.lock().unwrap();
        if queue.len() >= self.shared.queue_capacity {
            drop(queue);
            let retry_after_ticks = self.shared.retry_after_ticks();
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            self.shared
                .client_rec
                .lock()
                .unwrap()
                .record(TraceEvent::QueryRejected { retry_after_ticks });
            return Err(ServeError::QueueFull { retry_after_ticks });
        }
        let (tx, rx) = mpsc::channel();
        queue.push_back(Pending {
            host: req.host,
            pos: req.pos,
            heading: req.heading,
            spec: req.spec,
            tag: req.tag,
            reply: tx,
        });
        drop(queue);
        self.shared.accepted.fetch_add(1, Ordering::Relaxed);
        Ok(rx)
    }

    /// Lockstep only: declares every epoch `<= epoch` fully submitted,
    /// releasing those barriers. Monotonic; later fences only extend it.
    pub fn fence(&self, epoch: u64) {
        self.shared.fence.fetch_max(epoch + 1, Ordering::Release);
    }
}

/// A running service: the scheduler thread plus its client handle.
pub struct Service {
    shared: Arc<Shared>,
    worker: std::thread::JoinHandle<ServiceReport>,
}

impl Service {
    /// Builds the world from `cfg.sim` (identical draws to the
    /// simulator) and starts the scheduler thread.
    pub fn start(cfg: ServeConfig) -> Result<Service, ConfigError> {
        let world = LiveWorld::try_new(cfg.sim.clone())?;
        let shared = Arc::new(Shared {
            state: AtomicU8::new(RUNNING),
            fence: AtomicU64::new(0),
            queue: Mutex::new(VecDeque::new()),
            control: Mutex::new(Vec::new()),
            sessions: Mutex::new(vec![false; world.hosts()]),
            client_rec: Mutex::new(MetricsRecorder::new()),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            queue_capacity: cfg.queue_capacity.max(1),
            admit_per_tick: cfg.admit_per_tick.max(1),
            lockstep: matches!(cfg.pacing, Pacing::Lockstep),
            capacity_hosts: world.hosts(),
        });
        let sched_shared = Arc::clone(&shared);
        let worker = std::thread::spawn(move || {
            let mut s = Scheduler::new(world, cfg, sched_shared);
            s.run()
        });
        Ok(Service { shared, worker })
    }

    /// A cloneable client handle.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Graceful drain: stop admitting, flush every pending barrier and
    /// batch (ignoring the clock and fences), deliver all replies, stop
    /// the scheduler, and return the merged report.
    pub fn drain(self) -> ServiceReport {
        self.shared.state.store(DRAINING, Ordering::Release);
        let mut out = self
            .worker
            .join()
            .expect("service scheduler thread panicked");
        let client = self.shared.client_rec.lock().unwrap().snapshot();
        out.metrics.merge(&client);
        out.accepted = self.shared.accepted.load(Ordering::Relaxed);
        out.rejected = self.shared.rejected.load(Ordering::Relaxed);
        out
    }
}

/// The scheduler thread's state.
struct Scheduler {
    world: LiveWorld,
    pool: ExecPool,
    ctxs: Vec<(MetricsRecorder, QueryScratch)>,
    rec: MetricsRecorder,
    shared: Arc<Shared>,
    pacing: Pacing,
    epoch_min: f64,
    ticks_per_min: f64,
    start: Instant,
    /// Lockstep staging: queries keyed by their tag's target epoch.
    staged: BTreeMap<u64, Vec<Pending>>,
    /// Staged control messages, in submission order.
    cmds: Vec<ControlMsg>,
    /// Scaled mode: the open epoch's admitted-but-unexecuted queries.
    open_batch: Vec<Pending>,
    /// Scaled mode: the epoch whose grid is live.
    current_epoch: Option<u64>,
    /// Scaled mode: queries executed in the current epoch so far.
    epoch_executed: u32,
    /// Scaled mode: next nonce to stamp.
    nonce: u64,
    /// Scaled mode: fractional admission budget.
    budget: f64,
    last_tick: f64,
}

impl Scheduler {
    fn new(world: LiveWorld, cfg: ServeConfig, shared: Arc<Shared>) -> Scheduler {
        let threads = cfg.threads.max(1);
        Scheduler {
            world,
            pool: ExecPool::fixed(threads),
            ctxs: (0..threads)
                .map(|_| (MetricsRecorder::new(), QueryScratch::new()))
                .collect(),
            rec: MetricsRecorder::new(),
            shared,
            pacing: cfg.pacing,
            epoch_min: cfg.sim.epoch_min,
            ticks_per_min: cfg.sim.ticks_per_min as f64,
            start: Instant::now(),
            staged: BTreeMap::new(),
            cmds: Vec::new(),
            open_batch: Vec::new(),
            current_epoch: None,
            epoch_executed: 0,
            nonce: 0,
            budget: 0.0,
            last_tick: 0.0,
        }
    }

    fn run(&mut self) -> ServiceReport {
        loop {
            let draining = self.shared.state.load(Ordering::Acquire) == DRAINING;
            match self.pacing {
                Pacing::Lockstep => {
                    if self.step_lockstep(draining) {
                        break;
                    }
                }
                Pacing::Scaled(speedup) => {
                    if self.step_scaled(speedup, draining) {
                        break;
                    }
                }
            }
        }
        self.shared.state.store(STOPPED, Ordering::Release);
        for (r, _) in &self.ctxs {
            self.rec.merge(r);
        }
        ServiceReport {
            report: self.world.report().clone(),
            metrics: self.rec.snapshot(),
            accepted: 0,
            rejected: 0,
        }
    }

    /// Moves every queued control message and query into staging,
    /// recording admissions. Returns how many queries moved.
    fn drain_inbox(&mut self) -> usize {
        self.cmds.extend(std::mem::take(&mut *self.shared.control.lock().unwrap()));
        let popped: Vec<Pending> = self.shared.queue.lock().unwrap().drain(..).collect();
        let n = popped.len();
        for (i, p) in popped.into_iter().enumerate() {
            self.rec.record(TraceEvent::QueryAdmitted {
                depth: (n - i - 1) as u32,
            });
            let epoch = p.tag.expect("lockstep submissions are tagged").epoch;
            self.staged.entry(epoch).or_default().push(p);
        }
        n
    }

    /// Applies staged control with barrier `None` or `<= upto`, in
    /// submission order.
    fn apply_cmds(&mut self, upto: u64) {
        let staged = std::mem::take(&mut self.cmds);
        for msg in staged {
            match msg.barrier {
                Some(e) if e > upto => self.cmds.push(msg),
                _ => self.apply(msg.cmd),
            }
        }
    }

    fn apply(&mut self, cmd: Command) {
        match cmd {
            Command::Register { host } => {
                self.world.connect(host);
                self.rec
                    .record(TraceEvent::SessionRegistered { host: host as u32 });
            }
            Command::Reconnect { host, planned_epoch } => {
                self.world.reconnect(host, planned_epoch, &mut self.rec);
                self.rec
                    .record(TraceEvent::SessionRegistered { host: host as u32 });
            }
            Command::Disconnect { host, planned_epoch } => {
                self.world.disconnect(host, planned_epoch, &mut self.rec);
                self.rec
                    .record(TraceEvent::SessionClosed { host: host as u32 });
            }
            Command::UpdatePosition { host, pos } => {
                self.world.update_position(host, pos);
            }
        }
    }

    /// Executes a batch against the current grid and replies.
    fn execute(&mut self, batch: Vec<Pending>) {
        if batch.is_empty() {
            return;
        }
        let mut replies: BTreeMap<u64, mpsc::Sender<QueryAnswer>> = BTreeMap::new();
        let mut queries = Vec::with_capacity(batch.len());
        for p in batch {
            let tag = p.tag.expect("executed queries carry a resolved tag");
            replies.insert(tag.nonce, p.reply);
            queries.push(LiveQuery {
                nonce: tag.nonce,
                host: p.host,
                at_min: tag.at_min,
                pos: p.pos,
                heading: p.heading,
                spec: p.spec,
            });
        }
        let answers = self.world.execute_epoch(queries, &self.pool, &mut self.ctxs);
        for a in answers {
            if let Some(tx) = replies.remove(&a.nonce) {
                // A client that dropped its receiver just forfeits the
                // answer; the world state advanced either way.
                let _ = tx.send(a);
            }
        }
    }

    /// One lockstep iteration: commit every epoch the fence (or drain)
    /// has released. Returns `true` when the service is done.
    fn step_lockstep(&mut self, draining: bool) -> bool {
        // Fence before inbox: everything submitted before the client's
        // fence call is visible to the pop below, so a released epoch
        // is never committed with a partial batch.
        let fence = self.shared.fence.load(Ordering::Acquire);
        let moved = self.drain_inbox();
        let pending_at_drain = if draining {
            self.staged.values().map(Vec::len).sum::<usize>() as u32
        } else {
            0
        };

        let mut ready: BTreeSet<u64> = BTreeSet::new();
        for &e in self.staged.keys() {
            if draining || e < fence {
                ready.insert(e);
            }
        }
        for msg in &self.cmds {
            if let Some(e) = msg.barrier {
                if draining || e < fence {
                    ready.insert(e);
                }
            }
        }
        let progressed = !ready.is_empty();
        for e in ready {
            self.apply_cmds(e);
            self.world.begin_epoch(e);
            let mut batch = self.staged.remove(&e).unwrap_or_default();
            batch.sort_by_key(|p| p.tag.expect("lockstep tags checked at submit").nonce);
            self.rec.record(TraceEvent::EpochCommitted {
                epoch: e,
                batch: batch.len() as u32,
            });
            self.execute(batch);
        }

        if draining {
            // Un-fenced commands (barrier beyond anything staged) are
            // dropped with the drain; queries were all flushed above.
            self.rec.record(TraceEvent::ServiceDrained {
                pending: pending_at_drain,
            });
            return true;
        }
        if moved == 0 && !progressed {
            std::thread::park_timeout(IDLE_NAP);
        }
        false
    }

    /// One scaled-time iteration: commit barriers the clock crossed,
    /// admit on budget, execute the open sub-batch. Returns `true` when
    /// the service is done.
    fn step_scaled(&mut self, speedup: f64, draining: bool) -> bool {
        let now_min = self.start.elapsed().as_secs_f64() / 60.0 * speedup;
        let target = (now_min / self.epoch_min) as u64;
        self.cmds
            .extend(std::mem::take(&mut *self.shared.control.lock().unwrap()));

        // Epoch barrier: flush the old epoch's batch against its grid,
        // then apply control and delta-refresh the retained neighbor
        // grid for the new epoch (only hosts whose cell or online flag
        // changed are re-binned — no per-barrier rebuild).
        if self.current_epoch != Some(target) {
            let batch = std::mem::take(&mut self.open_batch);
            self.epoch_executed += batch.len() as u32;
            self.execute(batch);
            if let Some(e) = self.current_epoch {
                if self.epoch_executed > 0 {
                    self.rec.record(TraceEvent::EpochCommitted {
                        epoch: e,
                        batch: self.epoch_executed,
                    });
                }
            }
            self.epoch_executed = 0;
            self.apply_cmds(target);
            self.world.begin_epoch(target);
            self.current_epoch = Some(target);
        }

        // Budgeted admission: `admit_per_tick` queued queries may join
        // the open batch per elapsed broadcast tick.
        let tick_now = now_min * self.ticks_per_min;
        self.budget += (tick_now - self.last_tick) * self.shared.admit_per_tick as f64;
        self.last_tick = tick_now;
        self.budget = self.budget.min(self.shared.queue_capacity as f64);
        let allow = if draining { usize::MAX } else { self.budget as usize };
        let mut admitted = 0usize;
        if allow > 0 {
            let mut queue = self.shared.queue.lock().unwrap();
            let take = allow.min(queue.len());
            let depth0 = queue.len();
            for i in 0..take {
                let mut p = queue.pop_front().expect("sized above");
                p.tag = Some(QueryTag {
                    nonce: self.nonce,
                    at_min: now_min,
                    epoch: target,
                });
                self.nonce += 1;
                self.rec.record(TraceEvent::QueryAdmitted {
                    depth: (depth0 - i - 1) as u32,
                });
                self.open_batch.push(p);
            }
            admitted = take;
            self.budget -= take as f64;
        }

        // Sub-epoch execution: admitted queries run immediately against
        // the current grid (latency), committing host state as they go;
        // the epoch's peer snapshot stays fixed until the next barrier.
        let batch = std::mem::take(&mut self.open_batch);
        self.epoch_executed += batch.len() as u32;
        let executed = !batch.is_empty();
        self.execute(batch);

        if draining {
            if self.epoch_executed > 0 {
                self.rec.record(TraceEvent::EpochCommitted {
                    epoch: target,
                    batch: self.epoch_executed,
                });
            }
            self.rec.record(TraceEvent::ServiceDrained {
                pending: admitted as u32,
            });
            return true;
        }
        if !executed && admitted == 0 {
            std::thread::park_timeout(IDLE_NAP);
        }
        false
    }
}
