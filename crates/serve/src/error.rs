//! Typed client-facing service errors.

/// Why the service refused a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue is full (backpressure). Retry after roughly
    /// the given number of broadcast ticks — the scheduler's estimate
    /// of when the budgeted admission will have worked the queue down.
    QueueFull {
        /// Suggested retry delay in broadcast ticks.
        retry_after_ticks: u64,
    },
    /// The service is draining: it still answers everything already
    /// admitted, but accepts no new work.
    Draining,
    /// The service has fully stopped.
    Stopped,
    /// The host id exceeds the world's fleet capacity.
    HostOutOfRange {
        /// The offending host id.
        host: usize,
        /// Fleet capacity (maximum host id + 1).
        capacity: usize,
    },
    /// The host has no open session (register first).
    UnknownSession {
        /// The offending host id.
        host: usize,
    },
    /// A lockstep service requires every submission to carry a
    /// [`crate::QueryTag`]; a scaled-time service stamps its own and
    /// rejects tagged submissions.
    TagMismatch,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { retry_after_ticks } => {
                write!(f, "admission queue full; retry after ~{retry_after_ticks} ticks")
            }
            ServeError::Draining => write!(f, "service is draining"),
            ServeError::Stopped => write!(f, "service has stopped"),
            ServeError::HostOutOfRange { host, capacity } => {
                write!(f, "host {host} out of range (fleet capacity {capacity})")
            }
            ServeError::UnknownSession { host } => {
                write!(f, "host {host} has no open session")
            }
            ServeError::TagMismatch => {
                write!(f, "submission tag does not match the service's pacing mode")
            }
        }
    }
}

impl std::error::Error for ServeError {}
