//! `airshare-serve` — the base station as a long-running service.
//!
//! The paper's architecture is a base station continuously broadcasting
//! an air index while mobile hosts tune in, query, and share answers.
//! The rest of the workspace evaluates that as a closed-loop simulation;
//! this crate splits the base-station side out into a service that
//! serves live traffic (ROADMAP item 2):
//!
//! * [`Service`] / [`ServiceHandle`] — a scheduler thread ticking the
//!   `(1, m)` cycle over any `AirIndexBackend` in scaled wall time (or
//!   client-fenced lockstep), with host sessions (register, position
//!   update, disconnect — each with per-session cache + quarantine
//!   state), **batched admission** per broadcast tick, and
//!   **bounded-queue backpressure** (reject with retry-after). Query
//!   batches execute on `airshare-exec` workers; every service event
//!   lands on `airshare-obs` recorders; `drain` flushes everything and
//!   returns a [`ServiceReport`].
//! * [`replay`] — the test harness: a workload recorded by the
//!   deterministic simulator (`Simulation::run_recording`) is replayed
//!   through the full service stack, and every answer (POI ids +
//!   `AnswerQuality`) must equal the simulator's oracle-checked one.
//!
//! The parity argument is structural: the service's `LiveWorld` is
//! built by the same seeded constructor and resolves queries through
//! the same code path as the simulator, so lockstep replay — same
//! inputs, same barrier order, same nonces — must produce bit-identical
//! answers *and* a field-for-field identical `SimReport`. See
//! DESIGN.md §14.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod replay;
mod service;

pub use config::{Pacing, ServeConfig};
pub use error::ServeError;
pub use replay::{replay, ReplayReport};
pub use service::{QueryRequest, QueryTag, Service, ServiceHandle, ServiceReport};
