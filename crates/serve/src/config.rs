//! Service configuration: the simulated world plus the knobs that only
//! exist once the base station runs in wall-clock time.

use airshare_sim::SimConfig;

/// How the scheduler advances simulated time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Pacing {
    /// Simulated minutes advance with the wall clock, multiplied by the
    /// given speedup (`1.0` = real time, `600.0` = a simulated minute
    /// per 100 ms of wall time). Epoch barriers commit when the clock
    /// crosses them; queries are timestamped at admission.
    Scaled(f64),
    /// Lockstep replay: barriers commit when the client *fences* an
    /// epoch, and every submission carries its own timestamp, nonce,
    /// and target epoch. This is the replay-parity mode — the clock
    /// paces nothing, so parity holds at any effective speedup.
    Lockstep,
}

/// Full configuration of one service instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The world to serve: POIs, air-index backend, `(1, m)` schedule,
    /// fault/outage/chaos knobs — identical meaning to the simulator's.
    pub sim: SimConfig,
    /// Clock mode (scaled wall time, or client-fenced lockstep).
    pub pacing: Pacing,
    /// Admission-queue bound. A submission that finds the queue full is
    /// rejected with a retry-after hint — the backpressure contract.
    pub queue_capacity: usize,
    /// Admission budget per broadcast tick in [`Pacing::Scaled`] mode:
    /// at most this many queued queries join the open batch per tick.
    /// Ignored under lockstep (the fence is the throttle).
    pub admit_per_tick: usize,
    /// Worker threads executing query batches (`airshare-exec` pool).
    pub threads: usize,
}

impl ServeConfig {
    /// A lockstep-replay service over the given world with sensible
    /// queue/worker defaults.
    pub fn lockstep(sim: SimConfig) -> Self {
        ServeConfig {
            sim,
            pacing: Pacing::Lockstep,
            queue_capacity: 1024,
            admit_per_tick: 64,
            threads: 4,
        }
    }

    /// A scaled-time service over the given world.
    pub fn scaled(sim: SimConfig, speedup: f64) -> Self {
        ServeConfig {
            pacing: Pacing::Scaled(speedup),
            ..ServeConfig::lockstep(sim)
        }
    }
}
