//! The random waypoint model.

use crate::Mobility;
use airshare_geom::{Point, Rect};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Shared parameters of a waypoint-style mobility model.
///
/// Speeds are in miles per minute (60 mph = 1 mi/min); pauses in minutes.
#[derive(Clone, Copy, Debug)]
pub struct MobilityConfig {
    /// The area hosts roam in.
    pub world: Rect,
    /// Minimum travel speed (mi/min), > 0.
    pub speed_min: f64,
    /// Maximum travel speed (mi/min), ≥ `speed_min`.
    pub speed_max: f64,
    /// Minimum pause at each waypoint (minutes).
    pub pause_min: f64,
    /// Maximum pause at each waypoint (minutes).
    pub pause_max: f64,
}

impl MobilityConfig {
    /// A plausible vehicular default: 15–45 mph, brief stops.
    pub fn vehicular(world: Rect) -> Self {
        Self {
            world,
            speed_min: 0.25, // 15 mph
            speed_max: 0.75, // 45 mph
            pause_min: 0.0,
            pause_max: 1.0,
        }
    }

    fn validate(&self) {
        assert!(!self.world.is_degenerate(), "world must have area");
        assert!(self.speed_min > 0.0 && self.speed_max >= self.speed_min);
        assert!(self.pause_min >= 0.0 && self.pause_max >= self.pause_min);
    }

    fn sample_point(&self, rng: &mut SmallRng) -> Point {
        Point::new(
            rng.gen_range(self.world.x1..=self.world.x2),
            rng.gen_range(self.world.y1..=self.world.y2),
        )
    }

    fn sample_speed(&self, rng: &mut SmallRng) -> f64 {
        if self.speed_max > self.speed_min {
            rng.gen_range(self.speed_min..self.speed_max)
        } else {
            self.speed_min
        }
    }

    fn sample_pause(&self, rng: &mut SmallRng) -> f64 {
        if self.pause_max > self.pause_min {
            rng.gen_range(self.pause_min..self.pause_max)
        } else {
            self.pause_min
        }
    }
}

/// One travel leg: pause at `from` until `depart`, move to `to` in a
/// straight line arriving at `arrive`.
#[derive(Clone, Copy, Debug)]
struct Leg {
    from: Point,
    to: Point,
    depart: f64,
    arrive: f64,
}

impl Leg {
    fn position_at(&self, t: f64) -> Point {
        if t <= self.depart {
            self.from
        } else if t >= self.arrive {
            self.to
        } else {
            let f = (t - self.depart) / (self.arrive - self.depart);
            self.from.lerp(self.to, f)
        }
    }

    fn velocity_at(&self, t: f64) -> (f64, f64) {
        if t <= self.depart || t >= self.arrive {
            (0.0, 0.0)
        } else {
            let dt = self.arrive - self.depart;
            ((self.to.x - self.from.x) / dt, (self.to.y - self.from.y) / dt)
        }
    }
}

/// Random waypoint mobility (Broch et al., ref \[3\] of the paper):
/// repeatedly pick a uniform
/// destination in the world, travel to it in a straight line at a
/// uniform-random speed, pause, repeat.
///
/// The host's full trajectory is determined by the seed; positions are
/// computed lazily, so a fleet of 100k hosts costs nothing until queried.
#[derive(Clone, Debug)]
pub struct RandomWaypoint {
    config: MobilityConfig,
    rng: SmallRng,
    leg: Leg,
    /// End of the current leg including the pause that follows arrival.
    leg_end: f64,
    last_t: f64,
}

impl RandomWaypoint {
    /// Creates a host starting at a uniform-random position at time 0.
    pub fn new(config: MobilityConfig, seed: u64) -> Self {
        config.validate();
        let mut rng = SmallRng::seed_from_u64(seed);
        let start = config.sample_point(&mut rng);
        let mut rw = Self {
            config,
            rng,
            leg: Leg {
                from: start,
                to: start,
                depart: 0.0,
                arrive: 0.0,
            },
            leg_end: 0.0,
            last_t: 0.0,
        };
        rw.next_leg();
        rw
    }

    /// The model's parameters.
    pub fn config(&self) -> &MobilityConfig {
        &self.config
    }

    fn next_leg(&mut self) {
        let from = self.leg.to;
        let to = self.config.sample_point(&mut self.rng);
        let speed = self.config.sample_speed(&mut self.rng);
        let pause = self.config.sample_pause(&mut self.rng);
        let depart = self.leg_end;
        let arrive = depart + from.distance(to) / speed;
        self.leg = Leg {
            from,
            to,
            depart,
            arrive,
        };
        self.leg_end = arrive + pause;
    }

    fn advance_to(&mut self, t: f64) {
        assert!(
            t >= self.last_t,
            "mobility time went backwards: {t} < {}",
            self.last_t
        );
        self.last_t = t;
        while t > self.leg_end {
            self.next_leg();
        }
    }
}

impl Mobility for RandomWaypoint {
    fn position_at(&mut self, t: f64) -> Point {
        self.advance_to(t);
        self.leg.position_at(t)
    }

    fn velocity_at(&mut self, t: f64) -> (f64, f64) {
        self.advance_to(t);
        self.leg.velocity_at(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MobilityConfig {
        MobilityConfig::vehicular(Rect::from_coords(0.0, 0.0, 20.0, 20.0))
    }

    #[test]
    fn stays_inside_world() {
        let mut rw = RandomWaypoint::new(cfg(), 42);
        for i in 0..5000 {
            let p = rw.position_at(i as f64 * 0.5);
            assert!(cfg().world.contains(p), "escaped at t={}: {p:?}", i);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = RandomWaypoint::new(cfg(), 7);
        let mut b = RandomWaypoint::new(cfg(), 7);
        for i in 0..100 {
            let t = i as f64 * 3.7;
            assert_eq!(a.position_at(t), b.position_at(t));
        }
        let mut c = RandomWaypoint::new(cfg(), 8);
        let mut a2 = RandomWaypoint::new(cfg(), 7);
        let far = (0..50).any(|i| {
            let t = i as f64;
            a2.position_at(t).distance(c.position_at(t)) > 1.0
        });
        assert!(far, "different seeds should diverge");
    }

    #[test]
    fn speed_respects_bounds_while_moving() {
        let mut rw = RandomWaypoint::new(cfg(), 3);
        let mut moving_samples = 0;
        for i in 0..2000 {
            let t = i as f64 * 0.25;
            let (vx, vy) = rw.velocity_at(t);
            let speed = vx.hypot(vy);
            if speed > 0.0 {
                moving_samples += 1;
                assert!(
                    speed >= cfg().speed_min - 1e-9 && speed <= cfg().speed_max + 1e-9,
                    "speed {speed} out of bounds"
                );
            }
        }
        assert!(moving_samples > 100, "host should move most of the time");
    }

    #[test]
    fn position_is_continuous() {
        let mut rw = RandomWaypoint::new(cfg(), 11);
        let mut prev = rw.position_at(0.0);
        let dt = 0.01;
        for i in 1..20000 {
            let t = i as f64 * dt;
            let p = rw.position_at(t);
            let jump = prev.distance(p);
            assert!(
                jump <= cfg().speed_max * dt + 1e-9,
                "teleport at t={t}: {jump}"
            );
            prev = p;
        }
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn time_must_not_rewind() {
        let mut rw = RandomWaypoint::new(cfg(), 1);
        rw.position_at(10.0);
        rw.position_at(5.0);
    }

    #[test]
    fn heading_is_unit_or_none() {
        let mut rw = RandomWaypoint::new(cfg(), 9);
        for i in 0..500 {
            let t = i as f64 * 0.5;
            if let Some((hx, hy)) = rw.heading_at(t) {
                assert!((hx.hypot(hy) - 1.0).abs() < 1e-9);
            }
        }
    }
}
