//! Poisson query workloads.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A homogeneous Poisson process: exponential inter-arrival times at a
/// fixed rate (events per minute).
#[derive(Clone, Debug)]
pub struct PoissonProcess {
    rate: f64,
    rng: SmallRng,
    next: f64,
}

impl PoissonProcess {
    /// Creates a process with the given rate (events/minute, > 0).
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        let mut p = Self {
            rate,
            rng: SmallRng::seed_from_u64(seed),
            next: 0.0,
        };
        p.next = p.sample_gap();
        p
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    fn sample_gap(&mut self) -> f64 {
        // Inverse-CDF sampling; `gen` yields [0, 1), so flip to (0, 1].
        let u: f64 = 1.0 - self.rng.gen::<f64>();
        -u.ln() / self.rate
    }

    /// Time of the next event; repeated calls advance the process.
    pub fn next_event(&mut self) -> f64 {
        let t = self.next;
        self.next += self.sample_gap();
        t
    }

    /// Peek at the upcoming event time without consuming it.
    pub fn peek(&self) -> f64 {
        self.next
    }
}

impl Iterator for PoissonProcess {
    type Item = f64;
    fn next(&mut self) -> Option<f64> {
        Some(self.next_event())
    }
}

/// A query issued by a specific mobile host at a specific time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryEvent {
    /// Simulation time in minutes.
    pub time: f64,
    /// Index of the issuing host.
    pub host: usize,
}

/// Assigns Poisson-timed queries to uniformly random hosts — the paper's
/// workload: "the simulator selects a random subset of the mobile hosts
/// to launch spatial queries (the query intervals are also based on a
/// Poisson distribution)", with the aggregate rate set by the `Query`
/// parameter of Table 4.
#[derive(Clone, Debug)]
pub struct QueryScheduler {
    process: PoissonProcess,
    hosts: usize,
    rng: SmallRng,
}

impl QueryScheduler {
    /// Creates a scheduler over `hosts` hosts at `rate` queries/minute.
    pub fn new(rate: f64, hosts: usize, seed: u64) -> Self {
        assert!(hosts > 0, "need at least one host");
        Self {
            process: PoissonProcess::new(rate, seed ^ 0x9E3779B97F4A7C15),
            hosts,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Draws the next query event.
    pub fn next_query(&mut self) -> QueryEvent {
        QueryEvent {
            time: self.process.next_event(),
            host: self.rng.gen_range(0..self.hosts),
        }
    }

    /// Time of the upcoming event, without consuming it. Lets callers
    /// pull events epoch by epoch (streaming) with exactly the draw
    /// sequence [`QueryScheduler::events_until`] would have produced.
    pub fn peek_time(&self) -> f64 {
        self.process.peek()
    }

    /// All query events up to (and excluding) `horizon` minutes.
    pub fn events_until(&mut self, horizon: f64) -> Vec<QueryEvent> {
        let mut out = Vec::new();
        while self.process.peek() < horizon {
            out.push(self.next_query());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_respected() {
        let mut p = PoissonProcess::new(10.0, 5);
        let n = 20_000;
        let mut last = 0.0;
        for _ in 0..n {
            last = p.next_event();
        }
        // n events should take ≈ n/rate minutes (±5%).
        let expected = n as f64 / 10.0;
        assert!(
            (last - expected).abs() < 0.05 * expected,
            "elapsed {last}, expected ≈ {expected}"
        );
    }

    #[test]
    fn events_strictly_increase() {
        let p = PoissonProcess::new(3.0, 9);
        let times: Vec<f64> = p.take(1000).collect();
        for w in times.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(times[0] > 0.0);
    }

    #[test]
    fn scheduler_spreads_load_over_hosts() {
        let mut s = QueryScheduler::new(100.0, 50, 3);
        let events = s.events_until(600.0); // ~60k queries
        assert!((events.len() as f64 - 60_000.0).abs() < 3_000.0);
        let mut counts = vec![0usize; 50];
        for e in &events {
            counts[e.host] += 1;
        }
        let avg = events.len() / 50;
        for (h, &c) in counts.iter().enumerate() {
            assert!(
                c > avg / 2 && c < avg * 2,
                "host {h} got {c}, avg {avg}"
            );
        }
    }

    #[test]
    fn events_until_respects_horizon() {
        let mut s = QueryScheduler::new(5.0, 10, 1);
        let events = s.events_until(10.0);
        assert!(events.iter().all(|e| e.time < 10.0));
        // Continuing yields events after the horizon.
        let next = s.next_query();
        assert!(next.time >= 10.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = QueryScheduler::new(7.0, 20, 77);
        let mut b = QueryScheduler::new(7.0, 20, 77);
        for _ in 0..100 {
            assert_eq!(a.next_query(), b.next_query());
        }
    }
}
