//! Manhattan-grid road network mobility.
//!
//! The paper maps random-waypoint trajectories onto an (unavailable)
//! Southern-California road network. This model substitutes a synthetic
//! grid of north–south and east–west streets at fixed spacing: hosts pick
//! a random intersection as the next waypoint and drive an L-shaped route
//! (first along `x`, then along `y`) at constant speed. The substitution
//! preserves what the evaluation depends on — bounded speeds, bounded
//! world, locally correlated headings — while staying fully synthetic.

use crate::{Mobility, MobilityConfig};
use airshare_geom::Point;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A straight sub-segment of an L-shaped route.
#[derive(Clone, Copy, Debug)]
struct Hop {
    from: Point,
    to: Point,
    depart: f64,
    arrive: f64,
}

impl Hop {
    fn position_at(&self, t: f64) -> Point {
        if t <= self.depart {
            self.from
        } else if t >= self.arrive {
            self.to
        } else {
            self.from
                .lerp(self.to, (t - self.depart) / (self.arrive - self.depart))
        }
    }

    fn velocity_at(&self, t: f64) -> (f64, f64) {
        if t <= self.depart || t >= self.arrive || self.arrive <= self.depart {
            (0.0, 0.0)
        } else {
            let dt = self.arrive - self.depart;
            ((self.to.x - self.from.x) / dt, (self.to.y - self.from.y) / dt)
        }
    }
}

/// Waypoint mobility constrained to a synthetic street grid.
#[derive(Clone, Debug)]
pub struct GridRoadWaypoint {
    config: MobilityConfig,
    /// Street spacing in miles.
    spacing: f64,
    rng: SmallRng,
    hops: [Hop; 2],
    /// End of the second hop plus the pause that follows.
    route_end: f64,
    last_t: f64,
}

impl GridRoadWaypoint {
    /// Creates a host starting at a random intersection.
    ///
    /// `spacing` is the street pitch in miles (e.g. 0.25 for dense urban
    /// blocks); it is clamped to at most half the world's short side so a
    /// grid always exists.
    pub fn new(config: MobilityConfig, spacing: f64, seed: u64) -> Self {
        assert!(spacing > 0.0, "street spacing must be positive");
        let spacing = spacing.min(0.5 * config.world.width().min(config.world.height()));
        let mut rng = SmallRng::seed_from_u64(seed);
        let start = snap_to_grid(
            Point::new(
                rng.gen_range(config.world.x1..=config.world.x2),
                rng.gen_range(config.world.y1..=config.world.y2),
            ),
            &config,
            spacing,
        );
        let stay = Hop {
            from: start,
            to: start,
            depart: 0.0,
            arrive: 0.0,
        };
        let mut g = Self {
            config,
            spacing,
            rng,
            hops: [stay, stay],
            route_end: 0.0,
            last_t: 0.0,
        };
        g.next_route();
        g
    }

    fn next_route(&mut self) {
        let from = self.hops[1].to;
        let dest = snap_to_grid(
            Point::new(
                self.rng.gen_range(self.config.world.x1..=self.config.world.x2),
                self.rng.gen_range(self.config.world.y1..=self.config.world.y2),
            ),
            &self.config,
            self.spacing,
        );
        let speed = if self.config.speed_max > self.config.speed_min {
            self.rng.gen_range(self.config.speed_min..self.config.speed_max)
        } else {
            self.config.speed_min
        };
        let pause = if self.config.pause_max > self.config.pause_min {
            self.rng.gen_range(self.config.pause_min..self.config.pause_max)
        } else {
            self.config.pause_min
        };
        // L-route: east/west first, then north/south.
        let corner = Point::new(dest.x, from.y);
        let depart = self.route_end;
        let t1 = depart + (dest.x - from.x).abs() / speed;
        let t2 = t1 + (dest.y - from.y).abs() / speed;
        self.hops = [
            Hop {
                from,
                to: corner,
                depart,
                arrive: t1,
            },
            Hop {
                from: corner,
                to: dest,
                depart: t1,
                arrive: t2,
            },
        ];
        self.route_end = t2 + pause;
    }

    fn advance_to(&mut self, t: f64) {
        assert!(
            t >= self.last_t,
            "mobility time went backwards: {t} < {}",
            self.last_t
        );
        self.last_t = t;
        while t > self.route_end {
            self.next_route();
        }
    }

    fn current_hop(&self, t: f64) -> &Hop {
        if t <= self.hops[0].arrive {
            &self.hops[0]
        } else {
            &self.hops[1]
        }
    }
}

/// Snaps a point to the nearest grid intersection, clamped to the world.
fn snap_to_grid(p: Point, config: &MobilityConfig, spacing: f64) -> Point {
    let w = &config.world;
    let sx = w.x1 + ((p.x - w.x1) / spacing).round() * spacing;
    let sy = w.y1 + ((p.y - w.y1) / spacing).round() * spacing;
    w.clamp_point(Point::new(sx, sy))
}

impl Mobility for GridRoadWaypoint {
    fn position_at(&mut self, t: f64) -> Point {
        self.advance_to(t);
        self.current_hop(t).position_at(t)
    }

    fn velocity_at(&mut self, t: f64) -> (f64, f64) {
        self.advance_to(t);
        self.current_hop(t).velocity_at(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airshare_geom::Rect;

    fn cfg() -> MobilityConfig {
        MobilityConfig::vehicular(Rect::from_coords(0.0, 0.0, 20.0, 20.0))
    }

    #[test]
    fn stays_inside_world() {
        let mut g = GridRoadWaypoint::new(cfg(), 0.5, 17);
        for i in 0..5000 {
            let p = g.position_at(i as f64 * 0.3);
            assert!(cfg().world.contains(p));
        }
    }

    #[test]
    fn moves_axis_aligned() {
        let mut g = GridRoadWaypoint::new(cfg(), 0.5, 4);
        for i in 0..4000 {
            let (vx, vy) = g.velocity_at(i as f64 * 0.2);
            // On an L-route, at most one velocity component is nonzero.
            assert!(
                vx.abs() < 1e-9 || vy.abs() < 1e-9,
                "diagonal motion: ({vx}, {vy})"
            );
        }
    }

    #[test]
    fn waypoints_are_on_grid() {
        // While paused (zero velocity), position must be an intersection.
        let mut g = GridRoadWaypoint::new(cfg(), 0.5, 21);
        let mut checked = 0;
        for i in 0..20000 {
            let t = i as f64 * 0.05;
            let (vx, vy) = g.velocity_at(t);
            if vx == 0.0 && vy == 0.0 {
                let p = g.position_at(t);
                let fx = (p.x / 0.5).round() * 0.5;
                let fy = (p.y / 0.5).round() * 0.5;
                // Paused points are grid intersections or L-corners (also
                // on-grid in x); both coordinates must be near multiples.
                assert!((p.x - fx).abs() < 1e-6 && (p.y - fy).abs() < 1e-6,
                    "pause off-grid at {p:?}");
                checked += 1;
            }
        }
        assert!(checked > 10);
    }

    #[test]
    fn continuous_trajectory() {
        let mut g = GridRoadWaypoint::new(cfg(), 0.25, 9);
        let dt = 0.01;
        let mut prev = g.position_at(0.0);
        for i in 1..10000 {
            let p = g.position_at(i as f64 * dt);
            assert!(prev.distance(p) <= cfg().speed_max * dt + 1e-9);
            prev = p;
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = GridRoadWaypoint::new(cfg(), 0.5, 33);
        let mut b = GridRoadWaypoint::new(cfg(), 0.5, 33);
        for i in 0..200 {
            let t = i as f64 * 1.1;
            assert_eq!(a.position_at(t), b.position_at(t));
        }
    }
}
