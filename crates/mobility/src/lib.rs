//! Mobility models and query workloads for the airshare simulator.
//!
//! The paper's evaluation (§4.1) moves mobile hosts with the random
//! waypoint model of Broch et al. over a 20 mi × 20 mi area, mapping
//! trajectories onto a road network, and fires spatial queries from
//! Poisson-distributed intervals at a controlled aggregate rate
//! (`Query` in Table 4).
//!
//! * [`RandomWaypoint`] — the canonical model: pick a uniform destination,
//!   travel at a uniform-random speed, pause, repeat. Positions are
//!   evaluated *analytically* at any (monotonically advancing) time, so
//!   the simulator never ticks hosts that nobody is looking at.
//! * [`GridRoadWaypoint`] — a synthetic Manhattan-grid road network
//!   variant (the paper's road map is unavailable; see DESIGN.md §2).
//!   Hosts travel along axis-aligned streets with L-shaped routes.
//! * [`Mobility`] — the common interface (`position_at` / `velocity_at`).
//! * [`PoissonProcess`] / [`QueryScheduler`] — exponential inter-arrival
//!   event streams assigning queries to random hosts.
//!
//! All randomness flows through caller-provided seeds; trajectories are
//! reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod roadgrid;
mod waypoint;
mod workload;

pub use roadgrid::GridRoadWaypoint;
pub use waypoint::{MobilityConfig, RandomWaypoint};
pub use workload::{PoissonProcess, QueryEvent, QueryScheduler};

use airshare_geom::Point;

/// A mobility model evaluated lazily along increasing time.
///
/// Implementations may cache per-leg state; `position_at` must be called
/// with non-decreasing `t` (enforced with a panic, since violating it
/// silently would desynchronize the simulation).
pub trait Mobility {
    /// Position at simulation time `t` (minutes).
    fn position_at(&mut self, t: f64) -> Point;

    /// Velocity vector at time `t` (miles per minute); zero while paused.
    fn velocity_at(&mut self, t: f64) -> (f64, f64);

    /// Heading unit vector at time `t`, or `None` while paused.
    fn heading_at(&mut self, t: f64) -> Option<(f64, f64)> {
        let (vx, vy) = self.velocity_at(t);
        let n = vx.hypot(vy);
        (n > 1e-12).then(|| (vx / n, vy / n))
    }
}
