//! Property tests for the mobility models and workloads.

use airshare_geom::Rect;
use airshare_mobility::{
    GridRoadWaypoint, Mobility, MobilityConfig, PoissonProcess, QueryScheduler, RandomWaypoint,
};
use proptest::prelude::*;

fn cfg(side: f64) -> MobilityConfig {
    MobilityConfig::vehicular(Rect::from_coords(0.0, 0.0, side, side))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn waypoint_confined_and_speed_bounded(
        seed in any::<u64>(),
        side in 2.0..40.0f64,
        steps in 50usize..400,
    ) {
        let c = cfg(side);
        let mut m = RandomWaypoint::new(c, seed);
        let dt = 0.2;
        let mut prev = m.position_at(0.0);
        for i in 1..steps {
            let t = i as f64 * dt;
            let p = m.position_at(t);
            prop_assert!(c.world.contains(p));
            prop_assert!(prev.distance(p) <= c.speed_max * dt + 1e-9);
            prev = p;
        }
    }

    #[test]
    fn roadgrid_confined_and_axis_aligned(
        seed in any::<u64>(),
        side in 2.0..40.0f64,
        spacing in 0.1..2.0f64,
        steps in 50usize..300,
    ) {
        let c = cfg(side);
        let mut m = GridRoadWaypoint::new(c, spacing, seed);
        for i in 0..steps {
            let t = i as f64 * 0.3;
            let p = m.position_at(t);
            prop_assert!(c.world.contains(p));
            let (vx, vy) = m.velocity_at(t);
            prop_assert!(vx.abs() < 1e-9 || vy.abs() < 1e-9, "diagonal: ({vx},{vy})");
        }
    }

    #[test]
    fn mobility_is_deterministic(
        seed in any::<u64>(),
        times in prop::collection::vec(0.0..500.0f64, 1..30),
    ) {
        let mut sorted = times.clone();
        sorted.sort_by(f64::total_cmp);
        let c = cfg(10.0);
        let mut a = RandomWaypoint::new(c, seed);
        let mut b = RandomWaypoint::new(c, seed);
        for &t in &sorted {
            prop_assert_eq!(a.position_at(t), b.position_at(t));
            let va = a.velocity_at(t);
            let vb = b.velocity_at(t);
            prop_assert_eq!(va, vb);
        }
    }

    #[test]
    fn heading_is_unit_when_moving(seed in any::<u64>()) {
        let c = cfg(10.0);
        let mut m = RandomWaypoint::new(c, seed);
        for i in 0..200 {
            let t = i as f64 * 0.5;
            let (vx, vy) = m.velocity_at(t);
            match m.heading_at(t) {
                Some((hx, hy)) => {
                    prop_assert!((hx.hypot(hy) - 1.0).abs() < 1e-9);
                    // Heading aligns with velocity.
                    prop_assert!(hx * vx + hy * vy > 0.0);
                }
                None => prop_assert!(vx.hypot(vy) < 1e-9),
            }
        }
    }

    #[test]
    fn poisson_interarrivals_positive_and_rate_plausible(
        rate in 0.5..50.0f64,
        seed in any::<u64>(),
    ) {
        let mut p = PoissonProcess::new(rate, seed);
        let n = 2000;
        let mut prev = 0.0;
        for _ in 0..n {
            let t = p.next_event();
            prop_assert!(t > prev);
            prev = t;
        }
        // Mean inter-arrival ≈ 1/rate within generous bounds.
        let mean_gap = prev / n as f64;
        prop_assert!(
            (mean_gap * rate - 1.0).abs() < 0.15,
            "mean gap {mean_gap}, rate {rate}"
        );
    }

    #[test]
    fn scheduler_host_ids_in_range(
        hosts in 1usize..500,
        rate in 1.0..100.0f64,
        seed in any::<u64>(),
    ) {
        let mut s = QueryScheduler::new(rate, hosts, seed);
        for _ in 0..500 {
            let ev = s.next_query();
            prop_assert!(ev.host < hosts);
            prop_assert!(ev.time.is_finite() && ev.time > 0.0);
        }
    }
}
