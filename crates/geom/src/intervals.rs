//! One-dimensional interval-set algebra.
//!
//! The rectangle-union sweep reduces every 2-D question (boundary
//! extraction, coverage, difference) to unions, intersections and
//! symmetric differences of closed 1-D intervals. [`IntervalSet`] keeps a
//! canonical sorted list of disjoint, non-touching intervals so the set
//! operations stay linear.

use crate::EPSILON;

/// A canonical set of disjoint closed intervals on the real line.
///
/// Canonical form: sorted by lower endpoint, pairwise disjoint, and with
/// gaps strictly wider than [`EPSILON`] (abutting or ε-close intervals are
/// merged). Degenerate intervals (width ≤ ε) are dropped.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IntervalSet {
    /// Canonical intervals as `(lo, hi)` pairs with `lo < hi`.
    runs: Vec<(f64, f64)>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a canonical set from arbitrary (possibly overlapping,
    /// unordered, or degenerate) intervals.
    pub fn from_intervals<I: IntoIterator<Item = (f64, f64)>>(intervals: I) -> Self {
        let mut v: Vec<(f64, f64)> = intervals
            .into_iter()
            .filter(|&(lo, hi)| hi - lo > EPSILON)
            .collect();
        v.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut runs: Vec<(f64, f64)> = Vec::with_capacity(v.len());
        for (lo, hi) in v {
            match runs.last_mut() {
                Some(last) if lo <= last.1 + EPSILON => last.1 = last.1.max(hi),
                _ => runs.push((lo, hi)),
            }
        }
        Self { runs }
    }

    /// A single interval, or the empty set if degenerate.
    pub fn single(lo: f64, hi: f64) -> Self {
        Self::from_intervals([(lo, hi)])
    }

    /// The canonical runs.
    pub fn runs(&self) -> &[(f64, f64)] {
        &self.runs
    }

    /// The set contains no interval of positive length.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total length of all intervals.
    pub fn total_len(&self) -> f64 {
        self.runs.iter().map(|(lo, hi)| hi - lo).sum()
    }

    /// Membership test (closed semantics up to ε).
    pub fn contains(&self, x: f64) -> bool {
        // Binary search on lower endpoints.
        let idx = self.runs.partition_point(|&(lo, _)| lo <= x + EPSILON);
        idx > 0 && x <= self.runs[idx - 1].1 + EPSILON
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        IntervalSet::from_intervals(self.runs.iter().chain(other.runs.iter()).copied())
    }

    /// Set intersection.
    pub fn intersection(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let (alo, ahi) = self.runs[i];
            let (blo, bhi) = other.runs[j];
            let lo = alo.max(blo);
            let hi = ahi.min(bhi);
            if hi - lo > EPSILON {
                out.push((lo, hi));
            }
            if ahi < bhi {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { runs: out }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let mut j = 0;
        for &(alo, ahi) in &self.runs {
            let mut cursor = alo;
            // Skip subtrahend runs entirely left of this run.
            while j < other.runs.len() && other.runs[j].1 <= alo {
                j += 1;
            }
            let mut k = j;
            while k < other.runs.len() && other.runs[k].0 < ahi {
                let (blo, bhi) = other.runs[k];
                if blo - cursor > EPSILON {
                    out.push((cursor, blo.min(ahi)));
                }
                cursor = cursor.max(bhi);
                if cursor >= ahi {
                    break;
                }
                k += 1;
            }
            if ahi - cursor > EPSILON {
                out.push((cursor, ahi));
            }
        }
        IntervalSet { runs: out }
    }

    /// Symmetric difference `(self \ other) ∪ (other \ self)` — the parts
    /// covered by exactly one operand. This is what determines which
    /// portions of a candidate edge lie on the union boundary.
    pub fn symmetric_difference(&self, other: &IntervalSet) -> IntervalSet {
        self.difference(other).union(&other.difference(self))
    }

    /// `self ⊆ other` up to ε slack on the endpoints.
    pub fn is_subset_of(&self, other: &IntervalSet) -> bool {
        self.difference(other).is_empty()
    }

    /// Clips the set to `[lo, hi]`.
    pub fn clip(&self, lo: f64, hi: f64) -> IntervalSet {
        self.intersection(&IntervalSet::single(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn set(v: &[(f64, f64)]) -> IntervalSet {
        IntervalSet::from_intervals(v.iter().copied())
    }

    #[test]
    fn canonicalization_merges_overlaps_and_abutments() {
        let s = set(&[(0.0, 1.0), (0.5, 2.0), (2.0, 3.0), (5.0, 6.0)]);
        assert_eq!(s.runs(), &[(0.0, 3.0), (5.0, 6.0)]);
    }

    #[test]
    fn degenerate_intervals_are_dropped() {
        let s = set(&[(1.0, 1.0), (2.0, 2.0 + EPSILON / 2.0)]);
        assert!(s.is_empty());
    }

    #[test]
    fn union_and_total_len() {
        let a = set(&[(0.0, 1.0)]);
        let b = set(&[(2.0, 4.0)]);
        let u = a.union(&b);
        assert_eq!(u.runs(), &[(0.0, 1.0), (2.0, 4.0)]);
        assert!(approx_eq(u.total_len(), 3.0));
    }

    #[test]
    fn intersection_basic() {
        let a = set(&[(0.0, 2.0), (3.0, 5.0)]);
        let b = set(&[(1.0, 4.0)]);
        assert_eq!(a.intersection(&b).runs(), &[(1.0, 2.0), (3.0, 4.0)]);
    }

    #[test]
    fn intersection_disjoint_is_empty() {
        let a = set(&[(0.0, 1.0)]);
        let b = set(&[(2.0, 3.0)]);
        assert!(a.intersection(&b).is_empty());
    }

    #[test]
    fn difference_carves_holes() {
        let a = set(&[(0.0, 10.0)]);
        let b = set(&[(2.0, 3.0), (5.0, 7.0)]);
        assert_eq!(
            a.difference(&b).runs(),
            &[(0.0, 2.0), (3.0, 5.0), (7.0, 10.0)]
        );
    }

    #[test]
    fn difference_with_overhanging_subtrahend() {
        let a = set(&[(1.0, 4.0)]);
        let b = set(&[(0.0, 2.0), (3.5, 9.0)]);
        assert_eq!(a.difference(&b).runs(), &[(2.0, 3.5)]);
    }

    #[test]
    fn difference_total_removal() {
        let a = set(&[(1.0, 2.0)]);
        let b = set(&[(0.0, 3.0)]);
        assert!(a.difference(&b).is_empty());
    }

    #[test]
    fn symmetric_difference_is_xor() {
        let a = set(&[(0.0, 4.0)]);
        let b = set(&[(2.0, 6.0)]);
        assert_eq!(
            a.symmetric_difference(&b).runs(),
            &[(0.0, 2.0), (4.0, 6.0)]
        );
    }

    #[test]
    fn subset_semantics() {
        let a = set(&[(1.0, 2.0), (3.0, 4.0)]);
        let b = set(&[(0.0, 5.0)]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(IntervalSet::new().is_subset_of(&a));
    }

    #[test]
    fn contains_uses_binary_search() {
        let s = set(&[(0.0, 1.0), (5.0, 6.0)]);
        assert!(s.contains(0.5));
        assert!(s.contains(0.0));
        assert!(s.contains(6.0));
        assert!(!s.contains(3.0));
        assert!(!s.contains(-1.0));
        assert!(!s.contains(7.0));
    }

    #[test]
    fn clip_restricts_to_window() {
        let s = set(&[(0.0, 10.0)]);
        assert_eq!(s.clip(2.0, 3.0).runs(), &[(2.0, 3.0)]);
        assert!(s.clip(20.0, 30.0).is_empty());
    }
}
