//! Planar points with Euclidean metrics.

use core::fmt;

/// A point in the plane. Coordinates are in miles across the workspace.
#[derive(Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Horizontal coordinate (miles).
    pub x: f64,
    /// Vertical coordinate (miles).
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Euclidean distance to `other` (the paper's `‖a, b‖`).
    #[inline]
    pub fn distance(&self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`. Prefer this for comparisons;
    /// it avoids the square root.
    #[inline]
    pub fn distance_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise addition.
    #[inline]
    pub fn offset(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Vector from `self` to `other`.
    #[inline]
    pub fn vector_to(&self, other: Point) -> (f64, f64) {
        (other.x - self.x, other.y - self.y)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Both coordinates are finite (not NaN / infinite).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Dot product of the vectors `self` and `other` viewed as vectors
    /// from the origin.
    #[inline]
    pub fn dot(&self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component) of `self × other`.
    #[inline]
    pub fn cross(&self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm of the point viewed as a vector.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.x.hypot(self.y)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn distance_is_symmetric_and_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!(approx_eq(a.distance(b), 5.0));
        assert!(approx_eq(b.distance(a), 5.0));
        assert!(approx_eq(a.distance_sq(b), 25.0));
    }

    #[test]
    fn lerp_hits_endpoints_and_midpoint() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert!(approx_eq(mid.x, 2.0) && approx_eq(mid.y, 4.0));
    }

    #[test]
    fn cross_orientation_sign() {
        let e1 = Point::new(1.0, 0.0);
        let e2 = Point::new(0.0, 1.0);
        assert!(e1.cross(e2) > 0.0);
        assert!(e2.cross(e1) < 0.0);
    }

    #[test]
    fn finite_detects_nan() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
