//! Exact disk intersection areas.
//!
//! Lemma 3.2 of the paper estimates the probability that an unverified POI
//! `o_j` is the true j-th nearest neighbor as `e^{-λu}`, where `u` is the
//! area of the *unverified region*: the part of the disk centred on the
//! query point with radius `‖q, o_j‖` that is **not** covered by the
//! merged verified region. Computing `u` exactly requires the area of a
//! disk ∩ rectangle-union intersection, which this module provides in
//! closed form via circular-segment integrals (Green's theorem over the
//! polygon edges, clamped to the disk).

use crate::{Point, Rect, RectUnion};

/// A disk (filled circle).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Disk {
    /// Centre.
    pub center: Point,
    /// Radius (≥ 0).
    pub radius: f64,
}

impl Disk {
    /// Creates a disk; negative radii are clamped to zero.
    pub fn new(center: Point, radius: f64) -> Self {
        Self { center, radius: radius.max(0.0) }
    }

    /// Disk area `πr²`.
    pub fn area(&self) -> f64 {
        disk_area(self.radius)
    }

    /// Closed containment.
    pub fn contains(&self, p: Point) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius
    }

    /// MBR of the disk.
    pub fn mbr(&self) -> Rect {
        Rect::centered_square(self.center, self.radius)
    }
}

/// Area of a disk of radius `r`.
#[inline]
pub fn disk_area(r: f64) -> f64 {
    std::f64::consts::PI * r * r
}

/// Exact area of `disk ∩ polygon` for a simple polygon given as a vertex
/// list (either orientation; the result is unsigned).
///
/// Implementation: the signed intersection area equals the sum over
/// directed polygon edges of the area of the "circular triangle" spanned
/// by the disk centre and the edge, where sub-spans of the edge inside
/// the disk contribute straight triangles and sub-spans outside
/// contribute circular sectors. Each edge is split at its (up to two)
/// circle crossings.
pub fn disk_polygon_area(disk: Disk, polygon: &[Point]) -> f64 {
    let n = polygon.len();
    if n < 3 || disk.radius == 0.0 {
        return 0.0;
    }
    let r = disk.radius;
    let mut signed = 0.0;
    for i in 0..n {
        let a = Point::new(polygon[i].x - disk.center.x, polygon[i].y - disk.center.y);
        let b = Point::new(
            polygon[(i + 1) % n].x - disk.center.x,
            polygon[(i + 1) % n].y - disk.center.y,
        );
        signed += edge_contribution(a, b, r);
    }
    signed.abs()
}

/// Signed contribution of the directed edge `a → b` (relative to a disk
/// centred at the origin with radius `r`) to the disk∩polygon area.
fn edge_contribution(a: Point, b: Point, r: f64) -> f64 {
    // Split parameter range [0,1] at circle crossings.
    let d = Point::new(b.x - a.x, b.y - a.y);
    let qa = d.dot(d);
    if qa == 0.0 {
        return 0.0; // zero-length edge
    }
    let qb = 2.0 * a.dot(d);
    let qc = a.dot(a) - r * r;
    let mut ts = [0.0_f64, 1.0, 1.0, 1.0];
    let mut nts = 1; // ts[0] = 0 always present; collect interior crossings
    let disc = qb * qb - 4.0 * qa * qc;
    if disc > 0.0 {
        let sqrt_disc = disc.sqrt();
        for t in [(-qb - sqrt_disc) / (2.0 * qa), (-qb + sqrt_disc) / (2.0 * qa)] {
            if t > 0.0 && t < 1.0 {
                ts[nts] = t;
                nts += 1;
            }
        }
    }
    ts[nts] = 1.0;
    nts += 1;
    ts[..nts].sort_by(f64::total_cmp);

    let point_at = |t: f64| Point::new(a.x + d.x * t, a.y + d.y * t);
    let mut area = 0.0;
    for w in ts[..nts].windows(2) {
        let (t0, t1) = (w[0], w[1]);
        if t1 - t0 <= 0.0 {
            continue;
        }
        let p0 = point_at(t0);
        let p1 = point_at(t1);
        let mid = point_at(0.5 * (t0 + t1));
        if mid.dot(mid) <= r * r {
            // Inside: straight triangle (origin, p0, p1).
            area += 0.5 * p0.cross(p1);
        } else {
            // Outside: circular sector between the endpoint directions.
            // A straight segment subtends < π at any point, so atan2 of
            // (cross, dot) gives the correct signed sweep.
            let ang = p0.cross(p1).atan2(p0.dot(p1));
            area += 0.5 * r * r * ang;
        }
    }
    area
}

/// Exact area of `disk ∩ rect`.
pub fn disk_rect_area(disk: Disk, rect: &Rect) -> f64 {
    if rect.is_degenerate() || disk.radius == 0.0 {
        return 0.0;
    }
    // Quick rejects/accepts.
    if rect.distance_sq_to_point(disk.center) >= disk.radius * disk.radius {
        return 0.0;
    }
    let max_d = rect.max_distance_to_point(disk.center);
    if max_d <= disk.radius {
        return rect.area();
    }
    disk_polygon_area(disk, &rect.corners())
}

/// Exact area of `disk ∩ region` for a rectangle union, via the region's
/// disjoint decomposition (tiles only share borders, so areas add).
pub fn disk_region_area(disk: Disk, region: &RectUnion) -> f64 {
    region
        .disjoint_rects()
        .iter()
        .map(|r| disk_rect_area(disk, r))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use std::f64::consts::PI;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn disk_fully_inside_rect() {
        let d = Disk::new(Point::new(5.0, 5.0), 1.0);
        let r = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        assert!(close(disk_rect_area(d, &r), PI, 1e-12));
    }

    #[test]
    fn rect_fully_inside_disk() {
        let d = Disk::new(Point::new(0.0, 0.0), 10.0);
        let r = Rect::from_coords(-1.0, -1.0, 1.0, 1.0);
        assert!(close(disk_rect_area(d, &r), 4.0, 1e-12));
    }

    #[test]
    fn disjoint_disk_and_rect() {
        let d = Disk::new(Point::new(0.0, 0.0), 1.0);
        let r = Rect::from_coords(5.0, 5.0, 6.0, 6.0);
        assert!(approx_eq(disk_rect_area(d, &r), 0.0));
    }

    #[test]
    fn half_disk_against_half_plane_like_rect() {
        // Rect covers exactly the right half of the disk.
        let d = Disk::new(Point::new(0.0, 0.0), 2.0);
        let r = Rect::from_coords(0.0, -10.0, 10.0, 10.0);
        assert!(close(disk_rect_area(d, &r), 0.5 * PI * 4.0, 1e-9));
    }

    #[test]
    fn quarter_disk() {
        let d = Disk::new(Point::new(0.0, 0.0), 1.0);
        let r = Rect::from_coords(0.0, 0.0, 5.0, 5.0);
        assert!(close(disk_rect_area(d, &r), 0.25 * PI, 1e-9));
    }

    #[test]
    fn circular_segment_formula_agrees() {
        // Rect clips the disk at x >= h: area = r² acos(h/r) − h √(r²−h²).
        let (r_, h) = (3.0_f64, 1.25_f64);
        let d = Disk::new(Point::new(0.0, 0.0), r_);
        let rect = Rect::from_coords(h, -10.0, 10.0, 10.0);
        let expect = r_ * r_ * (h / r_).acos() - h * (r_ * r_ - h * h).sqrt();
        assert!(close(disk_rect_area(d, &rect), expect, 1e-9));
    }

    #[test]
    fn corner_overlap_monte_carlo() {
        // Disk overlapping a rect corner; validate against dense sampling.
        let d = Disk::new(Point::new(1.0, 1.0), 1.5);
        let rect = Rect::from_coords(0.0, 0.0, 1.2, 0.8);
        let exact = disk_rect_area(d, &rect);
        let n = 2000;
        let mut hits = 0u64;
        for i in 0..n {
            for j in 0..n {
                let p = Point::new(
                    rect.x1 + rect.width() * (i as f64 + 0.5) / n as f64,
                    rect.y1 + rect.height() * (j as f64 + 0.5) / n as f64,
                );
                if d.contains(p) {
                    hits += 1;
                }
            }
        }
        let approx = rect.area() * hits as f64 / (n * n) as f64;
        assert!(close(exact, approx, 2e-3), "exact={exact} approx={approx}");
    }

    #[test]
    fn polygon_orientation_does_not_matter() {
        let d = Disk::new(Point::new(0.3, 0.4), 1.0);
        let ccw = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        let cw: Vec<Point> = ccw.iter().rev().copied().collect();
        assert!(close(
            disk_polygon_area(d, &ccw),
            disk_polygon_area(d, &cw),
            1e-12
        ));
    }

    #[test]
    fn triangle_intersection() {
        // Disk centered at triangle centroid, tiny radius: area = disk.
        let tri = [
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 4.0),
        ];
        let d = Disk::new(Point::new(1.0, 1.0), 0.25);
        assert!(close(disk_polygon_area(d, &tri), PI * 0.0625, 1e-9));
        // Huge radius: area = triangle area = 8.
        let d2 = Disk::new(Point::new(1.0, 1.0), 100.0);
        assert!(close(disk_polygon_area(d2, &tri), 8.0, 1e-9));
    }

    #[test]
    fn region_area_splits_across_tiles() {
        // Two abutting unit squares; disk centered on the seam.
        let region = RectUnion::from_rects([
            Rect::from_coords(0.0, 0.0, 1.0, 2.0),
            Rect::from_coords(1.0, 0.0, 2.0, 2.0),
        ]);
        let d = Disk::new(Point::new(1.0, 1.0), 0.5);
        assert!(close(disk_region_area(d, &region), PI * 0.25, 1e-9));
    }

    #[test]
    fn region_area_zero_for_empty_region() {
        let d = Disk::new(Point::ORIGIN, 1.0);
        assert!(approx_eq(disk_region_area(d, &RectUnion::new()), 0.0));
    }

    #[test]
    fn zero_radius_disk_has_no_area() {
        let d = Disk::new(Point::ORIGIN, 0.0);
        let r = Rect::from_coords(-1.0, -1.0, 1.0, 1.0);
        assert!(approx_eq(disk_rect_area(d, &r), 0.0));
        assert!(approx_eq(d.area(), 0.0));
    }

    #[test]
    fn disk_mbr_is_bounding_square() {
        let d = Disk::new(Point::new(2.0, 3.0), 1.5);
        assert_eq!(d.mbr(), Rect::from_coords(0.5, 1.5, 3.5, 4.5));
    }
}
