//! Axis-aligned rectangles (minimum bounding rectangles).

use crate::{Point, EPSILON};
use core::fmt;

/// An axis-aligned rectangle `[x1, x2] × [y1, y2]`, the workspace's MBR
/// type. Rectangles are closed sets; degenerate (zero-width or
/// zero-height) rectangles are permitted and have zero area.
///
/// Invariant: `x1 <= x2 && y1 <= y2` (enforced by constructors).
#[derive(Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rect {
    /// Left edge.
    pub x1: f64,
    /// Bottom edge.
    pub y1: f64,
    /// Right edge.
    pub x2: f64,
    /// Top edge.
    pub y2: f64,
}

impl Rect {
    /// Creates a rectangle from two opposite corners given in any order.
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Self {
            x1: a.x.min(b.x),
            y1: a.y.min(b.y),
            x2: a.x.max(b.x),
            y2: a.y.max(b.y),
        }
    }

    /// Creates a rectangle from edge coordinates; panics in debug builds
    /// if `x1 > x2` or `y1 > y2`.
    #[inline]
    pub fn from_coords(x1: f64, y1: f64, x2: f64, y2: f64) -> Self {
        debug_assert!(x1 <= x2 && y1 <= y2, "malformed rect: {x1},{y1},{x2},{y2}");
        Self { x1, y1, x2, y2 }
    }

    /// The axis-aligned square of half-side `half` centred on `c`.
    #[inline]
    pub fn centered_square(c: Point, half: f64) -> Self {
        debug_assert!(half >= 0.0);
        Self::from_coords(c.x - half, c.y - half, c.x + half, c.y + half)
    }

    /// The axis-aligned rectangle of half-extents `(hx, hy)` centred on `c`.
    #[inline]
    pub fn centered(c: Point, hx: f64, hy: f64) -> Self {
        debug_assert!(hx >= 0.0 && hy >= 0.0);
        Self::from_coords(c.x - hx, c.y - hy, c.x + hx, c.y + hy)
    }

    /// The minimum bounding rectangle of a non-empty point set.
    /// Returns `None` for an empty iterator.
    pub fn bounding<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut r = Rect::from_coords(first.x, first.y, first.x, first.y);
        for p in it {
            r.x1 = r.x1.min(p.x);
            r.y1 = r.y1.min(p.y);
            r.x2 = r.x2.max(p.x);
            r.y2 = r.y2.max(p.y);
        }
        Some(r)
    }

    /// Width (`x` extent).
    #[inline]
    pub fn width(&self) -> f64 {
        self.x2 - self.x1
    }

    /// Height (`y` extent).
    #[inline]
    pub fn height(&self) -> f64 {
        self.y2 - self.y1
    }

    /// Area. Zero for degenerate rectangles.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half the perimeter (`width + height`), the classic R-tree margin.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Geometric centre.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.x1 + self.x2) * 0.5, (self.y1 + self.y2) * 0.5)
    }

    /// The rectangle is degenerate (zero area) up to [`EPSILON`].
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.width() <= EPSILON || self.height() <= EPSILON
    }

    /// Closed containment: boundary points count as inside.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x1 && p.x <= self.x2 && p.y >= self.y1 && p.y <= self.y2
    }

    /// Strict (open-set) containment: boundary points are outside.
    #[inline]
    pub fn contains_strict(&self, p: Point) -> bool {
        p.x > self.x1 && p.x < self.x2 && p.y > self.y1 && p.y < self.y2
    }

    /// `other` lies entirely within `self` (closed semantics).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.x1 >= self.x1 && other.x2 <= self.x2 && other.y1 >= self.y1 && other.y2 <= self.y2
    }

    /// The rectangles share at least a boundary point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x1 <= other.x2 && other.x1 <= self.x2 && self.y1 <= other.y2 && other.y1 <= self.y2
    }

    /// The rectangles share interior points (not merely boundaries).
    #[inline]
    pub fn intersects_interior(&self, other: &Rect) -> bool {
        self.x1 < other.x2 && other.x1 < self.x2 && self.y1 < other.y2 && other.y1 < self.y2
    }

    /// Intersection rectangle, or `None` if disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
            x2: self.x2.min(other.x2),
            y2: self.y2.min(other.y2),
        })
    }

    /// Smallest rectangle containing both inputs.
    pub fn union_mbr(&self, other: &Rect) -> Rect {
        Rect {
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
            x2: self.x2.max(other.x2),
            y2: self.y2.max(other.y2),
        }
    }

    /// Area increase caused by enlarging `self` to cover `other`
    /// (Guttman's R-tree insertion heuristic).
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union_mbr(other).area() - self.area()
    }

    /// Minimum distance from `p` to the rectangle (zero when inside).
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.distance_sq_to_point(p).sqrt()
    }

    /// Squared minimum distance from `p` to the rectangle (the R-tree
    /// `MINDIST` metric).
    pub fn distance_sq_to_point(&self, p: Point) -> f64 {
        let dx = (self.x1 - p.x).max(0.0).max(p.x - self.x2);
        let dy = (self.y1 - p.y).max(0.0).max(p.y - self.y2);
        dx * dx + dy * dy
    }

    /// Maximum distance from `p` to any point of the rectangle.
    pub fn max_distance_to_point(&self, p: Point) -> f64 {
        let dx = (p.x - self.x1).abs().max((p.x - self.x2).abs());
        let dy = (p.y - self.y1).abs().max((p.y - self.y2).abs());
        dx.hypot(dy)
    }

    /// Corners in counter-clockwise order starting at `(x1, y1)`.
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(self.x1, self.y1),
            Point::new(self.x2, self.y1),
            Point::new(self.x2, self.y2),
            Point::new(self.x1, self.y2),
        ]
    }

    /// Clamps `p` to the closest point inside the rectangle.
    pub fn clamp_point(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.x1, self.x2), p.y.clamp(self.y1, self.y2))
    }

    /// Expands each side outward by `delta` (inward when negative).
    /// Returns `None` if a negative delta would invert the rectangle.
    pub fn inflate(&self, delta: f64) -> Option<Rect> {
        let r = Rect {
            x1: self.x1 - delta,
            y1: self.y1 - delta,
            x2: self.x2 + delta,
            y2: self.y2 + delta,
        };
        (r.x1 <= r.x2 && r.y1 <= r.y2).then_some(r)
    }
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.6},{:.6}]x[{:.6},{:.6}]",
            self.x1, self.x2, self.y1, self.y2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn r(x1: f64, y1: f64, x2: f64, y2: f64) -> Rect {
        Rect::from_coords(x1, y1, x2, y2)
    }

    #[test]
    fn new_normalizes_corner_order() {
        let a = Rect::new(Point::new(3.0, 4.0), Point::new(1.0, 2.0));
        assert_eq!(a, r(1.0, 2.0, 3.0, 4.0));
    }

    #[test]
    fn area_and_margin() {
        let a = r(0.0, 0.0, 2.0, 3.0);
        assert!(approx_eq(a.area(), 6.0));
        assert!(approx_eq(a.margin(), 5.0));
    }

    #[test]
    fn containment_closed_vs_strict() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let edge = Point::new(0.0, 0.5);
        assert!(a.contains(edge));
        assert!(!a.contains_strict(edge));
        assert!(a.contains_strict(Point::new(0.5, 0.5)));
    }

    #[test]
    fn intersection_of_overlapping_rects() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.intersection(&b), Some(r(1.0, 1.0, 2.0, 2.0)));
        assert!(a.intersects_interior(&b));
    }

    #[test]
    fn touching_rects_intersect_but_not_interior() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects_interior(&b));
        let i = a.intersection(&b).unwrap();
        assert!(approx_eq(i.area(), 0.0));
    }

    #[test]
    fn disjoint_rects_do_not_intersect() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, 2.0, 3.0, 3.0);
        assert!(!a.intersects(&b));
        assert_eq!(a.intersection(&b), None);
    }

    #[test]
    fn mindist_zero_inside_and_euclidean_outside() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert!(approx_eq(a.distance_to_point(Point::new(1.0, 1.0)), 0.0));
        assert!(approx_eq(a.distance_to_point(Point::new(5.0, 2.0)), 3.0));
        assert!(approx_eq(a.distance_to_point(Point::new(5.0, 6.0)), 5.0));
    }

    #[test]
    fn max_distance_reaches_farthest_corner() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert!(approx_eq(
            a.max_distance_to_point(Point::new(0.0, 0.0)),
            8f64.sqrt()
        ));
    }

    #[test]
    fn bounding_of_points() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.5),
            Point::new(3.0, 2.0),
        ];
        let b = Rect::bounding(pts).unwrap();
        assert_eq!(b, r(-2.0, 0.5, 3.0, 5.0));
        assert_eq!(Rect::bounding(std::iter::empty()), None);
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let a = r(0.0, 0.0, 4.0, 4.0);
        let b = r(1.0, 1.0, 2.0, 2.0);
        assert!(approx_eq(a.enlargement(&b), 0.0));
        assert!(b.enlargement(&a) > 0.0);
    }

    #[test]
    fn inflate_roundtrip_and_inversion() {
        let a = r(1.0, 1.0, 3.0, 3.0);
        let grown = a.inflate(0.5).unwrap();
        assert_eq!(grown, r(0.5, 0.5, 3.5, 3.5));
        assert_eq!(grown.inflate(-0.5).unwrap(), a);
        assert_eq!(a.inflate(-2.0), None);
    }

    #[test]
    fn centered_constructors() {
        let c = Point::new(1.0, 2.0);
        assert_eq!(Rect::centered_square(c, 1.0), r(0.0, 1.0, 2.0, 3.0));
        assert_eq!(Rect::centered(c, 2.0, 0.5), r(-1.0, 1.5, 3.0, 2.5));
    }

    #[test]
    fn clamp_point_projects_onto_rect() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(a.clamp_point(Point::new(5.0, -3.0)), Point::new(1.0, 0.0));
        assert_eq!(
            a.clamp_point(Point::new(0.3, 0.7)),
            Point::new(0.3, 0.7)
        );
    }
}
