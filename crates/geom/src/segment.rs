//! Axis-aligned boundary segments.
//!
//! The boundary of a union of MBRs consists solely of horizontal and
//! vertical segments, so the region code represents boundary edges with
//! the compact [`Segment`] type rather than general line segments.

use crate::{Point, EPSILON};

/// Orientation of an axis-aligned segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Varies in `x` at a fixed `y`.
    Horizontal,
    /// Varies in `y` at a fixed `x`.
    Vertical,
}

/// An axis-aligned segment: at coordinate `at` on the fixed axis, spanning
/// `[lo, hi]` on the free axis.
///
/// A `Vertical` segment is `{(at, t) : lo ≤ t ≤ hi}`; a `Horizontal`
/// segment is `{(t, at) : lo ≤ t ≤ hi}`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Orientation.
    pub axis: Axis,
    /// Fixed-axis coordinate.
    pub at: f64,
    /// Lower bound on the free axis.
    pub lo: f64,
    /// Upper bound on the free axis.
    pub hi: f64,
}

impl Segment {
    /// Vertical segment at `x = at` from `y = lo` to `y = hi`.
    #[inline]
    pub fn vertical(at: f64, lo: f64, hi: f64) -> Self {
        debug_assert!(lo <= hi);
        Self { axis: Axis::Vertical, at, lo, hi }
    }

    /// Horizontal segment at `y = at` from `x = lo` to `x = hi`.
    #[inline]
    pub fn horizontal(at: f64, lo: f64, hi: f64) -> Self {
        debug_assert!(lo <= hi);
        Self { axis: Axis::Horizontal, at, lo, hi }
    }

    /// Segment endpoints as points.
    pub fn endpoints(&self) -> (Point, Point) {
        match self.axis {
            Axis::Vertical => (Point::new(self.at, self.lo), Point::new(self.at, self.hi)),
            Axis::Horizontal => (Point::new(self.lo, self.at), Point::new(self.hi, self.at)),
        }
    }

    /// Segment length on the free axis.
    #[inline]
    pub fn len(&self) -> f64 {
        self.hi - self.lo
    }

    /// The segment is degenerate (a point) up to [`EPSILON`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() <= EPSILON
    }

    /// Minimum Euclidean distance from `p` to the segment.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        match self.axis {
            Axis::Vertical => {
                let dy = (self.lo - p.y).max(0.0).max(p.y - self.hi);
                (self.at - p.x).hypot(dy)
            }
            Axis::Horizontal => {
                let dx = (self.lo - p.x).max(0.0).max(p.x - self.hi);
                (self.at - p.y).hypot(dx)
            }
        }
    }

    /// Closest point of the segment to `p`.
    pub fn closest_point_to(&self, p: Point) -> Point {
        match self.axis {
            Axis::Vertical => Point::new(self.at, p.y.clamp(self.lo, self.hi)),
            Axis::Horizontal => Point::new(p.x.clamp(self.lo, self.hi), self.at),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn vertical_distance_perpendicular_and_endpoint() {
        let s = Segment::vertical(2.0, 0.0, 4.0);
        // Perpendicular projection hits the segment.
        assert!(approx_eq(s.distance_to_point(Point::new(5.0, 2.0)), 3.0));
        // Beyond the top endpoint: distance to (2, 4).
        assert!(approx_eq(
            s.distance_to_point(Point::new(5.0, 8.0)),
            5.0
        ));
    }

    #[test]
    fn horizontal_distance_perpendicular_and_endpoint() {
        let s = Segment::horizontal(1.0, -1.0, 1.0);
        assert!(approx_eq(s.distance_to_point(Point::new(0.0, 3.0)), 2.0));
        assert!(approx_eq(
            s.distance_to_point(Point::new(4.0, 5.0)),
            5.0
        ));
    }

    #[test]
    fn closest_point_clamps_to_span() {
        let s = Segment::vertical(0.0, 0.0, 1.0);
        assert_eq!(s.closest_point_to(Point::new(3.0, 0.5)), Point::new(0.0, 0.5));
        assert_eq!(s.closest_point_to(Point::new(3.0, 9.0)), Point::new(0.0, 1.0));
    }

    #[test]
    fn endpoints_match_orientation() {
        let v = Segment::vertical(1.0, 2.0, 3.0);
        assert_eq!(v.endpoints(), (Point::new(1.0, 2.0), Point::new(1.0, 3.0)));
        let h = Segment::horizontal(1.0, 2.0, 3.0);
        assert_eq!(h.endpoints(), (Point::new(2.0, 1.0), Point::new(3.0, 1.0)));
    }

    #[test]
    fn degenerate_segment_is_empty() {
        assert!(Segment::vertical(0.0, 1.0, 1.0).is_empty());
        assert!(!Segment::vertical(0.0, 1.0, 1.1).is_empty());
    }
}
