//! Computational-geometry kernel for the `airshare` workspace.
//!
//! This crate provides the geometric primitives and region algebra that the
//! sharing-based query algorithms of Ku, Zimmermann & Wang (ICDE 2007)
//! rest on:
//!
//! * [`Point`] and [`Rect`] — positions and minimum bounding rectangles
//!   (MBRs) in a planar, Euclidean world (coordinates in miles throughout
//!   the workspace).
//! * [`Segment`] — axis-aligned boundary edges with point-to-segment
//!   distances, used to find the *nearest boundary edge* `e_s` of a merged
//!   verified region (Lemma 3.1 of the paper).
//! * [`RectUnion`] — the *merged verified region* `MVR = p1.VR ∪ … ∪
//!   pj.VR`. Peer verified regions are MBRs, so the general `MapOverlay`
//!   of the paper specializes to an exact union of axis-aligned
//!   rectangles. The type supports containment tests, boundary
//!   extraction, disjoint decomposition, exact areas, coverage tests and
//!   rectangle difference (for SBWQ window reduction).
//! * [`disk`] — exact disk/polygon and disk/region intersection areas,
//!   used to compute the *unverified region* area `u` that drives the
//!   correctness probability `e^{-λu}` of Lemma 3.2.
//!
//! All computations are `f64`-exact where the inputs allow it (interval
//! arithmetic over input coordinates) and closed-form otherwise (circular
//! segment integrals). Nothing in this crate allocates on hot paths
//! beyond the output collections.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod disk_mod;
mod intervals;
mod point;
mod rect;
mod region;
mod segment;

pub use intervals::IntervalSet;
pub use point::Point;
pub use rect::Rect;
pub use region::RectUnion;
pub use segment::{Axis, Segment};

/// Disk (circle) area computations.
pub mod disk {
    pub use crate::disk_mod::{
        disk_area, disk_polygon_area, disk_rect_area, disk_region_area, Disk,
    };
}

/// Comparison tolerance used when collapsing floating-point coordinates
/// that should be identical (e.g. abutting rectangle borders produced by
/// the same source data). World coordinates are in miles, so `1e-9` miles
/// is ~2 micrometres — far below any physical feature of the simulation.
pub const EPSILON: f64 = 1e-9;

/// Returns `true` when `a` and `b` are equal up to [`EPSILON`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPSILON
}

/// Meters per mile; the paper quotes transmission ranges in meters but
/// simulates a 20 mi × 20 mi world.
pub const METERS_PER_MILE: f64 = 1609.344;

/// Converts meters to miles.
#[inline]
pub fn meters_to_miles(m: f64) -> f64 {
    m / METERS_PER_MILE
}

/// Converts miles to meters.
#[inline]
pub fn miles_to_meters(mi: f64) -> f64 {
    mi * METERS_PER_MILE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_roundtrip() {
        assert!(approx_eq(meters_to_miles(miles_to_meters(3.25)), 3.25));
        assert!(approx_eq(miles_to_meters(1.0), 1609.344));
    }

    #[test]
    fn approx_eq_tolerates_epsilon() {
        assert!(approx_eq(1.0, 1.0 + 0.5 * EPSILON));
        assert!(!approx_eq(1.0, 1.0 + 10.0 * EPSILON));
    }
}
