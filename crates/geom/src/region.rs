//! Unions of axis-aligned rectangles — the *merged verified region*.
//!
//! Each peer contributes its verified region as an MBR; SBNN/SBWQ operate
//! on the union `MVR = VR₁ ∪ … ∪ VRⱼ`. The paper invokes the general
//! `MapOverlay` algorithm of de Berg et al.; because every input is an
//! axis-aligned rectangle, the overlay specializes to exact sweep-line
//! interval algebra, which is what this module implements:
//!
//! * [`RectUnion::contains`] — is the query host inside the MVR?
//!   (precondition of Lemma 3.1)
//! * [`RectUnion::boundary_edges`] / [`RectUnion::distance_to_boundary`] —
//!   the edge set `E` of the MVR and the nearest edge `e_s` whose distance
//!   `‖q, e_s‖` is the verification radius of Lemma 3.1.
//! * [`RectUnion::disjoint_rects`] / [`RectUnion::area`] — a disjoint slab
//!   decomposition, which also powers the exact disk∩region areas behind
//!   Lemma 3.2.
//! * [`RectUnion::covers_rect`] / [`RectUnion::rect_difference`] — window
//!   coverage and window reduction `w → w′` for SBWQ.
//! * [`RectUnion::largest_inscribed_square`] — a sound verified region a
//!   host may adopt for its own cache after answering a query from peers.

use crate::{IntervalSet, Point, Rect, Segment, EPSILON};
use std::sync::OnceLock;

/// A union of axis-aligned rectangles in the plane.
///
/// The rectangle list is kept as provided (minus degenerate members);
/// all queries are answered by sweeps over the list, so construction is
/// O(n) and queries are O(n log n) in the number of rectangles — peers
/// number in the tens. The boundary-edge set, however, is consulted per
/// verification step by SBNN's MVR pruning, so it is computed once on
/// first use and cached until the member list changes.
#[derive(Debug, Default)]
pub struct RectUnion {
    rects: Vec<Rect>,
    /// Lazily computed boundary edges; invalidated by [`RectUnion::push`].
    /// `OnceLock` (not `OnceCell`) so cached regions stay `Sync` for the
    /// parallel simulation runtime's shared snapshots.
    edges: OnceLock<Vec<Segment>>,
}

impl Clone for RectUnion {
    fn clone(&self) -> Self {
        // Carry the cache across clones: pruned copies are rebuilt from
        // scratch anyway, and verbatim clones keep their edges valid.
        let edges = OnceLock::new();
        if let Some(e) = self.edges.get() {
            let _ = edges.set(e.clone());
        }
        Self {
            rects: self.rects.clone(),
            edges,
        }
    }
}

impl RectUnion {
    /// The empty region.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a region from rectangles, dropping degenerate ones.
    pub fn from_rects<I: IntoIterator<Item = Rect>>(rects: I) -> Self {
        Self {
            rects: rects.into_iter().filter(|r| !r.is_degenerate()).collect(),
            edges: OnceLock::new(),
        }
    }

    /// Adds one rectangle to the union (no-op when degenerate).
    pub fn push(&mut self, r: Rect) {
        if !r.is_degenerate() {
            self.rects.push(r);
            self.edges = OnceLock::new();
        }
    }

    /// The member rectangles (possibly overlapping).
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// The region covers no area.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// MBR of the whole region, `None` when empty.
    pub fn mbr(&self) -> Option<Rect> {
        let mut it = self.rects.iter();
        let first = *it.next()?;
        Some(it.fold(first, |acc, r| acc.union_mbr(r)))
    }

    /// Closed containment: `p` lies in at least one member rectangle.
    pub fn contains(&self, p: Point) -> bool {
        self.rects.iter().any(|r| r.contains(p))
    }

    /// Strict containment in the *interior* of the union. A point on the
    /// shared border of two abutting rectangles is interior to the union
    /// even though it is on the boundary of both members, so this cannot
    /// be answered per-rectangle; we test a ball of radius ε via the
    /// boundary distance instead.
    pub fn contains_interior(&self, p: Point) -> bool {
        if !self.contains(p) {
            return false;
        }
        match self.distance_to_boundary(p) {
            Some((d, _)) => d > EPSILON,
            None => false,
        }
    }

    // ------------------------------------------------------------------
    // Boundary extraction
    // ------------------------------------------------------------------

    /// All boundary edges of the union, as axis-aligned segments.
    ///
    /// An edge portion lies on the union boundary iff exactly one of its
    /// two sides is interior to the union. For each candidate grid line we
    /// build the interval sets covered on either side and keep their
    /// symmetric difference.
    ///
    /// Allocating wrapper over [`RectUnion::boundary_edges_cached`].
    pub fn boundary_edges(&self) -> Vec<Segment> {
        self.boundary_edges_cached().to_vec()
    }

    /// The boundary edges, computed on first call and cached until the
    /// next [`RectUnion::push`]. This is what the hot verification path
    /// reads: repeated distance queries against an unchanged region cost
    /// no sweeps and no allocation.
    pub fn boundary_edges_cached(&self) -> &[Segment] {
        self.edges.get_or_init(|| {
            let mut out = Vec::new();
            self.boundary_sweep(true, &mut out);
            self.boundary_sweep(false, &mut out);
            out
        })
    }

    /// One sweep direction: `vertical = true` emits vertical edges
    /// (candidate lines are x-coordinates), otherwise horizontal edges.
    fn boundary_sweep(&self, vertical: bool, out: &mut Vec<Segment>) {
        let mut coords: Vec<f64> = self
            .rects
            .iter()
            .flat_map(|r| {
                if vertical {
                    [r.x1, r.x2]
                } else {
                    [r.y1, r.y2]
                }
            })
            .collect();
        coords.sort_by(f64::total_cmp);
        coords.dedup_by(|a, b| (*a - *b).abs() <= EPSILON);

        for &c in &coords {
            let mut before = Vec::new(); // interior just below / left of the line
            let mut after = Vec::new(); // interior just above / right of the line
            for r in &self.rects {
                let (fixed_lo, fixed_hi, free_lo, free_hi) = if vertical {
                    (r.x1, r.x2, r.y1, r.y2)
                } else {
                    (r.y1, r.y2, r.x1, r.x2)
                };
                if fixed_lo + EPSILON < c && fixed_hi >= c - EPSILON {
                    before.push((free_lo, free_hi));
                }
                if fixed_hi - EPSILON > c && fixed_lo <= c + EPSILON {
                    after.push((free_lo, free_hi));
                }
            }
            let before = IntervalSet::from_intervals(before);
            let after = IntervalSet::from_intervals(after);
            for &(lo, hi) in before.symmetric_difference(&after).runs() {
                out.push(if vertical {
                    Segment::vertical(c, lo, hi)
                } else {
                    Segment::horizontal(c, lo, hi)
                });
            }
        }
    }

    /// Distance from `p` to the nearest boundary edge, together with that
    /// edge (the paper's `e_s`). `None` when the region is empty.
    ///
    /// When `p` is inside the union this is the verification radius of
    /// Lemma 3.1: every POI closer to `p` than this distance is a
    /// guaranteed (verified) nearest neighbor.
    pub fn distance_to_boundary(&self, p: Point) -> Option<(f64, Segment)> {
        self.boundary_edges_cached()
            .iter()
            .map(|&s| (s.distance_to_point(p), s))
            .min_by(|a, b| a.0.total_cmp(&b.0))
    }

    // ------------------------------------------------------------------
    // Disjoint decomposition / area
    // ------------------------------------------------------------------

    /// Decomposes the union into disjoint rectangles via a vertical-slab
    /// sweep. The output rectangles tile the union exactly (shared borders
    /// only) and are convenient for exact area integrals.
    pub fn disjoint_rects(&self) -> Vec<Rect> {
        let mut xs: Vec<f64> = self.rects.iter().flat_map(|r| [r.x1, r.x2]).collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() <= EPSILON);

        let mut out = Vec::new();
        for w in xs.windows(2) {
            let (xa, xb) = (w[0], w[1]);
            if xb - xa <= EPSILON {
                continue;
            }
            let covered = IntervalSet::from_intervals(
                self.rects
                    .iter()
                    .filter(|r| r.x1 <= xa + EPSILON && r.x2 >= xb - EPSILON)
                    .map(|r| (r.y1, r.y2)),
            );
            for &(lo, hi) in covered.runs() {
                out.push(Rect::from_coords(xa, lo, xb, hi));
            }
        }
        out
    }

    /// Exact area of the union.
    pub fn area(&self) -> f64 {
        self.disjoint_rects().iter().map(Rect::area).sum()
    }

    // ------------------------------------------------------------------
    // Coverage and difference (SBWQ)
    // ------------------------------------------------------------------

    /// `w` is entirely covered by the union (up to ε slivers). When this
    /// holds, an SBWQ window query is fully answerable from peer caches.
    pub fn covers_rect(&self, w: &Rect) -> bool {
        self.rect_difference(w).is_empty()
    }

    /// The uncovered parts `w \ union`, as disjoint rectangles — SBWQ's
    /// reduced query windows `w′`. Adjacent slabs with identical uncovered
    /// spans are coalesced so the output stays small.
    pub fn rect_difference(&self, w: &Rect) -> Vec<Rect> {
        if w.is_degenerate() {
            return Vec::new();
        }
        let mut xs: Vec<f64> = vec![w.x1, w.x2];
        for r in &self.rects {
            if r.intersects_interior(w) {
                if r.x1 > w.x1 && r.x1 < w.x2 {
                    xs.push(r.x1);
                }
                if r.x2 > w.x1 && r.x2 < w.x2 {
                    xs.push(r.x2);
                }
            }
        }
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() <= EPSILON);

        let full = IntervalSet::single(w.y1, w.y2);
        let mut out: Vec<Rect> = Vec::new();
        // Open rectangles being extended across slabs, keyed by y-run.
        let mut open: Vec<(f64, f64, usize)> = Vec::new(); // (ylo, yhi, index in out)
        for win in xs.windows(2) {
            let (xa, xb) = (win[0], win[1]);
            if xb - xa <= EPSILON {
                continue;
            }
            let covered = IntervalSet::from_intervals(
                self.rects
                    .iter()
                    .filter(|r| r.x1 <= xa + EPSILON && r.x2 >= xb - EPSILON)
                    .map(|r| (r.y1, r.y2)),
            );
            let uncovered = full.difference(&covered);
            let mut next_open = Vec::with_capacity(uncovered.runs().len());
            for &(lo, hi) in uncovered.runs() {
                // Extend an open rect with the same y-run, else start one.
                if let Some(&(plo, phi, idx)) = open
                    .iter()
                    .find(|&&(plo, phi, _)| (plo - lo).abs() <= EPSILON && (phi - hi).abs() <= EPSILON)
                {
                    out[idx].x2 = xb;
                    next_open.push((plo, phi, idx));
                } else {
                    out.push(Rect::from_coords(xa, lo, xb, hi));
                    next_open.push((lo, hi, out.len() - 1));
                }
            }
            open = next_open;
        }
        out
    }

    /// Intersection of the union with `w`, as disjoint rectangles.
    pub fn rect_intersection(&self, w: &Rect) -> Vec<Rect> {
        self.disjoint_rects()
            .into_iter()
            .filter_map(|r| r.intersection(w))
            .filter(|r| !r.is_degenerate())
            .collect()
    }

    // ------------------------------------------------------------------
    // Inscribed verified regions
    // ------------------------------------------------------------------

    /// The largest axis-aligned square centred on `p` that fits inside the
    /// union, found by binary search on the half-side up to `max_half`.
    /// Returns `None` when `p` is not inside the union (no such square).
    ///
    /// Used when a host answers a query purely from peers: every POI
    /// inside the MVR is known to the host, so any sub-rectangle of the
    /// MVR is a *sound* verified region for its own cache.
    pub fn largest_inscribed_square(&self, p: Point, max_half: f64) -> Option<Rect> {
        if !self.contains(p) || max_half <= 0.0 {
            return None;
        }
        // Fast path: the boundary distance bounds the inscribed square;
        // a square of half-side h fits iff all of it is covered, and it
        // certainly fits when h ≤ d/√2 … but coverage is not monotone in
        // a simple closed form, so binary search on the coverage test.
        let (d, _) = self.distance_to_boundary(p)?;
        if d <= EPSILON {
            return None;
        }
        let mut lo = 0.0_f64; // known to fit (degenerate)
        let mut hi = max_half.min(
            self.mbr()
                .map(|m| m.width().max(m.height()))
                .unwrap_or(max_half),
        );
        if self.covers_rect(&Rect::centered_square(p, hi)) {
            return Some(Rect::centered_square(p, hi));
        }
        for _ in 0..48 {
            let mid = 0.5 * (lo + hi);
            if self.covers_rect(&Rect::centered_square(p, mid)) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (lo > EPSILON).then(|| Rect::centered_square(p, lo))
    }
}

impl From<Rect> for RectUnion {
    fn from(r: Rect) -> Self {
        RectUnion::from_rects([r])
    }
}

impl FromIterator<Rect> for RectUnion {
    fn from_iter<T: IntoIterator<Item = Rect>>(iter: T) -> Self {
        RectUnion::from_rects(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn r(x1: f64, y1: f64, x2: f64, y2: f64) -> Rect {
        Rect::from_coords(x1, y1, x2, y2)
    }

    #[test]
    fn empty_region_answers_trivially() {
        let u = RectUnion::new();
        assert!(u.is_empty());
        assert!(!u.contains(Point::ORIGIN));
        assert_eq!(u.mbr(), None);
        assert!(approx_eq(u.area(), 0.0));
        assert!(u.boundary_edges().is_empty());
        assert_eq!(u.distance_to_boundary(Point::ORIGIN), None);
    }

    #[test]
    fn single_rect_area_and_boundary() {
        let u = RectUnion::from(r(0.0, 0.0, 2.0, 1.0));
        assert!(approx_eq(u.area(), 2.0));
        let edges = u.boundary_edges();
        assert_eq!(edges.len(), 4);
        let total: f64 = edges.iter().map(Segment::len).sum();
        assert!(approx_eq(total, 6.0)); // perimeter
    }

    #[test]
    fn overlapping_rects_area_by_inclusion_exclusion() {
        let u = RectUnion::from_rects([r(0.0, 0.0, 2.0, 2.0), r(1.0, 1.0, 3.0, 3.0)]);
        // 4 + 4 - 1 = 7
        assert!(approx_eq(u.area(), 7.0));
    }

    #[test]
    fn boundary_of_plus_shape_excludes_internal_edges() {
        // Horizontal bar and vertical bar crossing: union boundary is the
        // plus outline; internal shared edges must not appear.
        let u = RectUnion::from_rects([r(0.0, 1.0, 3.0, 2.0), r(1.0, 0.0, 2.0, 3.0)]);
        let perimeter: f64 = u.boundary_edges().iter().map(Segment::len).sum();
        // Plus sign of arm width 1, arm length 1 each side: 12 unit edges.
        assert!(approx_eq(perimeter, 12.0));
        assert!(approx_eq(u.area(), 3.0 + 3.0 - 1.0));
    }

    #[test]
    fn abutting_rects_fuse_their_shared_edge() {
        let u = RectUnion::from_rects([r(0.0, 0.0, 1.0, 1.0), r(1.0, 0.0, 2.0, 1.0)]);
        let perimeter: f64 = u.boundary_edges().iter().map(Segment::len).sum();
        assert!(approx_eq(perimeter, 6.0)); // 2x1 box
        assert!(approx_eq(u.area(), 2.0));
        // The shared border x=1 is interior to the union.
        assert!(u.contains_interior(Point::new(1.0, 0.5)));
        // A true boundary point is not interior.
        assert!(!u.contains_interior(Point::new(0.0, 0.5)));
    }

    #[test]
    fn distance_to_boundary_inside_l_shape() {
        // L-shape: the near edge from (0.5, 0.5) is left/bottom at 0.5,
        // but also the inner corner edges of the L.
        let u = RectUnion::from_rects([r(0.0, 0.0, 2.0, 1.0), r(0.0, 0.0, 1.0, 2.0)]);
        let (d, _) = u.distance_to_boundary(Point::new(0.5, 0.5)).unwrap();
        assert!(approx_eq(d, 0.5));
        // Point deeper in the horizontal arm: nearest boundary is y=1 above.
        let (d2, seg) = u.distance_to_boundary(Point::new(1.5, 0.6)).unwrap();
        assert!(approx_eq(d2, 0.4), "d2 = {d2}");
        assert_eq!(seg.axis, crate::Axis::Horizontal);
    }

    #[test]
    fn disjoint_rects_tile_without_overlap() {
        let u = RectUnion::from_rects([
            r(0.0, 0.0, 2.0, 2.0),
            r(1.0, 1.0, 3.0, 3.0),
            r(2.5, 0.0, 4.0, 1.5),
        ]);
        let tiles = u.disjoint_rects();
        let total: f64 = tiles.iter().map(Rect::area).sum();
        assert!(approx_eq(total, u.area()));
        for (i, a) in tiles.iter().enumerate() {
            for b in &tiles[i + 1..] {
                assert!(
                    !a.intersects_interior(b),
                    "tiles overlap: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn covers_rect_full_partial_none() {
        let u = RectUnion::from_rects([r(0.0, 0.0, 2.0, 2.0), r(2.0, 0.0, 4.0, 2.0)]);
        assert!(u.covers_rect(&r(0.5, 0.5, 3.5, 1.5))); // spans the seam
        assert!(!u.covers_rect(&r(1.0, 1.0, 5.0, 1.5))); // hangs off the right
        assert!(!u.covers_rect(&r(10.0, 10.0, 11.0, 11.0)));
    }

    #[test]
    fn rect_difference_computes_reduced_windows() {
        let u = RectUnion::from(r(0.0, 0.0, 2.0, 2.0));
        let w = r(1.0, 1.0, 3.0, 3.0);
        let diff = u.rect_difference(&w);
        let area: f64 = diff.iter().map(Rect::area).sum();
        // w has area 4, covered quarter is 1x1 = 1.
        assert!(approx_eq(area, 3.0));
        for d in &diff {
            // Every difference piece is inside w and outside the union interior.
            assert!(w.contains_rect(d));
            assert!(!u.contains_interior(d.center()));
        }
    }

    #[test]
    fn rect_difference_empty_when_covered() {
        let u = RectUnion::from(r(0.0, 0.0, 4.0, 4.0));
        assert!(u.rect_difference(&r(1.0, 1.0, 2.0, 2.0)).is_empty());
    }

    #[test]
    fn rect_difference_is_whole_window_when_disjoint() {
        let u = RectUnion::from(r(0.0, 0.0, 1.0, 1.0));
        let w = r(5.0, 5.0, 6.0, 7.0);
        let diff = u.rect_difference(&w);
        assert_eq!(diff.len(), 1);
        assert!(approx_eq(diff[0].area(), w.area()));
    }

    #[test]
    fn rect_difference_coalesces_slabs() {
        // Union carves a notch out of the middle; left and right slabs of
        // the remainder share y-runs and should merge horizontally.
        let u = RectUnion::from(r(1.0, 0.0, 2.0, 1.0));
        let w = r(0.0, 0.0, 3.0, 2.0);
        let diff = u.rect_difference(&w);
        let area: f64 = diff.iter().map(Rect::area).sum();
        assert!(approx_eq(area, 6.0 - 1.0));
        // Slab coalescing keeps the piece count minimal for this shape
        // (left column, notch top, right column — not five raw slabs).
        assert!(diff.len() <= 3, "pieces: {diff:?}");
        for (i, a) in diff.iter().enumerate() {
            for b in &diff[i + 1..] {
                assert!(!a.intersects_interior(b));
            }
        }
    }

    #[test]
    fn rect_intersection_pieces_lie_in_both() {
        let u = RectUnion::from_rects([r(0.0, 0.0, 2.0, 2.0), r(3.0, 0.0, 5.0, 2.0)]);
        let w = r(1.0, 0.5, 4.0, 1.5);
        let pieces = u.rect_intersection(&w);
        let area: f64 = pieces.iter().map(Rect::area).sum();
        assert!(approx_eq(area, 1.0 + 1.0)); // 1x1 from each rect
        for p in &pieces {
            assert!(w.contains_rect(p));
            assert!(u.contains(p.center()));
        }
    }

    #[test]
    fn largest_inscribed_square_in_single_rect() {
        let u = RectUnion::from(r(0.0, 0.0, 4.0, 2.0));
        let sq = u.largest_inscribed_square(Point::new(2.0, 1.0), 10.0).unwrap();
        // Limited by the vertical extent: half-side 1 (binary search may
        // overshoot by the coverage-test ε).
        assert!((sq.width() - 2.0).abs() < 1e-6, "width = {}", sq.width());
        assert!(u.covers_rect(&sq));
    }

    #[test]
    fn largest_inscribed_square_spans_seams() {
        let u = RectUnion::from_rects([r(0.0, 0.0, 2.0, 4.0), r(2.0, 0.0, 4.0, 4.0)]);
        let sq = u
            .largest_inscribed_square(Point::new(2.0, 2.0), 10.0)
            .unwrap();
        // Seam is interior: square can grow to the full union.
        assert!(sq.width() > 3.9);
    }

    #[test]
    fn largest_inscribed_square_outside_is_none() {
        let u = RectUnion::from(r(0.0, 0.0, 1.0, 1.0));
        assert_eq!(u.largest_inscribed_square(Point::new(5.0, 5.0), 1.0), None);
    }

    #[test]
    fn boundary_cache_invalidates_on_push() {
        let mut u = RectUnion::from(r(0.0, 0.0, 1.0, 1.0));
        let perimeter: f64 = u.boundary_edges_cached().iter().map(Segment::len).sum();
        assert!(approx_eq(perimeter, 4.0));
        // Extending the union must drop the cached edges: the fused shape
        // is a 2x1 box with perimeter 6, not two unit boxes.
        u.push(r(1.0, 0.0, 2.0, 1.0));
        let perimeter: f64 = u.boundary_edges_cached().iter().map(Segment::len).sum();
        assert!(approx_eq(perimeter, 6.0));
        // Clones carry a still-valid cache.
        let c = u.clone();
        let cloned: f64 = c.boundary_edges_cached().iter().map(Segment::len).sum();
        assert!(approx_eq(cloned, 6.0));
    }

    #[test]
    fn degenerate_rects_are_ignored() {
        let u = RectUnion::from_rects([r(0.0, 0.0, 0.0, 5.0), r(1.0, 1.0, 2.0, 2.0)]);
        assert_eq!(u.rects().len(), 1);
    }
}
