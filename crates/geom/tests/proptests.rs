//! Property-based tests for the geometry kernel.
//!
//! Every invariant here is one the SBNN/SBWQ algorithms lean on:
//! exact areas, disjoint decompositions, boundary semantics, interval
//! algebra, and the disk-area integrals behind Lemma 3.2.

use airshare_geom::disk::{disk_rect_area, disk_region_area, Disk};
use airshare_geom::{IntervalSet, Point, Rect, RectUnion};
use proptest::prelude::*;

const TOL: f64 = 1e-6;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (
        -50.0..50.0f64,
        -50.0..50.0f64,
        0.01..30.0f64,
        0.01..30.0f64,
    )
        .prop_map(|(x, y, w, h)| Rect::from_coords(x, y, x + w, y + h))
}

fn arb_rects(max: usize) -> impl Strategy<Value = Vec<Rect>> {
    prop::collection::vec(arb_rect(), 1..max)
}

fn arb_point() -> impl Strategy<Value = Point> {
    (-60.0..60.0f64, -60.0..60.0f64).prop_map(|(x, y)| Point::new(x, y))
}

/// Inclusion–exclusion area for up to a handful of rectangles, used as an
/// independent oracle for `RectUnion::area`.
fn oracle_union_area(rects: &[Rect]) -> f64 {
    let n = rects.len();
    assert!(n <= 20);
    let mut area = 0.0;
    for mask in 1u32..(1 << n) {
        let mut inter: Option<Rect> = None;
        for (i, r) in rects.iter().enumerate() {
            if mask & (1 << i) != 0 {
                inter = match inter {
                    None => Some(*r),
                    Some(acc) => match acc.intersection(r) {
                        Some(x) => Some(x),
                        None => {
                            inter = None;
                            break;
                        }
                    },
                };
                if inter.is_none() {
                    break;
                }
            }
        }
        if let Some(x) = inter {
            let sign = if mask.count_ones() % 2 == 1 { 1.0 } else { -1.0 };
            area += sign * x.area();
        }
    }
    area
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn union_area_matches_inclusion_exclusion(rects in arb_rects(6)) {
        let u = RectUnion::from_rects(rects.clone());
        let expect = oracle_union_area(&rects);
        prop_assert!((u.area() - expect).abs() < TOL,
            "sweep {} vs oracle {}", u.area(), expect);
    }

    #[test]
    fn disjoint_decomposition_tiles_exactly(rects in arb_rects(7)) {
        let u = RectUnion::from_rects(rects);
        let tiles = u.disjoint_rects();
        let sum: f64 = tiles.iter().map(Rect::area).sum();
        prop_assert!((sum - u.area()).abs() < TOL);
        for (i, a) in tiles.iter().enumerate() {
            for b in &tiles[i + 1..] {
                prop_assert!(!a.intersects_interior(b), "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn containment_agrees_with_member_rects(rects in arb_rects(6), p in arb_point()) {
        let u = RectUnion::from_rects(rects.clone());
        let direct = rects.iter().any(|r| r.contains(p));
        prop_assert_eq!(u.contains(p), direct);
    }

    #[test]
    fn boundary_distance_is_zero_set_separator(rects in arb_rects(5), p in arb_point()) {
        // Points strictly inside stay inside a ball of the boundary
        // distance; probe a few directions at 99% of the distance.
        let u = RectUnion::from_rects(rects);
        if u.contains(p) {
            if let Some((d, _)) = u.distance_to_boundary(p) {
                if d > 1e-4 {
                    for k in 0..8 {
                        let ang = k as f64 * std::f64::consts::FRAC_PI_4;
                        let q = p.offset(0.99 * d * ang.cos(), 0.99 * d * ang.sin());
                        prop_assert!(u.contains(q),
                            "ball point {q:?} escaped region (d = {d})");
                    }
                }
            }
        }
    }

    #[test]
    fn rect_difference_partitions_window(rects in arb_rects(5), w in arb_rect()) {
        let u = RectUnion::from_rects(rects);
        let diff = u.rect_difference(&w);
        let inter = u.rect_intersection(&w);
        let a_diff: f64 = diff.iter().map(Rect::area).sum();
        let a_inter: f64 = inter.iter().map(Rect::area).sum();
        prop_assert!((a_diff + a_inter - w.area()).abs() < TOL,
            "diff {} + inter {} != window {}", a_diff, a_inter, w.area());
        for d in &diff {
            prop_assert!(w.contains_rect(d));
            // Center of a difference piece is never interior to the union.
            prop_assert!(!u.contains_interior(d.center()));
        }
    }

    #[test]
    fn covers_rect_iff_difference_empty(rects in arb_rects(5), w in arb_rect()) {
        let u = RectUnion::from_rects(rects);
        let covered = u.covers_rect(&w);
        let a_inter: f64 = u.rect_intersection(&w).iter().map(Rect::area).sum();
        if covered {
            prop_assert!((a_inter - w.area()).abs() < TOL);
        } else {
            prop_assert!(a_inter < w.area() + TOL);
        }
    }

    #[test]
    fn inscribed_square_is_covered(rects in arb_rects(5), p in arb_point()) {
        let u = RectUnion::from_rects(rects);
        if let Some(sq) = u.largest_inscribed_square(p, 20.0) {
            // Shrink by a hair to dodge the ε slack of the coverage test.
            let shrunk = sq.inflate(-1e-7).unwrap_or(sq);
            prop_assert!(u.covers_rect(&shrunk), "square {sq:?} not covered");
            prop_assert!(u.contains(p));
        }
    }

    #[test]
    fn disk_rect_area_bounds(c in arb_point(), r in 0.0..40.0f64, rect in arb_rect()) {
        let d = Disk::new(c, r);
        let a = disk_rect_area(d, &rect);
        prop_assert!(a >= -TOL);
        prop_assert!(a <= rect.area() + TOL);
        prop_assert!(a <= d.area() + TOL);
    }

    #[test]
    fn disk_rect_area_additive_under_split(c in arb_point(), r in 0.1..40.0f64, rect in arb_rect()) {
        // Splitting the rectangle in half must preserve the total area.
        let d = Disk::new(c, r);
        let whole = disk_rect_area(d, &rect);
        let mid = 0.5 * (rect.x1 + rect.x2);
        let left = Rect::from_coords(rect.x1, rect.y1, mid, rect.y2);
        let right = Rect::from_coords(mid, rect.y1, rect.x2, rect.y2);
        let split = disk_rect_area(d, &left) + disk_rect_area(d, &right);
        prop_assert!((whole - split).abs() < TOL, "{whole} vs {split}");
    }

    #[test]
    fn disk_region_area_monotone_in_region(rects in arb_rects(5), c in arb_point(), r in 0.1..30.0f64) {
        let d = Disk::new(c, r);
        let all = RectUnion::from_rects(rects.clone());
        let fewer = RectUnion::from_rects(rects[..rects.len() - 1].to_vec());
        let a_all = disk_region_area(d, &all);
        let a_fewer = disk_region_area(d, &fewer);
        prop_assert!(a_all + TOL >= a_fewer, "{a_all} < {a_fewer}");
        prop_assert!(a_all <= d.area() + TOL);
    }

    #[test]
    fn interval_set_union_len_superadditive(
        a in prop::collection::vec((-100.0..100.0f64, 0.01..20.0f64), 0..8),
        b in prop::collection::vec((-100.0..100.0f64, 0.01..20.0f64), 0..8),
    ) {
        let sa = IntervalSet::from_intervals(a.iter().map(|&(lo, w)| (lo, lo + w)));
        let sb = IntervalSet::from_intervals(b.iter().map(|&(lo, w)| (lo, lo + w)));
        let u = sa.union(&sb);
        let i = sa.intersection(&sb);
        // |A ∪ B| + |A ∩ B| = |A| + |B|
        prop_assert!((u.total_len() + i.total_len() - sa.total_len() - sb.total_len()).abs() < TOL);
        // A \ B and B ∩ A partition A.
        let diff = sa.difference(&sb);
        prop_assert!((diff.total_len() + i.total_len() - sa.total_len()).abs() < TOL);
        // Symmetric difference = union − intersection.
        let sym = sa.symmetric_difference(&sb);
        prop_assert!((sym.total_len() - (u.total_len() - i.total_len())).abs() < TOL);
    }

    #[test]
    fn interval_membership_matches_inputs(
        ivs in prop::collection::vec((-100.0..100.0f64, 0.01..20.0f64), 1..8),
        x in -120.0..120.0f64,
    ) {
        let s = IntervalSet::from_intervals(ivs.iter().map(|&(lo, w)| (lo, lo + w)));
        let direct = ivs.iter().any(|&(lo, w)| x >= lo && x <= lo + w);
        // ε-canonicalization may differ exactly at endpoints; probe only
        // clearly-inside / clearly-outside points.
        let near_edge = ivs
            .iter()
            .any(|&(lo, w)| (x - lo).abs() < 1e-6 || (x - (lo + w)).abs() < 1e-6);
        if !near_edge {
            prop_assert_eq!(s.contains(x), direct);
        }
    }

    #[test]
    fn mbr_contains_every_member(rects in arb_rects(6)) {
        let u = RectUnion::from_rects(rects.clone());
        let mbr = u.mbr().unwrap();
        for r in &rects {
            prop_assert!(mbr.contains_rect(r));
        }
    }
}
