//! Property tests: the R-tree must agree with the linear scan oracle on
//! every query type, under both construction paths.

use airshare_geom::{Point, Rect};
use airshare_rtree::{LinearScan, RTree};
use proptest::prelude::*;

fn arb_points(max: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 1..max)
}

fn build(pairs: &[(f64, f64)], bulk: bool) -> (RTree<usize>, LinearScan<usize>) {
    let items: Vec<(Point, usize)> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| (Point::new(x, y), i))
        .collect();
    let scan = LinearScan::from_items(items.clone());
    let tree = if bulk {
        RTree::bulk_load(items)
    } else {
        let mut t = RTree::new(6); // small fan-out exercises splits
        for (p, i) in items {
            t.insert(p, i);
        }
        t
    };
    (tree, scan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn knn_matches_scan(
        pts in arb_points(300),
        qx in -10.0..110.0f64, qy in -10.0..110.0f64,
        k in 1usize..20,
        bulk in any::<bool>(),
    ) {
        let (tree, scan) = build(&pts, bulk);
        tree.check_invariants();
        let q = Point::new(qx, qy);
        let a = tree.knn(q, k);
        let b = scan.knn(q, k);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            // Distances must agree exactly up to fp noise (ties may swap
            // payloads, so compare distances not ids).
            prop_assert!((x.distance - y.distance).abs() < 1e-9,
                "{} vs {}", x.distance, y.distance);
        }
    }

    #[test]
    fn window_matches_scan(
        pts in arb_points(300),
        x in 0.0..90.0f64, y in 0.0..90.0f64, w in 0.0..40.0f64, h in 0.0..40.0f64,
        bulk in any::<bool>(),
    ) {
        let (tree, scan) = build(&pts, bulk);
        let window = Rect::from_coords(x, y, x + w, y + h);
        let mut a: Vec<usize> = tree.window(&window).into_iter().map(|(_, &i)| i).collect();
        let mut b: Vec<usize> = scan.window(&window).into_iter().map(|(_, &i)| i).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn within_distance_matches_scan(
        pts in arb_points(300),
        qx in 0.0..100.0f64, qy in 0.0..100.0f64, r in 0.0..50.0f64,
        bulk in any::<bool>(),
    ) {
        let (tree, scan) = build(&pts, bulk);
        let q = Point::new(qx, qy);
        let mut a: Vec<usize> = tree.within_distance(q, r).into_iter().map(|n| *n.data).collect();
        let mut b: Vec<usize> = scan.within_distance(q, r).into_iter().map(|n| *n.data).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn removal_keeps_tree_consistent(
        pts in arb_points(150),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 1..60),
        qx in 0.0..100.0f64, qy in 0.0..100.0f64,
    ) {
        let items: Vec<(Point, usize)> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Point::new(x, y), i))
            .collect();
        let mut tree = RTree::new(5);
        for (p, i) in items.clone() {
            tree.insert(p, i);
        }
        let mut alive: Vec<(Point, usize)> = items;
        for idx in removals {
            if alive.is_empty() {
                break;
            }
            let (p, i) = alive.swap_remove(idx.index(alive.len()));
            prop_assert_eq!(tree.remove_item(p, &i), Some(i));
            tree.check_invariants();
        }
        prop_assert_eq!(tree.len(), alive.len());
        // Survivors still answer queries exactly.
        let q = Point::new(qx, qy);
        let scan = LinearScan::from_items(alive);
        let a = tree.knn(q, 8);
        let b = scan.knn(q, 8);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.distance - y.distance).abs() < 1e-9);
        }
    }

    #[test]
    fn knn_distances_ascend_and_bound_rest(
        pts in arb_points(200),
        qx in 0.0..100.0f64, qy in 0.0..100.0f64,
        k in 1usize..10,
    ) {
        let (tree, _) = build(&pts, true);
        let q = Point::new(qx, qy);
        let res = tree.knn(q, k);
        for w in res.windows(2) {
            prop_assert!(w[0].distance <= w[1].distance + 1e-12);
        }
        // The k-th distance lower-bounds every non-returned item.
        if res.len() == k {
            let kth = res.last().unwrap().distance;
            let mut count_closer = 0;
            for &(x, y) in &pts {
                if Point::new(x, y).distance(q) < kth - 1e-9 {
                    count_closer += 1;
                }
            }
            prop_assert!(count_closer <= k);
        }
    }
}
