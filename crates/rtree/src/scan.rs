//! Brute-force linear scan baseline.

use crate::Neighbor;
use airshare_geom::{Point, Rect};

/// A flat list of `(Point, T)` items answering the same queries as
/// [`crate::RTree`] by exhaustive scan. Exists to cross-check the tree in
//  tests and to serve as the no-index baseline in benchmarks.
#[derive(Clone, Debug, Default)]
pub struct LinearScan<T> {
    items: Vec<(Point, T)>,
}

impl<T> LinearScan<T> {
    /// Creates an empty scan set.
    pub fn new() -> Self {
        Self { items: Vec::new() }
    }

    /// Builds from a batch of items.
    pub fn from_items(items: Vec<(Point, T)>) -> Self {
        Self { items }
    }

    /// Adds one item.
    pub fn insert(&mut self, point: Point, data: T) {
        self.items.push((point, data));
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// The set holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The `k` nearest items to `q`, ascending by distance.
    pub fn knn(&self, q: Point, k: usize) -> Vec<Neighbor<'_, T>> {
        let mut all: Vec<Neighbor<'_, T>> = self
            .items
            .iter()
            .map(|(p, d)| Neighbor {
                point: *p,
                data: d,
                distance: p.distance(q),
            })
            .collect();
        all.sort_by(|a, b| a.distance.total_cmp(&b.distance));
        all.truncate(k);
        all
    }

    /// All items inside the window.
    pub fn window(&self, w: &Rect) -> Vec<(Point, &T)> {
        self.items
            .iter()
            .filter(|(p, _)| w.contains(*p))
            .map(|(p, d)| (*p, d))
            .collect()
    }

    /// All items within `radius` of `center`, ascending by distance.
    pub fn within_distance(&self, center: Point, radius: f64) -> Vec<Neighbor<'_, T>> {
        let mut out: Vec<Neighbor<'_, T>> = self
            .items
            .iter()
            .filter_map(|(p, d)| {
                let dist = p.distance(center);
                (dist <= radius).then_some(Neighbor {
                    point: *p,
                    data: d,
                    distance: dist,
                })
            })
            .collect();
        out.sort_by(|a, b| a.distance.total_cmp(&b.distance));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knn_orders_by_distance() {
        let s = LinearScan::from_items(vec![
            (Point::new(5.0, 0.0), 'a'),
            (Point::new(1.0, 0.0), 'b'),
            (Point::new(3.0, 0.0), 'c'),
        ]);
        let got: Vec<char> = s.knn(Point::ORIGIN, 2).iter().map(|n| *n.data).collect();
        assert_eq!(got, vec!['b', 'c']);
    }

    #[test]
    fn window_filters() {
        let mut s = LinearScan::new();
        s.insert(Point::new(0.5, 0.5), 1);
        s.insert(Point::new(2.0, 2.0), 2);
        let w = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let got: Vec<i32> = s.window(&w).into_iter().map(|(_, &i)| i).collect();
        assert_eq!(got, vec![1]);
    }

    #[test]
    fn within_distance_inclusive_boundary() {
        let s = LinearScan::from_items(vec![(Point::new(3.0, 4.0), ())]);
        assert_eq!(s.within_distance(Point::ORIGIN, 5.0).len(), 1);
        assert_eq!(s.within_distance(Point::ORIGIN, 4.999).len(), 0);
    }
}
