//! Point R-tree: Guttman insertion, STR bulk load, best-first kNN.

use airshare_geom::{Point, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Default maximum node fan-out.
const DEFAULT_MAX: usize = 16;

/// A kNN search result: the item's position, payload reference and exact
/// Euclidean distance from the query point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor<'a, T> {
    /// Item position.
    pub point: Point,
    /// Borrowed payload.
    pub data: &'a T,
    /// Euclidean distance to the query point.
    pub distance: f64,
}

#[derive(Clone, Debug)]
enum Node<T> {
    Leaf(Vec<(Point, T)>),
    Internal(Vec<(Rect, Node<T>)>),
}

/// A dynamic R-tree over `(Point, T)` items.
///
/// * Insertion follows Guttman: choose the subtree needing least MBR
///   enlargement (ties by smallest area), split overflowing nodes with
///   the quadratic seed heuristic.
/// * [`RTree::bulk_load`] builds a packed tree with sort-tile-recursive
///   (STR) packing — the preferred construction for the static POI sets
///   the simulator works with.
/// * [`RTree::knn`] is the Hjaltason–Samet best-first search over a
///   priority queue of `MINDIST` values; it is exact and visits the
///   minimal set of nodes.
#[derive(Clone, Debug)]
pub struct RTree<T> {
    root: Node<T>,
    len: usize,
    max_entries: usize,
    min_entries: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        Self::new(DEFAULT_MAX)
    }
}

impl<T> RTree<T> {
    /// Creates an empty tree with the given maximum fan-out (≥ 4).
    pub fn new(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "max fan-out must be at least 4");
        Self {
            root: Node::Leaf(Vec::new()),
            len: 0,
            max_entries,
            min_entries: max_entries.div_ceil(2),
        }
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// The tree holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// MBR of all stored items (`None` when empty).
    pub fn mbr(&self) -> Option<Rect> {
        if self.is_empty() {
            None
        } else {
            Some(node_mbr(&self.root))
        }
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Inserts one item.
    pub fn insert(&mut self, point: Point, data: T) {
        debug_assert!(point.is_finite());
        self.len += 1;
        if let Some((r1, n1, r2, n2)) = insert_rec(
            &mut self.root,
            point,
            data,
            self.max_entries,
            self.min_entries,
        ) {
            // Root split: grow the tree by one level.
            self.root = Node::Internal(vec![(r1, n1), (r2, n2)]);
        }
    }

    /// Builds a packed tree from a batch of items using STR packing.
    pub fn bulk_load(mut items: Vec<(Point, T)>) -> Self {
        let max_entries = DEFAULT_MAX;
        let len = items.len();
        if items.is_empty() {
            return Self::new(max_entries);
        }
        // STR: sort by x, cut into vertical slices of ~sqrt(P) leaves,
        // sort each slice by y, pack leaves of `max_entries`.
        let leaf_count = len.div_ceil(max_entries);
        let slice_count = (leaf_count as f64).sqrt().ceil() as usize;
        let per_slice = len.div_ceil(slice_count);
        items.sort_by(|a, b| a.0.x.total_cmp(&b.0.x));

        let mut leaves: Vec<(Rect, Node<T>)> = Vec::with_capacity(leaf_count);
        let mut items = items.into_iter().peekable();
        while items.peek().is_some() {
            let mut slice: Vec<(Point, T)> = items.by_ref().take(per_slice).collect();
            slice.sort_by(|a, b| a.0.y.total_cmp(&b.0.y));
            let mut slice = slice.into_iter().peekable();
            while slice.peek().is_some() {
                let leaf: Vec<(Point, T)> = slice.by_ref().take(max_entries).collect();
                let mbr = Rect::bounding(leaf.iter().map(|e| e.0)).expect("non-empty leaf");
                leaves.push((mbr, Node::Leaf(leaf)));
            }
        }
        // Pack upward until a single root remains.
        let mut level = leaves;
        while level.len() > 1 {
            // Re-tile each level by center-x then center-y for locality.
            level.sort_by(|a, b| a.0.center().x.total_cmp(&b.0.center().x));
            let groups = level.len().div_ceil(max_entries);
            let slice_count = (groups as f64).sqrt().ceil() as usize;
            let per_slice = level.len().div_ceil(slice_count);
            let mut next: Vec<(Rect, Node<T>)> = Vec::with_capacity(groups);
            let mut it = level.into_iter().peekable();
            while it.peek().is_some() {
                let mut slice: Vec<(Rect, Node<T>)> = it.by_ref().take(per_slice).collect();
                slice.sort_by(|a, b| a.0.center().y.total_cmp(&b.0.center().y));
                let mut slice = slice.into_iter().peekable();
                while slice.peek().is_some() {
                    let children: Vec<(Rect, Node<T>)> =
                        slice.by_ref().take(max_entries).collect();
                    let mbr = children
                        .iter()
                        .map(|c| c.0)
                        .reduce(|a, b| a.union_mbr(&b))
                        .expect("non-empty group");
                    next.push((mbr, Node::Internal(children)));
                }
            }
            level = next;
        }
        let root = level.pop().map(|(_, n)| n).unwrap_or(Node::Leaf(Vec::new()));
        Self {
            root,
            len,
            max_entries,
            min_entries: max_entries.div_ceil(2),
        }
    }

    /// Removes one item matching `point` and `predicate`, returning its
    /// payload. Follows Guttman's condense-tree approach: underfull nodes
    /// along the removal path are dissolved and their remaining entries
    /// reinserted, and a root with a single child is collapsed.
    ///
    /// Returns `None` (tree unchanged) when no matching item exists.
    pub fn remove<F: FnMut(&T) -> bool>(&mut self, point: Point, mut predicate: F) -> Option<T> {
        let mut orphans: Vec<(Point, T)> = Vec::new();
        let removed = remove_rec(
            &mut self.root,
            point,
            &mut predicate,
            self.min_entries,
            &mut orphans,
        )?;
        self.len -= 1 + orphans.len();
        // Collapse a root that lost all but one child.
        loop {
            match &mut self.root {
                Node::Internal(children) if children.len() == 1 => {
                    let (_, only) = children.pop().expect("one child");
                    self.root = only;
                }
                Node::Internal(children) if children.is_empty() => {
                    self.root = Node::Leaf(Vec::new());
                }
                _ => break,
            }
        }
        for (p, d) in orphans {
            self.insert(p, d);
        }
        Some(removed)
    }

    /// Removes an item at `point` with payload equal to `needle`
    /// (convenience wrapper over [`RTree::remove`]).
    pub fn remove_item(&mut self, point: Point, needle: &T) -> Option<T>
    where
        T: PartialEq,
    {
        self.remove(point, |d| d == needle)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// All items inside the window (closed containment), in arbitrary
    /// order.
    pub fn window(&self, w: &Rect) -> Vec<(Point, &T)> {
        let mut out = Vec::new();
        window_rec(&self.root, w, &mut out);
        out
    }

    /// All items within Euclidean distance `radius` of `center`.
    pub fn within_distance(&self, center: Point, radius: f64) -> Vec<Neighbor<'_, T>> {
        let mut out = Vec::new();
        let r_sq = radius * radius;
        disk_rec(&self.root, center, r_sq, &mut out);
        out.sort_by(|a, b| a.distance.total_cmp(&b.distance));
        out
    }

    /// The `k` nearest items to `q`, sorted ascending by distance
    /// (fewer when the tree holds fewer items). Exact best-first search.
    pub fn knn(&self, q: Point, k: usize) -> Vec<Neighbor<'_, T>> {
        let mut out = Vec::with_capacity(k.min(self.len));
        if k == 0 || self.is_empty() {
            return out;
        }
        let mut heap: BinaryHeap<HeapEntry<'_, T>> = BinaryHeap::new();
        heap.push(HeapEntry {
            dist_sq: 0.0,
            kind: HeapKind::Node(&self.root),
        });
        while let Some(entry) = heap.pop() {
            match entry.kind {
                HeapKind::Node(Node::Leaf(items)) => {
                    for (p, d) in items {
                        heap.push(HeapEntry {
                            dist_sq: p.distance_sq(q),
                            kind: HeapKind::Item(*p, d),
                        });
                    }
                }
                HeapKind::Node(Node::Internal(children)) => {
                    for (mbr, child) in children {
                        heap.push(HeapEntry {
                            dist_sq: mbr.distance_sq_to_point(q),
                            kind: HeapKind::Node(child),
                        });
                    }
                }
                HeapKind::Item(p, d) => {
                    out.push(Neighbor {
                        point: p,
                        data: d,
                        distance: entry.dist_sq.sqrt(),
                    });
                    if out.len() == k {
                        break;
                    }
                }
            }
        }
        out
    }

    /// The single nearest item to `q`.
    pub fn nearest(&self, q: Point) -> Option<Neighbor<'_, T>> {
        self.knn(q, 1).into_iter().next()
    }

    /// Iterates over all items in depth-first leaf order.
    pub fn iter(&self) -> impl Iterator<Item = (Point, &T)> {
        // A lazy DFS over node references: internal children are pushed
        // onto a stack, leaf slices are drained via a cursor.
        let mut stack: Vec<&Node<T>> = vec![&self.root];
        let mut leaf: Option<(&[(Point, T)], usize)> = None;
        std::iter::from_fn(move || loop {
            if let Some((items, idx)) = &mut leaf {
                if *idx < items.len() {
                    let (p, d) = &items[*idx];
                    *idx += 1;
                    return Some((*p, d));
                }
                leaf = None;
            }
            match stack.pop()? {
                Node::Leaf(items) => leaf = Some((items.as_slice(), 0)),
                Node::Internal(children) => stack.extend(children.iter().map(|(_, c)| c)),
            }
        })
    }

    // ------------------------------------------------------------------
    // Invariant checking (used by tests)
    // ------------------------------------------------------------------

    /// Verifies structural invariants, panicking on violation. Intended
    /// for tests: MBR containment, occupancy bounds, uniform leaf depth.
    pub fn check_invariants(&self) {
        fn rec<T>(
            n: &Node<T>,
            depth: usize,
            is_root: bool,
            max_e: usize,
            min_e: usize,
            leaf_depth: &mut Option<usize>,
        ) -> (Rect, usize) {
            match n {
                Node::Leaf(items) => {
                    assert!(is_root || !items.is_empty(), "empty non-root leaf");
                    assert!(items.len() <= max_e, "overfull leaf");
                    match leaf_depth {
                        Some(d) => assert_eq!(*d, depth, "leaves at differing depths"),
                        None => *leaf_depth = Some(depth),
                    }
                    let mbr = Rect::bounding(items.iter().map(|e| e.0))
                        .unwrap_or(Rect::from_coords(0.0, 0.0, 0.0, 0.0));
                    (mbr, items.len())
                }
                Node::Internal(children) => {
                    assert!(!children.is_empty(), "empty internal node");
                    assert!(children.len() <= max_e, "overfull internal node");
                    let _ = min_e;
                    let mut total = 0;
                    let mut mbr: Option<Rect> = None;
                    for (r, c) in children {
                        let (child_mbr, count) = rec(c, depth + 1, false, max_e, min_e, leaf_depth);
                        assert!(
                            r.contains_rect(&child_mbr),
                            "stored MBR {r:?} does not contain child MBR {child_mbr:?}"
                        );
                        total += count;
                        mbr = Some(match mbr {
                            Some(m) => m.union_mbr(r),
                            None => *r,
                        });
                    }
                    (mbr.expect("non-empty internal"), total)
                }
            }
        }
        let mut leaf_depth = None;
        let (_, count) = rec(
            &self.root,
            0,
            true,
            self.max_entries,
            self.min_entries,
            &mut leaf_depth,
        );
        assert_eq!(count, self.len, "len mismatch");
    }
}

// ----------------------------------------------------------------------
// Insertion helpers
// ----------------------------------------------------------------------

/// Recursive removal. Returns the removed payload; appends the entries of
/// dissolved (underfull) nodes to `orphans` for reinsertion. Parent MBRs
/// are recomputed on the way back up.
fn remove_rec<T, F: FnMut(&T) -> bool>(
    node: &mut Node<T>,
    point: Point,
    predicate: &mut F,
    min_e: usize,
    orphans: &mut Vec<(Point, T)>,
) -> Option<T> {
    match node {
        Node::Leaf(items) => {
            let idx = items
                .iter()
                .position(|(p, d)| *p == point && predicate(d))?;
            Some(items.swap_remove(idx).1)
        }
        Node::Internal(children) => {
            let mut removed = None;
            let mut dissolve: Option<usize> = None;
            for (i, (mbr, child)) in children.iter_mut().enumerate() {
                if !mbr.contains(point) {
                    continue;
                }
                if let Some(d) = remove_rec(child, point, predicate, min_e, orphans) {
                    removed = Some(d);
                    // Recompute the shrunken MBR; dissolve underfull
                    // children (their entries get reinserted).
                    let underfull = match child {
                        Node::Leaf(items) => items.len() < min_e,
                        Node::Internal(c) => c.len() < min_e,
                    };
                    if underfull {
                        dissolve = Some(i);
                    } else {
                        *mbr = node_mbr(child);
                    }
                    break;
                }
            }
            let removed = removed?;
            if let Some(i) = dissolve {
                let (_, child) = children.swap_remove(i);
                collect_entries(child, orphans);
            }
            Some(removed)
        }
    }
}

/// Drains every item of a subtree into `out`.
fn collect_entries<T>(node: Node<T>, out: &mut Vec<(Point, T)>) {
    match node {
        Node::Leaf(items) => out.extend(items),
        Node::Internal(children) => {
            for (_, c) in children {
                collect_entries(c, out);
            }
        }
    }
}

fn node_mbr<T>(n: &Node<T>) -> Rect {
    match n {
        Node::Leaf(items) => Rect::bounding(items.iter().map(|e| e.0))
            .unwrap_or(Rect::from_coords(0.0, 0.0, 0.0, 0.0)),
        Node::Internal(children) => children
            .iter()
            .map(|c| c.0)
            .reduce(|a, b| a.union_mbr(&b))
            .unwrap_or(Rect::from_coords(0.0, 0.0, 0.0, 0.0)),
    }
}

/// Recursive insert. Returns `Some((mbr1, node1, mbr2, node2))` when the
/// child split and the parent must absorb two nodes in place of one.
fn insert_rec<T>(
    node: &mut Node<T>,
    point: Point,
    data: T,
    max_e: usize,
    min_e: usize,
) -> Option<(Rect, Node<T>, Rect, Node<T>)> {
    match node {
        Node::Leaf(items) => {
            items.push((point, data));
            if items.len() <= max_e {
                return None;
            }
            let (g1, g2) = quadratic_split_points(std::mem::take(items), min_e);
            let r1 = Rect::bounding(g1.iter().map(|e| e.0)).expect("non-empty");
            let r2 = Rect::bounding(g2.iter().map(|e| e.0)).expect("non-empty");
            Some((r1, Node::Leaf(g1), r2, Node::Leaf(g2)))
        }
        Node::Internal(children) => {
            // Choose subtree: least enlargement, ties by area.
            let p_rect = Rect::from_coords(point.x, point.y, point.x, point.y);
            let idx = children
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let ea = a.0.enlargement(&p_rect);
                    let eb = b.0.enlargement(&p_rect);
                    ea.total_cmp(&eb).then(a.0.area().total_cmp(&b.0.area()))
                })
                .map(|(i, _)| i)
                .expect("internal node has children");
            let split = insert_rec(&mut children[idx].1, point, data, max_e, min_e);
            match split {
                None => {
                    children[idx].0 = children[idx].0.union_mbr(&p_rect);
                    None
                }
                Some((r1, n1, r2, n2)) => {
                    children[idx] = (r1, n1);
                    children.push((r2, n2));
                    if children.len() <= max_e {
                        return None;
                    }
                    let (g1, g2) = quadratic_split_rects(std::mem::take(children), min_e);
                    let r1 = g1.iter().map(|c| c.0).reduce(|a, b| a.union_mbr(&b)).unwrap();
                    let r2 = g2.iter().map(|c| c.0).reduce(|a, b| a.union_mbr(&b)).unwrap();
                    Some((r1, Node::Internal(g1), r2, Node::Internal(g2)))
                }
            }
        }
    }
}

/// A node's entries split into two groups.
type SplitPair<E> = (Vec<E>, Vec<E>);

/// Guttman's quadratic split for point entries.
fn quadratic_split_points<T>(
    entries: Vec<(Point, T)>,
    min_e: usize,
) -> SplitPair<(Point, T)> {
    let rects: Vec<Rect> = entries
        .iter()
        .map(|(p, _)| Rect::from_coords(p.x, p.y, p.x, p.y))
        .collect();
    let (assign, _) = quadratic_assign(&rects, min_e);
    partition_by(entries, &assign)
}

/// Guttman's quadratic split for child entries.
fn quadratic_split_rects<T>(
    entries: Vec<(Rect, Node<T>)>,
    min_e: usize,
) -> SplitPair<(Rect, Node<T>)> {
    let rects: Vec<Rect> = entries.iter().map(|c| c.0).collect();
    let (assign, _) = quadratic_assign(&rects, min_e);
    partition_by(entries, &assign)
}

fn partition_by<E>(entries: Vec<E>, assign: &[bool]) -> SplitPair<E> {
    let mut g1 = Vec::new();
    let mut g2 = Vec::new();
    for (e, &to_first) in entries.into_iter().zip(assign) {
        if to_first {
            g1.push(e);
        } else {
            g2.push(e);
        }
    }
    (g1, g2)
}

/// Core quadratic-split assignment over MBRs: picks the two seeds that
/// waste the most area together, then greedily assigns the rest by
/// enlargement preference, honoring the minimum fill `min_e`.
fn quadratic_assign(rects: &[Rect], min_e: usize) -> (Vec<bool>, (Rect, Rect)) {
    let n = rects.len();
    debug_assert!(n >= 2);
    // Seed selection.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let waste = rects[i].union_mbr(&rects[j]).area() - rects[i].area() - rects[j].area();
            if waste > worst {
                worst = waste;
                (s1, s2) = (i, j);
            }
        }
    }
    let mut assign = vec![false; n];
    assign[s1] = true;
    let mut mbr1 = rects[s1];
    let mut mbr2 = rects[s2];
    let mut c1 = 1usize;
    let mut c2 = 1usize;
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != s1 && i != s2).collect();
    while !remaining.is_empty() {
        // Force-assign when one group must take everything left to
        // reach minimum occupancy.
        if c1 + remaining.len() == min_e {
            for &i in &remaining {
                assign[i] = true;
                mbr1 = mbr1.union_mbr(&rects[i]);
            }
            break;
        }
        if c2 + remaining.len() == min_e {
            break; // they stay assigned to group 2 (false)
        }
        // Pick the entry with the greatest preference difference.
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| {
                let da = (mbr1.enlargement(&rects[a]) - mbr2.enlargement(&rects[a])).abs();
                let db = (mbr1.enlargement(&rects[b]) - mbr2.enlargement(&rects[b])).abs();
                da.total_cmp(&db)
            })
            .expect("non-empty remaining");
        let i = remaining.swap_remove(pos);
        let d1 = mbr1.enlargement(&rects[i]);
        let d2 = mbr2.enlargement(&rects[i]);
        let to_first = match d1.total_cmp(&d2) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => mbr1.area() <= mbr2.area(),
        };
        if to_first {
            assign[i] = true;
            mbr1 = mbr1.union_mbr(&rects[i]);
            c1 += 1;
        } else {
            mbr2 = mbr2.union_mbr(&rects[i]);
            c2 += 1;
        }
    }
    (assign, (mbr1, mbr2))
}

// ----------------------------------------------------------------------
// Query helpers
// ----------------------------------------------------------------------

fn window_rec<'a, T>(n: &'a Node<T>, w: &Rect, out: &mut Vec<(Point, &'a T)>) {
    match n {
        Node::Leaf(items) => {
            out.extend(
                items
                    .iter()
                    .filter(|(p, _)| w.contains(*p))
                    .map(|(p, d)| (*p, d)),
            );
        }
        Node::Internal(children) => {
            for (mbr, c) in children {
                if mbr.intersects(w) {
                    window_rec(c, w, out);
                }
            }
        }
    }
}

fn disk_rec<'a, T>(
    n: &'a Node<T>,
    center: Point,
    r_sq: f64,
    out: &mut Vec<Neighbor<'a, T>>,
) {
    match n {
        Node::Leaf(items) => {
            for (p, d) in items {
                let dist_sq = p.distance_sq(center);
                if dist_sq <= r_sq {
                    out.push(Neighbor {
                        point: *p,
                        data: d,
                        distance: dist_sq.sqrt(),
                    });
                }
            }
        }
        Node::Internal(children) => {
            for (mbr, c) in children {
                if mbr.distance_sq_to_point(center) <= r_sq {
                    disk_rec(c, center, r_sq, out);
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Best-first heap plumbing
// ----------------------------------------------------------------------

enum HeapKind<'a, T> {
    Node(&'a Node<T>),
    Item(Point, &'a T),
}

struct HeapEntry<'a, T> {
    dist_sq: f64,
    kind: HeapKind<'a, T>,
}

impl<T> PartialEq for HeapEntry<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.dist_sq == other.dist_sq
    }
}
impl<T> Eq for HeapEntry<'_, T> {}
impl<T> PartialOrd for HeapEntry<'_, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<'_, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; items win ties over nodes so results pop
        // before equal-distance subtrees are expanded (both orders are
        // correct; this one terminates marginally earlier).
        other
            .dist_sq
            .total_cmp(&self.dist_sq)
            .then_with(|| match (&self.kind, &other.kind) {
                (HeapKind::Item(..), HeapKind::Node(_)) => Ordering::Greater,
                (HeapKind::Node(_), HeapKind::Item(..)) => Ordering::Less,
                _ => Ordering::Equal,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize) -> Vec<(Point, usize)> {
        // Deterministic pseudo-random scatter (LCG) — no rand dependency
        // needed in unit tests.
        let mut state = 0x2545F4914F6CDD1Du64;
        (0..n)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let x = (state >> 16 & 0xFFFF) as f64 / 655.36;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let y = (state >> 16 & 0xFFFF) as f64 / 655.36;
                (Point::new(x, y), i)
            })
            .collect()
    }

    #[test]
    fn empty_tree_queries() {
        let t: RTree<u32> = RTree::default();
        assert!(t.is_empty());
        assert_eq!(t.knn(Point::ORIGIN, 3).len(), 0);
        assert_eq!(t.window(&Rect::from_coords(0.0, 0.0, 1.0, 1.0)).len(), 0);
        assert_eq!(t.nearest(Point::ORIGIN), None);
        assert_eq!(t.mbr(), None);
    }

    #[test]
    fn insert_and_knn_exact() {
        let mut t = RTree::default();
        for (p, i) in pts(500) {
            t.insert(p, i);
        }
        t.check_invariants();
        let q = Point::new(50.0, 50.0);
        let got = t.knn(q, 10);
        assert_eq!(got.len(), 10);
        // Compare against brute force.
        let mut brute = pts(500);
        brute.sort_by(|a, b| a.0.distance_sq(q).total_cmp(&b.0.distance_sq(q)));
        for (i, nb) in got.iter().enumerate() {
            assert!(
                (nb.distance - brute[i].0.distance(q)).abs() < 1e-9,
                "rank {i}: {} vs {}",
                nb.distance,
                brute[i].0.distance(q)
            );
        }
        // Ascending distances.
        for w in got.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn bulk_load_matches_insert_results() {
        let items = pts(1000);
        let bulk = RTree::bulk_load(items.clone());
        bulk.check_invariants();
        assert_eq!(bulk.len(), 1000);
        let mut incr = RTree::default();
        for (p, i) in items {
            incr.insert(p, i);
        }
        let q = Point::new(23.0, 77.0);
        let a = bulk.knn(q, 25);
        let b = incr.knn(q, 25);
        let da: Vec<f64> = a.iter().map(|n| n.distance).collect();
        let db: Vec<f64> = b.iter().map(|n| n.distance).collect();
        for (x, y) in da.iter().zip(&db) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn window_query_matches_filter() {
        let items = pts(800);
        let t = RTree::bulk_load(items.clone());
        let w = Rect::from_coords(20.0, 30.0, 60.0, 55.0);
        let mut got: Vec<usize> = t.window(&w).into_iter().map(|(_, &i)| i).collect();
        got.sort_unstable();
        let mut expect: Vec<usize> = items
            .iter()
            .filter(|(p, _)| w.contains(*p))
            .map(|&(_, i)| i)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
        assert!(!got.is_empty(), "window unexpectedly empty");
    }

    #[test]
    fn within_distance_matches_filter() {
        let items = pts(600);
        let t = RTree::bulk_load(items.clone());
        let c = Point::new(40.0, 60.0);
        let r = 12.5;
        let mut got: Vec<usize> = t
            .within_distance(c, r)
            .into_iter()
            .map(|n| *n.data)
            .collect();
        got.sort_unstable();
        let mut expect: Vec<usize> = items
            .iter()
            .filter(|(p, _)| p.distance(c) <= r)
            .map(|&(_, i)| i)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn knn_with_k_larger_than_len() {
        let t = RTree::bulk_load(pts(5));
        assert_eq!(t.knn(Point::ORIGIN, 100).len(), 5);
    }

    #[test]
    fn duplicate_points_are_kept() {
        let mut t = RTree::default();
        let p = Point::new(1.0, 1.0);
        for i in 0..50 {
            t.insert(p, i);
        }
        t.check_invariants();
        assert_eq!(t.len(), 50);
        assert_eq!(t.knn(p, 50).len(), 50);
        assert!(t.knn(p, 50).iter().all(|n| n.distance == 0.0));
    }

    #[test]
    fn iter_visits_everything() {
        let items = pts(300);
        let t = RTree::bulk_load(items);
        let mut seen: Vec<usize> = t.iter().map(|(_, &i)| i).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn invariants_hold_under_heavy_insertion() {
        let mut t = RTree::new(8);
        for (p, i) in pts(2000) {
            t.insert(p, i);
            if i % 500 == 499 {
                t.check_invariants();
            }
        }
        t.check_invariants();
    }

    #[test]
    fn remove_then_queries_stay_exact() {
        let items = pts(600);
        let mut t = RTree::new(8);
        for (p, i) in items.clone() {
            t.insert(p, i);
        }
        // Remove every third item.
        let mut remaining: Vec<(Point, usize)> = Vec::new();
        for (j, (p, i)) in items.into_iter().enumerate() {
            if j % 3 == 0 {
                assert_eq!(t.remove_item(p, &i), Some(i), "item {i} not found");
            } else {
                remaining.push((p, i));
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), remaining.len());
        // kNN agrees with brute force over the survivors.
        let q = Point::new(37.0, 61.0);
        let got = t.knn(q, 15);
        let mut brute = remaining.clone();
        brute.sort_by(|a, b| a.0.distance_sq(q).total_cmp(&b.0.distance_sq(q)));
        for (g, w) in got.iter().zip(&brute) {
            assert!((g.distance - w.0.distance(q)).abs() < 1e-9);
        }
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut t = RTree::bulk_load(pts(50));
        assert_eq!(t.remove_item(Point::new(-5.0, -5.0), &0), None);
        assert_eq!(t.len(), 50);
        // Wrong payload at an existing point also misses.
        let (p, i) = pts(50)[7];
        assert_eq!(t.remove_item(p, &(i + 999)), None);
        assert_eq!(t.remove_item(p, &i), Some(i));
        assert_eq!(t.len(), 49);
    }

    #[test]
    fn remove_down_to_empty_and_reuse() {
        let items = pts(100);
        let mut t = RTree::new(6);
        for (p, i) in items.clone() {
            t.insert(p, i);
        }
        for (p, i) in items {
            assert_eq!(t.remove_item(p, &i), Some(i));
            t.check_invariants();
        }
        assert!(t.is_empty());
        assert_eq!(t.knn(Point::ORIGIN, 3).len(), 0);
        // The emptied tree accepts new items.
        t.insert(Point::new(1.0, 1.0), 42);
        assert_eq!(t.nearest(Point::ORIGIN).unwrap().data, &42);
    }

    #[test]
    fn remove_duplicate_points_takes_one() {
        let mut t = RTree::default();
        let p = Point::new(2.0, 2.0);
        for i in 0..10 {
            t.insert(p, i);
        }
        let got = t.remove(p, |_| true).unwrap();
        assert!(got < 10);
        assert_eq!(t.len(), 9);
        t.check_invariants();
    }

    #[test]
    fn nearest_on_singleton() {
        let mut t = RTree::default();
        t.insert(Point::new(3.0, 4.0), "only");
        let n = t.nearest(Point::ORIGIN).unwrap();
        assert_eq!(*n.data, "only");
        assert!((n.distance - 5.0).abs() < 1e-12);
    }
}
