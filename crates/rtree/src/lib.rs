//! A from-scratch R-tree over point data.
//!
//! The paper's related-work section grounds spatial search in the R-tree
//! family: Guttman's original dynamic index, the branch-and-bound /
//! best-first kNN searches of Roussopoulos et al. and Hjaltason–Samet,
//! and window queries over MBR hierarchies. The broadcast server does not
//! ship an R-tree over the air (it uses the Hilbert index), but the
//! simulator needs an exact, fast *ground truth* oracle to (a) validate
//! every sharing-based answer and (b) quantify approximation error. This
//! crate provides that oracle:
//!
//! * [`RTree`] — a point R-tree with Guttman quadratic-split insertion,
//!   STR (sort-tile-recursive) bulk loading, best-first kNN search and
//!   window queries.
//! * [`LinearScan`] — the brute-force baseline used to cross-check the
//!   tree in tests and to benchmark the speedup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod scan;
mod tree;

pub use scan::LinearScan;
pub use tree::{Neighbor, RTree};
