//! Cross-backend parity properties: the STR R-tree backend must return
//! exactly the same *result sets* as the Hilbert backend for kNN and
//! window queries (bucket schedules and therefore latency/tuning may
//! differ — correctness may not), and the Hilbert backend accessed
//! through a `dyn AirIndexBackend` trait object must be bit-identical
//! to the concrete static-dispatch path.

use airshare_broadcast::{
    AirIndex, AirIndexBackend, BuildParams, OnAirClient, Poi, PoiTable, RtreeAirIndex, Schedule,
};
use airshare_geom::{Point, Rect};
use proptest::prelude::*;

const SIDE: f64 = 32.0;

fn pois(coords: &[(f64, f64)]) -> PoiTable {
    PoiTable::from_pois(
        coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Poi::new(i as u32, Point::new(x, y))),
    )
}

fn params(cap: usize) -> BuildParams {
    BuildParams {
        world: Rect::from_coords(0.0, 0.0, SIDE, SIDE),
        hilbert_order: 5,
        bucket_capacity: cap,
    }
}

/// Build both backends over the same POI set and wrap each in a client
/// with a schedule sized to its own bucket layout.
fn build_pair(coords: &[(f64, f64)], cap: usize, m: usize) -> (AirIndex, RtreeAirIndex, Schedule, Schedule) {
    let p = params(cap);
    let hilbert = <AirIndex as AirIndexBackend>::try_build(&pois(coords), &p).unwrap();
    let rtree = <RtreeAirIndex as AirIndexBackend>::try_build(&pois(coords), &p).unwrap();
    let hs = Schedule::try_for_backend(&hilbert, m).unwrap();
    let rs = Schedule::try_for_backend(&rtree, m).unwrap();
    (hilbert, rtree, hs, rs)
}

fn arb_coords() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0..SIDE, 0.0..SIDE), 20..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both backends return the same k nearest distances (compared
    /// bit-exact via `total_cmp`, which is robust to ties in POI ids).
    #[test]
    fn knn_result_sets_match_across_backends(
        coords in arb_coords(),
        qx in 0.0..SIDE, qy in 0.0..SIDE,
        k in 1usize..10,
        cap in 1usize..16,
        tune in 0u64..2_000,
    ) {
        prop_assume!(coords.len() >= k);
        let (hilbert, rtree, hs, rs) = build_pair(&coords, cap, 4);
        let hc = OnAirClient::new(&hilbert, &hs);
        let rc = OnAirClient::new(&rtree, &rs);
        let q = Point::new(qx, qy);
        let hres = hc.knn(tune, q, k).expect("enough POIs");
        let rres = rc.knn(tune, q, k).expect("enough POIs");
        prop_assert_eq!(hres.neighbors.len(), rres.neighbors.len());
        let mut hd: Vec<f64> = hres.neighbors.iter().map(|p| p.distance_to(q)).collect();
        let mut rd: Vec<f64> = rres.neighbors.iter().map(|p| p.distance_to(q)).collect();
        hd.sort_by(f64::total_cmp);
        rd.sort_by(f64::total_cmp);
        for (a, b) in hd.iter().zip(&rd) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Both backends return exactly the same POI id set for any window.
    #[test]
    fn window_result_sets_match_across_backends(
        coords in arb_coords(),
        wx in 0.0..SIDE - 4.0, wy in 0.0..SIDE - 4.0,
        ww in 0.1..4.0f64, wh in 0.1..4.0f64,
        cap in 1usize..16,
        tune in 0u64..2_000,
    ) {
        let (hilbert, rtree, hs, rs) = build_pair(&coords, cap, 2);
        let hc = OnAirClient::new(&hilbert, &hs);
        let rc = OnAirClient::new(&rtree, &rs);
        let w = Rect::from_coords(wx, wy, wx + ww, wy + wh);
        let mut hids: Vec<u32> = hc.window(tune, &w).pois.iter().map(|p| p.id).collect();
        let mut rids: Vec<u32> = rc.window(tune, &w).pois.iter().map(|p| p.id).collect();
        hids.sort_unstable();
        rids.sort_unstable();
        prop_assert_eq!(hids, rids);
    }

    /// The Hilbert backend behind a trait object is bit-identical to the
    /// concrete path: same neighbors, same ids, same latency/tuning/
    /// bucket stats for kNN and window alike.
    #[test]
    fn hilbert_dyn_dispatch_is_bit_identical(
        coords in arb_coords(),
        qx in 0.0..SIDE, qy in 0.0..SIDE,
        k in 1usize..10,
        cap in 1usize..16,
        tune in 0u64..2_000,
        ww in 0.1..4.0f64, wh in 0.1..4.0f64,
    ) {
        prop_assume!(coords.len() >= k);
        let p = params(cap);
        let index = <AirIndex as AirIndexBackend>::try_build(&pois(&coords), &p).unwrap();
        let schedule = Schedule::try_for_backend(&index, 4).unwrap();
        let concrete = OnAirClient::new(&index, &schedule);
        let erased = concrete.as_dyn();
        let q = Point::new(qx, qy);

        let a = concrete.knn(tune, q, k).expect("enough POIs");
        let b = erased.knn(tune, q, k).expect("enough POIs");
        prop_assert_eq!(a.stats.latency, b.stats.latency);
        prop_assert_eq!(a.stats.tuning, b.stats.tuning);
        prop_assert_eq!(a.stats.buckets, b.stats.buckets);
        let aid: Vec<u32> = a.neighbors.iter().map(|p| p.id).collect();
        let bid: Vec<u32> = b.neighbors.iter().map(|p| p.id).collect();
        prop_assert_eq!(aid, bid);

        let w = Rect::from_coords(qx.min(SIDE - ww), qy.min(SIDE - wh), qx.min(SIDE - ww) + ww, qy.min(SIDE - wh) + wh);
        let wa = concrete.window(tune, &w);
        let wb = erased.window(tune, &w);
        prop_assert_eq!(wa.stats.latency, wb.stats.latency);
        prop_assert_eq!(wa.stats.tuning, wb.stats.tuning);
        prop_assert_eq!(wa.stats.buckets, wb.stats.buckets);
        let wia: Vec<u32> = wa.pois.iter().map(|p| p.id).collect();
        let wib: Vec<u32> = wb.pois.iter().map(|p| p.id).collect();
        prop_assert_eq!(wia, wib);
    }
}
