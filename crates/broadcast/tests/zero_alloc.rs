//! Asserts the hot-path claim directly: once a [`QueryScratch`]'s
//! buffers are warm, the index-path query methods perform **zero heap
//! allocations**. A counting global allocator makes the claim checkable
//! instead of an audit comment.
//!
//! This lives in an integration test because the library itself is
//! `#![forbid(unsafe_code)]`; implementing [`GlobalAlloc`] requires
//! `unsafe`, and an integration test is its own crate.

use airshare_broadcast::{AirIndex, Poi, QueryScratch};
use airshare_geom::{Point, Rect};
use airshare_hilbert::Grid;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// [`System`], with every allocation counted.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A deterministic pseudo-random world, no RNG crate needed.
fn world_pois(n: u32, side: f64) -> Vec<Poi> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
            let x = (h & 0xFFFF) as f64 / 65536.0 * side;
            let y = ((h >> 16) & 0xFFFF) as f64 / 65536.0 * side;
            Poi::new(i, Point::new(x, y))
        })
        .collect()
}

#[test]
fn warm_scratch_queries_do_not_allocate() {
    let side = 16.0;
    let world = Rect::from_coords(0.0, 0.0, side, side);
    let grid = Grid::new(world, 8);
    let index = AirIndex::try_build(world_pois(500, side), grid, 8).unwrap();

    let mut scratch = QueryScratch::new();
    let queries: Vec<(Point, Rect)> = (0..32)
        .map(|i| {
            let t = i as f64 / 32.0;
            let q = Point::new(0.3 + t * 14.0 * 0.97 % 14.0, 0.7 + t * 13.0 * 0.89 % 13.0);
            let w = Rect::from_coords(
                t * 10.0,
                (1.0 - t) * 9.0,
                t * 10.0 + 1.5 + t,
                (1.0 - t) * 9.0 + 2.0,
            );
            (q, w)
        })
        .collect();
    let window_pairs: Vec<[Rect; 2]> = queries
        .iter()
        .map(|&(q, w)| [w, Rect::centered_square(q, 1.0)])
        .collect();

    let run_all = |scratch: &mut QueryScratch| {
        let mut sink = 0usize;
        for (&(q, w), pair) in queries.iter().zip(&window_pairs) {
            index.buckets_for_window_scratch(&w, scratch);
            sink += scratch.buckets().len();
            let radius = index.knn_search_radius(q, 5).unwrap();
            index.buckets_for_knn_scratch(q, radius, scratch);
            sink += scratch.buckets().len();
            index.buckets_for_knn_filtered_scratch(q, radius, Some(radius * 0.5), scratch);
            sink += scratch.buckets().len();
            index.buckets_for_windows_scratch(pair, scratch);
            sink += scratch.buckets().len();
        }
        sink
    };

    // Warm-up: the scratch buffers grow to their high-water marks here.
    let expected = run_all(&mut scratch);
    assert!(expected > 0, "queries found no buckets; test is vacuous");

    // Steady state: the exact same work, zero allocations.
    let before = allocations();
    let got = run_all(&mut scratch);
    let after = allocations();
    assert_eq!(got, expected);
    assert_eq!(
        after - before,
        0,
        "warm index-path queries allocated {} times",
        after - before
    );
}
