//! Property tests for the broadcast substrate: schedule timing
//! invariants, on-air query exactness against brute force, and wire
//! format roundtrips.

use airshare_broadcast::wire::{
    decode_bucket, encode_bucket, frame_payload, verify_payload, WireError,
};
use airshare_broadcast::{AirIndex, OnAirClient, Poi, Schedule};
use airshare_geom::{Point, Rect};
use airshare_hilbert::Grid;
use proptest::prelude::*;

const SIDE: f64 = 32.0;

fn build(coords: &[(f64, f64)], cap: usize, m: usize) -> (AirIndex, Schedule) {
    let pois: Vec<Poi> = coords
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| Poi::new(i as u32, Point::new(x, y)))
        .collect();
    let grid = Grid::new(Rect::from_coords(0.0, 0.0, SIDE, SIDE), 5);
    let index = AirIndex::try_build(pois, grid, cap).unwrap();
    let schedule = Schedule::new(index.data_buckets(), index.index_buckets(), m);
    (index, schedule)
}

fn arb_coords() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0..SIDE, 0.0..SIDE), 20..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedule_offsets_are_unique_and_in_cycle(
        data in 1usize..300,
        idx in 1usize..8,
        m in 1usize..16,
    ) {
        let s = Schedule::new(data, idx, m);
        let mut offsets: Vec<u64> = (0..data).map(|b| s.bucket_offset(b)).collect();
        // Strictly increasing in bucket id and inside the cycle.
        for w in offsets.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        prop_assert!(offsets.pop().unwrap() < s.cycle_len());
        // next_index_start is idempotent and never in the past.
        for t in [0u64, 1, s.cycle_len() / 2, s.cycle_len(), 3 * s.cycle_len() + 7] {
            let n = s.next_index_start(t);
            prop_assert!(n >= t);
            prop_assert_eq!(s.next_index_start(n), n);
        }
    }

    #[test]
    fn bucket_completion_monotone_in_time(
        data in 1usize..100,
        m in 1usize..8,
        b in 0usize..100,
        t1 in 0u64..10_000,
        dt in 0u64..1_000,
    ) {
        let s = Schedule::new(data, 2, m);
        let b = b % data;
        let c1 = s.bucket_completion_after(b, t1);
        let c2 = s.bucket_completion_after(b, t1 + dt);
        prop_assert!(c1 > t1);
        prop_assert!(c2 >= c1);
        // A bucket repeats every cycle: completion within one cycle.
        prop_assert!(c1 - t1 <= s.cycle_len() + 1);
    }

    #[test]
    fn onair_knn_matches_brute_force(
        coords in arb_coords(),
        qx in 0.0..SIDE, qy in 0.0..SIDE,
        k in 1usize..10,
        cap in 1usize..16,
        tune in 0u64..2_000,
    ) {
        let (index, schedule) = build(&coords, cap, 4);
        let client = OnAirClient::new(&index, &schedule);
        let q = Point::new(qx, qy);
        prop_assume!(coords.len() >= k);
        let res = client.knn(tune, q, k).expect("enough POIs");
        let mut dists: Vec<f64> = coords
            .iter()
            .map(|&(x, y)| Point::new(x, y).distance(q))
            .collect();
        dists.sort_by(f64::total_cmp);
        for (got, want) in res.neighbors.iter().zip(&dists) {
            prop_assert!((got.distance_to(q) - want).abs() < 1e-9);
        }
        // Latency ≥ index read; tuning counts probe + index + buckets.
        prop_assert!(res.stats.latency >= schedule.index_buckets() as u64);
        prop_assert_eq!(
            res.stats.tuning,
            1 + schedule.index_buckets() as u64 + res.stats.buckets
        );
    }

    #[test]
    fn onair_window_matches_brute_force(
        coords in arb_coords(),
        wx in 0.0..SIDE - 4.0, wy in 0.0..SIDE - 4.0,
        ww in 0.1..4.0f64, wh in 0.1..4.0f64,
        cap in 1usize..16,
        tune in 0u64..2_000,
    ) {
        let (index, schedule) = build(&coords, cap, 2);
        let client = OnAirClient::new(&index, &schedule);
        let w = Rect::from_coords(wx, wy, wx + ww, wy + wh);
        let res = client.window(tune, &w);
        let mut got: Vec<u32> = res.pois.iter().map(|p| p.id).collect();
        got.sort_unstable();
        let mut want: Vec<u32> = coords
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| w.contains(Point::new(x, y)))
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn wire_roundtrip_any_bucket(coords in arb_coords(), cap in 1usize..32) {
        let (index, _) = build(&coords, cap, 1);
        for b in index.buckets() {
            let frame = encode_bucket(b).expect("in-range fields");
            let (id, h_lo, pois) = decode_bucket(frame).expect("roundtrip");
            prop_assert_eq!(id, b.id);
            prop_assert_eq!(h_lo, b.hilbert_range.0);
            prop_assert_eq!(pois.len(), b.pois.len());
            for (a, e) in pois.iter().zip(&b.pois) {
                prop_assert_eq!(a.id, e.id);
                prop_assert_eq!(a.pos, e.pos);
            }
        }
    }

    #[test]
    fn wire_byte_flip_is_detected_or_harmless(
        coords in arb_coords(),
        cap in 1usize..32,
        which in any::<prop::sample::Index>(),
        pos in any::<prop::sample::Index>(),
        mask in 1u8..=255,
    ) {
        let (index, _) = build(&coords, cap, 1);
        let b = &index.buckets()[which.index(index.buckets().len())];
        let frame = encode_bucket(b).expect("in-range fields");
        let clean = decode_bucket(frame.clone()).expect("clean frame decodes");
        let mut corrupted = frame.to_vec();
        corrupted[pos.index(frame.len())] ^= mask;
        // A flipped byte must either fail the checksum or (if the flip
        // happens to cancel out, which CRC-32 prevents for single-byte
        // damage) decode to exactly the clean contents — never to
        // silently different data.
        match decode_bucket(bytes::Bytes::from(corrupted)) {
            Err(_) => {}
            Ok(decoded) => {
                prop_assert_eq!(decoded.0, clean.0);
                prop_assert_eq!(decoded.1, clean.1);
                prop_assert_eq!(decoded.2.len(), clean.2.len());
                for (a, e) in decoded.2.iter().zip(&clean.2) {
                    prop_assert_eq!(a.id, e.id);
                    prop_assert_eq!(a.pos, e.pos);
                    prop_assert_eq!(a.category, e.category);
                }
            }
        }
    }

    #[test]
    fn filtered_knn_with_consistent_knowledge_is_exact(
        coords in arb_coords(),
        qx in 0.0..SIDE, qy in 0.0..SIDE,
        k in 1usize..6,
        inner in 0.0..10.0f64,
    ) {
        prop_assume!(coords.len() >= k);
        let (index, schedule) = build(&coords, 4, 4);
        let client = OnAirClient::new(&index, &schedule);
        let q = Point::new(qx, qy);
        // Knowledge: everything within `inner` of q (a sound inner circle).
        let known: Vec<Poi> = coords
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| Point::new(x, y).distance(q) <= inner)
            .map(|(i, &(x, y))| Poi::new(i as u32, Point::new(x, y)))
            .collect();
        let cold = client.knn(0, q, k).expect("enough POIs");
        let filt = client
            .knn_filtered(0, q, k, &known, Some(inner), None)
            .expect("enough POIs");
        for (a, b) in cold.neighbors.iter().zip(&filt.neighbors) {
            prop_assert!((a.distance_to(q) - b.distance_to(q)).abs() < 1e-9);
        }
        prop_assert!(filt.stats.buckets <= cold.stats.buckets);
    }
}

// Generic-frame wire coverage: `frame_payload`/`verify_payload` are the
// CRC layer every on-air frame (data buckets, index segments, service
// replies) rides on; until now they were only exercised indirectly
// through bucket encoding.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn frame_payload_roundtrips(payload in prop::collection::vec(any::<u8>(), 0..512)) {
        let frame = frame_payload(&payload);
        // 4-byte CRC-32 trailer, nothing else.
        prop_assert_eq!(frame.len(), payload.len() + 4);
        prop_assert_eq!(verify_payload(&frame), Ok(&payload[..]));
    }

    #[test]
    fn frame_rejects_any_flipped_bit(
        payload in prop::collection::vec(any::<u8>(), 0..256),
        at in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let frame = frame_payload(&payload);
        let mut corrupt = frame.to_vec();
        let i = at.index(corrupt.len());
        corrupt[i] ^= 1u8 << bit;
        // A single flipped bit — payload or trailer — never verifies.
        prop_assert_eq!(verify_payload(&corrupt), Err(WireError::ChecksumMismatch));
    }

    #[test]
    fn frame_rejects_truncation(
        payload in prop::collection::vec(any::<u8>(), 0..256),
        keep in any::<prop::sample::Index>(),
    ) {
        let frame = frame_payload(&payload);
        let cut = keep.index(frame.len());
        let out = verify_payload(&frame[..cut]);
        if cut < 4 {
            prop_assert_eq!(out, Err(WireError::Truncated));
        } else {
            // Still long enough to carry a trailer, but it now covers
            // the wrong bytes: only an (astronomically unlikely, and
            // with these cases seeds, never observed) CRC collision
            // could pass. Truncated-to-empty frames whose original
            // payload was empty are the one legitimate prefix.
            if cut != frame.len() {
                prop_assert!(out.is_err());
            }
        }
    }
}
