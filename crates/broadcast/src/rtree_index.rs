//! An on-air R-tree backend: STR-packed leaves as data buckets, internal
//! nodes as index buckets.

use crate::backend::{AirIndexBackend, BuildParams, INDEX_FANOUT};
use crate::{Bucket, IndexError, Poi, PoiTable, QueryScratch};
use airshare_geom::{Point, Rect};
use airshare_rtree::RTree;
use bytes::{BufMut, Bytes, BytesMut};

/// One descriptor in an on-air R-tree index bucket: a child subtree
/// summarized by its MBR, POI count, and the first data bucket it covers
/// (the arrival pointer a tuning client dozes toward).
#[derive(Clone, Copy, Debug)]
struct IndexEntry {
    /// First data bucket (broadcast order) covered by the child.
    first_bucket: u32,
    /// MBR of every POI under the child.
    mbr: Rect,
    /// Number of POIs under the child.
    count: u32,
}

/// Serialized size of one [`IndexEntry`]: `u32` + 4 × `f64` + `u32`.
const INDEX_ENTRY_BYTES: usize = 4 + 32 + 4;

/// The alternative air-index backend: `crates/rtree`'s STR bulk-loaded
/// R-tree packed into broadcast buckets.
///
/// * **Data segment** — POIs are bulk-loaded into an
///   [`airshare_rtree::RTree`] and read back in its depth-first leaf
///   order (deterministic for a given input), then chunked into
///   fixed-capacity [`Bucket`]s. Spatially close POIs therefore land in
///   the same or adjacent buckets, just as Hilbert ordering achieves for
///   the curve backend.
/// * **Index segment** — the internal nodes of a fan-out-64 tree over
///   the data buckets, broadcast root level first. Each node is
///   one index bucket listing up to 64 child descriptors
///   (MBR + POI count + first covered data bucket).
/// * **Query mapping** — window and kNN predicates select every data
///   bucket whose MBR intersects the search rectangle; the kNN first
///   scan accumulates mindist-sorted buckets until their counts reach
///   `k` and bounds the radius by the largest maxdist seen, using only
///   index-segment information (MBR + count).
///
/// The `hilbert_range` field of the produced [`Bucket`]s carries
/// broadcast *sequence numbers* (the positions of the bucket's first and
/// last POI in broadcast order), not curve values — the monotone key the
/// rest of the stack expects.
#[derive(Clone, Debug)]
pub struct RtreeAirIndex {
    world: Rect,
    buckets: Vec<Bucket>,
    /// On-air index nodes, root level first; one inner `Vec` per index
    /// bucket.
    index_nodes: Vec<Vec<IndexEntry>>,
    poi_count: usize,
}

impl RtreeAirIndex {
    /// Builds the fan-out-64 internal-node levels bottom-up from the
    /// per-data-bucket descriptors, returning the node list root level
    /// first.
    fn build_index_nodes(buckets: &[Bucket]) -> Vec<Vec<IndexEntry>> {
        let mut level: Vec<IndexEntry> = buckets
            .iter()
            .map(|b| IndexEntry {
                first_bucket: b.id as u32,
                mbr: b.mbr,
                count: b.pois.len() as u32,
            })
            .collect();
        // levels[i] holds the node contents created at step i (leaf-most
        // first); the surviving single summary entry is not broadcast.
        let mut levels: Vec<Vec<Vec<IndexEntry>>> = Vec::new();
        while level.len() > 1 {
            let mut parents = Vec::with_capacity(level.len().div_ceil(INDEX_FANOUT));
            let mut nodes = Vec::with_capacity(parents.capacity());
            for chunk in level.chunks(INDEX_FANOUT) {
                let mbr = chunk
                    .iter()
                    .skip(1)
                    .fold(chunk[0].mbr, |acc, e| acc.union_mbr(&e.mbr));
                parents.push(IndexEntry {
                    first_bucket: chunk[0].first_bucket,
                    mbr,
                    count: chunk.iter().map(|e| e.count).sum(),
                });
                nodes.push(chunk.to_vec());
            }
            levels.push(nodes);
            level = parents;
        }
        if levels.is_empty() {
            // Zero or one data bucket: a single root index bucket lists
            // whatever there is.
            return vec![level];
        }
        levels.into_iter().rev().flatten().collect()
    }

    /// Data buckets whose MBR intersects `pred`, pushed onto
    /// `scratch.buckets` (cleared first). Bucket ids ascend by
    /// construction, so the output is sorted and deduplicated.
    fn scan_mbrs(&self, pred: &Rect, scratch: &mut QueryScratch) {
        scratch.buckets.clear();
        for b in &self.buckets {
            if b.mbr.intersects(pred) {
                scratch.buckets.push(b.id);
            }
        }
    }
}

impl AirIndexBackend for RtreeAirIndex {
    fn try_build(pois: &PoiTable, params: &BuildParams) -> Result<Self, IndexError> {
        if params.bucket_capacity < 1 {
            return Err(IndexError::ZeroBucketCapacity);
        }
        let poi_count = pois.len();
        let tree = RTree::bulk_load(pois.iter().map(|p| (p.pos, *p)).collect());
        let ordered: Vec<Poi> = tree.iter().map(|(_, p)| *p).collect();
        let mut buckets = Vec::with_capacity(ordered.len().div_ceil(params.bucket_capacity));
        for (i, chunk) in ordered.chunks(params.bucket_capacity).enumerate() {
            let base = (i * params.bucket_capacity) as u64;
            let seq: Vec<u64> = (0..chunk.len() as u64).map(|j| base + j).collect();
            buckets.push(Bucket::build(i, chunk.to_vec(), &seq));
        }
        let index_nodes = Self::build_index_nodes(&buckets);
        Ok(Self {
            world: params.world,
            buckets,
            index_nodes,
            poi_count,
        })
    }

    fn world(&self) -> Rect {
        self.world
    }

    fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    fn index_buckets(&self) -> usize {
        self.index_nodes.len()
    }

    fn poi_count(&self) -> usize {
        self.poi_count
    }

    /// Bucket-granularity first scan: walk buckets in ascending
    /// `(mindist, id)` order, accumulating POI counts until at least `k`
    /// are guaranteed; the radius is the largest maxdist among the taken
    /// buckets, so their POIs — hence ≥ k POIs — all lie within it. Uses
    /// only information the index segment carries (MBR + count).
    fn knn_search_radius(&self, q: Point, k: usize) -> Option<f64> {
        if k == 0 || self.poi_count < k {
            return None;
        }
        let mut order: Vec<(f64, usize)> = self
            .buckets
            .iter()
            .map(|b| (b.mbr.distance_to_point(q), b.id))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut covered = 0usize;
        let mut radius = 0.0_f64;
        for &(_, id) in &order {
            let b = &self.buckets[id];
            covered += b.pois.len();
            radius = radius.max(b.mbr.max_distance_to_point(q));
            if covered >= k {
                return Some(radius);
            }
        }
        unreachable!("poi_count >= k guarantees coverage");
    }

    fn buckets_for_window_scratch(&self, w: &Rect, scratch: &mut QueryScratch) {
        self.scan_mbrs(w, scratch);
    }

    fn buckets_for_knn_scratch(&self, q: Point, radius: f64, scratch: &mut QueryScratch) {
        self.scan_mbrs(&Rect::centered_square(q, radius), scratch);
    }

    fn buckets_for_knn_filtered_scratch(
        &self,
        q: Point,
        outer: f64,
        inner: Option<f64>,
        scratch: &mut QueryScratch,
    ) {
        self.buckets_for_knn_scratch(q, outer, scratch);
        if let Some(r_in) = inner {
            scratch
                .buckets
                .retain(|&id| self.buckets[id].mbr.max_distance_to_point(q) > r_in);
        }
    }

    fn buckets_for_windows_scratch(&self, windows: &[Rect], scratch: &mut QueryScratch) {
        scratch.buckets.clear();
        for b in &self.buckets {
            if windows.iter().any(|w| b.mbr.intersects(w)) {
                scratch.buckets.push(b.id);
            }
        }
    }

    /// Payload layout: for each child descriptor of the node — `u32`
    /// first covered data bucket, MBR as 4 × `f64`
    /// (`x1`, `y1`, `x2`, `y2`), `u32` POI count — CRC-framed.
    fn encode_index_bucket(&self, segment_bucket: usize) -> Result<Bytes, crate::wire::WireError> {
        assert!(
            segment_bucket < self.index_nodes.len(),
            "index bucket {segment_bucket} out of range ({} index buckets)",
            self.index_nodes.len()
        );
        let node = &self.index_nodes[segment_bucket];
        let mut payload = BytesMut::with_capacity(node.len() * INDEX_ENTRY_BYTES);
        for e in node {
            payload.put_u32(e.first_bucket);
            payload.put_f64(e.mbr.x1);
            payload.put_f64(e.mbr.y1);
            payload.put_f64(e.mbr.x2);
            payload.put_f64(e.mbr.y2);
            payload.put_u32(e.count);
        }
        Ok(crate::wire::frame_payload(&payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{verify_payload, CRC_TRAILER_BYTES};

    fn params(cap: usize) -> BuildParams {
        BuildParams {
            world: Rect::from_coords(0.0, 0.0, 64.0, 64.0),
            hilbert_order: 5,
            bucket_capacity: cap,
        }
    }

    fn scatter(n: usize) -> Vec<Poi> {
        let mut state = 99u64;
        (0..n)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let x = (state >> 16 & 0xFFFF) as f64 / 1024.0;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let y = (state >> 16 & 0xFFFF) as f64 / 1024.0;
                Poi::new(i as u32, Point::new(x, y))
            })
            .collect()
    }

    fn setup(n: usize, cap: usize) -> RtreeAirIndex {
        RtreeAirIndex::try_build(&crate::PoiTable::from_pois(scatter(n)), &params(cap)).unwrap()
    }

    #[test]
    fn buckets_are_packed_and_keyed_by_sequence() {
        let idx = setup(300, 10);
        assert_eq!(idx.data_buckets(), 30);
        assert_eq!(idx.poi_count(), 300);
        let mut prev_hi = None;
        for (i, b) in idx.buckets().iter().enumerate() {
            assert_eq!(b.id, i);
            assert!(!b.pois.is_empty() && b.pois.len() <= 10);
            // Sequence keys are globally monotone across buckets.
            if let Some(hi) = prev_hi {
                assert!(b.hilbert_range.0 > hi);
            }
            prev_hi = Some(b.hilbert_range.1);
            // The MBR bounds its POIs.
            for p in &b.pois {
                assert!(b.mbr.contains(p.pos));
            }
        }
    }

    #[test]
    fn window_buckets_cover_all_window_pois() {
        let idx = setup(500, 8);
        let w = Rect::from_coords(10.0, 10.0, 30.0, 25.0);
        let chosen = idx.buckets_for_window(&w);
        let chosen_pois: Vec<u32> = chosen
            .iter()
            .flat_map(|&id| idx.buckets()[id].pois.iter().map(|p| p.id))
            .collect();
        for b in idx.buckets() {
            for p in &b.pois {
                if w.contains(p.pos) {
                    assert!(chosen_pois.contains(&p.id), "missed poi {}", p.id);
                }
            }
        }
        // Output is sorted and deduplicated.
        for pair in chosen.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn knn_radius_guarantees_k_objects() {
        let idx = setup(400, 8);
        let q = Point::new(32.0, 32.0);
        for k in [1, 3, 10, 25] {
            let r = idx.knn_search_radius(q, k).unwrap();
            let count = idx
                .buckets()
                .iter()
                .flat_map(|b| &b.pois)
                .filter(|p| p.distance_to(q) <= r)
                .count();
            assert!(count >= k, "radius {r} holds {count} < {k} POIs");
        }
        assert!(idx.knn_search_radius(q, 0).is_none());
        assert!(idx.knn_search_radius(q, 401).is_none());
    }

    #[test]
    fn filtered_buckets_drop_fully_verified_ones() {
        let idx = setup(500, 4);
        let q = Point::new(32.0, 32.0);
        let outer = 20.0;
        let all = idx.buckets_for_knn_filtered(q, outer, None);
        let filt = idx.buckets_for_knn_filtered(q, outer, Some(10.0));
        assert!(filt.len() <= all.len());
        for id in &all {
            let inside = idx.buckets()[*id].mbr.max_distance_to_point(q) <= 10.0;
            assert_eq!(!filt.contains(id), inside);
        }
    }

    #[test]
    fn multi_window_set_is_union_of_single_windows() {
        let idx = setup(500, 8);
        let w1 = Rect::from_coords(10.0, 10.0, 30.0, 25.0);
        let w2 = Rect::from_coords(20.0, 15.0, 40.0, 35.0);
        let merged = idx.buckets_for_windows(&[w1, w2]);
        let mut naive: Vec<_> = idx
            .buckets_for_window(&w1)
            .into_iter()
            .chain(idx.buckets_for_window(&w2))
            .collect();
        naive.sort_unstable();
        naive.dedup();
        assert_eq!(merged, naive);
        assert!(idx.buckets_for_windows(&[]).is_empty());
    }

    #[test]
    fn index_bucket_count_is_internal_node_count() {
        for (n, cap) in [(0, 4), (3, 4), (300, 10), (2000, 4)] {
            let idx = setup(n, cap);
            let mut expect = 0usize;
            let mut level = idx.data_buckets();
            while level > 1 {
                level = level.div_ceil(INDEX_FANOUT);
                expect += level;
            }
            assert_eq!(idx.index_buckets(), expect.max(1), "n={n} cap={cap}");
        }
    }

    #[test]
    fn index_buckets_encode_and_verify() {
        let idx = setup(2000, 4); // 500 data buckets -> two index levels
        assert!(idx.index_buckets() > 1);
        for i in 0..idx.index_buckets() {
            let frame = idx.encode_index_bucket(i).unwrap();
            let payload = verify_payload(&frame).unwrap();
            assert_eq!(payload.len() % INDEX_ENTRY_BYTES, 0);
            let entries = payload.len() / INDEX_ENTRY_BYTES;
            assert!((1..=INDEX_FANOUT).contains(&entries));
            assert_eq!(frame.len(), payload.len() + CRC_TRAILER_BYTES);
        }
        // Root bucket comes first and summarizes everything.
        let root = idx.encode_index_bucket(0).unwrap();
        let root_payload = verify_payload(&root).unwrap();
        let root_entries = root_payload.len() / INDEX_ENTRY_BYTES;
        assert_eq!(root_entries, idx.data_buckets().div_ceil(INDEX_FANOUT));
    }

    #[test]
    fn empty_and_invalid_builds() {
        let idx = RtreeAirIndex::try_build(&crate::PoiTable::new(), &params(4)).unwrap();
        assert_eq!(idx.data_buckets(), 0);
        assert_eq!(idx.index_buckets(), 1);
        assert!(idx
            .buckets_for_window(&Rect::from_coords(0.0, 0.0, 1.0, 1.0))
            .is_empty());
        assert!(idx.knn_search_radius(Point::ORIGIN, 1).is_none());
        let frame = idx.encode_index_bucket(0).unwrap();
        assert!(verify_payload(&frame).unwrap().is_empty());
        assert_eq!(
            RtreeAirIndex::try_build(&crate::PoiTable::new(), &params(0)).unwrap_err(),
            IndexError::ZeroBucketCapacity
        );
    }
}
