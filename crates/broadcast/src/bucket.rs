//! Broadcast buckets — the unit of airtime.

use crate::Poi;
use airshare_geom::Rect;

/// Index of a data bucket within the broadcast file (0-based, in
/// broadcast order).
pub type BucketId = usize;

/// A fixed-capacity broadcast bucket holding POIs that are consecutive in
/// Hilbert order. One bucket takes one tick of airtime.
#[derive(Clone, Debug)]
pub struct Bucket {
    /// Position in the broadcast file.
    pub id: BucketId,
    /// Inclusive range of Hilbert values of the POIs inside.
    pub hilbert_range: (u64, u64),
    /// Minimum bounding rectangle of the POI positions inside.
    pub mbr: Rect,
    /// The data payload.
    pub pois: Vec<Poi>,
}

impl Bucket {
    /// Builds a bucket from POIs already sorted by Hilbert value.
    /// `values` are the corresponding Hilbert values. Panics when empty.
    pub(crate) fn build(id: BucketId, pois: Vec<Poi>, values: &[u64]) -> Self {
        assert!(!pois.is_empty() && pois.len() == values.len());
        let mbr = Rect::bounding(pois.iter().map(|p| p.pos)).expect("non-empty bucket");
        let lo = *values.first().expect("non-empty");
        let hi = *values.last().expect("non-empty");
        debug_assert!(lo <= hi, "values must be sorted");
        Self {
            id,
            hilbert_range: (lo, hi),
            mbr,
            pois,
        }
    }

    /// The bucket's Hilbert range intersects `[lo, hi]`.
    pub fn intersects_range(&self, lo: u64, hi: u64) -> bool {
        self.hilbert_range.0 <= hi && lo <= self.hilbert_range.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airshare_geom::Point;

    #[test]
    fn build_computes_range_and_mbr() {
        let pois = vec![
            Poi::new(0, Point::new(1.0, 1.0)),
            Poi::new(1, Point::new(2.0, 3.0)),
        ];
        let b = Bucket::build(0, pois, &[10, 12]);
        assert_eq!(b.hilbert_range, (10, 12));
        assert_eq!(b.mbr, Rect::from_coords(1.0, 1.0, 2.0, 3.0));
    }

    #[test]
    fn range_intersection() {
        let b = Bucket::build(0, vec![Poi::new(0, Point::ORIGIN)], &[5]);
        assert!(b.intersects_range(0, 5));
        assert!(b.intersects_range(5, 9));
        assert!(!b.intersects_range(6, 9));
    }
}
