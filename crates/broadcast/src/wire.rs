//! Bucket wire format.
//!
//! The simulator's timing model charges one tick per bucket; this module
//! pins down what a bucket physically carries so tick counts translate
//! to real airtime. Each POI record is 21 bytes (`id: u32`, `x: f64`,
//! `y: f64`, `category: u8`), and a bucket frame is a 16-byte header
//! (bucket id, Hilbert range lo/hi as deltas would shrink this further —
//! kept plain for clarity) followed by the records.
//!
//! Encoding uses the `bytes` crate's `BufMut`/`Buf` so frames can be
//! assembled into transmit buffers without intermediate copies.

use crate::{Bucket, Poi, PoiCategory};
use airshare_geom::Point;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Bytes per serialized POI record.
pub const POI_RECORD_BYTES: usize = 4 + 8 + 8 + 1;

/// Bytes of the bucket frame header.
pub const BUCKET_HEADER_BYTES: usize = 4 + 8 + 2;

/// Serialized size of a bucket with `n` POIs.
pub fn bucket_frame_bytes(n: usize) -> usize {
    BUCKET_HEADER_BYTES + n * POI_RECORD_BYTES
}

/// Errors from [`decode_bucket`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The frame ended before the declared record count was read.
    Truncated,
    /// The declared record count disagrees with the payload length.
    LengthMismatch,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "bucket frame truncated"),
            WireError::LengthMismatch => write!(f, "record count does not match payload"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a bucket into its on-air frame.
pub fn encode_bucket(bucket: &Bucket) -> Bytes {
    let mut buf = BytesMut::with_capacity(bucket_frame_bytes(bucket.pois.len()));
    buf.put_u32(bucket.id as u32);
    buf.put_u64(bucket.hilbert_range.0);
    // Record count; u16 suffices for any realistic bucket capacity.
    buf.put_u16(bucket.pois.len() as u16);
    for poi in &bucket.pois {
        buf.put_u32(poi.id);
        buf.put_f64(poi.pos.x);
        buf.put_f64(poi.pos.y);
        buf.put_u8(poi.category.0);
    }
    buf.freeze()
}

/// Decodes an on-air frame back into `(bucket id, hilbert lo, POIs)`.
pub fn decode_bucket(mut frame: Bytes) -> Result<(usize, u64, Vec<Poi>), WireError> {
    if frame.len() < BUCKET_HEADER_BYTES {
        return Err(WireError::Truncated);
    }
    let id = frame.get_u32() as usize;
    let h_lo = frame.get_u64();
    let n = frame.get_u16() as usize;
    if frame.len() != n * POI_RECORD_BYTES {
        return Err(WireError::LengthMismatch);
    }
    let mut pois = Vec::with_capacity(n);
    for _ in 0..n {
        let id = frame.get_u32();
        let x = frame.get_f64();
        let y = frame.get_f64();
        let cat = frame.get_u8();
        pois.push(Poi::with_category(id, Point::new(x, y), PoiCategory(cat)));
    }
    Ok((id, h_lo, pois))
}

/// Converts a tick count to seconds for a given bucket payload size and
/// channel bit-rate (e.g. `ticks_to_seconds(n, 64, 1_000_000.0)` for
/// 64-POI buckets on a 1 Mbps channel).
pub fn ticks_to_seconds(ticks: u64, bucket_capacity: usize, bits_per_second: f64) -> f64 {
    let bits = (bucket_frame_bytes(bucket_capacity) * 8) as f64;
    ticks as f64 * bits / bits_per_second
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AirIndex;
    use airshare_geom::Rect;
    use airshare_hilbert::Grid;

    fn sample_bucket() -> Bucket {
        let world = Rect::from_coords(0.0, 0.0, 8.0, 8.0);
        let pois = vec![
            Poi::new(3, Point::new(1.0, 2.0)),
            Poi::with_category(9, Point::new(2.5, 2.5), PoiCategory(4)),
        ];
        let index = AirIndex::build(pois, Grid::new(world, 3), 8);
        index.buckets()[0].clone()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let b = sample_bucket();
        let frame = encode_bucket(&b);
        assert_eq!(frame.len(), bucket_frame_bytes(b.pois.len()));
        let (id, h_lo, pois) = decode_bucket(frame).unwrap();
        assert_eq!(id, b.id);
        assert_eq!(h_lo, b.hilbert_range.0);
        assert_eq!(pois.len(), b.pois.len());
        for (a, e) in pois.iter().zip(&b.pois) {
            assert_eq!(a.id, e.id);
            assert_eq!(a.pos, e.pos);
            assert_eq!(a.category, e.category);
        }
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let b = sample_bucket();
        let frame = encode_bucket(&b);
        let short = frame.slice(0..BUCKET_HEADER_BYTES - 1);
        assert_eq!(decode_bucket(short), Err(WireError::Truncated));
        let clipped = frame.slice(0..frame.len() - 3);
        assert_eq!(decode_bucket(clipped), Err(WireError::LengthMismatch));
    }

    #[test]
    fn tick_conversion_matches_arithmetic() {
        // 10-POI buckets: 14 + 210 = 224 bytes = 1792 bits.
        let secs = ticks_to_seconds(100, 10, 1_000_000.0);
        assert!((secs - 100.0 * 1792.0 / 1e6).abs() < 1e-12);
    }

    #[test]
    fn empty_bucket_frame() {
        let world = Rect::from_coords(0.0, 0.0, 8.0, 8.0);
        let pois = vec![Poi::new(0, Point::new(1.0, 1.0))];
        let index = AirIndex::build(pois, Grid::new(world, 3), 4);
        let mut b = index.buckets()[0].clone();
        b.pois.clear();
        let (_, _, decoded) = decode_bucket(encode_bucket(&b)).unwrap();
        assert!(decoded.is_empty());
    }
}
