//! Bucket wire format.
//!
//! The simulator's timing model charges one tick per bucket; this module
//! pins down what a bucket physically carries so tick counts translate
//! to real airtime. Each POI record is 21 bytes (`id: u32`, `x: f64`,
//! `y: f64`, `category: u8`), and a bucket frame is a 14-byte header
//! (`bucket id: u32`, `Hilbert range lo: u64`, `record count: u16` —
//! range hi is implied by the next bucket's lo, and deltas would shrink
//! this further; kept plain for clarity) followed by the records and a
//! 4-byte CRC-32 trailer over everything before it, so receivers can
//! detect corruption instead of consuming garbage positions.
//!
//! Encoding uses the `bytes` crate's `BufMut`/`Buf` so frames can be
//! assembled into transmit buffers without intermediate copies.

use crate::{Bucket, Poi, PoiCategory};
use airshare_geom::Point;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Bytes per serialized POI record.
pub const POI_RECORD_BYTES: usize = 4 + 8 + 8 + 1;

/// Bytes of the bucket frame header.
pub const BUCKET_HEADER_BYTES: usize = 4 + 8 + 2;

/// Bytes of the CRC-32 frame trailer.
pub const CRC_TRAILER_BYTES: usize = 4;

/// Serialized size of a bucket with `n` POIs.
pub fn bucket_frame_bytes(n: usize) -> usize {
    BUCKET_HEADER_BYTES + n * POI_RECORD_BYTES + CRC_TRAILER_BYTES
}

/// CRC-32 (IEEE 802.3, reflected, poly `0xEDB88320`) lookup table.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3) checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Errors from [`encode_bucket`] and [`decode_bucket`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The frame ended before the declared record count was read.
    Truncated,
    /// The declared record count disagrees with the payload length.
    LengthMismatch,
    /// A field exceeds its wire-format range (bucket id > `u32::MAX` or
    /// record count > `u16::MAX`).
    Overflow,
    /// The CRC-32 trailer does not match the frame contents.
    ChecksumMismatch,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "bucket frame truncated"),
            WireError::LengthMismatch => write!(f, "record count does not match payload"),
            WireError::Overflow => write!(f, "field exceeds wire-format range"),
            WireError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a bucket into its on-air frame.
///
/// Fails with [`WireError::Overflow`] when the bucket id or record count
/// does not fit its wire field, rather than silently truncating.
pub fn encode_bucket(bucket: &Bucket) -> Result<Bytes, WireError> {
    let id = u32::try_from(bucket.id).map_err(|_| WireError::Overflow)?;
    let n = u16::try_from(bucket.pois.len()).map_err(|_| WireError::Overflow)?;
    let mut buf = BytesMut::with_capacity(bucket_frame_bytes(bucket.pois.len()));
    buf.put_u32(id);
    buf.put_u64(bucket.hilbert_range.0);
    buf.put_u16(n);
    for poi in &bucket.pois {
        buf.put_u32(poi.id);
        buf.put_f64(poi.pos.x);
        buf.put_f64(poi.pos.y);
        buf.put_u8(poi.category.0);
    }
    let crc = crc32(&buf);
    buf.put_u32(crc);
    Ok(buf.freeze())
}

/// Decodes an on-air frame back into `(bucket id, hilbert lo, POIs)`.
///
/// Verifies the CRC-32 trailer before interpreting any field, so a
/// corrupted frame surfaces as [`WireError::ChecksumMismatch`] instead of
/// bogus coordinates.
pub fn decode_bucket(mut frame: Bytes) -> Result<(usize, u64, Vec<Poi>), WireError> {
    if frame.len() < BUCKET_HEADER_BYTES + CRC_TRAILER_BYTES {
        return Err(WireError::Truncated);
    }
    let body_len = frame.len() - CRC_TRAILER_BYTES;
    let expected = {
        let trailer = frame.slice(body_len..);
        u32::from_be_bytes([trailer[0], trailer[1], trailer[2], trailer[3]])
    };
    if crc32(&frame[..body_len]) != expected {
        return Err(WireError::ChecksumMismatch);
    }
    let id = frame.get_u32() as usize;
    let h_lo = frame.get_u64();
    let n = frame.get_u16() as usize;
    if frame.len() - CRC_TRAILER_BYTES != n * POI_RECORD_BYTES {
        return Err(WireError::LengthMismatch);
    }
    let mut pois = Vec::with_capacity(n);
    for _ in 0..n {
        let id = frame.get_u32();
        let x = frame.get_f64();
        let y = frame.get_f64();
        let cat = frame.get_u8();
        pois.push(Poi::with_category(id, Point::new(x, y), PoiCategory(cat)));
    }
    Ok((id, h_lo, pois))
}

/// Appends the CRC-32 trailer to an arbitrary payload, producing a
/// complete on-air frame.
///
/// Backend index buckets ([`crate::AirIndexBackend::encode_index_bucket`])
/// carry backend-specific payloads — curve-range descriptors for the
/// Hilbert index, MBR descriptors for the R-tree — but all of them use
/// this shared framing so receivers detect corruption uniformly with
/// [`verify_payload`].
pub fn frame_payload(payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(payload.len() + CRC_TRAILER_BYTES);
    buf.put_slice(payload);
    buf.put_u32(crc32(payload));
    buf.freeze()
}

/// Verifies a [`frame_payload`] frame and returns the payload slice.
///
/// Fails with [`WireError::Truncated`] when the frame is shorter than the
/// trailer, and [`WireError::ChecksumMismatch`] when the CRC does not
/// match.
pub fn verify_payload(frame: &[u8]) -> Result<&[u8], WireError> {
    if frame.len() < CRC_TRAILER_BYTES {
        return Err(WireError::Truncated);
    }
    let (payload, trailer) = frame.split_at(frame.len() - CRC_TRAILER_BYTES);
    let expected = u32::from_be_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    if crc32(payload) != expected {
        return Err(WireError::ChecksumMismatch);
    }
    Ok(payload)
}

/// Converts a tick count to seconds for a given bucket payload size and
/// channel bit-rate (e.g. `ticks_to_seconds(n, 64, 1_000_000.0)` for
/// 64-POI buckets on a 1 Mbps channel).
pub fn ticks_to_seconds(ticks: u64, bucket_capacity: usize, bits_per_second: f64) -> f64 {
    let bits = (bucket_frame_bytes(bucket_capacity) * 8) as f64;
    ticks as f64 * bits / bits_per_second
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AirIndex;
    use airshare_geom::Rect;
    use airshare_hilbert::Grid;

    fn sample_bucket() -> Bucket {
        let world = Rect::from_coords(0.0, 0.0, 8.0, 8.0);
        let pois = vec![
            Poi::new(3, Point::new(1.0, 2.0)),
            Poi::with_category(9, Point::new(2.5, 2.5), PoiCategory(4)),
        ];
        let index = AirIndex::try_build(pois, Grid::new(world, 3), 8).unwrap();
        index.buckets()[0].clone()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let b = sample_bucket();
        let frame = encode_bucket(&b).unwrap();
        assert_eq!(frame.len(), bucket_frame_bytes(b.pois.len()));
        let (id, h_lo, pois) = decode_bucket(frame).unwrap();
        assert_eq!(id, b.id);
        assert_eq!(h_lo, b.hilbert_range.0);
        assert_eq!(pois.len(), b.pois.len());
        for (a, e) in pois.iter().zip(&b.pois) {
            assert_eq!(a.id, e.id);
            assert_eq!(a.pos, e.pos);
            assert_eq!(a.category, e.category);
        }
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let b = sample_bucket();
        let frame = encode_bucket(&b).unwrap();
        let short = frame.slice(0..BUCKET_HEADER_BYTES + CRC_TRAILER_BYTES - 1);
        assert_eq!(decode_bucket(short), Err(WireError::Truncated));
        // Losing payload bytes also invalidates the checksum, which is
        // checked first.
        let clipped = frame.slice(0..frame.len() - 3);
        assert_eq!(decode_bucket(clipped), Err(WireError::ChecksumMismatch));
    }

    #[test]
    fn corrupted_frames_fail_checksum() {
        let b = sample_bucket();
        let frame = encode_bucket(&b).unwrap();
        for pos in 0..frame.len() {
            let mut bytes = frame.to_vec();
            bytes[pos] ^= 0x01;
            assert_eq!(
                decode_bucket(Bytes::from(bytes)),
                Err(WireError::ChecksumMismatch),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn oversized_fields_are_rejected() {
        let mut b = sample_bucket();
        b.id = u32::MAX as usize + 1;
        assert_eq!(encode_bucket(&b), Err(WireError::Overflow));
    }

    #[test]
    fn crc32_known_vector() {
        // Standard check value for the ASCII digits "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn tick_conversion_matches_arithmetic() {
        // 10-POI buckets: 14 + 210 + 4 = 228 bytes = 1824 bits.
        let secs = ticks_to_seconds(100, 10, 1_000_000.0);
        assert!((secs - 100.0 * 1824.0 / 1e6).abs() < 1e-12);
    }

    #[test]
    fn payload_framing_roundtrips_and_detects_corruption() {
        let payload = b"arbitrary index-bucket payload";
        let frame = frame_payload(payload);
        assert_eq!(frame.len(), payload.len() + CRC_TRAILER_BYTES);
        assert_eq!(verify_payload(&frame).unwrap(), payload);
        // Every single-bit flip is caught.
        for pos in 0..frame.len() {
            let mut bytes = frame.to_vec();
            bytes[pos] ^= 0x01;
            assert_eq!(
                verify_payload(&bytes),
                Err(WireError::ChecksumMismatch),
                "flip at byte {pos} went undetected"
            );
        }
        // Empty payloads frame fine; sub-trailer frames are truncated.
        assert_eq!(verify_payload(&frame_payload(b"")).unwrap(), b"");
        assert_eq!(verify_payload(b"abc"), Err(WireError::Truncated));
    }

    #[test]
    fn empty_bucket_frame() {
        let world = Rect::from_coords(0.0, 0.0, 8.0, 8.0);
        let pois = vec![Poi::new(0, Point::new(1.0, 1.0))];
        let index = AirIndex::try_build(pois, Grid::new(world, 3), 4).unwrap();
        let mut b = index.buckets()[0].clone();
        b.pois.clear();
        let (_, _, decoded) = decode_bucket(encode_bucket(&b).unwrap()).unwrap();
        assert!(decoded.is_empty());
    }
}
