//! `(1, m)` broadcast-cycle timing.

use crate::BucketId;
use std::fmt;

/// Rejected [`Schedule`] parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// `m == 0`: the index must appear at least once per cycle.
    ZeroReplication,
    /// `index_buckets == 0`: an index segment cannot be empty.
    ZeroIndexBuckets,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::ZeroReplication => write!(f, "index replication m must be ≥ 1"),
            ScheduleError::ZeroIndexBuckets => {
                write!(f, "index must occupy at least one bucket")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// The `(1, m)` index allocation of Imielinski et al. (paper Figure 2):
/// the full index is broadcast `m` times per cycle, each occurrence
/// preceding `1/m` of the data file.
///
/// A cycle therefore looks like
///
/// ```text
/// [ index ][ data slice 0 ][ index ][ data slice 1 ] … [ index ][ slice m-1 ]
/// ```
///
/// All times are in ticks (one bucket of airtime). Absolute time starts
/// at 0 with the first index segment of cycle 0.
#[derive(Clone, Copy, Debug)]
pub struct Schedule {
    data_buckets: usize,
    index_buckets: usize,
    m: usize,
}

impl Schedule {
    /// Creates a schedule. Panics on the conditions [`Self::try_new`]
    /// reports; use `try_new` when the parameters come from external
    /// input (e.g. a simulator configuration).
    pub fn new(data_buckets: usize, index_buckets: usize, m: usize) -> Self {
        Self::try_new(data_buckets, index_buckets, m).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a schedule, rejecting impossible parameters: `m ≥ 1` and
    /// `index_buckets ≥ 1` are required. `m` larger than the number of
    /// data buckets is clamped (replicating the index more often than
    /// data slices exist is harmless but pointless).
    pub fn try_new(
        data_buckets: usize,
        index_buckets: usize,
        m: usize,
    ) -> Result<Self, ScheduleError> {
        if m < 1 {
            return Err(ScheduleError::ZeroReplication);
        }
        if index_buckets < 1 {
            return Err(ScheduleError::ZeroIndexBuckets);
        }
        Ok(Self {
            data_buckets,
            index_buckets,
            m: m.min(data_buckets.max(1)),
        })
    }

    /// Creates the `(1, m)` schedule matching a built air index: data and
    /// index segment sizes are read off the backend, so the pair is
    /// consistent by construction for any [`crate::AirIndexBackend`].
    pub fn try_for_backend(
        backend: &dyn crate::AirIndexBackend,
        m: usize,
    ) -> Result<Self, ScheduleError> {
        Self::try_new(backend.data_buckets(), backend.index_buckets(), m)
    }

    /// Number of data buckets per cycle.
    pub fn data_buckets(&self) -> usize {
        self.data_buckets
    }

    /// Ticks one index segment occupies.
    pub fn index_buckets(&self) -> usize {
        self.index_buckets
    }

    /// The replication factor `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total cycle length in ticks: `m · index + data`.
    pub fn cycle_len(&self) -> u64 {
        (self.m * self.index_buckets + self.data_buckets) as u64
    }

    /// First data bucket of slice `s` (balanced partition).
    fn slice_start(&self, s: usize) -> usize {
        s * self.data_buckets / self.m
    }

    /// Cycle-relative start time of the `s`-th index segment.
    fn segment_start(&self, s: usize) -> u64 {
        (s * self.index_buckets + self.slice_start(s)) as u64
    }

    /// Cycle-relative time at which data bucket `b` begins transmission.
    ///
    /// Closed form: the slice containing `b` is the largest `s` with
    /// `⌊s·D/m⌋ ≤ b`, i.e. `s = min(m-1, ⌊((b+1)·m - 1) / D⌋)` for `D`
    /// data buckets — no scan over the slices.
    pub fn bucket_offset(&self, b: BucketId) -> u64 {
        debug_assert!(b < self.data_buckets);
        let s = (((b + 1) * self.m - 1) / self.data_buckets.max(1)).min(self.m - 1);
        debug_assert!(self.slice_start(s) <= b);
        debug_assert!(s + 1 == self.m || self.slice_start(s + 1) > b);
        self.segment_start(s) + (self.index_buckets + b - self.slice_start(s)) as u64
    }

    /// Earliest absolute start time `≥ t` of an index segment — the
    /// client's *initial probe* target.
    ///
    /// Closed form: with cycle length `L` and cycle-relative time `w`,
    /// the first segment not yet started is `s = ⌈w·m / L⌉`, because
    /// `segment_start(s) = s·I + ⌊s·D/m⌋` is sandwiched in
    /// `[s·L/m - 1, s·L/m]` — so no scan over the segments either.
    pub fn next_index_start(&self, t: u64) -> u64 {
        let cl = self.cycle_len();
        let cycle = t / cl;
        let within = t % cl;
        let s = ((within * self.m as u64).div_ceil(cl)) as usize;
        if s == self.m {
            return (cycle + 1) * cl; // first segment of the next cycle
        }
        debug_assert!(self.segment_start(s) >= within);
        debug_assert!(s == 0 || self.segment_start(s - 1) < within);
        cycle * cl + self.segment_start(s)
    }

    /// Earliest absolute completion time of data bucket `b` whose
    /// transmission starts at or after `t`. (A bucket started at `x`
    /// completes at `x + 1`.)
    pub fn bucket_completion_after(&self, b: BucketId, t: u64) -> u64 {
        let cl = self.cycle_len();
        let off = self.bucket_offset(b);
        let cycle = t / cl;
        let start = if cycle * cl + off >= t {
            cycle * cl + off
        } else {
            (cycle + 1) * cl + off
        };
        start + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_layout_m1() {
        // index(2) + data(6): cycle = 8.
        let s = Schedule::new(6, 2, 1);
        assert_eq!(s.cycle_len(), 8);
        assert_eq!(s.bucket_offset(0), 2);
        assert_eq!(s.bucket_offset(5), 7);
        assert_eq!(s.next_index_start(0), 0);
        assert_eq!(s.next_index_start(1), 8);
    }

    #[test]
    fn cycle_layout_m2_balanced() {
        // 6 data buckets, index 2, m=2:
        // [idx 0..2][d0 d1 d2][idx 7..9][d3 d4 d5], cycle = 10.
        let s = Schedule::new(6, 2, 2);
        assert_eq!(s.cycle_len(), 10);
        assert_eq!(s.bucket_offset(0), 2);
        assert_eq!(s.bucket_offset(2), 4);
        assert_eq!(s.bucket_offset(3), 7);
        assert_eq!(s.bucket_offset(5), 9);
        assert_eq!(s.next_index_start(0), 0);
        assert_eq!(s.next_index_start(1), 5);
        assert_eq!(s.next_index_start(5), 5);
        assert_eq!(s.next_index_start(6), 10);
    }

    #[test]
    fn uneven_slices_are_balanced() {
        // 7 data buckets over m=3: slices of 2,3,2 (floor partition
        // boundaries at 0, 2, 4).
        let s = Schedule::new(7, 1, 3);
        assert_eq!(s.cycle_len(), 10);
        // Every bucket has a unique, increasing offset.
        let offs: Vec<u64> = (0..7).map(|b| s.bucket_offset(b)).collect();
        for w in offs.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(offs.iter().all(|&o| o < 10));
    }

    #[test]
    fn bucket_completion_wraps_to_next_cycle() {
        let s = Schedule::new(6, 2, 1);
        // Bucket 0 starts at offset 2; from t=0 it completes at 3.
        assert_eq!(s.bucket_completion_after(0, 0), 3);
        // From t=3 (just missed), the next occurrence is cycle 1: 8+2+1.
        assert_eq!(s.bucket_completion_after(0, 3), 11);
        // Exactly at its start time counts as caught.
        assert_eq!(s.bucket_completion_after(0, 2), 3);
    }

    #[test]
    fn try_new_rejects_impossible_layouts() {
        assert_eq!(
            Schedule::try_new(6, 2, 0).unwrap_err(),
            ScheduleError::ZeroReplication
        );
        assert_eq!(
            Schedule::try_new(6, 0, 1).unwrap_err(),
            ScheduleError::ZeroIndexBuckets
        );
        assert!(Schedule::try_new(6, 2, 1).is_ok());
    }

    #[test]
    fn m_clamped_to_data_buckets() {
        let s = Schedule::new(2, 1, 100);
        assert_eq!(s.m(), 2);
    }

    #[test]
    fn closed_forms_match_linear_scans() {
        // The pre-optimization O(m) scans, kept as the oracle.
        fn bucket_offset_scan(s: &Schedule, b: BucketId) -> u64 {
            let sl = (0..s.m())
                .rev()
                .find(|&sl| s.slice_start(sl) <= b)
                .expect("bucket belongs to some slice");
            s.segment_start(sl) + (s.index_buckets() + b - s.slice_start(sl)) as u64
        }
        fn next_index_start_scan(s: &Schedule, t: u64) -> u64 {
            let cl = s.cycle_len();
            let (cycle, within) = (t / cl, t % cl);
            for sl in 0..s.m() {
                if s.segment_start(sl) >= within {
                    return cycle * cl + s.segment_start(sl);
                }
            }
            (cycle + 1) * cl
        }
        for data in [1usize, 2, 5, 6, 7, 13, 120] {
            for idx in [1usize, 2, 4] {
                for m in [1usize, 2, 3, 5, 12, 200] {
                    let s = Schedule::new(data, idx, m);
                    for b in 0..data {
                        assert_eq!(
                            s.bucket_offset(b),
                            bucket_offset_scan(&s, b),
                            "offset(D={data}, I={idx}, m={m}, b={b})"
                        );
                    }
                    for t in 0..2 * s.cycle_len() {
                        assert_eq!(
                            s.next_index_start(t),
                            next_index_start_scan(&s, t),
                            "probe(D={data}, I={idx}, m={m}, t={t})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn average_index_wait_shrinks_with_m() {
        // The whole point of (1, m): probing waits ~cycle/(2m) for an
        // index. Check monotonicity empirically.
        let data = 120;
        let idx = 4;
        let wait = |m: usize| {
            let s = Schedule::new(data, idx, m);
            let cl = s.cycle_len();
            (0..cl).map(|t| (s.next_index_start(t) - t) as f64).sum::<f64>() / cl as f64
        };
        let w1 = wait(1);
        let w4 = wait(4);
        let w12 = wait(12);
        assert!(w4 < w1, "{w4} !< {w1}");
        assert!(w12 < w4, "{w12} !< {w4}");
    }
}
