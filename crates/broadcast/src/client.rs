//! The client access protocol and the on-air spatial query baselines.

use crate::{AirIndex, AirIndexBackend, BucketId, ChannelFaults, Poi, QueryScratch, Schedule};
use airshare_geom::{Point, Rect};
use airshare_obs::{AccessStats, NoopRecorder, Recorder, TraceEvent};

/// Result of an on-air kNN query.
#[derive(Clone, Debug)]
pub struct OnAirKnnResult {
    /// The exact k nearest POIs, ascending by distance.
    pub neighbors: Vec<Poi>,
    /// The search MBR whose cells were fully retrieved. Every POI inside
    /// it is now known to the client — a sound verified region.
    pub verified_mbr: Rect,
    /// Every POI the client now knows in the search area (downloaded
    /// buckets merged with prior knowledge) — the payload for caching the
    /// verified region.
    pub retrieved: Vec<Poi>,
    /// Broadcast-access cost.
    pub stats: AccessStats,
}

/// Result of an on-air window query.
#[derive(Clone, Debug)]
pub struct OnAirWindowResult {
    /// POIs inside the query window.
    pub pois: Vec<Poi>,
    /// Broadcast-access cost.
    pub stats: AccessStats,
}

/// A client of the broadcast channel: owns no state beyond references to
/// the public air organization (every mobile host sees the same channel).
///
/// The access protocol follows the paper's three steps: **initial probe**
/// (wait for the next index segment), **index search** (translate the
/// spatial predicate to bucket arrival times), **data retrieval**
/// (download the buckets as they come around).
///
/// The client is generic over the [`AirIndexBackend`] it tunes to and
/// defaults to the paper's Hilbert [`AirIndex`], so existing code keeps
/// static dispatch unchanged. Callers that pick a backend at runtime use
/// `OnAirClient<'a, dyn AirIndexBackend>` (see
/// [`OnAirClient::as_dyn`]).
#[derive(Debug)]
pub struct OnAirClient<'a, B: ?Sized = AirIndex> {
    index: &'a B,
    schedule: &'a Schedule,
    faults: Option<&'a ChannelFaults>,
}

// Manual impls: `derive` would bound `B: Clone + Copy`, which a trait
// object cannot satisfy even though only references are copied.
impl<B: ?Sized> Clone for OnAirClient<'_, B> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<B: ?Sized> Copy for OnAirClient<'_, B> {}

impl<'a, B: AirIndexBackend> OnAirClient<'a, B> {
    /// Erases the backend type, so call sites that mix backends at
    /// runtime (e.g. the simulator's `BackendKind` knob) share one
    /// monomorphization of every query path.
    pub fn as_dyn(&self) -> OnAirClient<'a, dyn AirIndexBackend + 'a> {
        OnAirClient {
            index: self.index,
            schedule: self.schedule,
            faults: self.faults,
        }
    }
}

impl<'a, B: AirIndexBackend + ?Sized> OnAirClient<'a, B> {
    /// Creates a client for a channel with an ideal (lossless) link.
    pub fn new(index: &'a B, schedule: &'a Schedule) -> Self {
        debug_assert_eq!(index.data_buckets(), schedule.data_buckets());
        Self {
            index,
            schedule,
            faults: None,
        }
    }

    /// Creates a client for a channel subject to a fault model: bucket
    /// appearances may arrive corrupt (detected via the wire CRC) and are
    /// re-fetched on the bucket's next cycle occurrence, up to the
    /// model's retry budget.
    pub fn with_faults(
        index: &'a B,
        schedule: &'a Schedule,
        faults: &'a ChannelFaults,
    ) -> Self {
        debug_assert_eq!(index.data_buckets(), schedule.data_buckets());
        Self {
            index,
            schedule,
            faults: Some(faults),
        }
    }

    /// The fault model in effect, if any.
    pub fn faults(&self) -> Option<&'a ChannelFaults> {
        self.faults
    }

    /// Runs the raw access protocol for an explicit bucket set, returning
    /// the downloaded POIs and the access cost.
    ///
    /// `tune_in` is the absolute tick at which the client poses the
    /// query. Buckets already past in the current cycle are caught on the
    /// next one — the sequential-access limitation the paper's P2P
    /// sharing exists to mitigate.
    ///
    /// Under a fault model, a corrupt appearance costs its tuning tick
    /// (the client listened and got a CRC failure) and pushes the
    /// download to the bucket's next cycle occurrence; after the retry
    /// budget is exhausted the bucket is abandoned and counted in
    /// [`AccessStats::lost_buckets`], so the caller can report the
    /// operation as degraded instead of returning silently wrong data.
    ///
    /// **Retry-budget contract** (the off-by-one, pinned by tests): a
    /// budget of `N` permits up to `N` *re-fetches after* the free first
    /// appearance, so at most `N + 1` appearances of each bucket are
    /// examined. Budget 0 means single-shot: any corrupt appearance
    /// immediately abandons the bucket. Each re-fetch adds one tick to
    /// [`AccessStats::tuning`] and one to [`AccessStats::retries`]; on a
    /// fully dead channel (`loss_prob == 1.0`) a retrieval therefore
    /// books exactly `N` retries plus one lost bucket per requested
    /// bucket, i.e. `N + 1` `FrameLost` events apiece.
    pub fn retrieve(&self, tune_in: u64, buckets: &[BucketId]) -> (Vec<Poi>, AccessStats) {
        self.retrieve_rec(tune_in, buckets, &mut NoopRecorder)
    }

    /// [`OnAirClient::retrieve`], tracing each protocol step into `rec`:
    /// the initial probe, the index segment read, every downloaded data
    /// bucket, and every corrupt appearance (including the final one of
    /// an abandoned bucket — so across a retrieval the `FrameLost` count
    /// equals `retries + lost_buckets`).
    pub fn retrieve_rec(
        &self,
        tune_in: u64,
        buckets: &[BucketId],
        rec: &mut dyn Recorder,
    ) -> (Vec<Poi>, AccessStats) {
        rec.record(TraceEvent::ProbeStarted { tick: tune_in });
        let idx_start = self.schedule.next_index_start(tune_in);
        let idx_done = idx_start + self.schedule.index_buckets() as u64;
        rec.record(TraceEvent::IndexBucketTuned {
            count: self.schedule.index_buckets() as u32,
        });
        let mut last = idx_done;
        let mut pois = Vec::new();
        let mut tuning = 1 + self.schedule.index_buckets() as u64 + buckets.len() as u64;
        let mut retries = 0u64;
        let mut lost_buckets = 0u64;
        let faults = self.faults.filter(|f| !f.is_lossless());
        let cycle = self.schedule.cycle_len();
        for &b in buckets {
            let mut done = self.schedule.bucket_completion_after(b, idx_done);
            if let Some(f) = faults {
                // A bucket airs once per cycle, so the completion tick's
                // cycle number identifies the on-air appearance.
                let mut attempts_left = f.retry_budget();
                loop {
                    if !f.bucket_lost(b, done / cycle) {
                        rec.record(TraceEvent::DataBucketTuned {
                            bucket: b as u32,
                            tick: done,
                        });
                        pois.extend(self.index.buckets()[b].pois.iter().copied());
                        break;
                    }
                    rec.record(TraceEvent::FrameLost {
                        bucket: b as u32,
                        retry: f.retry_budget() - attempts_left,
                    });
                    if attempts_left == 0 {
                        lost_buckets += 1;
                        break;
                    }
                    attempts_left -= 1;
                    retries += 1;
                    tuning += 1;
                    done += cycle;
                }
            } else {
                rec.record(TraceEvent::DataBucketTuned {
                    bucket: b as u32,
                    tick: done,
                });
                pois.extend(self.index.buckets()[b].pois.iter().copied());
            }
            last = last.max(done);
        }
        let stats = AccessStats {
            latency: last - tune_in,
            tuning,
            buckets: buckets.len() as u64,
            retries,
            lost_buckets,
        };
        (pois, stats)
    }

    /// The on-air kNN baseline (paper Figure 4, after Zheng et al.):
    /// scan the index to bound a search circle certain to hold ≥ k
    /// objects, retrieve every bucket covering the circle's MBR, then
    /// rank by exact distance.
    ///
    /// Returns `None` when the data file holds fewer than `k` POIs.
    pub fn knn(&self, tune_in: u64, q: Point, k: usize) -> Option<OnAirKnnResult> {
        self.knn_rec(tune_in, q, k, &mut QueryScratch::new(), &mut NoopRecorder)
    }

    /// [`OnAirClient::knn`], tracing the underlying retrieval into `rec`
    /// and doing its index-path work in `scratch` (allocation-free once
    /// the scratch is warm).
    pub fn knn_rec(
        &self,
        tune_in: u64,
        q: Point,
        k: usize,
        scratch: &mut QueryScratch,
        rec: &mut dyn Recorder,
    ) -> Option<OnAirKnnResult> {
        let radius = self.index.knn_search_radius(q, k)?;
        self.index.buckets_for_knn_scratch(q, radius, scratch);
        let (pois, stats) = self.retrieve_rec(tune_in, &scratch.buckets, rec);
        let neighbors = top_k_by_distance(pois.clone(), q, k);
        // Lost buckets may leave fewer than k candidates; the degraded
        // flag in `stats` tells the caller not to trust the shortfall.
        debug_assert!(neighbors.len() == k || stats.is_degraded());
        let verified_mbr = clip_to_world(Rect::centered_square(q, radius), self.index.world());
        Some(OnAirKnnResult {
            neighbors,
            verified_mbr,
            retrieved: pois,
            stats,
        })
    }

    /// Bound-filtered kNN completion (§3.3.3): the client already holds
    /// `known` POIs — everything within `inner` of `q` is verified — and
    /// needs the exact top `k`. `outer` caps the search (the distance of
    /// the last heap entry when the heap is full, i.e. the paper's upper
    /// bound), falling back to the index-scan radius when absent.
    ///
    /// Buckets entirely inside the inner circle are skipped; their POIs
    /// are reconstructed from `known`.
    pub fn knn_filtered(
        &self,
        tune_in: u64,
        q: Point,
        k: usize,
        known: &[Poi],
        inner: Option<f64>,
        outer: Option<f64>,
    ) -> Option<OnAirKnnResult> {
        self.knn_filtered_rec(
            tune_in,
            q,
            k,
            known,
            inner,
            outer,
            &mut QueryScratch::new(),
            &mut NoopRecorder,
        )
    }

    /// [`OnAirClient::knn_filtered`], tracing the underlying retrieval
    /// into `rec` and doing its index-path work in `scratch`.
    #[allow(clippy::too_many_arguments)]
    pub fn knn_filtered_rec(
        &self,
        tune_in: u64,
        q: Point,
        k: usize,
        known: &[Poi],
        inner: Option<f64>,
        outer: Option<f64>,
        scratch: &mut QueryScratch,
        rec: &mut dyn Recorder,
    ) -> Option<OnAirKnnResult> {
        // Both the caller's upper bound and the index-scan radius are
        // valid search caps (each is ≥ the true k-th NN distance); take
        // the tighter so filtering can never fetch more than a cold
        // query.
        let outer = match (outer, self.index.knn_search_radius(q, k)) {
            (Some(o), Some(r)) => o.min(r),
            (Some(o), None) => o,
            (None, Some(r)) => r,
            (None, None) => return None,
        };
        self.index
            .buckets_for_knn_filtered_scratch(q, outer, inner, scratch);
        let (mut pois, stats) = self.retrieve_rec(tune_in, &scratch.buckets, rec);
        // Merge peer knowledge, deduplicating by id.
        pois.extend(known.iter().copied());
        pois.sort_by_key(|p| p.id);
        pois.dedup_by_key(|p| p.id);
        let neighbors = top_k_by_distance(pois.clone(), q, k);
        if neighbors.len() < k {
            return None; // outer bound too tight for the data (degenerate)
        }
        let verified_mbr = clip_to_world(Rect::centered_square(q, outer), self.index.world());
        Some(OnAirKnnResult {
            neighbors,
            verified_mbr,
            retrieved: pois,
            stats,
        })
    }

    /// The on-air window query baseline (paper Figure 8): intervals along
    /// the curve for the window's cells, the buckets covering them, then
    /// an exact containment filter.
    pub fn window(&self, tune_in: u64, w: &Rect) -> OnAirWindowResult {
        self.window_rec(tune_in, w, &mut QueryScratch::new(), &mut NoopRecorder)
    }

    /// [`OnAirClient::window`], tracing the underlying retrieval into
    /// `rec` and doing its index-path work in `scratch`.
    pub fn window_rec(
        &self,
        tune_in: u64,
        w: &Rect,
        scratch: &mut QueryScratch,
        rec: &mut dyn Recorder,
    ) -> OnAirWindowResult {
        self.index.buckets_for_window_scratch(w, scratch);
        let (pois, stats) = self.retrieve_rec(tune_in, &scratch.buckets, rec);
        let pois = pois.into_iter().filter(|p| w.contains(p.pos)).collect();
        OnAirWindowResult { pois, stats }
    }

    /// Reduced-window retrieval (§3.4.2): one on-air pass over the union
    /// of the reduced windows `w′`, returning POIs inside any of them.
    pub fn window_reduced(&self, tune_in: u64, windows: &[Rect]) -> OnAirWindowResult {
        self.window_reduced_rec(tune_in, windows, &mut QueryScratch::new(), &mut NoopRecorder)
    }

    /// [`OnAirClient::window_reduced`], tracing the underlying retrieval
    /// into `rec` and doing its index-path work in `scratch`.
    pub fn window_reduced_rec(
        &self,
        tune_in: u64,
        windows: &[Rect],
        scratch: &mut QueryScratch,
        rec: &mut dyn Recorder,
    ) -> OnAirWindowResult {
        self.index.buckets_for_windows_scratch(windows, scratch);
        let (pois, stats) = self.retrieve_rec(tune_in, &scratch.buckets, rec);
        let pois = pois
            .into_iter()
            .filter(|p| windows.iter().any(|w| w.contains(p.pos)))
            .collect();
        OnAirWindowResult { pois, stats }
    }
}

/// Exact top-k by Euclidean distance, ascending.
fn top_k_by_distance(mut pois: Vec<Poi>, q: Point, k: usize) -> Vec<Poi> {
    pois.sort_by(|a, b| {
        a.pos
            .distance_sq(q)
            .total_cmp(&b.pos.distance_sq(q))
            .then(a.id.cmp(&b.id))
    });
    pois.truncate(k);
    pois
}

/// Clips a verified region to the data domain. A region disjoint from the
/// world collapses to the degenerate (zero-area) rect on the world
/// boundary nearest to it — never the unclipped input, which would claim
/// verification over space the index holds no data for.
fn clip_to_world(r: Rect, world: Rect) -> Rect {
    r.intersection(&world).unwrap_or_else(|| {
        let lo = world.clamp_point(Point::new(r.x1, r.y1));
        let hi = world.clamp_point(Point::new(r.x2, r.y2));
        Rect::from_coords(lo.x, lo.y, hi.x, hi.y)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use airshare_hilbert::Grid;

    fn scatter(n: usize) -> Vec<Poi> {
        let mut state = 7u64;
        (0..n)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let x = (state >> 16 & 0xFFFF) as f64 / 1024.0;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let y = (state >> 16 & 0xFFFF) as f64 / 1024.0;
                Poi::new(i as u32, Point::new(x, y))
            })
            .collect()
    }

    fn channel(n: usize, m: usize) -> (AirIndex, Schedule) {
        let world = Rect::from_coords(0.0, 0.0, 64.0, 64.0);
        let index = AirIndex::try_build(scatter(n), Grid::new(world, 5), 8).unwrap();
        let schedule = Schedule::new(index.data_buckets(), index.index_buckets(), m);
        (index, schedule)
    }

    #[test]
    fn knn_is_exact_against_brute_force() {
        let (index, schedule) = channel(500, 4);
        let client = OnAirClient::new(&index, &schedule);
        let q = Point::new(20.0, 40.0);
        for k in [1, 3, 7, 15] {
            let res = client.knn(0, q, k).unwrap();
            assert_eq!(res.neighbors.len(), k);
            let mut brute = scatter(500);
            brute.sort_by(|a, b| a.pos.distance_sq(q).total_cmp(&b.pos.distance_sq(q)));
            for (got, want) in res.neighbors.iter().zip(&brute) {
                assert!(
                    (got.distance_to(q) - want.distance_to(q)).abs() < 1e-9,
                    "k={k}: {} vs {}",
                    got.distance_to(q),
                    want.distance_to(q)
                );
            }
            // All returned POIs lie inside the verified MBR.
            for p in &res.neighbors {
                assert!(res.verified_mbr.contains(p.pos));
            }
        }
    }

    #[test]
    fn window_query_is_exact() {
        let (index, schedule) = channel(500, 2);
        let client = OnAirClient::new(&index, &schedule);
        let w = Rect::from_coords(5.0, 5.0, 20.0, 18.0);
        let res = client.window(0, &w);
        let mut got: Vec<u32> = res.pois.iter().map(|p| p.id).collect();
        got.sort_unstable();
        let mut want: Vec<u32> = scatter(500)
            .into_iter()
            .filter(|p| w.contains(p.pos))
            .map(|p| p.id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(res.stats.latency > 0);
    }

    #[test]
    fn retrieval_counts_costs_sanely() {
        let (index, schedule) = channel(200, 1);
        let client = OnAirClient::new(&index, &schedule);
        let (pois, stats) = client.retrieve(0, &[0, 1]);
        assert_eq!(stats.buckets, 2);
        assert_eq!(
            stats.tuning,
            1 + schedule.index_buckets() as u64 + 2
        );
        assert!(!pois.is_empty());
        // Latency at least index + both buckets.
        assert!(stats.latency >= schedule.index_buckets() as u64 + 2);
        // Empty bucket set: latency is just the index wait.
        let (none, s0) = client.retrieve(0, &[]);
        assert!(none.is_empty());
        assert_eq!(s0.buckets, 0);
        assert_eq!(s0.latency, schedule.index_buckets() as u64);
    }

    #[test]
    fn m_trades_probe_wait_for_cycle_growth() {
        // (1, m)'s contract: index replication shrinks the wait for the
        // next index segment by ~m, while the cycle grows by (m-1)·I.
        // Single-bucket access latency may therefore rise slightly with
        // m, but never by more than the added index overhead.
        let (index, _) = channel(400, 1);
        let stats = |m: usize| {
            let schedule = Schedule::new(index.data_buckets(), index.index_buckets(), m);
            let client = OnAirClient::new(&index, &schedule);
            let cl = schedule.cycle_len();
            let mut lat = 0u64;
            let mut probe = 0u64;
            for t in 0..cl {
                lat += client.retrieve(t, &[3]).1.latency;
                probe += schedule.next_index_start(t) - t;
            }
            (lat as f64 / cl as f64, probe as f64 / cl as f64, schedule)
        };
        let (lat1, probe1, s1) = stats(1);
        let (lat8, probe8, s8) = stats(8);
        // Probe wait must shrink markedly.
        assert!(probe8 < probe1 / 2.0, "probe {probe8} !< {probe1}/2");
        // Latency penalty bounded by the cycle growth.
        let growth = (s8.cycle_len() - s1.cycle_len()) as f64;
        assert!(lat8 <= lat1 + growth, "{lat8} > {lat1} + {growth}");
        // Tuning time is independent of m for a fixed bucket set.
        let c1 = OnAirClient::new(&index, &s1);
        let c8 = OnAirClient::new(&index, &s8);
        assert_eq!(c1.retrieve(0, &[3]).1.tuning, c8.retrieve(0, &[3]).1.tuning);
    }

    #[test]
    fn filtered_knn_matches_unfiltered_given_inner_knowledge() {
        let (index, schedule) = channel(600, 4);
        let client = OnAirClient::new(&index, &schedule);
        let q = Point::new(32.0, 32.0);
        let k = 8;
        let base = client.knn(0, q, k).unwrap();
        // Suppose peers verified everything within radius 6.
        let inner = 6.0;
        let known: Vec<Poi> = scatter(600)
            .into_iter()
            .filter(|p| p.distance_to(q) <= inner)
            .collect();
        let outer = base.neighbors.last().unwrap().distance_to(q) + 1.0;
        let filt = client
            .knn_filtered(0, q, k, &known, Some(inner), Some(outer))
            .unwrap();
        for (a, b) in base.neighbors.iter().zip(&filt.neighbors) {
            assert!((a.distance_to(q) - b.distance_to(q)).abs() < 1e-9);
        }
        // Filtering must not download more buckets.
        assert!(filt.stats.buckets <= base.stats.buckets);
    }

    #[test]
    fn knn_too_large_returns_none() {
        let (index, schedule) = channel(5, 1);
        let client = OnAirClient::new(&index, &schedule);
        assert!(client.knn(0, Point::ORIGIN, 10).is_none());
    }

    #[test]
    fn verified_mbr_stays_inside_world_for_outside_query() {
        // Regression: a query posed outside the data domain used to fall
        // back to the *unclipped* search square when the intersection was
        // empty, claiming verification over space with no data.
        let (index, schedule) = channel(300, 2);
        let client = OnAirClient::new(&index, &schedule);
        let world = index.grid().world();
        let q = Point::new(-500.0, -500.0); // far outside [0,64]^2
        let res = client.knn(0, q, 3).unwrap();
        assert!(
            world.contains_rect(&res.verified_mbr),
            "verified MBR {:?} leaks outside world {:?}",
            res.verified_mbr,
            world
        );
    }

    #[test]
    fn clip_to_world_disjoint_rect_degenerates() {
        let (index, _) = channel(50, 1);
        let r = Rect::from_coords(-20.0, -20.0, -10.0, -10.0);
        let clipped = clip_to_world(r, index.grid().world());
        assert_eq!((clipped.width(), clipped.height()), (0.0, 0.0));
        assert!(index.grid().world().contains_rect(&clipped));
    }

    #[test]
    fn lossless_fault_model_is_transparent() {
        let (index, schedule) = channel(300, 2);
        let plain = OnAirClient::new(&index, &schedule);
        let faults = ChannelFaults::from_loss_prob(99, 0.0, 3);
        let faulty = OnAirClient::with_faults(&index, &schedule, &faults);
        for tune in [0u64, 7, 100] {
            let (p1, s1) = plain.retrieve(tune, &[0, 2, 5]);
            let (p2, s2) = faulty.retrieve(tune, &[0, 2, 5]);
            assert_eq!(s1, s2);
            assert_eq!(p1.len(), p2.len());
            assert_eq!(s2.retries, 0);
            assert_eq!(s2.lost_buckets, 0);
        }
    }

    #[test]
    fn retries_recover_all_data_at_higher_cost() {
        let (index, schedule) = channel(400, 2);
        let plain = OnAirClient::new(&index, &schedule);
        // 30% loss with a deep retry budget: every bucket eventually
        // arrives, so results match the ideal channel exactly.
        let faults = ChannelFaults::from_loss_prob(7, 0.3, 50);
        let faulty = OnAirClient::with_faults(&index, &schedule, &faults);
        let buckets: Vec<usize> = (0..index.data_buckets()).collect();
        let (p1, s1) = plain.retrieve(0, &buckets);
        let (p2, s2) = faulty.retrieve(0, &buckets);
        assert_eq!(s2.lost_buckets, 0);
        assert!(s2.retries > 0, "30% loss over {} buckets", buckets.len());
        assert_eq!(p1.len(), p2.len());
        assert!(s2.latency > s1.latency);
        assert_eq!(s2.tuning, s1.tuning + s2.retries);
        // Deterministic: same seed, same outcome.
        let (_, s3) = faulty.retrieve(0, &buckets);
        assert_eq!(s2, s3);
    }

    #[test]
    fn exhausted_retry_budget_reports_lost_buckets() {
        let (index, schedule) = channel(200, 1);
        let faults = ChannelFaults::from_loss_prob(1, 1.0, 2);
        let client = OnAirClient::with_faults(&index, &schedule, &faults);
        let (pois, stats) = client.retrieve(0, &[0, 1, 2]);
        assert!(pois.is_empty());
        assert_eq!(stats.lost_buckets, 3);
        assert_eq!(stats.retries, 6); // 2 retries per bucket, all futile
        assert!(stats.is_degraded());
    }

    #[test]
    fn retry_budget_contract_is_pinned_at_zero_one_and_n() {
        // Budget N = up to N re-fetches after the free first appearance.
        // On a fully dead channel every appearance is corrupt, so the
        // counters are exact: N retries + 1 lost bucket per request, and
        // N + 1 FrameLost events apiece.
        use airshare_obs::MetricsRecorder;
        let (index, schedule) = channel(200, 1);
        let buckets = [0usize, 1, 2];
        for budget in [0u32, 1, 5] {
            let faults = ChannelFaults::from_loss_prob(1, 1.0, budget);
            let client = OnAirClient::with_faults(&index, &schedule, &faults);
            let mut rec = MetricsRecorder::new();
            let (pois, stats) = client.retrieve_rec(0, &buckets, &mut rec);
            assert!(pois.is_empty());
            assert_eq!(stats.lost_buckets, buckets.len() as u64, "budget {budget}");
            assert_eq!(
                stats.retries,
                u64::from(budget) * buckets.len() as u64,
                "budget {budget}"
            );
            assert_eq!(
                rec.snapshot().frames_lost_total,
                u64::from(budget + 1) * buckets.len() as u64,
                "budget {budget}"
            );
            // Each re-fetch costs one extra tuning tick over the
            // lossless base of probe + index + data appearances.
            let base = 1 + schedule.index_buckets() as u64 + buckets.len() as u64;
            assert_eq!(stats.tuning, base + stats.retries, "budget {budget}");
        }
    }

    #[test]
    fn traced_retrieval_matches_fault_counters() {
        use airshare_obs::MetricsRecorder;
        let (index, schedule) = channel(300, 2);
        let faults = ChannelFaults::from_loss_prob(7, 0.3, 2);
        let client = OnAirClient::with_faults(&index, &schedule, &faults);
        let buckets: Vec<usize> = (0..index.data_buckets()).collect();
        let mut rec = MetricsRecorder::new();
        let (pois, stats) = client.retrieve_rec(0, &buckets, &mut rec);
        let snap = rec.snapshot();
        assert_eq!(snap.probes_total, 1);
        assert_eq!(snap.index_buckets_total, schedule.index_buckets() as u64);
        assert_eq!(
            snap.data_buckets_total,
            buckets.len() as u64 - stats.lost_buckets
        );
        // Every corrupt appearance is one FrameLost, including the final
        // appearance of an abandoned bucket.
        assert_eq!(snap.frames_lost_total, stats.retries + stats.lost_buckets);
        // Tracing must not perturb the protocol: plain call is identical.
        let (pois2, stats2) = client.retrieve(0, &buckets);
        assert_eq!(stats, stats2);
        assert_eq!(pois.len(), pois2.len());
    }

    #[test]
    fn reduced_windows_return_union_contents() {
        let (index, schedule) = channel(500, 2);
        let client = OnAirClient::new(&index, &schedule);
        let w1 = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let w2 = Rect::from_coords(40.0, 40.0, 55.0, 50.0);
        let res = client.window_reduced(0, &[w1, w2]);
        let mut got: Vec<u32> = res.pois.iter().map(|p| p.id).collect();
        got.sort_unstable();
        let mut want: Vec<u32> = scatter(500)
            .into_iter()
            .filter(|p| w1.contains(p.pos) || w2.contains(p.pos))
            .map(|p| p.id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
