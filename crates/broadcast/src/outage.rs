//! Base-station outage windows.
//!
//! A real broadcast tower goes dark: maintenance, backhaul loss, power.
//! During an outage the channel carries nothing — clients cannot probe,
//! read the index, or download buckets, and must degrade to whatever
//! cached or peer knowledge they hold. [`OutageSchedule`] models this as
//! a set of half-open silence windows over an abstract *slot* axis; the
//! simulator instantiates it over epoch numbers so outage membership is
//! decided by exactly the same arithmetic that groups events into
//! epochs (no floating-point edge can disagree between the sequential
//! and parallel engines).
//!
//! The schedule is pure configured data — no randomness — so it is
//! trivially deterministic and, when empty, completely inert.

/// A set of half-open `[start, end)` silence windows on the broadcast
/// channel, normalized (sorted, overlaps merged) at construction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OutageSchedule {
    /// Sorted, disjoint, non-empty half-open windows.
    windows: Vec<(u64, u64)>,
}

impl OutageSchedule {
    /// Builds a schedule from arbitrary `[start, end)` windows. Empty or
    /// inverted windows (`start >= end`) are dropped; overlapping and
    /// adjacent windows are merged. (The simulator's config validation
    /// rejects inverted windows *before* they get here — dropping them
    /// keeps this type total for direct users.)
    pub fn new(mut windows: Vec<(u64, u64)>) -> Self {
        windows.retain(|&(s, e)| s < e);
        windows.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(windows.len());
        for (s, e) in windows {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        OutageSchedule { windows: merged }
    }

    /// Whether the channel is silent at `slot`.
    pub fn is_silent(&self, slot: u64) -> bool {
        // Windows are sorted and disjoint: find the last window starting
        // at or before `slot` and check containment.
        match self.windows.partition_point(|&(s, _)| s <= slot) {
            0 => false,
            i => slot < self.windows[i - 1].1,
        }
    }

    /// The first slot at which the channel is live again, if `slot` is
    /// inside an outage window; `None` when the channel is already live.
    pub fn next_recovery(&self, slot: u64) -> Option<u64> {
        match self.windows.partition_point(|&(s, _)| s <= slot) {
            0 => None,
            i if slot < self.windows[i - 1].1 => Some(self.windows[i - 1].1),
            _ => None,
        }
    }

    /// No outage windows are configured: the schedule is inert.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Total number of silent slots across all windows.
    pub fn silent_slots(&self) -> u64 {
        self.windows.iter().map(|&(s, e)| e - s).sum()
    }

    /// The normalized windows (sorted, disjoint, non-empty).
    pub fn windows(&self) -> &[(u64, u64)] {
        &self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_always_live() {
        let s = OutageSchedule::default();
        assert!(s.is_empty());
        assert_eq!(s.silent_slots(), 0);
        for slot in [0, 1, 1000, u64::MAX] {
            assert!(!s.is_silent(slot));
            assert_eq!(s.next_recovery(slot), None);
        }
    }

    #[test]
    fn membership_is_half_open() {
        let s = OutageSchedule::new(vec![(10, 20)]);
        assert!(!s.is_silent(9));
        assert!(s.is_silent(10));
        assert!(s.is_silent(19));
        assert!(!s.is_silent(20));
        assert_eq!(s.next_recovery(15), Some(20));
        assert_eq!(s.next_recovery(20), None);
        assert_eq!(s.silent_slots(), 10);
    }

    #[test]
    fn windows_normalize_to_sorted_disjoint() {
        let s = OutageSchedule::new(vec![(30, 40), (5, 10), (8, 12), (12, 15), (40, 40), (9, 3)]);
        // (8,12) overlaps (5,10); (12,15) is adjacent and merges too;
        // (40,40) and (9,3) are empty/inverted and dropped.
        assert_eq!(s.windows(), &[(5, 15), (30, 40)]);
        assert!(s.is_silent(5) && s.is_silent(14) && !s.is_silent(15));
        assert!(s.is_silent(39) && !s.is_silent(29));
        assert_eq!(s.silent_slots(), 20);
    }

    #[test]
    fn brute_force_agreement() {
        let s = OutageSchedule::new(vec![(3, 7), (9, 10), (20, 25)]);
        for slot in 0..30u64 {
            let expect = (3..7).contains(&slot) || slot == 9 || (20..25).contains(&slot);
            assert_eq!(s.is_silent(slot), expect, "slot {slot}");
        }
    }
}
