//! The server-side air index: POIs in Hilbert order, packed into buckets.

use crate::backend::{AirIndexBackend, BuildParams, INDEX_FANOUT};
use crate::{Bucket, BucketId, Poi, PoiTable, QueryScratch};
use airshare_geom::{Point, Rect};
use airshare_hilbert::Grid;
use bytes::{BufMut, Bytes, BytesMut};

/// The broadcast server's data organization.
///
/// POIs are sorted by the Hilbert value of their grid cell and packed
/// into fixed-capacity [`Bucket`]s in curve order. The index that ships
/// in every index segment is, conceptually, the list of
/// `(hilbert_range, arrival offset)` pairs per bucket; clients use it to
/// translate curve intervals into bucket sets and arrival times.
#[derive(Clone, Debug)]
pub struct AirIndex {
    grid: Grid,
    buckets: Vec<Bucket>,
    /// Sorted `(hilbert value, poi index in broadcast order)` — the
    /// per-object index used by the on-air kNN first scan.
    values: Vec<(u64, Point)>,
    /// Number of index buckets an index segment occupies on air.
    index_buckets: usize,
}

/// Rejected air-index build parameters (any backend).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexError {
    /// `bucket_capacity == 0`: buckets must hold at least one POI.
    ZeroBucketCapacity,
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::ZeroBucketCapacity => write!(f, "bucket capacity must be positive"),
        }
    }
}

impl std::error::Error for IndexError {}

impl AirIndex {
    /// Builds the broadcast organization, rejecting impossible
    /// parameters instead of panicking.
    pub fn try_build(
        mut pois: Vec<Poi>,
        grid: Grid,
        bucket_capacity: usize,
    ) -> Result<Self, IndexError> {
        if bucket_capacity < 1 {
            return Err(IndexError::ZeroBucketCapacity);
        }
        pois.sort_by_key(|p| grid.value_of(p.pos));
        let values: Vec<(u64, Point)> =
            pois.iter().map(|p| (grid.value_of(p.pos), p.pos)).collect();
        let mut buckets = Vec::with_capacity(pois.len().div_ceil(bucket_capacity));
        for (i, chunk) in pois.chunks(bucket_capacity).enumerate() {
            let vals: Vec<u64> = chunk.iter().map(|p| grid.value_of(p.pos)).collect();
            buckets.push(Bucket::build(i, chunk.to_vec(), &vals));
        }
        let index_buckets = buckets.len().div_ceil(INDEX_FANOUT).max(1);
        Ok(Self {
            grid,
            buckets,
            values,
            index_buckets,
        })
    }

    /// The Hilbert grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// All data buckets in broadcast order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Number of data buckets.
    pub fn data_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Airtime of one index segment, in buckets (ticks).
    pub fn index_buckets(&self) -> usize {
        self.index_buckets
    }

    /// Total number of POIs.
    pub fn poi_count(&self) -> usize {
        self.values.len()
    }

    /// Buckets (sorted, deduplicated) whose Hilbert ranges intersect any
    /// of the given inclusive curve intervals.
    ///
    /// Allocating wrapper over [`AirIndex::buckets_for_intervals_into`].
    pub fn buckets_for_intervals(&self, intervals: &[(u64, u64)]) -> Vec<BucketId> {
        let mut out = Vec::new();
        self.buckets_for_intervals_into(intervals, &mut out);
        out
    }

    /// Like [`AirIndex::buckets_for_intervals`], writing into `out`
    /// (cleared first) so a reused buffer makes the call allocation-free.
    pub fn buckets_for_intervals_into(&self, intervals: &[(u64, u64)], out: &mut Vec<BucketId>) {
        out.clear();
        for &(lo, hi) in intervals {
            // Binary search for the first bucket whose range may reach lo.
            let start = self
                .buckets
                .partition_point(|b| b.hilbert_range.1 < lo);
            for b in &self.buckets[start..] {
                if b.hilbert_range.0 > hi {
                    break;
                }
                out.push(b.id);
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Buckets needed for a world-space window query.
    ///
    /// Allocating wrapper over [`AirIndex::buckets_for_window_scratch`].
    pub fn buckets_for_window(&self, w: &Rect) -> Vec<BucketId> {
        let mut scratch = QueryScratch::new();
        self.buckets_for_window_scratch(w, &mut scratch);
        scratch.buckets
    }

    /// Window-query bucket set, left in `scratch.buckets()`.
    pub fn buckets_for_window_scratch(&self, w: &Rect, scratch: &mut QueryScratch) {
        self.grid
            .intervals_for_world_rect_into(w, &mut scratch.intervals);
        self.buckets_for_intervals_into(&scratch.intervals, &mut scratch.buckets);
    }

    /// The on-air kNN *first scan*: from the index alone (Hilbert values
    /// of all objects), find a Euclidean radius around `q` certain to
    /// contain at least `k` objects.
    ///
    /// The client takes the `k` objects whose Hilbert values are closest
    /// to `q`'s value (curve-distance approximation of spatial
    /// proximity), reconstructs their cell positions, and returns the
    /// maximum Euclidean distance plus half a cell diagonal — the index
    /// stores cell-resolution positions, so the slack guarantees the
    /// circle truly encloses ≥ k objects. Returns `None` when the data
    /// file holds fewer than `k` POIs.
    pub fn knn_search_radius(&self, q: Point, k: usize) -> Option<f64> {
        if k == 0 || self.values.len() < k {
            return None;
        }
        let hq = self.grid.value_of(q);
        // Two-pointer expansion around the insertion point of hq.
        let mut lo = self.values.partition_point(|&(v, _)| v < hq);
        let mut hi = lo; // [lo, hi) selected
        while hi - lo < k {
            let take_left = if lo == 0 {
                false
            } else if hi == self.values.len() {
                true
            } else {
                // Choose the side whose value is closer along the curve.
                hq - self.values[lo - 1].0 <= self.values[hi].0 - hq
            };
            if take_left {
                lo -= 1;
            } else {
                hi += 1;
            }
        }
        let (cw, ch) = self.grid.cell_size();
        let half_diag = 0.5 * cw.hypot(ch);
        let max_d = self.values[lo..hi]
            .iter()
            .map(|&(_, pos)| pos.distance(q))
            .fold(0.0_f64, f64::max);
        Some(max_d + half_diag)
    }

    /// Buckets needed to answer a kNN query exactly, given the search
    /// radius from [`AirIndex::knn_search_radius`]: all buckets covering
    /// the MBR of the search circle (the paper's Figure 4 range).
    ///
    /// Allocating wrapper over [`AirIndex::buckets_for_knn_scratch`].
    pub fn buckets_for_knn(&self, q: Point, radius: f64) -> Vec<BucketId> {
        let mut scratch = QueryScratch::new();
        self.buckets_for_knn_scratch(q, radius, &mut scratch);
        scratch.buckets
    }

    /// kNN bucket set, left in `scratch.buckets()`.
    pub fn buckets_for_knn_scratch(&self, q: Point, radius: f64, scratch: &mut QueryScratch) {
        let mbr = Rect::centered_square(q, radius);
        self.buckets_for_window_scratch(&mbr, scratch);
    }

    /// Bound-filtered bucket set (§3.3.3): buckets covering the outer
    /// search MBR, *minus* buckets whose MBR lies entirely within the
    /// verified inner circle `C_i` of radius `inner` around `q` — their
    /// contents are already known to the client.
    ///
    /// Allocating wrapper over
    /// [`AirIndex::buckets_for_knn_filtered_scratch`].
    pub fn buckets_for_knn_filtered(
        &self,
        q: Point,
        outer: f64,
        inner: Option<f64>,
    ) -> Vec<BucketId> {
        let mut scratch = QueryScratch::new();
        self.buckets_for_knn_filtered_scratch(q, outer, inner, &mut scratch);
        scratch.buckets
    }

    /// Bound-filtered kNN bucket set, left in `scratch.buckets()`.
    pub fn buckets_for_knn_filtered_scratch(
        &self,
        q: Point,
        outer: f64,
        inner: Option<f64>,
        scratch: &mut QueryScratch,
    ) {
        self.buckets_for_knn_scratch(q, outer, scratch);
        if let Some(r_in) = inner {
            scratch
                .buckets
                .retain(|&id| self.buckets[id].mbr.max_distance_to_point(q) > r_in);
        }
    }

    /// Bucket set for a collection of reduced windows (§3.4.2): the union
    /// of the buckets of each window `w′`.
    ///
    /// Allocating wrapper over [`AirIndex::buckets_for_windows_scratch`].
    pub fn buckets_for_windows(&self, windows: &[Rect]) -> Vec<BucketId> {
        let mut scratch = QueryScratch::new();
        self.buckets_for_windows_scratch(windows, &mut scratch);
        scratch.buckets
    }

    /// Reduced-window bucket set, left in `scratch.buckets()`.
    ///
    /// The interval lists of all windows are merged *before* mapping to
    /// buckets, so overlapping reduced windows — SBWQ routinely produces
    /// them when several uncovered slivers meet — never scan the same
    /// curve interval twice. Merging only fuses overlapping or integer-
    /// adjacent intervals, which preserves the covered cell set exactly,
    /// so the bucket output is identical to mapping each window alone and
    /// deduplicating.
    pub fn buckets_for_windows_scratch(&self, windows: &[Rect], scratch: &mut QueryScratch) {
        let QueryScratch {
            intervals,
            tmp_intervals,
            buckets,
        } = scratch;
        intervals.clear();
        for w in windows {
            self.grid.intervals_for_world_rect_into(w, tmp_intervals);
            intervals.extend_from_slice(tmp_intervals);
        }
        intervals.sort_unstable();
        let mut write = 0usize;
        for i in 0..intervals.len() {
            let (lo, hi) = intervals[i];
            if write > 0 && lo <= intervals[write - 1].1.saturating_add(1) {
                if hi > intervals[write - 1].1 {
                    intervals[write - 1].1 = hi;
                }
            } else {
                intervals[write] = (lo, hi);
                write += 1;
            }
        }
        intervals.truncate(write);
        self.buckets_for_intervals_into(intervals, buckets);
    }
}

/// The Hilbert backend delegates every trait method to the inherent
/// implementation above, so code going through the trait — statically or
/// via `dyn AirIndexBackend` — executes byte-for-byte the same arithmetic
/// as code calling [`AirIndex`] directly. The determinism pins in
/// `crates/sim/tests/determinism_pin.rs` enforce this.
impl AirIndexBackend for AirIndex {
    fn try_build(pois: &PoiTable, params: &BuildParams) -> Result<Self, IndexError> {
        let grid = Grid::new(params.world, params.hilbert_order);
        AirIndex::try_build(pois.to_vec(), grid, params.bucket_capacity)
    }

    fn world(&self) -> Rect {
        self.grid.world()
    }

    fn buckets(&self) -> &[Bucket] {
        AirIndex::buckets(self)
    }

    fn data_buckets(&self) -> usize {
        AirIndex::data_buckets(self)
    }

    fn index_buckets(&self) -> usize {
        AirIndex::index_buckets(self)
    }

    fn poi_count(&self) -> usize {
        AirIndex::poi_count(self)
    }

    fn knn_search_radius(&self, q: Point, k: usize) -> Option<f64> {
        AirIndex::knn_search_radius(self, q, k)
    }

    fn buckets_for_window_scratch(&self, w: &Rect, scratch: &mut QueryScratch) {
        AirIndex::buckets_for_window_scratch(self, w, scratch);
    }

    fn buckets_for_knn_scratch(&self, q: Point, radius: f64, scratch: &mut QueryScratch) {
        AirIndex::buckets_for_knn_scratch(self, q, radius, scratch);
    }

    fn buckets_for_knn_filtered_scratch(
        &self,
        q: Point,
        outer: f64,
        inner: Option<f64>,
        scratch: &mut QueryScratch,
    ) {
        AirIndex::buckets_for_knn_filtered_scratch(self, q, outer, inner, scratch);
    }

    fn buckets_for_windows_scratch(&self, windows: &[Rect], scratch: &mut QueryScratch) {
        AirIndex::buckets_for_windows_scratch(self, windows, scratch);
    }

    /// Payload layout: for each data bucket in this index bucket's slice
    /// of broadcast order — `u32` bucket id, `u64` curve range low,
    /// `u64` curve range high, `u16` POI count — CRC-framed.
    fn encode_index_bucket(&self, segment_bucket: usize) -> Result<Bytes, crate::wire::WireError> {
        assert!(
            segment_bucket < self.index_buckets,
            "index bucket {segment_bucket} out of range ({} index buckets)",
            self.index_buckets
        );
        let start = segment_bucket * INDEX_FANOUT;
        let end = ((segment_bucket + 1) * INDEX_FANOUT).min(self.buckets.len());
        let slice = self.buckets.get(start..end).unwrap_or(&[]);
        let mut payload = BytesMut::with_capacity(slice.len() * 22);
        for b in slice {
            let count =
                u16::try_from(b.pois.len()).map_err(|_| crate::wire::WireError::Overflow)?;
            payload.put_u32(b.id as u32);
            payload.put_u64(b.hilbert_range.0);
            payload.put_u64(b.hilbert_range.1);
            payload.put_u16(count);
        }
        Ok(crate::wire::frame_payload(&payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize, cap: usize) -> AirIndex {
        let world = Rect::from_coords(0.0, 0.0, 64.0, 64.0);
        let grid = Grid::new(world, 5);
        // Deterministic scatter.
        let mut state = 99u64;
        let pois: Vec<Poi> = (0..n)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let x = (state >> 16 & 0xFFFF) as f64 / 1024.0;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let y = (state >> 16 & 0xFFFF) as f64 / 1024.0;
                Poi::new(i as u32, Point::new(x, y))
            })
            .collect();
        AirIndex::try_build(pois, grid, cap).unwrap()
    }

    #[test]
    fn buckets_are_hilbert_ordered_and_sized() {
        let idx = setup(300, 10);
        assert_eq!(idx.data_buckets(), 30);
        assert_eq!(idx.poi_count(), 300);
        let mut prev_hi = 0;
        for (i, b) in idx.buckets().iter().enumerate() {
            assert_eq!(b.id, i);
            assert!(b.pois.len() <= 10);
            assert!(b.hilbert_range.0 >= prev_hi || i == 0);
            prev_hi = b.hilbert_range.1;
        }
    }

    #[test]
    fn window_buckets_cover_all_window_pois() {
        let idx = setup(500, 8);
        let w = Rect::from_coords(10.0, 10.0, 30.0, 25.0);
        let chosen = idx.buckets_for_window(&w);
        // Every POI inside the window must live in a chosen bucket.
        let chosen_pois: Vec<u32> = chosen
            .iter()
            .flat_map(|&id| idx.buckets()[id].pois.iter().map(|p| p.id))
            .collect();
        for b in idx.buckets() {
            for p in &b.pois {
                if w.contains(p.pos) {
                    assert!(chosen_pois.contains(&p.id), "missed poi {}", p.id);
                }
            }
        }
    }

    #[test]
    fn knn_radius_guarantees_k_objects() {
        let idx = setup(400, 8);
        let q = Point::new(32.0, 32.0);
        for k in [1, 3, 10, 25] {
            let r = idx.knn_search_radius(q, k).unwrap();
            let count = idx
                .buckets()
                .iter()
                .flat_map(|b| &b.pois)
                .filter(|p| p.distance_to(q) <= r)
                .count();
            assert!(count >= k, "radius {r} holds {count} < {k} POIs");
        }
    }

    #[test]
    fn knn_radius_none_when_insufficient_data() {
        let idx = setup(5, 2);
        assert!(idx.knn_search_radius(Point::ORIGIN, 6).is_none());
        assert!(idx.knn_search_radius(Point::ORIGIN, 0).is_none());
    }

    #[test]
    fn filtered_buckets_drop_fully_verified_ones() {
        let idx = setup(500, 4);
        let q = Point::new(32.0, 32.0);
        let outer = 20.0;
        let all = idx.buckets_for_knn_filtered(q, outer, None);
        let filt = idx.buckets_for_knn_filtered(q, outer, Some(10.0));
        assert!(filt.len() <= all.len());
        // Dropped buckets are exactly those fully inside the inner circle.
        for id in &all {
            let inside = idx.buckets()[*id].mbr.max_distance_to_point(q) <= 10.0;
            assert_eq!(!filt.contains(id), inside);
        }
    }

    #[test]
    fn empty_poi_set_builds() {
        let world = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let idx = AirIndex::try_build(Vec::new(), Grid::new(world, 3), 4).unwrap();
        assert_eq!(idx.data_buckets(), 0);
        assert!(idx
            .buckets_for_window(&Rect::from_coords(0.0, 0.0, 1.0, 1.0))
            .is_empty());
    }

    #[test]
    fn try_build_rejects_zero_capacity() {
        let world = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let err = AirIndex::try_build(Vec::new(), Grid::new(world, 3), 0).unwrap_err();
        assert_eq!(err, IndexError::ZeroBucketCapacity);
        assert!(AirIndex::try_build(Vec::new(), Grid::new(world, 3), 1).is_ok());
    }

    #[test]
    fn overlapping_windows_merge_intervals_before_mapping() {
        let idx = setup(500, 8);
        // Two windows with substantial overlap, as SBWQ's reduced windows
        // routinely produce.
        let w1 = Rect::from_coords(10.0, 10.0, 30.0, 25.0);
        let w2 = Rect::from_coords(20.0, 15.0, 40.0, 35.0);
        let merged = idx.buckets_for_windows(&[w1, w2]);
        // Oracle: per-window mapping, concatenated and deduplicated.
        let mut naive: Vec<BucketId> = idx
            .buckets_for_window(&w1)
            .into_iter()
            .chain(idx.buckets_for_window(&w2))
            .collect();
        naive.sort_unstable();
        naive.dedup();
        assert_eq!(merged, naive);
        // The merged interval list must itself be disjoint: no curve
        // position is scanned twice.
        let mut scratch = QueryScratch::new();
        idx.buckets_for_windows_scratch(&[w1, w2], &mut scratch);
        for w in scratch.intervals.windows(2) {
            assert!(w[1].0 > w[0].1 + 1, "intervals overlap or abut: {w:?}");
        }
        // Duplicated and disjoint window lists behave too.
        assert_eq!(idx.buckets_for_windows(&[w1, w1]), idx.buckets_for_window(&w1));
        assert!(idx.buckets_for_windows(&[]).is_empty());
    }

    #[test]
    fn scratch_calls_match_allocating_wrappers() {
        let idx = setup(400, 6);
        let q = Point::new(30.0, 20.0);
        let w = Rect::from_coords(5.0, 40.0, 25.0, 60.0);
        let mut scratch = QueryScratch::new();
        // Interleave different query kinds through ONE scratch to prove
        // no state leaks between calls.
        idx.buckets_for_window_scratch(&w, &mut scratch);
        assert_eq!(scratch.buckets(), idx.buckets_for_window(&w));
        idx.buckets_for_knn_scratch(q, 9.0, &mut scratch);
        assert_eq!(scratch.buckets(), idx.buckets_for_knn(q, 9.0));
        idx.buckets_for_knn_filtered_scratch(q, 9.0, Some(4.0), &mut scratch);
        assert_eq!(
            scratch.buckets(),
            idx.buckets_for_knn_filtered(q, 9.0, Some(4.0))
        );
        idx.buckets_for_window_scratch(&w, &mut scratch);
        assert_eq!(scratch.buckets(), idx.buckets_for_window(&w));
    }

    #[test]
    fn buckets_for_intervals_dedups_and_sorts() {
        let idx = setup(100, 5);
        let max_h = idx.buckets().last().unwrap().hilbert_range.1;
        let a = idx.buckets_for_intervals(&[(0, max_h), (0, max_h)]);
        assert_eq!(a.len(), idx.data_buckets());
        for w in a.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
