//! The pluggable air-index contract.
//!
//! The paper's air index is a Hilbert-curve `(1, m)` index, but nothing
//! in the sharing/caching results depends on *which* spatial index rides
//! the broadcast channel — only on the contract an index segment offers
//! a tuning client: map a spatial predicate to the set of data buckets
//! that must be downloaded, and bound a kNN search circle from index
//! information alone. [`AirIndexBackend`] captures exactly that contract
//! so [`crate::OnAirClient`], the SBNN/SBWQ algorithms, and the
//! simulator run unchanged over any backend, and backends can be
//! ablated against each other (`exp_backends`).
//!
//! Two backends ship in-tree:
//!
//! * [`crate::AirIndex`] — the paper's Hilbert-curve index (Zheng et
//!   al.): POIs sorted by curve value, buckets covering curve intervals.
//! * [`crate::RtreeAirIndex`] — an on-air R-tree: POIs packed into
//!   buckets in STR bulk-load order, internal-node descriptors as the
//!   index segment, MBR intersection as the predicate map.

use crate::{Bucket, BucketId, IndexError, PoiTable, QueryScratch};
use airshare_geom::{Point, Rect};
use bytes::Bytes;

/// How many per-bucket descriptors fit in one on-air index bucket. The
/// descriptor is a few words (key range or MBR, arrival offset), so a
/// generous fan-out is realistic. Shared by both backends so their index
/// airtime is comparable.
pub(crate) const INDEX_FANOUT: usize = 64;

/// Build-time parameters common to every backend.
///
/// Backends consume what they need: the Hilbert backend derives its grid
/// from `world` and `hilbert_order`; the R-tree backend ignores the
/// curve order entirely.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BuildParams {
    /// The service area (data domain) the index covers.
    pub world: Rect,
    /// Hilbert curve order for curve-based backends (ignored by others).
    pub hilbert_order: u32,
    /// POIs per broadcast data bucket (≥ 1).
    pub bucket_capacity: usize,
}

/// The full contract between a broadcast air index and its clients.
///
/// An implementation owns the server-side broadcast organization: data
/// buckets in broadcast order plus the index segment that precedes them
/// on air. Every query-planning method is *sound by contract*:
///
/// * [`buckets_for_window_scratch`] must select every bucket containing
///   a POI inside the window;
/// * [`knn_search_radius`] must return a radius whose closed ball around
///   `q` is certain to contain at least `k` POIs, using only information
///   an index segment carries;
/// * [`buckets_for_knn_scratch`] must select every bucket containing a
///   POI inside the MBR of that search circle, so the retrieved square
///   is a sound verified region;
/// * [`buckets_for_knn_filtered_scratch`] may drop only buckets whose
///   entire MBR lies within the verified inner circle (§3.3.3);
/// * [`buckets_for_windows_scratch`] must equal the deduplicated union
///   of the per-window bucket sets (§3.4.2).
///
/// All bucket sets are left in `scratch.buckets()`, sorted ascending and
/// deduplicated, so retrieval order (and therefore access latency) is
/// deterministic for every backend.
///
/// The trait is object-safe: the simulator stores a
/// `Box<dyn AirIndexBackend>` selected by its `BackendKind` knob, while
/// allocation-sensitive callers keep static dispatch through
/// [`crate::OnAirClient`]'s type parameter. [`try_build`] is the only
/// `Self: Sized` member.
///
/// [`buckets_for_window_scratch`]: AirIndexBackend::buckets_for_window_scratch
/// [`knn_search_radius`]: AirIndexBackend::knn_search_radius
/// [`buckets_for_knn_scratch`]: AirIndexBackend::buckets_for_knn_scratch
/// [`buckets_for_knn_filtered_scratch`]: AirIndexBackend::buckets_for_knn_filtered_scratch
/// [`buckets_for_windows_scratch`]: AirIndexBackend::buckets_for_windows_scratch
/// [`try_build`]: AirIndexBackend::try_build
pub trait AirIndexBackend: std::fmt::Debug + Send + Sync {
    /// Builds the broadcast organization from the canonical POI table,
    /// rejecting impossible parameters instead of panicking. The backend
    /// copies out whatever broadcast-order layout it needs; the table
    /// stays the single authority on POI payloads.
    fn try_build(pois: &PoiTable, params: &BuildParams) -> Result<Self, IndexError>
    where
        Self: Sized;

    /// The service area the index covers (the data domain). Verified
    /// regions are clipped to it.
    fn world(&self) -> Rect;

    /// All data buckets in broadcast order.
    fn buckets(&self) -> &[Bucket];

    /// Number of data buckets (the data segment's airtime in ticks).
    fn data_buckets(&self) -> usize {
        self.buckets().len()
    }

    /// Airtime of one index segment, in buckets (ticks).
    fn index_buckets(&self) -> usize;

    /// Total number of POIs in the broadcast file.
    fn poi_count(&self) -> usize;

    /// The on-air kNN *first scan*: from index information alone, a
    /// Euclidean radius around `q` certain to contain at least `k`
    /// POIs. Returns `None` when the data file holds fewer than `k`.
    fn knn_search_radius(&self, q: Point, k: usize) -> Option<f64>;

    /// Bucket set for a world-space window query, left in
    /// `scratch.buckets()` (sorted, deduplicated).
    fn buckets_for_window_scratch(&self, w: &Rect, scratch: &mut QueryScratch);

    /// Bucket set covering the MBR of the kNN search circle of the given
    /// `radius` around `q`, left in `scratch.buckets()`.
    fn buckets_for_knn_scratch(&self, q: Point, radius: f64, scratch: &mut QueryScratch);

    /// Bound-filtered kNN bucket set (§3.3.3): the [`buckets_for_knn_scratch`]
    /// set for `outer`, minus buckets whose MBR lies entirely within the
    /// verified inner circle of radius `inner` around `q`. Left in
    /// `scratch.buckets()`.
    ///
    /// [`buckets_for_knn_scratch`]: AirIndexBackend::buckets_for_knn_scratch
    fn buckets_for_knn_filtered_scratch(
        &self,
        q: Point,
        outer: f64,
        inner: Option<f64>,
        scratch: &mut QueryScratch,
    );

    /// Bucket set for a collection of reduced windows (§3.4.2): the
    /// deduplicated union of the per-window sets, left in
    /// `scratch.buckets()`.
    fn buckets_for_windows_scratch(&self, windows: &[Rect], scratch: &mut QueryScratch);

    /// Wire-encodes one bucket of the on-air index segment (CRC-framed
    /// via [`crate::wire::frame_payload`]). The payload layout is
    /// backend-specific — curve-range descriptors for the Hilbert
    /// backend, MBR descriptors for the R-tree backend — but every frame
    /// carries the shared CRC-32 trailer so receivers detect corruption
    /// uniformly.
    ///
    /// `segment_bucket` indexes into `0..self.index_buckets()`; an
    /// out-of-range index is a caller bug and panics.
    fn encode_index_bucket(&self, segment_bucket: usize) -> Result<Bytes, crate::wire::WireError>;

    /// Allocating convenience over [`AirIndexBackend::buckets_for_window_scratch`].
    fn buckets_for_window(&self, w: &Rect) -> Vec<BucketId> {
        let mut scratch = QueryScratch::new();
        self.buckets_for_window_scratch(w, &mut scratch);
        scratch.take_buckets()
    }

    /// Allocating convenience over [`AirIndexBackend::buckets_for_knn_scratch`].
    fn buckets_for_knn(&self, q: Point, radius: f64) -> Vec<BucketId> {
        let mut scratch = QueryScratch::new();
        self.buckets_for_knn_scratch(q, radius, &mut scratch);
        scratch.take_buckets()
    }

    /// Allocating convenience over
    /// [`AirIndexBackend::buckets_for_knn_filtered_scratch`].
    fn buckets_for_knn_filtered(&self, q: Point, outer: f64, inner: Option<f64>) -> Vec<BucketId> {
        let mut scratch = QueryScratch::new();
        self.buckets_for_knn_filtered_scratch(q, outer, inner, &mut scratch);
        scratch.take_buckets()
    }

    /// Allocating convenience over
    /// [`AirIndexBackend::buckets_for_windows_scratch`].
    fn buckets_for_windows(&self, windows: &[Rect]) -> Vec<BucketId> {
        let mut scratch = QueryScratch::new();
        self.buckets_for_windows_scratch(windows, &mut scratch);
        scratch.take_buckets()
    }
}
