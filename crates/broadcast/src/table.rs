//! The canonical POI table: one deduplicated copy of every POI payload,
//! addressed by [`PoiId`] handles.
//!
//! Every other layer of the system — index backends, host caches, peer
//! replies, merged regions — refers to POIs by 4-byte [`PoiId`] handles
//! and resolves positions through this table. That keeps a fleet of a
//! million hosts from holding a million redundant copies of the same
//! 32-byte payloads, and it hardens the share protocol: a peer can
//! claim a region contains poi #9, but it cannot forge poi #9's
//! *position* — the receiver resolves the handle against its own table.
//!
//! Ids in this system are server-assigned and dense (`0..n` in
//! broadcast-file order), so the table is a flat `Vec` indexed by id
//! with O(1) resolution; a sorted fallback keeps sparse id spaces
//! (hand-built tests, partial tables) working at O(log n).

use crate::{Poi, PoiId};

/// The canonical, deduplicated POI store for one broadcast file.
///
/// Interning is by server id: two [`Poi`] values with the same `id` are
/// the same POI, and the first payload interned wins. Handles returned
/// by [`intern`](PoiTable::intern) (or built with [`Poi::handle`]) stay
/// valid for the table's lifetime — the table never removes or reorders
/// entries.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PoiTable {
    /// Sorted ascending by `id`, unique.
    pois: Vec<Poi>,
    /// `pois[i].id == i` for all `i` — enables O(1) [`get`](Self::get).
    dense: bool,
}

impl PoiTable {
    /// An empty table.
    pub fn new() -> Self {
        Self {
            pois: Vec::new(),
            dense: true,
        }
    }

    /// Builds a table from a POI set, interning each in turn.
    pub fn from_pois(pois: impl IntoIterator<Item = Poi>) -> Self {
        let mut t = Self::new();
        for p in pois {
            t.intern(p);
        }
        t
    }

    /// Interns a POI, returning its handle. If the id is already
    /// present, the existing payload is kept and its handle returned.
    pub fn intern(&mut self, poi: Poi) -> PoiId {
        let handle = poi.handle();
        if self.dense {
            let idx = poi.id as usize;
            if idx == self.pois.len() {
                self.pois.push(poi);
                return handle;
            }
            if idx < self.pois.len() {
                return handle; // already interned (dense ⇒ slot idx holds id idx)
            }
            self.dense = false;
        }
        match self.pois.binary_search_by_key(&poi.id, |p| p.id) {
            Ok(_) => {}
            Err(at) => self.pois.insert(at, poi),
        }
        handle
    }

    /// Resolves a handle to its canonical POI, or `None` for a handle
    /// this table never interned (e.g. a forged id in a peer reply).
    #[inline]
    pub fn get(&self, id: PoiId) -> Option<&Poi> {
        if self.dense {
            self.pois.get(id.index())
        } else {
            self.pois
                .binary_search_by_key(&id.raw(), |p| p.id)
                .ok()
                .map(|i| &self.pois[i])
        }
    }

    /// Whether the table holds this handle.
    #[inline]
    pub fn contains(&self, id: PoiId) -> bool {
        self.get(id).is_some()
    }

    /// Number of interned POIs.
    pub fn len(&self) -> usize {
        self.pois.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.pois.is_empty()
    }

    /// The canonical POIs, sorted by id. For a dense table this is the
    /// broadcast file in server order.
    pub fn as_slice(&self) -> &[Poi] {
        &self.pois
    }

    /// Iterates over the canonical POIs in id order.
    pub fn iter(&self) -> std::slice::Iter<'_, Poi> {
        self.pois.iter()
    }

    /// An owned copy of the POI set (for APIs that still take ownership).
    pub fn to_vec(&self) -> Vec<Poi> {
        self.pois.clone()
    }
}

impl<'a> IntoIterator for &'a PoiTable {
    type Item = &'a Poi;
    type IntoIter = std::slice::Iter<'a, Poi>;
    fn into_iter(self) -> Self::IntoIter {
        self.pois.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airshare_geom::Point;

    #[test]
    fn dense_round_trip() {
        let t = PoiTable::from_pois((0..10).map(|i| Poi::new(i, Point::new(i as f64, 0.0))));
        assert_eq!(t.len(), 10);
        assert!(t.dense);
        for i in 0..10u32 {
            assert_eq!(t.get(PoiId(i)).unwrap().pos.x, i as f64);
        }
        assert!(t.get(PoiId(10)).is_none());
    }

    #[test]
    fn sparse_round_trip() {
        let t = PoiTable::from_pois([
            Poi::new(7, Point::new(7.0, 0.0)),
            Poi::new(3, Point::new(3.0, 0.0)),
            Poi::new(100, Point::new(100.0, 0.0)),
        ]);
        assert!(!t.dense);
        assert_eq!(t.get(PoiId(3)).unwrap().pos.x, 3.0);
        assert_eq!(t.get(PoiId(100)).unwrap().pos.x, 100.0);
        assert!(t.get(PoiId(4)).is_none());
        // as_slice is id-sorted even for sparse tables.
        let ids: Vec<u32> = t.as_slice().iter().map(|p| p.id).collect();
        assert_eq!(ids, [3, 7, 100]);
    }

    #[test]
    fn intern_dedups_by_id() {
        let mut t = PoiTable::new();
        let a = t.intern(Poi::new(0, Point::new(1.0, 1.0)));
        let b = t.intern(Poi::new(0, Point::new(9.0, 9.0))); // forged duplicate
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(a).unwrap().pos, Point::new(1.0, 1.0)); // first wins
    }
}
