//! Deterministic, seeded channel fault model.
//!
//! Real broadcast channels corrupt frames; the CRC-32 trailer
//! ([`crate::wire`]) makes that *detectable*, and this module makes it
//! *simulable*. A [`ChannelFaults`] decides — purely as a function of
//! `(fault seed, bucket id, cycle occurrence)` — whether a given on-air
//! appearance of a bucket arrives intact. Because the decision is a hash
//! rather than a draw from a shared RNG stream, fault injection never
//! perturbs the simulator's other randomness: a run with loss probability
//! zero is bit-identical to a run without the fault layer, and a run with
//! loss is exactly reproducible from its seed.
//!
//! The loss probability can be given directly or derived from a physical
//! bit-error rate: a frame of `B` bytes survives with probability
//! `(1 - BER)^(8B)`, so `p_loss = 1 - (1 - BER)^(8B)` — longer frames are
//! proportionally more fragile, which is why bucket capacity interacts
//! with channel quality.

use crate::BucketId;

/// Per-appearance bucket loss model for the broadcast channel.
///
/// A lost appearance models a frame whose CRC check failed at the
/// receiver: the client paid the tuning tick to download it, got
/// detectable garbage, and must wait for the bucket's next cycle
/// occurrence to retry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelFaults {
    seed: u64,
    loss_prob: f64,
    retry_budget: u32,
}

impl ChannelFaults {
    /// A model that loses each bucket appearance independently with
    /// probability `loss_prob` (clamped to `[0, 1]`), allowing up to
    /// `retry_budget` re-fetch attempts after the first failure.
    pub fn from_loss_prob(seed: u64, loss_prob: f64, retry_budget: u32) -> Self {
        ChannelFaults {
            seed,
            loss_prob: loss_prob.clamp(0.0, 1.0),
            retry_budget,
        }
    }

    /// A model derived from a physical bit-error rate and the frame size
    /// in bytes: `p_loss = 1 - (1 - ber)^(8 * frame_bytes)`.
    pub fn from_bit_error_rate(
        seed: u64,
        ber: f64,
        frame_bytes: usize,
        retry_budget: u32,
    ) -> Self {
        let ber = ber.clamp(0.0, 1.0);
        let bits = (frame_bytes * 8) as f64;
        let loss_prob = 1.0 - (1.0 - ber).powf(bits);
        Self::from_loss_prob(seed, loss_prob, retry_budget)
    }

    /// The per-appearance loss probability.
    pub fn loss_prob(&self) -> f64 {
        self.loss_prob
    }

    /// Maximum re-fetches *after* the free first appearance of each
    /// bucket — budget `N` examines at most `N + 1` appearances, and
    /// budget 0 means single-shot (any loss abandons the bucket). See
    /// `OnAirClient::retrieve` for the full contract.
    pub fn retry_budget(&self) -> u32 {
        self.retry_budget
    }

    /// Whether the model can never lose anything (the zero-cost case:
    /// clients skip fault bookkeeping entirely).
    pub fn is_lossless(&self) -> bool {
        self.loss_prob <= 0.0
    }

    /// Whether the `occurrence`-th on-air appearance of `bucket` is lost.
    ///
    /// Pure function of the seed and arguments; every client observing
    /// the same broadcast appearance sees the same outcome, as physics
    /// demands of a shared channel.
    pub fn bucket_lost(&self, bucket: BucketId, occurrence: u64) -> bool {
        if self.loss_prob <= 0.0 {
            return false;
        }
        if self.loss_prob >= 1.0 {
            return true;
        }
        let h = mix3(self.seed, bucket as u64, occurrence);
        to_unit(h) < self.loss_prob
    }

    /// Whether an independent fault event keyed by `(a, b)` fires with
    /// probability `prob` — e.g. a peer dropping its reply to a query.
    /// Decorrelated from [`Self::bucket_lost`] by a domain constant.
    pub fn event_fires(&self, prob: f64, a: u64, b: u64) -> bool {
        if prob <= 0.0 {
            return false;
        }
        if prob >= 1.0 {
            return true;
        }
        let h = mix3(self.seed ^ 0xD6E8_FEB8_6659_FD93, a, b);
        to_unit(h) < prob
    }
}

/// SplitMix64 finalizer: the avalanche core used to hash fault keys.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes three keys into one well-mixed word.
fn mix3(a: u64, b: u64, c: u64) -> u64 {
    splitmix(splitmix(splitmix(a) ^ b) ^ c)
}

/// Maps a hash to a uniform f64 in `[0, 1)`.
fn to_unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let f1 = ChannelFaults::from_loss_prob(42, 0.3, 2);
        let f2 = ChannelFaults::from_loss_prob(42, 0.3, 2);
        let f3 = ChannelFaults::from_loss_prob(43, 0.3, 2);
        let outcomes1: Vec<bool> = (0..200).map(|o| f1.bucket_lost(7, o)).collect();
        let outcomes2: Vec<bool> = (0..200).map(|o| f2.bucket_lost(7, o)).collect();
        let outcomes3: Vec<bool> = (0..200).map(|o| f3.bucket_lost(7, o)).collect();
        assert_eq!(outcomes1, outcomes2);
        assert_ne!(outcomes1, outcomes3);
    }

    #[test]
    fn loss_rate_tracks_probability() {
        let f = ChannelFaults::from_loss_prob(1, 0.25, 0);
        let n = 40_000u64;
        let lost = (0..n).filter(|&o| f.bucket_lost(o as usize % 64, o)).count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "empirical rate {rate}");
    }

    #[test]
    fn extremes_short_circuit() {
        let none = ChannelFaults::from_loss_prob(9, 0.0, 3);
        let all = ChannelFaults::from_loss_prob(9, 1.0, 3);
        assert!(none.is_lossless());
        assert!(!all.is_lossless());
        for o in 0..100 {
            assert!(!none.bucket_lost(0, o));
            assert!(all.bucket_lost(0, o));
        }
    }

    #[test]
    fn ber_derivation_matches_formula() {
        // 228-byte frame at BER 1e-4: p = 1 - (1 - 1e-4)^1824 ≈ 0.1666.
        let f = ChannelFaults::from_bit_error_rate(0, 1e-4, 228, 1);
        let expect = 1.0 - (1.0 - 1e-4f64).powf(1824.0);
        assert!((f.loss_prob() - expect).abs() < 1e-12);
        assert!(f.loss_prob() > 0.16 && f.loss_prob() < 0.17);
    }

    #[test]
    fn event_channel_is_decorrelated_from_bucket_channel() {
        let f = ChannelFaults::from_loss_prob(5, 0.5, 0);
        let buckets: Vec<bool> = (0..64).map(|o| f.bucket_lost(3, o)).collect();
        let events: Vec<bool> = (0..64).map(|o| f.event_fires(0.5, 3, o)).collect();
        assert_ne!(buckets, events);
    }
}
