//! Points of interest — the broadcast data items.

use airshare_geom::Point;

/// Unique POI identifier, assigned by the server.
pub type PoiId = u32;

/// POI category ("data type" in the paper's cache-capacity discussion:
/// gas stations, hospitals, restaurants, … — caches are sized *per data
/// type*).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PoiCategory(pub u8);

impl PoiCategory {
    /// The default category used when an experiment models a single POI
    /// type (the paper uses gas stations throughout §4).
    pub const GAS_STATION: PoiCategory = PoiCategory(0);
}

/// A point of interest: the unit of data on the broadcast channel, in
/// peer caches, and in query results.
///
/// Per the paper's notation, "we use the object identifier to represent
/// its position coordinates" — a POI is identified by `id` and carries
/// its exact location.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Poi {
    /// Server-assigned identifier.
    pub id: PoiId,
    /// Exact position (miles).
    pub pos: Point,
    /// Data type.
    pub category: PoiCategory,
}

impl Poi {
    /// Creates a POI in the default category.
    pub fn new(id: PoiId, pos: Point) -> Self {
        Self {
            id,
            pos,
            category: PoiCategory::default(),
        }
    }

    /// Creates a POI with an explicit category.
    pub fn with_category(id: PoiId, pos: Point, category: PoiCategory) -> Self {
        Self { id, pos, category }
    }

    /// Euclidean distance from this POI to `p`.
    pub fn distance_to(&self, p: Point) -> f64 {
        self.pos.distance(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_point_distance() {
        let poi = Poi::new(7, Point::new(3.0, 4.0));
        assert!((poi.distance_to(Point::ORIGIN) - 5.0).abs() < 1e-12);
        assert_eq!(poi.category, PoiCategory::GAS_STATION);
    }

    #[test]
    fn category_constructor() {
        let p = Poi::with_category(1, Point::ORIGIN, PoiCategory(3));
        assert_eq!(p.category, PoiCategory(3));
    }
}
