//! Points of interest — the broadcast data items.

use airshare_geom::Point;

/// Typed handle for a POI: the server-assigned identifier, wrapped so
/// that APIs shuttling *references* to POIs (cache entries, peer
/// replies, merged regions) cannot be confused with APIs shuttling the
/// POIs themselves.
///
/// A `PoiId` resolves to its canonical [`Poi`] through a
/// [`PoiTable`](crate::PoiTable): the table owns the single payload
/// copy (position, category) and every cache/reply/report stores only
/// this 4-byte handle. Handles are stable for the lifetime of the
/// table — the broadcast file never reassigns ids within a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PoiId(pub u32);

impl PoiId {
    /// The raw server-assigned identifier.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The identifier as a `usize` index (for dense id spaces).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for PoiId {
    fn from(raw: u32) -> Self {
        PoiId(raw)
    }
}

impl std::fmt::Display for PoiId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "poi#{}", self.0)
    }
}

/// POI category ("data type" in the paper's cache-capacity discussion:
/// gas stations, hospitals, restaurants, … — caches are sized *per data
/// type*).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PoiCategory(pub u8);

impl PoiCategory {
    /// The default category used when an experiment models a single POI
    /// type (the paper uses gas stations throughout §4).
    pub const GAS_STATION: PoiCategory = PoiCategory(0);
}

/// A point of interest: the unit of data on the broadcast channel, in
/// peer caches, and in query results.
///
/// Per the paper's notation, "we use the object identifier to represent
/// its position coordinates" — a POI is identified by `id` and carries
/// its exact location.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Poi {
    /// Server-assigned identifier.
    pub id: u32,
    /// Exact position (miles).
    pub pos: Point,
    /// Data type.
    pub category: PoiCategory,
}

impl Poi {
    /// Creates a POI in the default category.
    pub fn new(id: u32, pos: Point) -> Self {
        Self {
            id,
            pos,
            category: PoiCategory::default(),
        }
    }

    /// Creates a POI with an explicit category.
    pub fn with_category(id: u32, pos: Point, category: PoiCategory) -> Self {
        Self { id, pos, category }
    }

    /// The typed handle naming this POI in handle-based APIs.
    #[inline]
    pub fn handle(&self) -> PoiId {
        PoiId(self.id)
    }

    /// Euclidean distance from this POI to `p`.
    pub fn distance_to(&self, p: Point) -> f64 {
        self.pos.distance(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_point_distance() {
        let poi = Poi::new(7, Point::new(3.0, 4.0));
        assert!((poi.distance_to(Point::ORIGIN) - 5.0).abs() < 1e-12);
        assert_eq!(poi.category, PoiCategory::GAS_STATION);
        assert_eq!(poi.handle(), PoiId(7));
    }

    #[test]
    fn category_constructor() {
        let p = Poi::with_category(1, Point::ORIGIN, PoiCategory(3));
        assert_eq!(p.category, PoiCategory(3));
    }
}
