//! Reusable per-query working buffers for the index path.

use crate::BucketId;

/// Scratch buffers threaded through the index-path query APIs
/// ([`crate::AirIndex`]'s `*_scratch` methods and
/// [`crate::OnAirClient`]'s `*_rec` methods) so that steady-state
/// queries perform no heap allocation: after a few warm-up queries the
/// buffers reach their high-water marks and every later decomposition,
/// interval merge, and bucket mapping reuses them in place.
///
/// Ownership rules:
///
/// * One `QueryScratch` per worker (simulation shard, benchmark thread).
///   The buffers carry no query state between calls — every method that
///   takes a scratch clears what it writes — so a scratch may be reused
///   across queries of any kind, but never shared concurrently.
/// * Methods leave their *result* in [`QueryScratch::buckets`]; callers
///   must copy it out (or finish consuming it) before issuing the next
///   scratch call.
/// * Allocation-free operation is a steady-state property: a fresh
///   scratch still grows its buffers on first use.
#[derive(Clone, Debug, Default)]
pub struct QueryScratch {
    /// Curve intervals of the current predicate, possibly accumulated
    /// across several reduced windows and merged in place.
    pub(crate) intervals: Vec<(u64, u64)>,
    /// Per-window decomposition output, before accumulation.
    pub(crate) tmp_intervals: Vec<(u64, u64)>,
    /// Bucket ids of the current predicate (sorted, deduplicated).
    pub(crate) buckets: Vec<BucketId>,
}

impl QueryScratch {
    /// Fresh scratch with empty (unallocated) buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket ids produced by the most recent `*_scratch` index call.
    pub fn buckets(&self) -> &[BucketId] {
        &self.buckets
    }

    /// Moves the bucket ids of the most recent `*_scratch` call out of
    /// the scratch, leaving an empty buffer behind. Used by the
    /// allocating convenience wrappers on
    /// [`crate::AirIndexBackend`].
    pub fn take_buckets(&mut self) -> Vec<BucketId> {
        std::mem::take(&mut self.buckets)
    }
}
