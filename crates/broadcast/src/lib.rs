//! The wireless broadcast substrate: `(1, m)` air indexing over a Hilbert
//! curve, channel timing, and the on-air spatial query baselines.
//!
//! In the paper's environment (Figure 3) a base station cyclically
//! broadcasts every POI on a public channel. Clients never transmit to
//! the server; they *tune in*, read an **index segment**, predict when the
//! buckets they need will be on air, sleep, and wake to download them.
//! Two metrics characterize the model (Imielinski et al., the paper’s
//! ref \[10\]):
//!
//! * **access latency** — wall-clock from posing the query to holding the
//!   data, dominated by waiting for the right part of the cycle;
//! * **tuning time** — how long the receiver is actually listening, a
//!   proxy for client power consumption.
//!
//! This crate implements that machinery from scratch:
//!
//! * [`Poi`] — the broadcast data item (a point of interest).
//! * [`AirIndex`] — the server-side organization: POIs sorted in Hilbert
//!   order and packed into fixed-capacity [`Bucket`]s (Zheng et al.).
//! * [`Schedule`] — `(1, m)` index allocation: the full index repeats `m`
//!   times per cycle, preceding each `1/m` of the data file (Figure 2).
//! * [`OnAirClient`] — the client access protocol (initial probe → index
//!   search → data retrieval) and the two baseline algorithms the paper
//!   improves on: the on-air kNN query (Figure 4) and the on-air window
//!   query (Figure 8), plus the *bound-filtered* variants that SBNN/SBWQ
//!   use to shrink retrieval after partial peer verification (§3.3.3 and
//!   §3.4.2).
//! * [`AirIndexBackend`] — the pluggable index contract behind
//!   [`AirIndex`], with [`RtreeAirIndex`] (an on-air R-tree reusing
//!   `crates/rtree`'s STR bulk loader) as the shipping alternative.
//!
//! Time is measured in **ticks**, one tick being the airtime of one
//! bucket. Multiply by (bucket bytes ÷ channel bit-rate) for seconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod bucket;
mod client;
mod fault;
mod index;
mod outage;
mod poi;
mod rtree_index;
mod schedule;
mod scratch;
mod table;
pub mod wire;

pub use backend::{AirIndexBackend, BuildParams};
pub use bucket::{Bucket, BucketId};
pub use client::{OnAirClient, OnAirKnnResult, OnAirWindowResult};
pub use fault::ChannelFaults;
pub use index::{AirIndex, IndexError};
pub use rtree_index::RtreeAirIndex;
pub use outage::OutageSchedule;
pub use poi::{Poi, PoiCategory, PoiId};
pub use schedule::{Schedule, ScheduleError};
pub use scratch::QueryScratch;
pub use table::PoiTable;
