//! The unified statistics surface.
//!
//! Every cost figure the workspace reports lives here: the per-operation
//! accounting structs ([`AccessStats`], [`ShareStats`]), the grouped
//! fault counters ([`FaultStats`]), and the metric primitives
//! ([`Counter`], [`Histogram`], [`LatencySummary`]) that aggregate them
//! across a run. Field naming is consistent throughout: `*_total` for
//! monotonic counts, `*_dropped` for losses in transit, `*_degraded`
//! for results that must not be treated as exact.

/// Broadcast-access cost of one operation, in ticks.
///
/// * `latency` — from tuning in to holding the last needed bucket
///   (*access latency*; what the user waits).
/// * `tuning` — ticks spent actively listening (*tuning time*; what the
///   battery pays): one probe tick, each index segment read, and each
///   data bucket downloaded (including corrupt downloads that had to be
///   re-fetched).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Access latency in ticks.
    pub latency: u64,
    /// Tuning time in ticks.
    pub tuning: u64,
    /// Number of data buckets downloaded.
    pub buckets: u64,
    /// Re-fetch attempts forced by corrupt bucket appearances.
    pub retries: u64,
    /// Buckets abandoned after the retry budget ran out. Non-zero means
    /// the operation's results are *degraded* — possibly incomplete —
    /// and callers must not treat them as exact.
    pub lost_buckets: u64,
}

impl AccessStats {
    /// Component-wise sum (for multi-step protocols).
    pub fn merge(self, other: AccessStats) -> AccessStats {
        AccessStats {
            latency: self.latency + other.latency,
            tuning: self.tuning + other.tuning,
            buckets: self.buckets + other.buckets,
            retries: self.retries + other.retries,
            lost_buckets: self.lost_buckets + other.lost_buckets,
        }
    }

    /// Whether any requested bucket could not be recovered.
    pub fn is_degraded(&self) -> bool {
        self.lost_buckets > 0
    }
}

/// Traffic accounting for one share exchange.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShareStats {
    /// Peers within range that were contacted.
    pub peers_contacted: usize,
    /// Peers that replied with at least one region.
    pub peers_with_data: usize,
    /// Total regions transferred.
    pub regions_received: usize,
    /// Total POIs transferred.
    pub pois_received: usize,
    /// Replies lost in transit (fault injection).
    pub replies_dropped: usize,
    /// Regions rejected by validation (malformed shape, disjoint from
    /// the world, or POIs outside the claimed region).
    pub regions_rejected: usize,
    /// Peers skipped because they were under active quarantine.
    pub peers_quarantined: usize,
    /// Peers struck (newly or re-quarantined) during this exchange for
    /// malformed or consistency-failing replies.
    pub peers_struck: usize,
}

/// Run-level fault accounting, grouped in one place.
///
/// Replaces the loose counters that previously sat directly on the
/// simulation report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Channel re-fetches forced by corrupt bucket appearances.
    pub retries_total: u64,
    /// Data buckets abandoned after the retry budget ran out.
    pub buckets_lost_total: u64,
    /// Queries whose broadcast access lost at least one bucket; their
    /// results were treated as possibly incomplete.
    pub queries_degraded: u64,
    /// Peer replies lost in transit.
    pub replies_dropped: u64,
    /// Shared regions rejected by validation.
    pub regions_rejected: u64,
    /// Peer contacts avoided because the peer was under quarantine.
    pub peers_quarantined: u64,
    /// Quarantine strikes booked against peers for malformed or
    /// consistency-failing replies.
    pub quarantine_strikes: u64,
}

impl FaultStats {
    /// True when no fault of any kind was observed.
    pub fn is_clean(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// Wall-clock time spent in each phase of the engine's epoch loop,
/// in nanoseconds, summed across epochs.
///
/// Phase attribution follows the loop's structure: `advance` is churn
/// application plus per-host mobility stepping, `grid` is the neighbor
/// grid refresh, `snapshot` is the committed-cache snapshot rebuild,
/// and `query` is query sharding, execution, and the barrier commit.
///
/// These are *measurements of* the run, not *outputs of* the
/// simulation: two bit-identical runs will record different wall
/// times. `PartialEq` therefore always returns `true`, so snapshots
/// that differ only in timing still compare equal — the determinism
/// suites compare whole [`crate::MetricsSnapshot`]s across thread
/// counts, and wall-clock jitter must not fail them.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Churn application + mobility advance, in nanoseconds.
    pub advance_ns: u64,
    /// Neighbor-grid refresh, in nanoseconds.
    pub grid_ns: u64,
    /// Query sharding, execution, and barrier commit, in nanoseconds.
    pub query_ns: u64,
    /// Committed-cache snapshot refresh, in nanoseconds.
    pub snapshot_ns: u64,
}

impl PhaseTimes {
    /// Component-wise sum (for aggregating epochs or merging shards).
    pub fn merge(&mut self, other: PhaseTimes) {
        self.advance_ns += other.advance_ns;
        self.grid_ns += other.grid_ns;
        self.query_ns += other.query_ns;
        self.snapshot_ns += other.snapshot_ns;
    }

    /// Total time across all phases, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.advance_ns + self.grid_ns + self.query_ns + self.snapshot_ns
    }
}

impl PartialEq for PhaseTimes {
    /// Always `true`: wall-clock timing is not simulation output, and
    /// must never make two otherwise-identical snapshots unequal.
    fn eq(&self, _other: &PhaseTimes) -> bool {
        true
    }
}

impl Eq for PhaseTimes {}

/// A monotonically increasing event count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(0)
    }

    /// Add one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Folds another counter in. Counter addition is commutative and
    /// associative, so shard-local counters merge exactly in any order.
    #[inline]
    pub fn merge(&mut self, other: Counter) {
        self.0 += other.0;
    }
}

/// Number of sub-buckets per power-of-two octave (4 ⇒ 2 sub-bucket
/// bits ⇒ at most 25 % relative error per recorded value).
const SUB_BUCKETS: usize = 4;
/// Total bucket count: values 0–3 exact, then 4 sub-buckets for each of
/// the remaining 62 octaves of the `u64` range.
const BUCKETS: usize = SUB_BUCKETS + 62 * SUB_BUCKETS;

/// A fixed-footprint histogram with log-scaled bucket bounds.
///
/// Values 0–3 are recorded exactly; above that each power-of-two octave
/// is split into 4 sub-buckets, bounding the relative
/// quantization error at 25 %. The bounds are *fixed* — independent of
/// the data — so two histograms are mergeable and two same-seed runs
/// produce identical bucket vectors. Covers the full `u64` range in
/// 252 buckets (2 KiB).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    fn bucket_index(v: u64) -> usize {
        if v < SUB_BUCKETS as u64 {
            return v as usize;
        }
        let exp = 63 - v.leading_zeros() as usize; // >= 2
        let sub = ((v >> (exp - 2)) & 0b11) as usize;
        (exp - 1) * SUB_BUCKETS + sub
    }

    /// The lower bound of bucket `i` — the smallest value it can hold.
    fn bucket_lower_bound(i: usize) -> u64 {
        if i < SUB_BUCKETS {
            return i as u64;
        }
        let exp = i / SUB_BUCKETS + 1;
        let sub = (i % SUB_BUCKETS) as u64;
        (1u64 << exp) + sub * (1u64 << (exp - 2))
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]` — the lower bound of the
    /// bucket holding the `ceil(q·count)`-th smallest sample (≤ 25 %
    /// below the true value), clamped to the observed maximum. Returns
    /// 0 if the histogram is empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_lower_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.value_at_quantile(0.90)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.value_at_quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// Component-wise sum with another histogram (bounds are fixed, so
    /// merging is exact).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// The fixed percentile set, extracted in one pass.
    pub fn percentiles(&self) -> PercentileSummary {
        PercentileSummary {
            count: self.count,
            mean: self.mean(),
            p50: self.p50(),
            p90: self.p90(),
            p95: self.p95(),
            p99: self.p99(),
            max: self.max,
        }
    }
}

/// The standard percentile set of one histogram, as plain numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PercentileSummary {
    /// Recorded samples.
    pub count: u64,
    /// Arithmetic mean (0.0 if empty).
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

/// Aggregates one scalar cost across many queries: exact count / sum /
/// max plus a log-scaled [`Histogram`] for percentile extraction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    hist: Histogram,
}

impl LatencySummary {
    /// An empty summary.
    pub fn new() -> LatencySummary {
        LatencySummary::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
        self.hist.record(v);
    }

    /// Arithmetic mean, or 0.0 when no samples were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Median (p50); 0 when empty.
    pub fn p50(&self) -> u64 {
        self.hist.p50()
    }

    /// 90th percentile; 0 when empty.
    pub fn p90(&self) -> u64 {
        self.hist.p90()
    }

    /// 95th percentile; 0 when empty.
    pub fn p95(&self) -> u64 {
        self.hist.p95()
    }

    /// 99th percentile; 0 when empty.
    pub fn p99(&self) -> u64 {
        self.hist.p99()
    }

    /// The full percentile set.
    pub fn percentiles(&self) -> PercentileSummary {
        self.hist.percentiles()
    }

    /// Folds another summary in; exact, like [`Histogram::merge`].
    pub fn merge(&mut self, other: &LatencySummary) {
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
        self.hist.merge(&other.hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut d = Counter::new();
        d.add(7);
        d.merge(c);
        assert_eq!(d.get(), 12);
    }

    #[test]
    fn latency_summary_merge_equals_combined_recording() {
        let mut a = LatencySummary::new();
        let mut b = LatencySummary::new();
        let mut both = LatencySummary::new();
        for v in [3u64, 99, 1_024, 0] {
            a.record(v);
            both.record(v);
        }
        for v in [17u64, 4_095] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..64u64 {
            let i = Histogram::bucket_index(v);
            let lo = Histogram::bucket_lower_bound(i);
            assert!(lo <= v, "v={v} i={i} lo={lo}");
            if v < 4 {
                assert_eq!(lo, v);
            }
        }
    }

    #[test]
    fn bucket_bounds_are_monotone_and_consistent() {
        let mut prev = 0u64;
        for i in 0..BUCKETS {
            let lo = Histogram::bucket_lower_bound(i);
            assert!(i == 0 || lo > prev, "bucket {i}: {lo} <= {prev}");
            assert_eq!(Histogram::bucket_index(lo), i, "round-trip at bucket {i}");
            prev = lo;
        }
    }

    #[test]
    fn quantization_error_bounded() {
        for &v in &[5u64, 100, 1_000, 65_537, 1 << 40, u64::MAX / 3] {
            let lo = Histogram::bucket_lower_bound(Histogram::bucket_index(v));
            assert!(lo <= v);
            assert!((v - lo) as f64 <= 0.25 * v as f64, "v={v} lo={lo}");
        }
    }

    #[test]
    fn histogram_percentiles_on_uniform_range() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        // Lower-bound estimates: within 25 % below the true quantile.
        let p50 = h.p50();
        assert!(p50 <= 500 && p50 as f64 >= 500.0 * 0.75, "p50={p50}");
        let p99 = h.p99();
        assert!(p99 <= 990 && p99 as f64 >= 990.0 * 0.75, "p99={p99}");
        let p100 = h.value_at_quantile(1.0);
        assert!((750..=1000).contains(&p100), "p100={p100}");
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 3);
            both.record(v * 3);
        }
        for v in 0..500u64 {
            b.record(v * 7 + 1);
            both.record(v * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn empty_summary_mean_is_zero() {
        // Regression guard: zero samples must yield 0.0, not NaN.
        let s = LatencySummary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.percentiles(), PercentileSummary::default());
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.value_at_quantile(0.5), 0);
    }

    #[test]
    fn latency_summary_tracks_exact_moments() {
        let mut s = LatencySummary::new();
        for v in [10u64, 20, 30] {
            s.record(v);
        }
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 60);
        assert_eq!(s.max, 30);
        assert!((s.mean() - 20.0).abs() < 1e-12);
        assert!(s.p50() >= 15 && s.p50() <= 20);
    }

    #[test]
    fn access_stats_merge_and_degraded() {
        let a = AccessStats {
            latency: 5,
            tuning: 3,
            buckets: 2,
            retries: 1,
            lost_buckets: 0,
        };
        let b = AccessStats {
            lost_buckets: 1,
            ..AccessStats::default()
        };
        let m = a.merge(b);
        assert_eq!(m.latency, 5);
        assert_eq!(m.retries, 1);
        assert!(!a.is_degraded());
        assert!(m.is_degraded());
    }

    #[test]
    fn phase_times_merge_and_compare_equal() {
        let mut a = PhaseTimes {
            advance_ns: 10,
            grid_ns: 20,
            query_ns: 30,
            snapshot_ns: 40,
        };
        let b = PhaseTimes {
            advance_ns: 1,
            grid_ns: 2,
            query_ns: 3,
            snapshot_ns: 4,
        };
        a.merge(b);
        assert_eq!(a.advance_ns, 11);
        assert_eq!(a.snapshot_ns, 44);
        assert_eq!(a.total_ns(), 110);
        // Timing never breaks equality: determinism suites compare
        // snapshots across runs with different wall clocks.
        assert_eq!(a, PhaseTimes::default());
    }

    #[test]
    fn fault_stats_clean_detection() {
        assert!(FaultStats::default().is_clean());
        let f = FaultStats {
            retries_total: 1,
            ..FaultStats::default()
        };
        assert!(!f.is_clean());
    }
}
