//! The typed trace-event taxonomy.

/// How a query was ultimately resolved.
///
/// Mirrors the algorithm layer's `ResolvedBy` (the three series of the
/// paper's Figures 10–12) but lives here so the substrate crates can
/// speak about resolution without depending on the algorithm crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ResolutionKind {
    /// Answered entirely from peer data with verification (SBNN/SBWQ).
    PeersVerified,
    /// Answered from peers approximately (kNN only).
    PeersApproximate,
    /// Answered by listening to the broadcast channel.
    Broadcast,
}

impl ResolutionKind {
    /// Stable string form (used by the JSONL trace).
    pub fn as_str(self) -> &'static str {
        match self {
            ResolutionKind::PeersVerified => "peers_verified",
            ResolutionKind::PeersApproximate => "peers_approximate",
            ResolutionKind::Broadcast => "broadcast",
        }
    }
}

/// Why a cache refused an offered entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheRejectReason {
    /// The entry violated the containment invariant (malformed region or
    /// POIs outside the claimed rectangle).
    Inconsistent,
    /// The cache has zero capacity for the entry's category.
    NoCapacity,
}

impl CacheRejectReason {
    /// Stable string form (used by the JSONL trace).
    pub fn as_str(self) -> &'static str {
        match self {
            CacheRejectReason::Inconsistent => "inconsistent",
            CacheRejectReason::NoCapacity => "no_capacity",
        }
    }
}

/// One observable step on a query's resolution path.
///
/// Events are emitted in real execution order within a query context
/// (opened by [`crate::Recorder::begin_query`]); all payloads are plain
/// integers so recording never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// The client tuned in and started waiting for the next index
    /// segment (the access protocol's initial probe).
    ProbeStarted {
        /// Absolute channel tick of the probe.
        tick: u64,
    },
    /// The client read an index segment: `count` index buckets tuned.
    IndexBucketTuned {
        /// Index buckets in the segment (all are read in one pass).
        count: u32,
    },
    /// A data bucket was downloaded successfully.
    DataBucketTuned {
        /// The bucket's id in the broadcast file.
        bucket: u32,
        /// Absolute tick at which the download completed.
        tick: u64,
    },
    /// A bucket appearance arrived corrupt (CRC failure) and was not
    /// usable; the client re-tunes on the next cycle if budget remains.
    FrameLost {
        /// The bucket's id in the broadcast file.
        bucket: u32,
        /// How many appearances of this bucket were already lost in this
        /// retrieval (0 for the first loss).
        retry: u32,
    },
    /// A share request reached a peer within radio range.
    PeerContacted {
        /// The peer's host id.
        peer: u32,
    },
    /// A contacted peer's reply was lost in transit (fault layer).
    PeerReplyDropped {
        /// The peer's host id.
        peer: u32,
    },
    /// A cache (a peer's, or the querying host's own) contributed
    /// verified regions to the query's merged region.
    CacheHit {
        /// Regions contributed after validation.
        regions: u32,
    },
    /// A cache refused an offered entry.
    CacheRejected {
        /// Why the entry was refused.
        reason: CacheRejectReason,
    },
    /// The query resolved; terminal event of every query context.
    QueryResolved {
        /// Resolution path.
        by: ResolutionKind,
        /// Tuning time paid on the channel (ticks; 0 for peer answers).
        tuning: u64,
        /// Access latency paid on the channel (ticks; 0 for peer
        /// answers).
        latency: u64,
    },
}

impl TraceEvent {
    /// The event's stable name (used by the JSONL trace and metric
    /// labels).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::ProbeStarted { .. } => "probe_started",
            TraceEvent::IndexBucketTuned { .. } => "index_bucket_tuned",
            TraceEvent::DataBucketTuned { .. } => "data_bucket_tuned",
            TraceEvent::FrameLost { .. } => "frame_lost",
            TraceEvent::PeerContacted { .. } => "peer_contacted",
            TraceEvent::PeerReplyDropped { .. } => "peer_reply_dropped",
            TraceEvent::CacheHit { .. } => "cache_hit",
            TraceEvent::CacheRejected { .. } => "cache_rejected",
            TraceEvent::QueryResolved { .. } => "query_resolved",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_distinct() {
        let events = [
            TraceEvent::ProbeStarted { tick: 0 },
            TraceEvent::IndexBucketTuned { count: 1 },
            TraceEvent::DataBucketTuned { bucket: 0, tick: 0 },
            TraceEvent::FrameLost { bucket: 0, retry: 0 },
            TraceEvent::PeerContacted { peer: 0 },
            TraceEvent::PeerReplyDropped { peer: 0 },
            TraceEvent::CacheHit { regions: 1 },
            TraceEvent::CacheRejected {
                reason: CacheRejectReason::Inconsistent,
            },
            TraceEvent::QueryResolved {
                by: ResolutionKind::Broadcast,
                tuning: 0,
                latency: 0,
            },
        ];
        let mut names: Vec<&str> = events.iter().map(TraceEvent::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), events.len());
    }
}
