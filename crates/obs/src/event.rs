//! The typed trace-event taxonomy.

/// How a query was ultimately resolved.
///
/// Mirrors the algorithm layer's `ResolvedBy` (the three series of the
/// paper's Figures 10–12) but lives here so the substrate crates can
/// speak about resolution without depending on the algorithm crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ResolutionKind {
    /// Answered entirely from peer data with verification (SBNN/SBWQ).
    PeersVerified,
    /// Answered from peers approximately (kNN only).
    PeersApproximate,
    /// Answered by listening to the broadcast channel.
    Broadcast,
}

impl ResolutionKind {
    /// Stable string form (used by the JSONL trace).
    pub fn as_str(self) -> &'static str {
        match self {
            ResolutionKind::PeersVerified => "peers_verified",
            ResolutionKind::PeersApproximate => "peers_approximate",
            ResolutionKind::Broadcast => "broadcast",
        }
    }
}

/// The quality of one answered query, from best to worst.
///
/// Replaces the older binary "degraded" flag: under fleet-level chaos
/// (base-station outages, host churn) an answer can be worse than
/// *missing a few buckets* — it can be served entirely from possibly
/// stale cached knowledge, or not at all. Every non-`Exact` quality
/// carries a declared bound the chaos oracle can check: the answer set
/// is a subset of the ground truth (window queries) or its distances
/// dominate the true nearest neighbors (kNN).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AnswerQuality {
    /// Resolved normally: verified peer data, an accepted approximate
    /// answer, or a clean broadcast retrieval.
    Exact,
    /// The broadcast retrieval lost buckets past the retry budget; the
    /// answer may be incomplete.
    Degraded,
    /// The channel was silent (base-station outage) and the answer was
    /// served best-effort from cached/peer knowledge, tagged with a
    /// staleness bound (minutes since the host last heard the channel).
    Stale,
    /// The channel was silent and no cached or peer knowledge covered
    /// the query at all.
    Failed,
}

impl AnswerQuality {
    /// Stable string form (used by the JSONL trace).
    pub fn as_str(self) -> &'static str {
        match self {
            AnswerQuality::Exact => "exact",
            AnswerQuality::Degraded => "degraded",
            AnswerQuality::Stale => "stale",
            AnswerQuality::Failed => "failed",
        }
    }

    /// Whether the answer may be treated as exact (complete and correct
    /// under validation).
    pub fn is_exact(self) -> bool {
        self == AnswerQuality::Exact
    }
}

/// Why a cache refused an offered entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheRejectReason {
    /// The entry violated the containment invariant (malformed region or
    /// POIs outside the claimed rectangle).
    Inconsistent,
    /// The cache has zero capacity for the entry's category.
    NoCapacity,
}

impl CacheRejectReason {
    /// Stable string form (used by the JSONL trace).
    pub fn as_str(self) -> &'static str {
        match self {
            CacheRejectReason::Inconsistent => "inconsistent",
            CacheRejectReason::NoCapacity => "no_capacity",
        }
    }
}

/// One observable step on a query's resolution path.
///
/// Events are emitted in real execution order within a query context
/// (opened by [`crate::Recorder::begin_query`]); all payloads are plain
/// integers so recording never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// The client tuned in and started waiting for the next index
    /// segment (the access protocol's initial probe).
    ProbeStarted {
        /// Absolute channel tick of the probe.
        tick: u64,
    },
    /// The client read an index segment: `count` index buckets tuned.
    IndexBucketTuned {
        /// Index buckets in the segment (all are read in one pass).
        count: u32,
    },
    /// A data bucket was downloaded successfully.
    DataBucketTuned {
        /// The bucket's id in the broadcast file.
        bucket: u32,
        /// Absolute tick at which the download completed.
        tick: u64,
    },
    /// A bucket appearance arrived corrupt (CRC failure) and was not
    /// usable; the client re-tunes on the next cycle if budget remains.
    FrameLost {
        /// The bucket's id in the broadcast file.
        bucket: u32,
        /// How many appearances of this bucket were already lost in this
        /// retrieval (0 for the first loss).
        retry: u32,
    },
    /// A share request reached a peer within radio range.
    PeerContacted {
        /// The peer's host id.
        peer: u32,
    },
    /// A contacted peer's reply was lost in transit (fault layer).
    PeerReplyDropped {
        /// The peer's host id.
        peer: u32,
    },
    /// A cache (a peer's, or the querying host's own) contributed
    /// verified regions to the query's merged region.
    CacheHit {
        /// Regions contributed after validation.
        regions: u32,
    },
    /// A cache refused an offered entry.
    CacheRejected {
        /// Why the entry was refused.
        reason: CacheRejectReason,
    },
    /// The query resolved; terminal event of every query context.
    QueryResolved {
        /// Resolution path.
        by: ResolutionKind,
        /// Tuning time paid on the channel (ticks; 0 for peer answers).
        tuning: u64,
        /// Access latency paid on the channel (ticks; 0 for peer
        /// answers).
        latency: u64,
    },
    /// Quality grade of a measured query's answer (emitted by the
    /// simulation engine after resolution; absent during warm-up).
    QueryQuality {
        /// The answer's quality tier.
        quality: AnswerQuality,
    },
    /// A host crashed at an epoch boundary: it goes offline and its
    /// cache (and quarantine memory) is wiped.
    HostCrashed {
        /// The crashed host's id.
        host: u32,
        /// The epoch at whose boundary the crash took effect.
        epoch: u64,
    },
    /// A host came (back) online at an epoch boundary — a restart after
    /// a crash, or a late joiner admitted mid-run. It starts cold.
    HostRestarted {
        /// The restarted host's id.
        host: u32,
        /// The epoch at whose boundary the host came online.
        epoch: u64,
    },
    /// A query was issued while the base station was silent (outage
    /// window): no channel fallback is available.
    OutageBlocked {
        /// Absolute channel tick of the blocked query.
        tick: u64,
    },
    /// A host's first successful channel access after answering queries
    /// through an outage: it is now resynchronized to the air index.
    Resynced {
        /// The resynchronized host's id.
        host: u32,
    },
    /// A peer was struck for a malformed or consistency-failing reply
    /// and is quarantined until the given epoch (seeded exponential
    /// backoff with decay).
    PeerQuarantined {
        /// The offending peer's host id.
        peer: u32,
        /// First epoch at which the peer may be contacted again.
        until_epoch: u64,
    },
    /// A share request skipped a peer because it is currently
    /// quarantined.
    QuarantinedPeerSkipped {
        /// The skipped peer's host id.
        peer: u32,
    },
    /// A host opened a session with the serving base station (fresh
    /// join, or a cold reconnect after a crash).
    SessionRegistered {
        /// The registering host's id.
        host: u32,
    },
    /// A host closed its session (disconnect; volatile state wiped).
    SessionClosed {
        /// The departing host's id.
        host: u32,
    },
    /// A submitted query passed admission into an epoch batch.
    QueryAdmitted {
        /// Admission-queue depth observed when the query was admitted.
        depth: u32,
    },
    /// A submitted query bounced off the full admission queue
    /// (backpressure); the client was told when to retry.
    QueryRejected {
        /// Suggested retry delay in broadcast ticks.
        retry_after_ticks: u64,
    },
    /// The service committed one epoch barrier: sessions updated, grid
    /// rebuilt, and the epoch's admitted batch executed.
    EpochCommitted {
        /// The committed epoch number.
        epoch: u64,
        /// Queries executed in the batch.
        batch: u32,
    },
    /// The service drained: admission closed, every pending barrier
    /// flushed, all replies delivered.
    ServiceDrained {
        /// Queries still pending when the drain began.
        pending: u32,
    },
}

impl TraceEvent {
    /// The event's stable name (used by the JSONL trace and metric
    /// labels).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::ProbeStarted { .. } => "probe_started",
            TraceEvent::IndexBucketTuned { .. } => "index_bucket_tuned",
            TraceEvent::DataBucketTuned { .. } => "data_bucket_tuned",
            TraceEvent::FrameLost { .. } => "frame_lost",
            TraceEvent::PeerContacted { .. } => "peer_contacted",
            TraceEvent::PeerReplyDropped { .. } => "peer_reply_dropped",
            TraceEvent::CacheHit { .. } => "cache_hit",
            TraceEvent::CacheRejected { .. } => "cache_rejected",
            TraceEvent::QueryResolved { .. } => "query_resolved",
            TraceEvent::QueryQuality { .. } => "query_quality",
            TraceEvent::HostCrashed { .. } => "host_crashed",
            TraceEvent::HostRestarted { .. } => "host_restarted",
            TraceEvent::OutageBlocked { .. } => "outage_blocked",
            TraceEvent::Resynced { .. } => "resynced",
            TraceEvent::PeerQuarantined { .. } => "peer_quarantined",
            TraceEvent::QuarantinedPeerSkipped { .. } => "quarantined_peer_skipped",
            TraceEvent::SessionRegistered { .. } => "session_registered",
            TraceEvent::SessionClosed { .. } => "session_closed",
            TraceEvent::QueryAdmitted { .. } => "query_admitted",
            TraceEvent::QueryRejected { .. } => "query_rejected",
            TraceEvent::EpochCommitted { .. } => "epoch_committed",
            TraceEvent::ServiceDrained { .. } => "service_drained",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_distinct() {
        let events = [
            TraceEvent::ProbeStarted { tick: 0 },
            TraceEvent::IndexBucketTuned { count: 1 },
            TraceEvent::DataBucketTuned { bucket: 0, tick: 0 },
            TraceEvent::FrameLost { bucket: 0, retry: 0 },
            TraceEvent::PeerContacted { peer: 0 },
            TraceEvent::PeerReplyDropped { peer: 0 },
            TraceEvent::CacheHit { regions: 1 },
            TraceEvent::CacheRejected {
                reason: CacheRejectReason::Inconsistent,
            },
            TraceEvent::QueryResolved {
                by: ResolutionKind::Broadcast,
                tuning: 0,
                latency: 0,
            },
            TraceEvent::QueryQuality {
                quality: AnswerQuality::Stale,
            },
            TraceEvent::HostCrashed { host: 0, epoch: 1 },
            TraceEvent::HostRestarted { host: 0, epoch: 2 },
            TraceEvent::OutageBlocked { tick: 0 },
            TraceEvent::Resynced { host: 0 },
            TraceEvent::PeerQuarantined {
                peer: 0,
                until_epoch: 3,
            },
            TraceEvent::QuarantinedPeerSkipped { peer: 0 },
            TraceEvent::SessionRegistered { host: 0 },
            TraceEvent::SessionClosed { host: 0 },
            TraceEvent::QueryAdmitted { depth: 0 },
            TraceEvent::QueryRejected {
                retry_after_ticks: 1,
            },
            TraceEvent::EpochCommitted { epoch: 0, batch: 0 },
            TraceEvent::ServiceDrained { pending: 0 },
        ];
        let mut names: Vec<&str> = events.iter().map(TraceEvent::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), events.len());
    }

    #[test]
    fn answer_quality_strings_are_stable_and_distinct() {
        let all = [
            AnswerQuality::Exact,
            AnswerQuality::Degraded,
            AnswerQuality::Stale,
            AnswerQuality::Failed,
        ];
        let mut names: Vec<&str> = all.iter().map(|q| q.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
        assert!(AnswerQuality::Exact.is_exact());
        assert!(!AnswerQuality::Stale.is_exact());
    }
}
