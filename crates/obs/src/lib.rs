//! Query-level observability for the airshare system.
//!
//! The paper's evaluation (§4) reports per-run *means* of tuning time and
//! access latency; a production-scale system needs to see tail latency,
//! per-query resolution paths, and where a degraded query lost its cycle.
//! This crate is the substrate for that: a zero-cost [`Recorder`] layer
//! that every hot path threads through, plus the metric primitives and
//! the unified statistics surface the rest of the workspace shares.
//!
//! * [`TraceEvent`] — the typed event taxonomy: channel probes, index
//!   and data bucket tunings, lost frames, peer contacts and dropped
//!   replies, cache hits and rejections, and the terminal
//!   [`TraceEvent::QueryResolved`] carrying the query's cost.
//! * [`Recorder`] — the sink trait. [`NoopRecorder`] is the default and
//!   is provably free: its methods are empty `#[inline]` bodies, and a
//!   simulation run with an inert recorder is bit-identical to one
//!   without (tested end-to-end in the umbrella crate).
//! * [`MetricsRecorder`] — aggregates events into [`Counter`]s and
//!   log-scaled [`Histogram`]s, snapshotted as a [`MetricsSnapshot`]
//!   with p50/p90/p95/p99 extraction.
//! * [`JsonlTraceRecorder`] — a deterministic per-query event log, one
//!   JSON object per line, consumable by the `exp_trace` experiment.
//! * [`stats`] — the unified statistics module: [`AccessStats`] (moved
//!   here from `airshare-broadcast`), [`ShareStats`] (moved from
//!   `airshare-p2p`), the grouped [`FaultStats`] counters, and the
//!   histogram-backed [`LatencySummary`].
//!
//! The crate is dependency-free so every substrate crate can use it
//! without layering concerns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod recorder;
pub mod stats;

pub use event::{AnswerQuality, CacheRejectReason, ResolutionKind, TraceEvent};
pub use recorder::{JsonlTraceRecorder, MetricsRecorder, MetricsSnapshot, NoopRecorder, Recorder};
pub use stats::{
    AccessStats, Counter, FaultStats, Histogram, LatencySummary, PercentileSummary, PhaseTimes,
    ShareStats,
};
