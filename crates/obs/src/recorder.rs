//! The `Recorder` sink trait and the concrete recorders.

use crate::event::{AnswerQuality, ResolutionKind, TraceEvent};
use crate::stats::{Counter, Histogram, PercentileSummary, PhaseTimes};
use std::fmt::Write as _;

/// A sink for trace events emitted along a query's resolution path.
///
/// Both methods default to empty `#[inline]` bodies, so threading a
/// [`NoopRecorder`] through the hot paths compiles away entirely: a
/// simulation run with an inert recorder is bit-identical to one
/// without (tested end-to-end in the umbrella crate).
///
/// The trait is object-safe; the workspace passes `&mut dyn Recorder`.
pub trait Recorder {
    /// Opens a query context: subsequent [`Recorder::record`] calls
    /// belong to query `id` until the next `begin_query`. `tick` is the
    /// channel tick at which the query was issued.
    #[inline]
    fn begin_query(&mut self, id: u64, tick: u64) {
        let _ = (id, tick);
    }

    /// Records one event in the current query context.
    #[inline]
    fn record(&mut self, event: TraceEvent) {
        let _ = event;
    }
}

/// The default recorder: records nothing, costs nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Aggregated view of a [`MetricsRecorder`], as plain numbers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Queries observed (one per `begin_query`).
    pub queries_total: u64,
    /// Queries resolved from verified peer data.
    pub resolved_peers_verified: u64,
    /// Queries resolved from peer data approximately.
    pub resolved_peers_approximate: u64,
    /// Queries resolved on the broadcast channel.
    pub resolved_broadcast: u64,
    /// Channel probes started.
    pub probes_total: u64,
    /// Index buckets tuned.
    pub index_buckets_total: u64,
    /// Data buckets downloaded.
    pub data_buckets_total: u64,
    /// Corrupt bucket appearances (includes the final appearance of an
    /// abandoned bucket).
    pub frames_lost_total: u64,
    /// Peers contacted across all share exchanges.
    pub peers_contacted_total: u64,
    /// Peer replies lost in transit.
    pub peer_replies_dropped: u64,
    /// Cache contributions (hits) observed.
    pub cache_hits_total: u64,
    /// Cache admissions refused.
    pub cache_rejected_total: u64,
    /// Measured answers graded `Exact`.
    pub answers_exact: u64,
    /// Measured answers graded `Degraded` (lost buckets).
    pub answers_degraded: u64,
    /// Measured answers graded `Stale` (served through an outage).
    pub answers_stale: u64,
    /// Measured answers graded `Failed` (outage, no knowledge).
    pub answers_failed: u64,
    /// Host crashes applied at epoch boundaries.
    pub hosts_crashed_total: u64,
    /// Host restarts / late-join admissions at epoch boundaries.
    pub hosts_restarted_total: u64,
    /// Queries issued while the base station was silent.
    pub outages_blocked_total: u64,
    /// Hosts resynchronized to the index after an outage.
    pub resyncs_total: u64,
    /// Quarantine strikes booked against peers.
    pub quarantine_strikes_total: u64,
    /// Peer contacts avoided due to active quarantine.
    pub quarantine_skips_total: u64,
    /// Sessions opened with the serving base station.
    pub sessions_registered_total: u64,
    /// Sessions closed (client disconnects).
    pub sessions_closed_total: u64,
    /// Queries that passed admission into an epoch batch.
    pub queries_admitted_total: u64,
    /// Queries bounced off the full admission queue (backpressure).
    pub queries_rejected_total: u64,
    /// Epoch barriers committed by the service scheduler.
    pub epochs_committed_total: u64,
    /// Graceful drains completed.
    pub drains_total: u64,
    /// Tuning-time percentiles across resolved queries (ticks).
    pub tuning: PercentileSummary,
    /// Access-latency percentiles across resolved queries (ticks).
    pub latency: PercentileSummary,
    /// The full tuning-time histogram behind [`MetricsSnapshot::tuning`].
    /// Histogram bounds are fixed, so snapshots merge exactly.
    pub tuning_hist: Histogram,
    /// The full access-latency histogram behind
    /// [`MetricsSnapshot::latency`].
    pub latency_hist: Histogram,
    /// Wall-clock breakdown of the engine's epoch loop, filled in by
    /// the driving runtime (not by trace events). Compares equal
    /// regardless of values — timing is measurement, not simulation
    /// output — so determinism checks over snapshots stay valid.
    pub phases: PhaseTimes,
}

impl MetricsSnapshot {
    /// Folds another snapshot in: counters add, histograms merge, and
    /// the percentile summaries are recomputed from the merged
    /// histograms.
    ///
    /// Every ingredient is a commutative, associative exact sum, so
    /// folding shard-local snapshots in any grouping yields the same
    /// result as one recorder having observed every event — the property
    /// the parallel runtime's per-worker recorders rely on (and that
    /// `tests/parallel.rs` checks).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.queries_total += other.queries_total;
        self.resolved_peers_verified += other.resolved_peers_verified;
        self.resolved_peers_approximate += other.resolved_peers_approximate;
        self.resolved_broadcast += other.resolved_broadcast;
        self.probes_total += other.probes_total;
        self.index_buckets_total += other.index_buckets_total;
        self.data_buckets_total += other.data_buckets_total;
        self.frames_lost_total += other.frames_lost_total;
        self.peers_contacted_total += other.peers_contacted_total;
        self.peer_replies_dropped += other.peer_replies_dropped;
        self.cache_hits_total += other.cache_hits_total;
        self.cache_rejected_total += other.cache_rejected_total;
        self.answers_exact += other.answers_exact;
        self.answers_degraded += other.answers_degraded;
        self.answers_stale += other.answers_stale;
        self.answers_failed += other.answers_failed;
        self.hosts_crashed_total += other.hosts_crashed_total;
        self.hosts_restarted_total += other.hosts_restarted_total;
        self.outages_blocked_total += other.outages_blocked_total;
        self.resyncs_total += other.resyncs_total;
        self.quarantine_strikes_total += other.quarantine_strikes_total;
        self.quarantine_skips_total += other.quarantine_skips_total;
        self.sessions_registered_total += other.sessions_registered_total;
        self.sessions_closed_total += other.sessions_closed_total;
        self.queries_admitted_total += other.queries_admitted_total;
        self.queries_rejected_total += other.queries_rejected_total;
        self.epochs_committed_total += other.epochs_committed_total;
        self.drains_total += other.drains_total;
        self.tuning_hist.merge(&other.tuning_hist);
        self.latency_hist.merge(&other.latency_hist);
        self.tuning = self.tuning_hist.percentiles();
        self.latency = self.latency_hist.percentiles();
        self.phases.merge(other.phases);
    }
}

/// Aggregates trace events into counters and log-scaled histograms.
///
/// Feed it to a run, then call [`MetricsRecorder::snapshot`] for the
/// percentile view. Tuning and latency are recorded per query at its
/// terminal [`TraceEvent::QueryResolved`] event (peer-resolved queries
/// contribute zeros — they never touched the channel).
#[derive(Clone, Debug, Default)]
pub struct MetricsRecorder {
    queries: Counter,
    peers_verified: Counter,
    peers_approximate: Counter,
    broadcast: Counter,
    probes: Counter,
    index_buckets: Counter,
    data_buckets: Counter,
    frames_lost: Counter,
    peers_contacted: Counter,
    replies_dropped: Counter,
    cache_hits: Counter,
    cache_rejected: Counter,
    answers_exact: Counter,
    answers_degraded: Counter,
    answers_stale: Counter,
    answers_failed: Counter,
    hosts_crashed: Counter,
    hosts_restarted: Counter,
    outages_blocked: Counter,
    resyncs: Counter,
    quarantine_strikes: Counter,
    quarantine_skips: Counter,
    sessions_registered: Counter,
    sessions_closed: Counter,
    queries_admitted: Counter,
    queries_rejected: Counter,
    epochs_committed: Counter,
    drains: Counter,
    tuning: Histogram,
    latency: Histogram,
}

impl MetricsRecorder {
    /// A recorder with all metrics at zero.
    pub fn new() -> MetricsRecorder {
        MetricsRecorder::default()
    }

    /// The current aggregate view.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries_total: self.queries.get(),
            resolved_peers_verified: self.peers_verified.get(),
            resolved_peers_approximate: self.peers_approximate.get(),
            resolved_broadcast: self.broadcast.get(),
            probes_total: self.probes.get(),
            index_buckets_total: self.index_buckets.get(),
            data_buckets_total: self.data_buckets.get(),
            frames_lost_total: self.frames_lost.get(),
            peers_contacted_total: self.peers_contacted.get(),
            peer_replies_dropped: self.replies_dropped.get(),
            cache_hits_total: self.cache_hits.get(),
            cache_rejected_total: self.cache_rejected.get(),
            answers_exact: self.answers_exact.get(),
            answers_degraded: self.answers_degraded.get(),
            answers_stale: self.answers_stale.get(),
            answers_failed: self.answers_failed.get(),
            hosts_crashed_total: self.hosts_crashed.get(),
            hosts_restarted_total: self.hosts_restarted.get(),
            outages_blocked_total: self.outages_blocked.get(),
            resyncs_total: self.resyncs.get(),
            quarantine_strikes_total: self.quarantine_strikes.get(),
            quarantine_skips_total: self.quarantine_skips.get(),
            sessions_registered_total: self.sessions_registered.get(),
            sessions_closed_total: self.sessions_closed.get(),
            queries_admitted_total: self.queries_admitted.get(),
            queries_rejected_total: self.queries_rejected.get(),
            epochs_committed_total: self.epochs_committed.get(),
            drains_total: self.drains.get(),
            tuning: self.tuning.percentiles(),
            latency: self.latency.percentiles(),
            tuning_hist: self.tuning.clone(),
            latency_hist: self.latency.clone(),
            phases: PhaseTimes::default(),
        }
    }

    /// Folds another recorder's observations in (exact; see
    /// [`MetricsSnapshot::merge`]).
    pub fn merge(&mut self, other: &MetricsRecorder) {
        self.queries.merge(other.queries);
        self.peers_verified.merge(other.peers_verified);
        self.peers_approximate.merge(other.peers_approximate);
        self.broadcast.merge(other.broadcast);
        self.probes.merge(other.probes);
        self.index_buckets.merge(other.index_buckets);
        self.data_buckets.merge(other.data_buckets);
        self.frames_lost.merge(other.frames_lost);
        self.peers_contacted.merge(other.peers_contacted);
        self.replies_dropped.merge(other.replies_dropped);
        self.cache_hits.merge(other.cache_hits);
        self.cache_rejected.merge(other.cache_rejected);
        self.answers_exact.merge(other.answers_exact);
        self.answers_degraded.merge(other.answers_degraded);
        self.answers_stale.merge(other.answers_stale);
        self.answers_failed.merge(other.answers_failed);
        self.hosts_crashed.merge(other.hosts_crashed);
        self.hosts_restarted.merge(other.hosts_restarted);
        self.outages_blocked.merge(other.outages_blocked);
        self.resyncs.merge(other.resyncs);
        self.quarantine_strikes.merge(other.quarantine_strikes);
        self.quarantine_skips.merge(other.quarantine_skips);
        self.sessions_registered.merge(other.sessions_registered);
        self.sessions_closed.merge(other.sessions_closed);
        self.queries_admitted.merge(other.queries_admitted);
        self.queries_rejected.merge(other.queries_rejected);
        self.epochs_committed.merge(other.epochs_committed);
        self.drains.merge(other.drains);
        self.tuning.merge(&other.tuning);
        self.latency.merge(&other.latency);
    }
}

impl Recorder for MetricsRecorder {
    fn begin_query(&mut self, _id: u64, _tick: u64) {
        self.queries.incr();
    }

    fn record(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::ProbeStarted { .. } => self.probes.incr(),
            TraceEvent::IndexBucketTuned { count } => self.index_buckets.add(count as u64),
            TraceEvent::DataBucketTuned { .. } => self.data_buckets.incr(),
            TraceEvent::FrameLost { .. } => self.frames_lost.incr(),
            TraceEvent::PeerContacted { .. } => self.peers_contacted.incr(),
            TraceEvent::PeerReplyDropped { .. } => self.replies_dropped.incr(),
            TraceEvent::CacheHit { .. } => self.cache_hits.incr(),
            TraceEvent::CacheRejected { .. } => self.cache_rejected.incr(),
            TraceEvent::QueryResolved {
                by,
                tuning,
                latency,
            } => {
                match by {
                    ResolutionKind::PeersVerified => self.peers_verified.incr(),
                    ResolutionKind::PeersApproximate => self.peers_approximate.incr(),
                    ResolutionKind::Broadcast => self.broadcast.incr(),
                }
                self.tuning.record(tuning);
                self.latency.record(latency);
            }
            TraceEvent::QueryQuality { quality } => match quality {
                AnswerQuality::Exact => self.answers_exact.incr(),
                AnswerQuality::Degraded => self.answers_degraded.incr(),
                AnswerQuality::Stale => self.answers_stale.incr(),
                AnswerQuality::Failed => self.answers_failed.incr(),
            },
            TraceEvent::HostCrashed { .. } => self.hosts_crashed.incr(),
            TraceEvent::HostRestarted { .. } => self.hosts_restarted.incr(),
            TraceEvent::OutageBlocked { .. } => self.outages_blocked.incr(),
            TraceEvent::Resynced { .. } => self.resyncs.incr(),
            TraceEvent::PeerQuarantined { .. } => self.quarantine_strikes.incr(),
            TraceEvent::QuarantinedPeerSkipped { .. } => self.quarantine_skips.incr(),
            TraceEvent::SessionRegistered { .. } => self.sessions_registered.incr(),
            TraceEvent::SessionClosed { .. } => self.sessions_closed.incr(),
            TraceEvent::QueryAdmitted { .. } => self.queries_admitted.incr(),
            TraceEvent::QueryRejected { .. } => self.queries_rejected.incr(),
            TraceEvent::EpochCommitted { .. } => self.epochs_committed.incr(),
            TraceEvent::ServiceDrained { .. } => self.drains.incr(),
        }
    }
}

/// Writes a deterministic per-query event log: one JSON object per
/// line, fields in fixed order, integers and fixed strings only — two
/// same-seed runs produce byte-identical output.
///
/// The log accumulates in memory; drain it with
/// [`JsonlTraceRecorder::into_string`] (or borrow via
/// [`JsonlTraceRecorder::as_str`]).
#[derive(Clone, Debug, Default)]
pub struct JsonlTraceRecorder {
    buf: String,
    query: u64,
}

impl JsonlTraceRecorder {
    /// An empty trace.
    pub fn new() -> JsonlTraceRecorder {
        JsonlTraceRecorder::default()
    }

    /// The log so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Lines written so far.
    pub fn lines(&self) -> usize {
        self.buf.lines().count()
    }

    /// Consumes the recorder, returning the complete log.
    pub fn into_string(self) -> String {
        self.buf
    }
}

impl Recorder for JsonlTraceRecorder {
    fn begin_query(&mut self, id: u64, tick: u64) {
        self.query = id;
        let _ = writeln!(
            self.buf,
            "{{\"query\":{id},\"event\":\"begin_query\",\"tick\":{tick}}}"
        );
    }

    fn record(&mut self, event: TraceEvent) {
        let q = self.query;
        let name = event.name();
        let _ = match event {
            TraceEvent::ProbeStarted { tick } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"tick\":{tick}}}"
            ),
            TraceEvent::IndexBucketTuned { count } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"count\":{count}}}"
            ),
            TraceEvent::DataBucketTuned { bucket, tick } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"bucket\":{bucket},\"tick\":{tick}}}"
            ),
            TraceEvent::FrameLost { bucket, retry } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"bucket\":{bucket},\"retry\":{retry}}}"
            ),
            TraceEvent::PeerContacted { peer } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"peer\":{peer}}}"
            ),
            TraceEvent::PeerReplyDropped { peer } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"peer\":{peer}}}"
            ),
            TraceEvent::CacheHit { regions } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"regions\":{regions}}}"
            ),
            TraceEvent::CacheRejected { reason } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"reason\":\"{}\"}}",
                reason.as_str()
            ),
            TraceEvent::QueryResolved {
                by,
                tuning,
                latency,
            } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"by\":\"{}\",\"tuning\":{tuning},\"latency\":{latency}}}",
                by.as_str()
            ),
            TraceEvent::QueryQuality { quality } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"quality\":\"{}\"}}",
                quality.as_str()
            ),
            TraceEvent::HostCrashed { host, epoch } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"host\":{host},\"epoch\":{epoch}}}"
            ),
            TraceEvent::HostRestarted { host, epoch } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"host\":{host},\"epoch\":{epoch}}}"
            ),
            TraceEvent::OutageBlocked { tick } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"tick\":{tick}}}"
            ),
            TraceEvent::Resynced { host } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"host\":{host}}}"
            ),
            TraceEvent::PeerQuarantined { peer, until_epoch } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"peer\":{peer},\"until_epoch\":{until_epoch}}}"
            ),
            TraceEvent::QuarantinedPeerSkipped { peer } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"peer\":{peer}}}"
            ),
            TraceEvent::SessionRegistered { host } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"host\":{host}}}"
            ),
            TraceEvent::SessionClosed { host } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"host\":{host}}}"
            ),
            TraceEvent::QueryAdmitted { depth } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"depth\":{depth}}}"
            ),
            TraceEvent::QueryRejected { retry_after_ticks } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"retry_after_ticks\":{retry_after_ticks}}}"
            ),
            TraceEvent::EpochCommitted { epoch, batch } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"epoch\":{epoch},\"batch\":{batch}}}"
            ),
            TraceEvent::ServiceDrained { pending } => writeln!(
                self.buf,
                "{{\"query\":{q},\"event\":\"{name}\",\"pending\":{pending}}}"
            ),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CacheRejectReason;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::ProbeStarted { tick: 120 },
            TraceEvent::IndexBucketTuned { count: 3 },
            TraceEvent::FrameLost {
                bucket: 17,
                retry: 0,
            },
            TraceEvent::DataBucketTuned {
                bucket: 17,
                tick: 140,
            },
            TraceEvent::PeerContacted { peer: 5 },
            TraceEvent::PeerReplyDropped { peer: 5 },
            TraceEvent::CacheHit { regions: 2 },
            TraceEvent::CacheRejected {
                reason: CacheRejectReason::NoCapacity,
            },
            TraceEvent::QueryResolved {
                by: ResolutionKind::Broadcast,
                tuning: 12,
                latency: 88,
            },
        ]
    }

    #[test]
    fn metrics_recorder_aggregates_all_events() {
        let mut m = MetricsRecorder::new();
        m.begin_query(0, 120);
        for e in sample_events() {
            m.record(e);
        }
        m.begin_query(1, 200);
        m.record(TraceEvent::QueryResolved {
            by: ResolutionKind::PeersVerified,
            tuning: 0,
            latency: 0,
        });
        let s = m.snapshot();
        assert_eq!(s.queries_total, 2);
        assert_eq!(s.resolved_broadcast, 1);
        assert_eq!(s.resolved_peers_verified, 1);
        assert_eq!(s.probes_total, 1);
        assert_eq!(s.index_buckets_total, 3);
        assert_eq!(s.data_buckets_total, 1);
        assert_eq!(s.frames_lost_total, 1);
        assert_eq!(s.peers_contacted_total, 1);
        assert_eq!(s.peer_replies_dropped, 1);
        assert_eq!(s.cache_hits_total, 1);
        assert_eq!(s.cache_rejected_total, 1);
        assert_eq!(s.tuning.count, 2);
        assert_eq!(s.latency.max, 88);
    }

    #[test]
    fn jsonl_lines_are_exact_and_repeatable() {
        let render = || {
            let mut t = JsonlTraceRecorder::new();
            t.begin_query(7, 120);
            for e in sample_events() {
                t.record(e);
            }
            t.into_string()
        };
        let a = render();
        assert_eq!(a, render());
        assert_eq!(a.lines().count(), 10);
        assert!(a.starts_with("{\"query\":7,\"event\":\"begin_query\",\"tick\":120}\n"));
        assert!(a.contains(
            "{\"query\":7,\"event\":\"query_resolved\",\"by\":\"broadcast\",\"tuning\":12,\"latency\":88}"
        ));
        for line in a.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn snapshot_merge_matches_single_recorder() {
        // Two shard recorders vs one recorder observing everything.
        let mut a = MetricsRecorder::new();
        let mut b = MetricsRecorder::new();
        let mut whole = MetricsRecorder::new();
        a.begin_query(0, 120);
        whole.begin_query(0, 120);
        for e in sample_events() {
            a.record(e);
            whole.record(e);
        }
        b.begin_query(1, 200);
        whole.begin_query(1, 200);
        let done = TraceEvent::QueryResolved {
            by: ResolutionKind::PeersApproximate,
            tuning: 5,
            latency: 7,
        };
        b.record(done);
        whole.record(done);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, whole.snapshot());

        // Recorder-level merge agrees with snapshot-level merge.
        let mut rec = a.clone();
        rec.merge(&b);
        assert_eq!(rec.snapshot(), whole.snapshot());

        // Merging an empty snapshot is the identity.
        let before = merged.clone();
        merged.merge(&MetricsRecorder::new().snapshot());
        assert_eq!(merged, before);
    }

    #[test]
    fn chaos_events_aggregate_and_render() {
        let chaos = [
            TraceEvent::HostCrashed { host: 3, epoch: 7 },
            TraceEvent::HostRestarted { host: 3, epoch: 9 },
            TraceEvent::OutageBlocked { tick: 4200 },
            TraceEvent::QueryQuality {
                quality: AnswerQuality::Stale,
            },
            TraceEvent::QueryQuality {
                quality: AnswerQuality::Failed,
            },
            TraceEvent::QueryQuality {
                quality: AnswerQuality::Exact,
            },
            TraceEvent::Resynced { host: 3 },
            TraceEvent::PeerQuarantined {
                peer: 5,
                until_epoch: 12,
            },
            TraceEvent::QuarantinedPeerSkipped { peer: 5 },
        ];
        let mut m = MetricsRecorder::new();
        m.begin_query(0, 0);
        for e in chaos {
            m.record(e);
        }
        let s = m.snapshot();
        assert_eq!(s.hosts_crashed_total, 1);
        assert_eq!(s.hosts_restarted_total, 1);
        assert_eq!(s.outages_blocked_total, 1);
        assert_eq!(s.answers_exact, 1);
        assert_eq!(s.answers_stale, 1);
        assert_eq!(s.answers_failed, 1);
        assert_eq!(s.answers_degraded, 0);
        assert_eq!(s.resyncs_total, 1);
        assert_eq!(s.quarantine_strikes_total, 1);
        assert_eq!(s.quarantine_skips_total, 1);

        let mut t = JsonlTraceRecorder::new();
        t.begin_query(1, 0);
        for e in chaos {
            t.record(e);
        }
        let log = t.into_string();
        assert!(log.contains(
            "{\"query\":1,\"event\":\"peer_quarantined\",\"peer\":5,\"until_epoch\":12}"
        ));
        assert!(log.contains("{\"query\":1,\"event\":\"query_quality\",\"quality\":\"stale\"}"));
        assert!(log.contains("{\"query\":1,\"event\":\"host_crashed\",\"host\":3,\"epoch\":7}"));
    }

    #[test]
    fn service_events_aggregate_and_render() {
        let service = [
            TraceEvent::SessionRegistered { host: 2 },
            TraceEvent::SessionRegistered { host: 9 },
            TraceEvent::SessionClosed { host: 2 },
            TraceEvent::QueryAdmitted { depth: 4 },
            TraceEvent::QueryRejected {
                retry_after_ticks: 350,
            },
            TraceEvent::EpochCommitted { epoch: 12, batch: 7 },
            TraceEvent::ServiceDrained { pending: 3 },
        ];
        let mut m = MetricsRecorder::new();
        m.begin_query(0, 0);
        for e in service {
            m.record(e);
        }
        let s = m.snapshot();
        assert_eq!(s.sessions_registered_total, 2);
        assert_eq!(s.sessions_closed_total, 1);
        assert_eq!(s.queries_admitted_total, 1);
        assert_eq!(s.queries_rejected_total, 1);
        assert_eq!(s.epochs_committed_total, 1);
        assert_eq!(s.drains_total, 1);

        let mut t = JsonlTraceRecorder::new();
        t.begin_query(4, 0);
        for e in service {
            t.record(e);
        }
        let log = t.into_string();
        assert!(log.contains("{\"query\":4,\"event\":\"session_registered\",\"host\":9}"));
        assert!(log
            .contains("{\"query\":4,\"event\":\"query_rejected\",\"retry_after_ticks\":350}"));
        assert!(log.contains("{\"query\":4,\"event\":\"epoch_committed\",\"epoch\":12,\"batch\":7}"));
        assert!(log.contains("{\"query\":4,\"event\":\"service_drained\",\"pending\":3}"));
    }

    #[test]
    fn noop_recorder_is_inert() {
        let mut n = NoopRecorder;
        n.begin_query(0, 0);
        for e in sample_events() {
            n.record(e);
        }
        assert_eq!(n, NoopRecorder);
    }
}
