//! Criterion micro-benchmarks for the hot algorithmic kernels.
//!
//! `cargo bench --bench micro` — each group isolates one substrate:
//! Hilbert codec and window decomposition, rectangle-union geometry
//! (the MVR operations NNV leans on), NNV itself at growing peer counts,
//! R-tree vs linear scan, and the on-air client protocol.

use airshare_broadcast::{AirIndex, OnAirClient, Poi, Schedule};
use airshare_core::{nnv, MergedRegion};
use airshare_geom::disk::{disk_region_area, Disk};
use airshare_geom::{Point, Rect, RectUnion};
use airshare_hilbert::{CellRect, Grid, HilbertCurve};
use airshare_rtree::{LinearScan, RTree};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn scatter(n: usize, side: f64, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect()
}

fn bench_hilbert(c: &mut Criterion) {
    let curve = HilbertCurve::new(16);
    let mut g = c.benchmark_group("hilbert");
    g.bench_function("encode_order16", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2654435761);
            black_box(curve.encode(i % curve.side(), (i >> 8) % curve.side()))
        })
    });
    g.bench_function("decode_order16", |b| {
        let mut d = 0u64;
        b.iter(|| {
            d = d.wrapping_add(0x9E3779B97F4A7C15) % curve.cell_count();
            black_box(curve.decode(d))
        })
    });
    for span in [8u32, 64, 512] {
        g.bench_with_input(
            BenchmarkId::new("intervals_for_rect", span),
            &span,
            |b, &span| {
                let rect = CellRect::new(100, 200, 100 + span, 200 + span);
                b.iter(|| black_box(curve.intervals_for_rect(&rect)))
            },
        );
    }
    // The table-driven codec against the retained bitwise reference, at
    // the orders the simulation actually runs (6–8) and above.
    for order in [8u32, 10, 12] {
        let c = HilbertCurve::new(order);
        g.bench_with_input(BenchmarkId::new("encode", order), &order, |b, _| {
            let mut i = 0u32;
            b.iter(|| {
                i = i.wrapping_add(2654435761);
                black_box(c.encode(i % c.side(), (i >> 8) % c.side()))
            })
        });
        g.bench_with_input(BenchmarkId::new("encode_reference", order), &order, |b, _| {
            let mut i = 0u32;
            b.iter(|| {
                i = i.wrapping_add(2654435761);
                black_box(c.encode_reference(i % c.side(), (i >> 8) % c.side()))
            })
        });
        g.bench_with_input(BenchmarkId::new("decode", order), &order, |b, _| {
            let mut d = 0u64;
            b.iter(|| {
                d = d.wrapping_add(0x9E3779B97F4A7C15) % c.cell_count();
                black_box(c.decode(d))
            })
        });
        g.bench_with_input(BenchmarkId::new("decode_reference", order), &order, |b, _| {
            let mut d = 0u64;
            b.iter(|| {
                d = d.wrapping_add(0x9E3779B97F4A7C15) % c.cell_count();
                black_box(c.decode_reference(d))
            })
        });
        // Allocation-free decomposition into a reused buffer: a window
        // covering ~1/16 of the grid side at each order.
        g.bench_with_input(
            BenchmarkId::new("intervals_for_rect_into", order),
            &order,
            |b, _| {
                let span = (c.side() / 16).max(2) - 1;
                let rect = CellRect::new(1, 2, 1 + span, 2 + span);
                let mut out = Vec::new();
                b.iter(|| {
                    c.intervals_for_rect_into(&rect, &mut out);
                    black_box(out.len())
                })
            },
        );
    }
    g.finish();
}

fn bench_region_union(c: &mut Criterion) {
    let mut g = c.benchmark_group("region_union");
    for n in [8usize, 32, 128] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let rects: Vec<Rect> = (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0..18.0);
                let y = rng.gen_range(0.0..18.0);
                Rect::from_coords(x, y, x + rng.gen_range(0.3..2.0), y + rng.gen_range(0.3..2.0))
            })
            .collect();
        let union = RectUnion::from_rects(rects.clone());
        let q = Point::new(10.0, 10.0);
        g.bench_with_input(BenchmarkId::new("boundary_distance", n), &n, |b, _| {
            b.iter(|| black_box(union.distance_to_boundary(q)))
        });
        g.bench_with_input(BenchmarkId::new("area", n), &n, |b, _| {
            b.iter(|| black_box(union.area()))
        });
        g.bench_with_input(BenchmarkId::new("rect_difference", n), &n, |b, _| {
            let w = Rect::from_coords(8.0, 8.0, 12.0, 12.0);
            b.iter(|| black_box(union.rect_difference(&w)))
        });
        g.bench_with_input(BenchmarkId::new("disk_area", n), &n, |b, _| {
            let d = Disk::new(q, 3.0);
            b.iter(|| black_box(disk_region_area(d, &union)))
        });
    }
    g.finish();
}

fn bench_nnv(c: &mut Criterion) {
    let mut g = c.benchmark_group("nnv");
    for peers in [4usize, 12, 32] {
        let mut rng = SmallRng::seed_from_u64(7);
        let pois = scatter(500, 20.0, 3);
        let mut pairs: Vec<(Rect, Vec<Poi>)> = Vec::new();
        let mut id = 0u32;
        for _ in 0..peers {
            for _ in 0..6 {
                let cx = rng.gen_range(8.0..12.0);
                let cy = rng.gen_range(8.0..12.0);
                let vr = Rect::centered_square(Point::new(cx, cy), rng.gen_range(0.3..1.2));
                let ps: Vec<Poi> = pois
                    .iter()
                    .filter(|p| vr.contains(**p))
                    .map(|p| {
                        id += 1;
                        Poi::new(id, *p)
                    })
                    .collect();
                pairs.push((vr, ps));
            }
        }
        let mvr = MergedRegion::from_regions(pairs);
        let q = Point::new(10.0, 10.0);
        g.bench_with_input(BenchmarkId::new("k5", peers), &peers, |b, _| {
            b.iter(|| black_box(nnv(q, 5, &mvr, 1.25)))
        });
    }
    g.finish();
}

fn bench_rtree(c: &mut Criterion) {
    let pts = scatter(10_000, 100.0, 9);
    let items: Vec<(Point, u32)> = pts.iter().enumerate().map(|(i, p)| (*p, i as u32)).collect();
    let tree = RTree::bulk_load(items.clone());
    let scan = LinearScan::from_items(items);
    let q = Point::new(50.0, 50.0);
    let w = Rect::from_coords(40.0, 40.0, 45.0, 45.0);

    let mut g = c.benchmark_group("rtree_vs_scan");
    g.bench_function("rtree_knn10", |b| b.iter(|| black_box(tree.knn(q, 10))));
    g.bench_function("scan_knn10", |b| b.iter(|| black_box(scan.knn(q, 10))));
    g.bench_function("rtree_window", |b| b.iter(|| black_box(tree.window(&w))));
    g.bench_function("scan_window", |b| b.iter(|| black_box(scan.window(&w))));
    g.finish();
}

fn bench_onair(c: &mut Criterion) {
    let world = Rect::from_coords(0.0, 0.0, 20.0, 20.0);
    let pois: Vec<Poi> = scatter(2750, 20.0, 4)
        .into_iter()
        .enumerate()
        .map(|(i, p)| Poi::new(i as u32, p))
        .collect();
    let index = AirIndex::try_build(pois, Grid::new(world, 8), 10).unwrap();
    let schedule = Schedule::new(index.data_buckets(), index.index_buckets(), 4);
    let client = OnAirClient::new(&index, &schedule);
    let q = Point::new(10.0, 10.0);

    let mut g = c.benchmark_group("onair");
    g.bench_function("knn5", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 37;
            black_box(client.knn(t, q, 5))
        })
    });
    g.bench_function("knn5_filtered", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 37;
            black_box(client.knn_filtered(t, q, 5, &[], Some(0.3), Some(1.0)))
        })
    });
    g.bench_function("window_1pct", |b| {
        let half = 0.5 * (0.01f64.sqrt() * 20.0); // 1% of the space
        let w = Rect::centered_square(q, half);
        let mut t = 0u64;
        b.iter(|| {
            t += 37;
            black_box(client.window(t, &w))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_hilbert, bench_region_union, bench_nnv, bench_rtree, bench_onair
}
criterion_main!(benches);
