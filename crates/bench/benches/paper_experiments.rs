//! `cargo bench --bench paper_experiments` — regenerates every table and
//! figure of the paper's evaluation section in one pass.
//!
//! Sizing comes from the environment (see `airshare_bench::ExpScale`):
//! default is the laptop-scale configuration; `AIRSHARE_QUICK=1` runs a
//! fast smoke pass; `AIRSHARE_FULL=1` runs the paper's full scale.
//!
//! This is a `harness = false` bench target: the output is the set of
//! series the paper plots, not criterion statistics (those live in the
//! `micro` bench).

use std::time::Instant;

fn main() {
    let scale = airshare_bench::ExpScale::from_env();
    println!("airshare — paper experiment suite");
    println!(
        "scale: area ×{}, kNN warm/measure {}/{} min, window {}/{} min",
        scale.area, scale.knn_warm, scale.knn_measure, scale.win_warm, scale.win_measure
    );
    let t0 = Instant::now();

    airshare_bench::table3(&scale);
    airshare_bench::fig10(&scale);
    airshare_bench::fig11(&scale);
    airshare_bench::fig12(&scale);
    airshare_bench::fig13(&scale);
    airshare_bench::fig14(&scale);
    airshare_bench::fig15(&scale);
    airshare_bench::latency(&scale);
    airshare_bench::m_sweep();
    airshare_bench::probability_calibration(&scale);
    airshare_bench::ablations(&scale);
    airshare_bench::faults(&scale);

    println!(
        "\nall experiments done in {:.1} s",
        t0.elapsed().as_secs_f64()
    );
}
