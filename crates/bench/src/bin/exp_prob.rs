//! Lemma 3.2 validation: predicted correctness vs empirical accuracy.
fn main() {
    let scale = airshare_bench::ExpScale::from_env();
    airshare_bench::probability_calibration(&scale);
}
