//! Regenerates Figure 15 of the paper (see airshare_bench::fig15).
fn main() {
    let scale = airshare_bench::ExpScale::from_env();
    airshare_bench::fig15(&scale);
}
