//! Prints the Table 3 parameter sets (paper values + scaled values).
fn main() {
    let scale = airshare_bench::ExpScale::from_env();
    airshare_bench::table3(&scale);
}
