//! Service load sweep: offered load vs what `airshare-serve` accepts,
//! rejects, and how fast it answers.
//!
//! Drives the scaled-time scheduler (no lockstep — real wall-clock
//! pacing, live admission stamping) with an open-loop client submitting
//! kNN queries at a target rate, from gentle load up through deliberate
//! overload of the bounded admission queue. Reports, per offered rate:
//! accepted qps, the backpressure rejection rate, and client-observed
//! wall-clock latency p50/p99 (submit → answer).
//!
//! Set `AIRSHARE_QUICK=1` for the CI-sized sweep. Writes
//! `BENCH_serve.json` in the working directory.

use airshare_geom::Point;
use airshare_serve::{QueryRequest, ServeConfig, ServeError, Service};
use airshare_sim::{params, QueryKind, QuerySpec, SimConfig};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// One simulated minute per 10 ms of wall time: epochs (0.25 sim-min)
/// commit every 2.5 ms, so batched admission stays visibly batched
/// while a multi-second sweep covers thousands of barriers.
const SPEEDUP: f64 = 6_000.0;

fn world_cfg(quick: bool) -> SimConfig {
    let scale = if quick { 0.005 } else { 0.02 };
    let mut p = params::la_city().scaled(scale);
    p.cache_size = 30;
    let mut cfg = SimConfig::paper_defaults(p, QueryKind::Knn, 42);
    // Live service: no warm-up (every answer counts) and no oracle
    // validation on the hot path.
    cfg.warmup_min = 0.0;
    cfg.validate = false;
    cfg.hilbert_order = 6;
    cfg
}

struct Cell {
    offered_qps: f64,
    duration_s: f64,
    submitted: u64,
    accepted: u64,
    rejected: u64,
    answered: u64,
    p50_ms: f64,
    p99_ms: f64,
}

impl Cell {
    fn accepted_qps(&self) -> f64 {
        self.accepted as f64 / self.duration_s
    }
    fn rejection_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.rejected as f64 / self.submitted as f64
        }
    }
    fn json(&self) -> String {
        format!(
            "    {{\"offered_qps\": {:.0}, \"duration_s\": {:.2}, \"submitted\": {}, \
             \"accepted\": {}, \"rejected\": {}, \"answered\": {}, \"accepted_qps\": {:.0}, \
             \"rejection_rate\": {:.4}, \"latency_p50_ms\": {:.3}, \"latency_p99_ms\": {:.3}}}",
            self.offered_qps,
            self.duration_s,
            self.submitted,
            self.accepted,
            self.rejected,
            self.answered,
            self.accepted_qps(),
            self.rejection_rate(),
            self.p50_ms,
            self.p99_ms,
        )
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

/// One sweep point: a fresh service, an open-loop submission window at
/// `offered_qps`, then drain and measure.
fn run_point(cfg: &SimConfig, offered_qps: f64, duration: Duration) -> Cell {
    let hosts = cfg.params.mh_number.min(64);
    let side = cfg.params.world_mi;
    let mut sc = ServeConfig::scaled(cfg.clone(), SPEEDUP);
    sc.queue_capacity = 256;
    sc.admit_per_tick = 2;
    sc.threads = 4;
    let epoch_wall = Duration::from_secs_f64(cfg.epoch_min / SPEEDUP * 60.0);

    let service = Service::start(sc).expect("bench config is valid");
    let handle = service.handle();
    let pos = |h: usize| {
        let g = (hosts as f64).sqrt().ceil() as usize;
        Point::new(
            (h % g) as f64 / g as f64 * side * 0.9 + side * 0.05,
            (h / g) as f64 / g as f64 * side * 0.9 + side * 0.05,
        )
    };
    for h in 0..hosts {
        handle.register(h, None).expect("register");
        handle.update_position(h, pos(h), None).expect("position");
    }
    // Let a few barriers pass so the sessions come online.
    std::thread::sleep(epoch_wall * 4);

    // Collector: stamps answer arrival as replies land, so latency is
    // submit → answer, not submit → eventual poll. Replies arrive in
    // admission order, so a single FIFO collector keeps up.
    let (feed_tx, feed_rx) = mpsc::channel::<(Instant, mpsc::Receiver<_>)>();
    let collector = std::thread::spawn(move || {
        let mut latencies_ms: Vec<f64> = Vec::new();
        while let Ok((t0, rx)) = feed_rx.recv() {
            if rx.recv_timeout(Duration::from_secs(30)).is_ok() {
                latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            }
        }
        latencies_ms
    });

    let (mut submitted, mut accepted, mut rejected) = (0u64, 0u64, 0u64);
    let start = Instant::now();
    let mut i = 0u64;
    while start.elapsed() < duration {
        let due = start + Duration::from_secs_f64(i as f64 / offered_qps);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let h = (i as usize) % hosts;
        let req = QueryRequest {
            host: h,
            pos: pos(h),
            heading: None,
            spec: QuerySpec::Knn {
                k: cfg.params.knn_k,
            },
            tag: None,
        };
        submitted += 1;
        match handle.submit(req) {
            Ok(rx) => {
                accepted += 1;
                feed_tx.send((Instant::now(), rx)).expect("collector alive");
            }
            Err(ServeError::QueueFull { .. }) => rejected += 1,
            Err(e) => panic!("live submit failed: {e}"),
        }
        i += 1;
    }
    let duration_s = start.elapsed().as_secs_f64();
    drop(feed_tx);

    let report = service.drain();
    let mut latencies = collector.join().expect("collector thread");
    latencies.sort_by(f64::total_cmp);
    assert_eq!(report.accepted, accepted, "service lost track of admissions");

    Cell {
        offered_qps,
        duration_s,
        submitted,
        accepted,
        rejected,
        answered: latencies.len() as u64,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
    }
}

fn main() {
    let quick = std::env::var_os("AIRSHARE_QUICK").is_some();
    let mode = if quick { "quick" } else { "full" };
    let cfg = world_cfg(quick);
    let duration = Duration::from_secs_f64(if quick { 0.75 } else { 3.0 });
    // The top rates deliberately exceed what a 256-deep queue admitting
    // 2/tick can absorb, to measure backpressure under overload.
    let rates: &[f64] = if quick {
        &[500.0, 8_000.0, 128_000.0]
    } else {
        &[500.0, 2_000.0, 8_000.0, 32_000.0, 128_000.0]
    };

    println!("\n## Service load sweep — mode: {mode} (speedup {SPEEDUP}x, scaled pacing)");
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "offered_qps", "accepted", "rejected", "rej_rate", "accepted_qps", "p50_ms", "p99_ms"
    );
    let mut cells = Vec::new();
    for &qps in rates {
        let cell = run_point(&cfg, qps, duration);
        println!(
            "{:>12.0} {:>10} {:>10} {:>10.4} {:>12.0} {:>10.3} {:>10.3}",
            cell.offered_qps,
            cell.accepted,
            cell.rejected,
            cell.rejection_rate(),
            cell.accepted_qps(),
            cell.p50_ms,
            cell.p99_ms
        );
        assert_eq!(
            cell.answered, cell.accepted,
            "drain must answer every admitted query"
        );
        cells.push(cell);
    }
    // Overload sanity: the top offered rate must actually trip
    // backpressure, or the sweep measured nothing.
    assert!(
        cells.last().map(Cell::rejection_rate).unwrap_or(0.0) > 0.0,
        "overload point produced no rejections — raise the top rate"
    );

    let json = format!(
        "{{\n  \"meta\": {{\n    \"mode\": \"{mode}\",\n    \"speedup\": {SPEEDUP},\n    \
         \"workload\": \"la_city kNN, seed 42, open-loop offered load, queue=256, admit_per_tick=2\",\n    \
         \"note\": \"scaled-time service (no lockstep); latency is client-observed wall ms from \
         submit to answer; rejections are bounded-queue backpressure under overload; drain answers \
         every admitted query (asserted)\"\n  }},\n  \"sweep\": [\n{}\n  ]\n}}\n",
        cells.iter().map(Cell::json).collect::<Vec<_>>().join(",\n")
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
