//! (1, m) air-index replication sweep (Figure 2 behaviour).
fn main() {
    airshare_bench::m_sweep();
}
