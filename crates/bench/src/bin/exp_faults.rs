//! Robustness sweep: access cost and degradation vs channel loss rate.
fn main() {
    let scale = airshare_bench::ExpScale::from_env();
    airshare_bench::faults(&scale);
}
