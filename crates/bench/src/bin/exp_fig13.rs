//! Regenerates Figure 13 of the paper (see airshare_bench::fig13).
fn main() {
    let scale = airshare_bench::ExpScale::from_env();
    airshare_bench::fig13(&scale);
}
