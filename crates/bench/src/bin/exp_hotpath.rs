//! Hot-path before/after benchmark: the evidence behind the table-driven
//! Hilbert codec, the allocation-free decomposition/bucket-mapping path,
//! and the end-to-end effect on simulation throughput.
//!
//! The "before" side of the micro benchmarks is measured **in this
//! binary** against the retained reference implementations
//! (`encode_reference`, `decode_reference`, `intervals_for_rect_reference`
//! — the pre-optimization bitwise/recursive code, kept as correctness
//! oracles), so codec and decomposition speedups are genuine same-run,
//! same-machine comparisons. The end-to-end "before" numbers cannot be
//! re-measured here (the old query path no longer exists), so they are
//! the committed anchors captured at commit 5566f57 — the last commit
//! before the optimization pass — on the reference machine that produced
//! the committed `BENCH_hotpath.json`.
//!
//! Set `AIRSHARE_QUICK=1` for a CI-sized smoke run: same JSON shape,
//! drastically fewer iterations (throughput numbers are then only
//! sanity-scale, as `meta.mode` records).

use airshare_broadcast::{AirIndex, Poi, QueryScratch};
use airshare_exec::ExecPool;
use airshare_geom::{Point, Rect};
use airshare_hilbert::{CellRect, Grid, HilbertCurve};
use airshare_sim::{params, QueryKind, SimConfig, Simulation};
use std::hint::black_box;
use std::time::Instant;

/// End-to-end throughput anchors captured at commit 5566f57 (pre-
/// optimization), same config and machine as the committed baseline:
/// `run_parallel` on a 4-thread pool, LA-city scaled 0.01, order-8 index.
const E2E_BEFORE_KNN_QPS: f64 = 4189.0;
const E2E_BEFORE_WINDOW_QPS: f64 = 9933.0;

struct Micro {
    name: &'static str,
    reference_ns: f64,
    optimized_ns: f64,
}

impl Micro {
    fn speedup(&self) -> f64 {
        self.reference_ns / self.optimized_ns
    }
    fn json(&self) -> String {
        format!(
            "    \"{}\": {{\"reference_ns\": {:.2}, \"optimized_ns\": {:.2}, \"speedup\": {:.2}}}",
            self.name,
            self.reference_ns,
            self.optimized_ns,
            self.speedup()
        )
    }
}

fn time_per_iter(iters: u64, mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let quick = std::env::var_os("AIRSHARE_QUICK").is_some();
    let mode = if quick { "quick" } else { "full" };
    let codec_iters: u64 = if quick { 200_000 } else { 4_000_000 };

    println!("\n## Hot-path before/after — mode: {mode}");
    let mut micros: Vec<Micro> = Vec::new();

    // --- Codec: bitwise reference loop vs table-driven LUT, order 16. ---
    let curve = HilbertCurve::new(16);
    let side = curve.side();
    let mut i = 0u32;
    let mut acc = 0u64;
    let reference_ns = time_per_iter(codec_iters, || {
        i = i.wrapping_add(2654435761);
        acc = acc.wrapping_add(curve.encode_reference(i % side, (i >> 8) % side));
    });
    black_box(acc);
    let mut i = 0u32;
    let mut acc = 0u64;
    let optimized_ns = time_per_iter(codec_iters, || {
        i = i.wrapping_add(2654435761);
        acc = acc.wrapping_add(curve.encode(i % side, (i >> 8) % side));
    });
    black_box(acc);
    micros.push(Micro {
        name: "encode_o16",
        reference_ns,
        optimized_ns,
    });

    let cells = curve.cell_count();
    let mut d = 0u64;
    let mut acc = 0u32;
    let reference_ns = time_per_iter(codec_iters, || {
        d = d.wrapping_add(0x9E3779B97F4A7C15) % cells;
        let (x, y) = curve.decode_reference(d);
        acc = acc.wrapping_add(x ^ y);
    });
    black_box(acc);
    let mut d = 0u64;
    let mut acc = 0u32;
    let optimized_ns = time_per_iter(codec_iters, || {
        d = d.wrapping_add(0x9E3779B97F4A7C15) % cells;
        let (x, y) = curve.decode(d);
        acc = acc.wrapping_add(x ^ y);
    });
    black_box(acc);
    micros.push(Micro {
        name: "decode_o16",
        reference_ns,
        optimized_ns,
    });

    // --- Decomposition: recursive + sort + merge reference vs the
    // iterative merge-on-the-fly loop into a reused buffer. ---
    for span in [8u32, 64, 512] {
        let rect = CellRect::new(100, 200, 100 + span, 200 + span);
        let iters = (if quick { 20_000 } else { 200_000 }) / span as u64;
        let reference_ns = time_per_iter(iters, || {
            black_box(curve.intervals_for_rect_reference(black_box(&rect)));
        });
        let mut out = Vec::new();
        let optimized_ns = time_per_iter(iters, || {
            curve.intervals_for_rect_into(black_box(&rect), &mut out);
            black_box(&out);
        });
        micros.push(Micro {
            name: match span {
                8 => "decompose_span8",
                64 => "decompose_span64",
                _ => "decompose_span512",
            },
            reference_ns,
            optimized_ns,
        });
    }

    // --- Bucket mapping: allocating API vs warm scratch, on an index
    // sized like the paper's LA-city world. ---
    let world = Rect::from_coords(0.0, 0.0, 20.0, 20.0);
    let pois: Vec<Poi> = {
        let mut state = 7u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 16) & 0xFFFF) as f64 / 3277.0
        };
        (0..2750)
            .map(|i| {
                let x = next();
                let y = next();
                Poi::new(i as u32, Point::new(x, y))
            })
            .collect()
    };
    let index = AirIndex::try_build(pois, Grid::new(world, 8), 10).unwrap();
    let q = Point::new(10.0, 10.0);
    let w = Rect::centered_square(q, 0.5 * (0.01f64.sqrt() * 20.0));
    let iters: u64 = if quick { 20_000 } else { 200_000 };
    let mut scratch = QueryScratch::new();
    let reference_ns = time_per_iter(iters, || {
        black_box(index.buckets_for_window(black_box(&w)));
    });
    let optimized_ns = time_per_iter(iters, || {
        index.buckets_for_window_scratch(black_box(&w), &mut scratch);
        black_box(scratch.buckets());
    });
    micros.push(Micro {
        name: "buckets_for_window",
        reference_ns,
        optimized_ns,
    });
    let reference_ns = time_per_iter(iters, || {
        black_box(index.buckets_for_knn(black_box(q), 1.0));
    });
    let optimized_ns = time_per_iter(iters, || {
        index.buckets_for_knn_scratch(black_box(q), 1.0, &mut scratch);
        black_box(scratch.buckets());
    });
    micros.push(Micro {
        name: "buckets_for_knn",
        reference_ns,
        optimized_ns,
    });

    println!(
        "{:>22} {:>14} {:>14} {:>9}",
        "micro", "reference(ns)", "optimized(ns)", "speedup"
    );
    for m in &micros {
        println!(
            "{:>22} {:>14.2} {:>14.2} {:>8.2}x",
            m.name,
            m.reference_ns,
            m.optimized_ns,
            m.speedup()
        );
    }

    // --- End to end: the full simulation, current code, against the
    // committed pre-optimization anchors. ---
    let scale = if quick { 0.005 } else { 0.01 };
    let mut p = params::la_city().scaled(scale);
    p.cache_size = 30;
    let mut cfg = SimConfig::paper_defaults(p, QueryKind::Knn, 7);
    cfg.warmup_min = 10.0;
    cfg.measure_min = if quick { 10.0 } else { 30.0 };
    cfg.validate = false;
    cfg.hilbert_order = 8;
    let pool = ExecPool::fixed(4);

    let mut e2e_entries: Vec<String> = Vec::new();
    println!(
        "{:>10} {:>9} {:>9} {:>11} {:>11}",
        "e2e", "queries", "wall(s)", "before_qps", "after_qps"
    );
    for (kind, name, before_qps) in [
        (QueryKind::Knn, "knn", E2E_BEFORE_KNN_QPS),
        (QueryKind::Window, "window", E2E_BEFORE_WINDOW_QPS),
    ] {
        cfg.query_kind = kind;
        let mut sim = Simulation::try_new(cfg.clone())
            .expect("experiment configs are valid by construction");
        let t = Instant::now();
        let r = sim.run_parallel(&pool);
        let wall_s = t.elapsed().as_secs_f64();
        let after_qps = r.queries.total as f64 / wall_s;
        println!(
            "{name:>10} {:>9} {wall_s:>9.3} {before_qps:>11.0} {after_qps:>11.0}",
            r.queries.total
        );
        e2e_entries.push(format!(
            "    \"{name}\": {{\"before_qps\": {before_qps:.0}, \"after_qps\": {after_qps:.0}, \
             \"queries\": {}, \"wall_s\": {wall_s:.3}}}",
            r.queries.total
        ));
    }

    let json = format!(
        "{{\n  \"meta\": {{\n    \"mode\": \"{mode}\",\n    \"baseline_commit\": \"5566f57\",\n    \
         \"note\": \"codec and decompose 'reference' columns are the retained pre-optimization \
         implementations, measured in the same run; buckets_for_* rows compare the allocating \
         wrapper against the warm-scratch path; e2e 'before_qps' anchors were captured at \
         baseline_commit on the machine that produced the committed file\"\n  }},\n  \"micro\": {{\n{}\n  }},\n  \
         \"end_to_end\": {{\n{}\n  }}\n}}\n",
        micros
            .iter()
            .map(Micro::json)
            .collect::<Vec<_>>()
            .join(",\n"),
        e2e_entries.join(",\n")
    );
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    println!("wrote BENCH_hotpath.json");
}
