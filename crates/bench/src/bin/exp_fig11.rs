//! Regenerates Figure 11 of the paper (see airshare_bench::fig11).
fn main() {
    let scale = airshare_bench::ExpScale::from_env();
    airshare_bench::fig11(&scale);
}
