//! Regenerates Figure 14 of the paper (see airshare_bench::fig14).
fn main() {
    let scale = airshare_bench::ExpScale::from_env();
    airshare_bench::fig14(&scale);
}
