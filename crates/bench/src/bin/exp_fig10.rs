//! Regenerates Figure 10 of the paper (see airshare_bench::fig10).
fn main() {
    let scale = airshare_bench::ExpScale::from_env();
    airshare_bench::fig10(&scale);
}
