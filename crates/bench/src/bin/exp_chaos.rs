//! Fleet-level chaos: host churn × base-station outages, with peer
//! quarantine active throughout.
//!
//! Runs the 3×3 (crash rate, outage fraction) grid from
//! [`airshare_bench::chaos`] and asserts the chaos oracle on every cell:
//! exact answers match ground truth, non-exact answers respect their
//! declared bound, and the zero-chaos cell serves every query `Exact`.
//! Per-quality answer counts land in `BENCH_chaos.json`.

fn main() {
    let scale = airshare_bench::ExpScale::from_env();
    let rows = airshare_bench::chaos(&scale);

    let mut entries = Vec::new();
    for r in &rows {
        assert_eq!(
            r.bound_violations, 0,
            "chaos oracle: a non-exact answer broke its bound at crash={} outage={}",
            r.crash_prob, r.outage_frac
        );
        assert_eq!(
            r.mismatches, 0,
            "chaos oracle: an exact answer was wrong at crash={} outage={}",
            r.crash_prob, r.outage_frac
        );
        if r.crash_prob == 0.0 && r.outage_frac == 0.0 {
            assert_eq!(r.stale, 0, "stale answers without an outage");
            assert_eq!(r.failed, 0, "failed answers without an outage");
            assert_eq!(r.crashes, 0, "crashes with churn disabled");
        }
        if r.outage_frac > 0.0 {
            assert!(
                r.stale + r.failed > 0,
                "outage fraction {} produced no degraded service",
                r.outage_frac
            );
            assert!(r.resyncs > 0, "nobody resynced after the outage");
        }
        if r.crash_prob > 0.0 {
            assert!(r.crashes > 0, "crash rate {} crashed nobody", r.crash_prob);
            assert!(r.restarts > 0, "crashes were never followed by restarts");
        }
        entries.push(format!(
            "  {{\"crash_prob\": {}, \"outage_frac\": {}, \
             \"exact\": {}, \"degraded\": {}, \"stale\": {}, \"failed\": {}, \
             \"mean_stale_age_min\": {:.4}, \"max_stale_age_min\": {:.4}, \
             \"crashes\": {}, \"restarts\": {}, \"resyncs\": {}, \
             \"quarantine_strikes\": {}, \"peers_quarantined\": {}, \
             \"bound_violations\": {}, \"mismatches\": {}}}",
            r.crash_prob,
            r.outage_frac,
            r.exact,
            r.degraded,
            r.stale,
            r.failed,
            r.mean_stale_age_min,
            r.max_stale_age_min,
            r.crashes,
            r.restarts,
            r.resyncs,
            r.quarantine_strikes,
            r.peers_quarantined,
            r.bound_violations,
            r.mismatches
        ));
    }
    println!("(all cells passed the chaos-oracle assertions)");

    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("wrote BENCH_chaos.json");
}
