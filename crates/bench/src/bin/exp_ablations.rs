//! Design-choice ablations (DESIGN.md §3).
fn main() {
    let scale = airshare_bench::ExpScale::from_env();
    airshare_bench::ablations(&scale);
}
