//! The access-latency headline: sharing vs the pure on-air baseline.
fn main() {
    let scale = airshare_bench::ExpScale::from_env();
    airshare_bench::latency(&scale);
}
