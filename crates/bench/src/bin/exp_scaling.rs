//! Parallel-runtime scaling: one fixed simulation at 1/2/4/8 threads.
//!
//! Every pool size must produce a report equal to the sequential
//! `Simulation::run()` — this binary asserts it, so the scaling sweep
//! doubles as an end-to-end determinism check. Wall-clock timings land
//! in `BENCH_scaling.json` (speedups are only meaningful on multi-core
//! machines; correctness is asserted everywhere).

use airshare_exec::ExecPool;
use airshare_sim::{params, QueryKind, Simulation};
use std::time::Instant;

fn main() {
    let scale = airshare_bench::ExpScale::from_env();
    let cfg = scale.config(params::synthetic_suburbia(), QueryKind::Knn, 42);

    println!("\n## Parallel scaling — Synthetic Suburbia kNN, fixed seed 42");
    println!("{:>10} {:>12} {:>9}", "threads", "wall(ms)", "speedup");

    let t0 = Instant::now();
    let reference = Simulation::try_new(cfg.clone())
        .expect("experiment configs are valid by construction")
        .run();
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("{:>10} {:>12.1} {:>9.2}", "seq", seq_ms, 1.0);

    let mut entries = vec![format!(
        "  {{\"mode\": \"sequential\", \"threads\": 1, \"wall_ms\": {seq_ms:.3}, \"speedup\": 1.0}}"
    )];
    for threads in [1usize, 2, 4, 8] {
        let pool = ExecPool::fixed(threads);
        let t = Instant::now();
        let report = Simulation::try_new(cfg.clone())
            .expect("experiment configs are valid by construction")
            .run_parallel(&pool);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            report, reference,
            "run_parallel with {threads} threads diverged from the sequential run"
        );
        let speedup = seq_ms / ms;
        println!("{threads:>10} {ms:>12.1} {speedup:>9.2}");
        entries.push(format!(
            "  {{\"mode\": \"parallel\", \"threads\": {threads}, \"wall_ms\": {ms:.3}, \"speedup\": {speedup:.3}}}"
        ));
    }
    println!("(all parallel reports verified equal to the sequential report)");

    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    std::fs::write("BENCH_scaling.json", &json).expect("write BENCH_scaling.json");
    println!("wrote BENCH_scaling.json");
}
