//! Air-index backend comparison: the Hilbert-curve index (the paper's
//! design) vs the STR-packed R-tree alternative, on identical workloads.
//!
//! Two claims are checked here, and the binary **asserts** both (so CI
//! can run it as a smoke test and fail on regression):
//!
//! 1. Every backend answers exactly — validation is on for all runs and
//!    any ground-truth mismatch aborts.
//! 2. The Hilbert backend behind the `AirIndexBackend` trait object is
//!    deterministic: the serial run and epoch-sharded parallel runs at
//!    1/2/4/8 threads produce identical reports.
//!
//! Set `AIRSHARE_QUICK=1` for the CI-sized configuration. Writes
//! `BENCH_backends.json` in the working directory.

use airshare_bench::ExpScale;
use airshare_exec::ExecPool;
use airshare_sim::{params, BackendKind, QueryKind, SimConfig, SimReport, Simulation};
use std::time::Instant;

/// The report slice compared across serial/parallel runs. Exact integer
/// sums, not floating means, so the determinism check is bit-strict.
fn fingerprint(r: &SimReport) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        r.queries.total,
        r.queries.by_peers,
        r.queries.by_approx,
        r.queries.by_broadcast,
        r.broadcast_latency.sum,
        r.broadcast_tuning.sum,
        r.broadcast_buckets.sum,
        r.exact_mismatches,
    )
}

struct Cell {
    backend: &'static str,
    workload: &'static str,
    report: SimReport,
    wall_s: f64,
}

impl Cell {
    fn json(&self) -> String {
        let r = &self.report;
        format!(
            "      \"{}\": {{\"queries\": {}, \"pct_peers\": {:.1}, \"pct_broadcast\": {:.1}, \
             \"latency_mean\": {:.2}, \"tuning_mean\": {:.2}, \"buckets_mean\": {:.2}, \
             \"latency_p95\": {}, \"mismatches\": {}, \"wall_s\": {:.3}}}",
            self.workload,
            r.queries.total,
            r.queries.pct_peers(),
            r.queries.pct_broadcast(),
            r.broadcast_latency.mean(),
            r.broadcast_tuning.mean(),
            r.broadcast_buckets.mean(),
            r.broadcast_latency.p95(),
            r.exact_mismatches,
            self.wall_s
        )
    }
}

fn main() {
    let scale = ExpScale::from_env();
    let quick = std::env::var_os("AIRSHARE_QUICK").is_some();
    let mode = if quick { "quick" } else { "full" };
    println!("\n## Air-index backend comparison — mode: {mode}");
    println!(
        "{:>8} {:>8} {:>8} {:>7} {:>8} {:>9} {:>9} {:>8} {:>6}",
        "backend", "workload", "queries", "peers%", "bcast%", "latency", "tuning", "buckets", "wrong"
    );

    let base = |kind: QueryKind, backend: BackendKind| -> SimConfig {
        let mut cfg = scale.config(params::synthetic_suburbia(), kind, 42);
        cfg.backend = backend;
        cfg.validate = true;
        cfg
    };

    let mut cells: Vec<Cell> = Vec::new();
    for (backend, bname) in [(BackendKind::Hilbert, "hilbert"), (BackendKind::Rtree, "rtree")] {
        for (kind, wname) in [(QueryKind::Knn, "knn"), (QueryKind::Window, "window")] {
            let cfg = base(kind, backend);
            let mut sim = Simulation::try_new(cfg)
                .expect("experiment configs are valid by construction");
            let t = Instant::now();
            let report = sim.run();
            let wall_s = t.elapsed().as_secs_f64();
            println!(
                "{bname:>8} {wname:>8} {:>8} {:>7.1} {:>8.1} {:>9.2} {:>9.2} {:>8.2} {:>6}",
                report.queries.total,
                report.queries.pct_peers(),
                report.queries.pct_broadcast(),
                report.broadcast_latency.mean(),
                report.broadcast_tuning.mean(),
                report.broadcast_buckets.mean(),
                report.exact_mismatches
            );
            assert_eq!(
                report.exact_mismatches, 0,
                "{bname}/{wname}: backend returned a wrong exact answer"
            );
            cells.push(Cell { backend: bname, workload: wname, report, wall_s });
        }
    }

    // Determinism pin: the Hilbert backend now runs behind a trait
    // object; serial and parallel execution at every pool width must
    // agree with each other exactly, for both workloads.
    let threads = [1usize, 2, 4, 8];
    for kind in [QueryKind::Knn, QueryKind::Window] {
        let serial = fingerprint(
            &Simulation::try_new(base(kind, BackendKind::Hilbert))
                .expect("valid config")
                .run(),
        );
        for n in threads {
            let parallel = fingerprint(
                &Simulation::try_new(base(kind, BackendKind::Hilbert))
                    .expect("valid config")
                    .run_parallel(&ExecPool::fixed(n)),
            );
            assert_eq!(
                serial, parallel,
                "{kind:?}: Hilbert-via-trait report diverged at {n} threads"
            );
        }
    }
    println!("determinism: hilbert serial == parallel at {threads:?} threads (knn + window)");

    let backend_json = |name: &str| -> String {
        cells
            .iter()
            .filter(|c| c.backend == name)
            .map(Cell::json)
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let json = format!(
        "{{\n  \"meta\": {{\n    \"mode\": \"{mode}\",\n    \"workload\": \"synthetic_suburbia, seed 42, validation on\",\n    \
         \"note\": \"latency/tuning/buckets are per-broadcast-query means in ticks; both backends \
         validated against brute force (mismatches must be 0); determinism block asserts the \
         Hilbert backend behind the trait object matches across serial and 1/2/4/8-thread runs\"\n  }},\n  \
         \"backends\": {{\n    \"hilbert\": {{\n{}\n    }},\n    \"rtree\": {{\n{}\n    }}\n  }},\n  \
         \"determinism\": {{\"hilbert_serial_parallel_match\": true, \"threads\": [1, 2, 4, 8]}}\n}}\n",
        backend_json("hilbert"),
        backend_json("rtree")
    );
    std::fs::write("BENCH_backends.json", &json).expect("write BENCH_backends.json");
    println!("wrote BENCH_backends.json");
}
