//! The fleet-scale experiment: one simulation at a million hosts,
//! swept across worker-pool sizes.
//!
//! This is the acceptance benchmark for the fleet-scale epoch pipeline
//! (DESIGN.md §15–16). The engine streams epochs straight off the
//! query process — memory is O(hosts + live epoch), never O(events) —
//! and the per-epoch fleet path (churn application, mobility advance,
//! neighbor-grid refresh) is chunked over the same `ExecPool` the query
//! shards fan out on. The run reports, per thread count, throughput in
//! *host-epochs per second* (every host advances, joins the neighbor
//! grid, and has its cache snapshotted each epoch, whether or not it
//! queried) plus the engine's per-phase wall-time breakdown
//! (advance / grid / queries / snapshot-refresh), and writes them to
//! `BENCH_million.json`.
//!
//! Knobs:
//! - `AIRSHARE_MILLION_HOSTS` — fleet size (default 1,000,000). CI runs
//!   the 100k smoke with an RSS budget asserted on the JSON.
//! - `AIRSHARE_MILLION_SWEEP` — comma-separated thread counts
//!   (default `1,2,4,8`).
//! - The serial == parallel determinism check runs at
//!   `min(hosts, 100_000)` so the full-size run doesn't pay for a
//!   second complete simulation; every sweep run at full size is
//!   additionally asserted equal to the sweep's first report, so the
//!   whole sweep doubles as a full-scale cross-thread determinism pin.
//!
//! The world keeps LA-City *densities* (Table 3) and grows the area to
//! fit the fleet, so per-query behavior (neighbors in radio range,
//! cache hit geometry) matches the paper's regime at any size.

use airshare_exec::ExecPool;
use airshare_obs::PhaseTimes;
use airshare_sim::{params, ParamSet, QueryKind, SimConfig, SimReport, Simulation};
use std::fmt::Write as _;
use std::time::Instant;

/// LA-City densities stretched to hold `hosts` mobile hosts.
fn million_params(hosts: usize) -> ParamSet {
    let base = params::la_city();
    let area = hosts as f64 / base.mh_density();
    let side = area.sqrt();
    ParamSet {
        name: "LA densities, fleet-scale",
        poi_number: ((base.poi_density() * area).round() as usize).max(20),
        mh_number: hosts,
        cache_size: 30,
        // Aggregate Poisson rate: a light but real query load (~0.2% of
        // the fleet per minute) — the experiment measures fleet storage
        // and epoch streaming, not query throughput (exp_hotpath does).
        query_rate: (hosts as f64 * 0.002).max(50.0),
        world_mi: side,
        distance_mi: base.distance_mi,
        speed_scale: 1.0,
        ..base
    }
}

fn config(hosts: usize, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_defaults(million_params(hosts), QueryKind::Knn, seed);
    cfg.warmup_min = 1.0;
    cfg.measure_min = 2.0;
    cfg.validate = false;
    cfg.hilbert_order = 8;
    cfg
}

/// Peak resident set (VmHWM) in MiB, from `/proc/self/status`; 0.0
/// where the file doesn't exist (non-Linux).
fn peak_rss_mib() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().strip_suffix("kB"))
        .and_then(|kb| kb.trim().parse::<f64>().ok())
        .map_or(0.0, |kb| kb / 1024.0)
}

/// One sweep column: a full run of the same world on `threads` workers.
struct SweepRun {
    threads: usize,
    build_s: f64,
    wall_s: f64,
    hosts_per_sec: f64,
    epoch_ms: f64,
    phases: PhaseTimes,
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn main() {
    let hosts: usize = std::env::var("AIRSHARE_MILLION_HOSTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let sweep: Vec<usize> = std::env::var("AIRSHARE_MILLION_SWEEP")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t| t > 0)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    let max_threads = sweep.iter().copied().max().unwrap_or(1);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Determinism first: the sweep below is only trustworthy because
    // serial == parallel holds. Checked at a bounded size so the
    // full-size world isn't simulated twice just for the pin.
    let check_hosts = hosts.min(100_000);
    println!("## exp_million — {hosts} hosts, sweep {sweep:?}, {cores} cores available");
    println!("determinism check at {check_hosts} hosts ...");
    let t = Instant::now();
    let serial = Simulation::try_new(config(check_hosts, 42))
        .expect("config valid by construction")
        .run();
    let parallel = Simulation::try_new(config(check_hosts, 42))
        .expect("config valid by construction")
        .run_parallel(&ExecPool::fixed(max_threads));
    assert_eq!(
        parallel, serial,
        "parallel run diverged from sequential at {check_hosts} hosts"
    );
    println!(
        "  serial == parallel ({} queries, {:.1}s for both runs)",
        serial.queries.total,
        t.elapsed().as_secs_f64()
    );

    let cfg = config(hosts, 42);
    let epochs = (cfg.total_min() / cfg.epoch_min).ceil() as u64;
    println!(
        "world {:.1} mi, {} POIs, {} epochs, ~{:.0} queries expected",
        cfg.params.world_mi,
        cfg.params.poi_number,
        epochs,
        cfg.params.query_rate * cfg.total_min()
    );

    // Warm-up: the first full-size simulation pays every first-touch
    // page fault for the fleet's ~650 B/host of state (its build alone
    // runs ~10x slower than later ones, and the allocator keeps the
    // pages afterwards). One discarded full-size run makes the sweep
    // entries below measure steady state instead of iteration order.
    let t = Instant::now();
    let mut warm = Simulation::try_new(config(hosts, 42)).expect("config valid by construction");
    let _ = warm.run_parallel(&ExecPool::fixed(1));
    drop(warm);
    println!("warm-up run discarded ({:.1}s)", t.elapsed().as_secs_f64());

    // The sweep: the same world, rebuilt and rerun per thread count.
    // Every report must be byte-identical — the sweep doubles as a
    // full-scale determinism pin across thread counts.
    let host_epochs = hosts as u64 * epochs;
    let mut runs: Vec<SweepRun> = Vec::new();
    let mut reference: Option<SimReport> = None;
    for &threads in &sweep {
        let pool = ExecPool::fixed(threads);
        let t = Instant::now();
        let mut sim = Simulation::try_new(config(hosts, 42)).expect("config valid by construction");
        let build_s = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let report = sim.run_parallel(&pool);
        let wall_s = t.elapsed().as_secs_f64();
        let phases = sim.phase_times();
        drop(sim);
        match &reference {
            None => reference = Some(report),
            Some(first) => assert_eq!(
                &report, first,
                "full-size report diverged at {threads} threads"
            ),
        }
        let run = SweepRun {
            threads,
            build_s,
            wall_s,
            hosts_per_sec: host_epochs as f64 / wall_s,
            epoch_ms: wall_s * 1000.0 / epochs as f64,
            phases,
        };
        println!(
            "threads {:>2}: build {:.1}s | run {:.1}s | {:.0} host-epochs/s | {:.0} ms/epoch | \
             phases advance {:.0}ms grid {:.0}ms queries {:.0}ms snapshot {:.0}ms",
            run.threads,
            run.build_s,
            run.wall_s,
            run.hosts_per_sec,
            run.epoch_ms,
            ms(phases.advance_ns),
            ms(phases.grid_ns),
            ms(phases.query_ns),
            ms(phases.snapshot_ns),
        );
        runs.push(run);
    }
    let report = reference.expect("sweep is never empty");
    let rss = peak_rss_mib();
    let base = runs
        .iter()
        .find(|r| r.threads == 1)
        .unwrap_or(&runs[0]);
    let peak = runs
        .iter()
        .max_by(|a, b| a.hosts_per_sec.total_cmp(&b.hosts_per_sec))
        .expect("sweep is never empty");
    let speedup = peak.hosts_per_sec / base.hosts_per_sec;
    println!(
        "best {:.0} host-epochs/s at {} threads ({speedup:.2}x vs {} thread(s)) | peak RSS {rss:.0} MiB",
        peak.hosts_per_sec, peak.threads, base.threads
    );
    println!(
        "queries: {} total ({} by peers, {} approx, {} broadcast)",
        report.queries.total,
        report.queries.by_peers,
        report.queries.by_approx,
        report.queries.by_broadcast
    );

    let mut sweep_json = String::new();
    for (i, r) in runs.iter().enumerate() {
        let sep = if i + 1 < runs.len() { "," } else { "" };
        let _ = write!(
            sweep_json,
            "\n    {{\n      \"threads\": {},\n      \"build_s\": {:.3},\n      \
             \"wall_s\": {:.3},\n      \"hosts_per_sec\": {:.0},\n      \
             \"epoch_wall_ms\": {:.2},\n      \"phases_ms\": {{\n        \
             \"advance\": {:.1},\n        \"grid\": {:.1},\n        \
             \"queries\": {:.1},\n        \"snapshot\": {:.1}\n      }}\n    }}{sep}",
            r.threads,
            r.build_s,
            r.wall_s,
            r.hosts_per_sec,
            r.epoch_ms,
            ms(r.phases.advance_ns),
            ms(r.phases.grid_ns),
            ms(r.phases.query_ns),
            ms(r.phases.snapshot_ns),
        );
    }
    let json = format!(
        "{{\n  \"meta\": {{\n    \"note\": \"fleet-scale sweep on LA-City densities; \
         hosts_per_sec counts host-epochs (every host advances + snapshots each epoch); every \
         sweep run's report is asserted byte-identical, and determinism additionally pins serial \
         vs {max_threads}-thread parallel at the check size\",\n    \
         \"available_parallelism\": {cores}\n  }},\n  \
         \"hosts\": {hosts},\n  \"epochs\": {epochs},\n  \"sweep\": [{sweep_json}\n  ],\n  \
         \"speedup_best_vs_1\": {speedup:.3},\n  \"peak_rss_mib\": {rss:.1},\n  \
         \"queries\": {},\n  \"report\": {{\n    \"queries_total\": {},\n    \
         \"by_peers\": {},\n    \"by_approx\": {},\n    \"by_broadcast\": {},\n    \
         \"hosts_crashed\": {},\n    \"hosts_restarted\": {}\n  }},\n  \
         \"determinism\": {{\n    \"hosts\": {check_hosts},\n    \
         \"serial_parallel_match\": true\n  }}\n}}\n",
        report.queries.total,
        report.queries.total,
        report.queries.by_peers,
        report.queries.by_approx,
        report.queries.by_broadcast,
        report.hosts_crashed,
        report.hosts_restarted,
    );
    std::fs::write("BENCH_million.json", &json).expect("write BENCH_million.json");
    println!("wrote BENCH_million.json");
}
