//! The fleet-scale experiment: one simulation at a million hosts.
//!
//! This is the acceptance benchmark for the arena/columnar storage
//! refactor (DESIGN.md §15). The engine streams epochs straight off the
//! query process — memory is O(hosts + live epoch), never O(events) —
//! so the only per-host costs are the [`airshare_sim::FleetStore`]
//! columns, one
//! mobility stream, and one arena-backed cache. The run reports
//! throughput in *host-epochs per second* (every host advances, joins
//! the neighbor grid, and has its cache snapshotted each epoch, whether
//! or not it queried), peak RSS, and mean per-epoch wall time, and
//! writes them to `BENCH_million.json`.
//!
//! Knobs:
//! - `AIRSHARE_MILLION_HOSTS` — fleet size (default 1,000,000). CI runs
//!   the 100k smoke with an RSS budget asserted on the JSON.
//! - The serial == parallel determinism check runs at
//!   `min(hosts, 100_000)` so the full-size run doesn't pay for a
//!   second complete simulation; the million-host run itself still goes
//!   through `run_parallel`.
//!
//! The world keeps LA-City *densities* (Table 3) and grows the area to
//! fit the fleet, so per-query behavior (neighbors in radio range,
//! cache hit geometry) matches the paper's regime at any size.

use airshare_exec::ExecPool;
use airshare_sim::{params, ParamSet, QueryKind, SimConfig, Simulation};
use std::time::Instant;

/// LA-City densities stretched to hold `hosts` mobile hosts.
fn million_params(hosts: usize) -> ParamSet {
    let base = params::la_city();
    let area = hosts as f64 / base.mh_density();
    let side = area.sqrt();
    ParamSet {
        name: "LA densities, fleet-scale",
        poi_number: ((base.poi_density() * area).round() as usize).max(20),
        mh_number: hosts,
        cache_size: 30,
        // Aggregate Poisson rate: a light but real query load (~0.2% of
        // the fleet per minute) — the experiment measures fleet storage
        // and epoch streaming, not query throughput (exp_hotpath does).
        query_rate: (hosts as f64 * 0.002).max(50.0),
        world_mi: side,
        distance_mi: base.distance_mi,
        speed_scale: 1.0,
        ..base
    }
}

fn config(hosts: usize, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_defaults(million_params(hosts), QueryKind::Knn, seed);
    cfg.warmup_min = 1.0;
    cfg.measure_min = 2.0;
    cfg.validate = false;
    cfg.hilbert_order = 8;
    cfg
}

/// Peak resident set (VmHWM) in MiB, from `/proc/self/status`; 0.0
/// where the file doesn't exist (non-Linux).
fn peak_rss_mib() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().strip_suffix("kB"))
        .and_then(|kb| kb.trim().parse::<f64>().ok())
        .map_or(0.0, |kb| kb / 1024.0)
}

fn main() {
    let hosts: usize = std::env::var("AIRSHARE_MILLION_HOSTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));

    // Determinism first: the parallel run below is only trustworthy
    // because serial == parallel holds. Checked at a bounded size so
    // the full-size run isn't simulated twice.
    let check_hosts = hosts.min(100_000);
    println!("## exp_million — {hosts} hosts, {threads} threads");
    println!("determinism check at {check_hosts} hosts ...");
    let t = Instant::now();
    let serial = Simulation::try_new(config(check_hosts, 42))
        .expect("config valid by construction")
        .run();
    let parallel = Simulation::try_new(config(check_hosts, 42))
        .expect("config valid by construction")
        .run_parallel(&ExecPool::fixed(threads));
    assert_eq!(
        parallel, serial,
        "parallel run diverged from sequential at {check_hosts} hosts"
    );
    println!(
        "  serial == parallel ({} queries, {:.1}s for both runs)",
        serial.queries.total,
        t.elapsed().as_secs_f64()
    );

    // The timed run.
    let cfg = config(hosts, 42);
    let epochs = (cfg.total_min() / cfg.epoch_min).ceil() as u64;
    println!(
        "world {:.1} mi, {} POIs, {} epochs, ~{:.0} queries expected",
        cfg.params.world_mi,
        cfg.params.poi_number,
        epochs,
        cfg.params.query_rate * cfg.total_min()
    );
    let t = Instant::now();
    let mut sim = Simulation::try_new(cfg).expect("config valid by construction");
    let build_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let report = sim.run_parallel(&ExecPool::fixed(threads));
    let wall_s = t.elapsed().as_secs_f64();
    drop(sim);

    let host_epochs = hosts as u64 * epochs;
    let hosts_per_sec = host_epochs as f64 / wall_s;
    let epoch_ms = wall_s * 1000.0 / epochs as f64;
    let rss = peak_rss_mib();
    println!(
        "build {build_s:.1}s | run {wall_s:.1}s | {hosts_per_sec:.0} host-epochs/s | \
         {epoch_ms:.0} ms/epoch | peak RSS {rss:.0} MiB"
    );
    println!(
        "queries: {} total ({} by peers, {} approx, {} broadcast)",
        report.queries.total,
        report.queries.by_peers,
        report.queries.by_approx,
        report.queries.by_broadcast
    );

    let json = format!(
        "{{\n  \"meta\": {{\n    \"note\": \"fleet-scale run on LA-City densities; hosts_per_sec \
         counts host-epochs (every host advances + snapshots each epoch); determinism = serial vs \
         {threads}-thread parallel report equality\",\n    \"threads\": {threads}\n  }},\n  \
         \"hosts\": {hosts},\n  \"epochs\": {epochs},\n  \"build_s\": {build_s:.3},\n  \
         \"wall_s\": {wall_s:.3},\n  \"hosts_per_sec\": {hosts_per_sec:.0},\n  \
         \"epoch_wall_ms\": {epoch_ms:.2},\n  \"peak_rss_mib\": {rss:.1},\n  \
         \"queries\": {},\n  \"determinism\": {{\n    \"hosts\": {check_hosts},\n    \
         \"serial_parallel_match\": true\n  }}\n}}\n",
        report.queries.total
    );
    std::fs::write("BENCH_million.json", &json).expect("write BENCH_million.json");
    println!("wrote BENCH_million.json");
}
