//! Regenerates Figure 12 of the paper (see airshare_bench::fig12).
fn main() {
    let scale = airshare_bench::ExpScale::from_env();
    airshare_bench::fig12(&scale);
}
