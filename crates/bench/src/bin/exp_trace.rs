//! Per-query trace export: deterministic JSONL on stdout (DESIGN.md §9).
fn main() {
    let scale = airshare_bench::ExpScale::from_env();
    airshare_bench::trace(&scale);
}
