//! Experiment harness: one function per paper table/figure.
//!
//! Every experiment sweeps a parameter exactly as §4.2/§4.3 describe and
//! prints the series the corresponding figure plots. Absolute runtime is
//! controlled by [`ExpScale`]:
//!
//! * default — density-preserving scaled worlds sized for a laptop;
//! * `AIRSHARE_QUICK=1` — a fast smoke configuration (CI);
//! * `AIRSHARE_FULL=1` — the paper's full 20 mi × 20 mi, 10-hour runs
//!   (days of CPU; provided for completeness).
//!
//! `AIRSHARE_BACKEND=hilbert|rtree` selects the air-index backend for
//! every experiment built through [`ExpScale::config`] (experiments
//! that sweep backends themselves, like `exp_backends`, override it
//! per cell).
//!
//! All functions return their rows so tests and the `cargo bench` driver
//! can assert on trends, and print them in a fixed, grep-friendly format.

#![forbid(unsafe_code)]

use airshare_cache::ReplacementPolicy;
use airshare_core::VrPolicy;
use airshare_exec::{ExecPool, Parallelism};
use airshare_sim::{params, MobilityModel, ParamSet, QueryKind, SimConfig, SimReport, Simulation};

/// Sizing of every experiment run.
#[derive(Clone, Copy, Debug)]
pub struct ExpScale {
    /// Area scale factor applied to each Table 3 parameter set.
    pub area: f64,
    /// Warm-up minutes for kNN workloads.
    pub knn_warm: f64,
    /// Measured minutes for kNN workloads.
    pub knn_measure: f64,
    /// Warm-up minutes for window workloads (they converge more slowly:
    /// coverage needs accumulated window history).
    pub win_warm: f64,
    /// Measured minutes for window workloads.
    pub win_measure: f64,
    /// Use the paper's full sweep grids instead of the coarse ones.
    pub full_grids: bool,
}

impl ExpScale {
    /// Reads `AIRSHARE_QUICK` / `AIRSHARE_FULL` from the environment.
    pub fn from_env() -> Self {
        if std::env::var_os("AIRSHARE_FULL").is_some() {
            ExpScale {
                area: 1.0,
                knn_warm: 60.0,
                knn_measure: 600.0,
                win_warm: 60.0,
                win_measure: 600.0,
                full_grids: true,
            }
        } else if std::env::var_os("AIRSHARE_QUICK").is_some() {
            ExpScale {
                area: 0.002,
                knn_warm: 45.0,
                knn_measure: 20.0,
                win_warm: 120.0,
                win_measure: 40.0,
                full_grids: false,
            }
        } else {
            ExpScale {
                area: 0.01,
                knn_warm: 120.0,
                knn_measure: 40.0,
                win_warm: 150.0,
                win_measure: 40.0,
                full_grids: false,
            }
        }
    }

    /// Builds the [`SimConfig`] for one parameter set at this scale
    /// (area scaling plus per-workload warm-up and measure windows).
    /// Honors `AIRSHARE_BACKEND` for air-index backend selection;
    /// an unknown backend name aborts with the parse error.
    pub fn config(&self, p: ParamSet, kind: QueryKind, seed: u64) -> SimConfig {
        let scaled = if self.area < 1.0 { p.scaled(self.area) } else { p };
        let mut cfg = SimConfig::paper_defaults(scaled, kind, seed);
        match kind {
            QueryKind::Knn => {
                cfg.warmup_min = self.knn_warm;
                cfg.measure_min = self.knn_measure;
            }
            QueryKind::Window => {
                cfg.warmup_min = self.win_warm;
                cfg.measure_min = self.win_measure;
            }
        }
        if let Ok(name) = std::env::var("AIRSHARE_BACKEND") {
            if !name.trim().is_empty() {
                cfg.backend = name
                    .parse()
                    .unwrap_or_else(|e| panic!("AIRSHARE_BACKEND: {e}"));
            }
        }
        cfg
    }

    fn tx_grid(&self) -> Vec<f64> {
        if self.full_grids {
            (1..=10).map(|i| 20.0 * i as f64).collect()
        } else {
            vec![10.0, 50.0, 100.0, 150.0, 200.0]
        }
    }

    fn cache_grid(&self) -> Vec<usize> {
        vec![6, 12, 18, 24, 30]
    }

    fn k_grid(&self) -> Vec<usize> {
        vec![3, 6, 9, 12, 15]
    }

    fn window_grid(&self) -> Vec<f64> {
        vec![1.0, 2.0, 3.0, 4.0, 5.0]
    }
}

/// One figure data point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Parameter set name.
    pub set: &'static str,
    /// Swept parameter value (range, cache size, k, window %…).
    pub x: f64,
    /// % solved by SBNN / SBWQ (verified).
    pub pct_peers: f64,
    /// % solved by approximate SBNN (kNN only).
    pub pct_approx: f64,
    /// % solved by the broadcast channel.
    pub pct_broadcast: f64,
}

fn run(cfg: SimConfig) -> SimReport {
    Simulation::try_new(cfg)
        .expect("experiment configs are valid by construction")
        .run()
}

/// The worker pool sweeps fan out over: `AIRSHARE_THREADS=N` sizes it to
/// `N` threads; unset defaults to sequential, the best choice both on
/// single-core machines and for apples-to-apples timing. Each sweep
/// point runs its simulation sequentially inside its task, so the pool
/// is the only layer of parallelism.
fn sweep_pool() -> ExecPool {
    match Parallelism::from_env() {
        Parallelism::Fixed(n) => ExecPool::fixed(n),
        Parallelism::Auto => ExecPool::sequential(),
    }
}

/// Runs a batch of independent sweep points on the [`sweep_pool`].
/// `ExecPool::map` returns results in input order, so output is
/// deterministic regardless of the thread count.
fn run_points(points: Vec<(&'static str, f64, SimConfig)>) -> Vec<Row> {
    sweep_pool().map(points, |_, (set, x, cfg)| row(set, x, &run(cfg)))
}

fn row(set: &'static str, x: f64, r: &SimReport) -> Row {
    Row {
        set,
        x,
        pct_peers: r.queries.pct_peers(),
        pct_approx: r.queries.pct_approx(),
        pct_broadcast: r.queries.pct_broadcast(),
    }
}

fn print_rows(title: &str, xlabel: &str, approx_col: bool, rows: &[Row]) {
    println!("\n## {title}");
    if approx_col {
        println!("{:<20} {:>10} {:>8} {:>8} {:>10}", "set", xlabel, "SBNN%", "apprx%", "bcast%");
        for r in rows {
            println!(
                "{:<20} {:>10} {:>8.1} {:>8.1} {:>10.1}",
                r.set, r.x, r.pct_peers, r.pct_approx, r.pct_broadcast
            );
        }
    } else {
        println!("{:<20} {:>10} {:>8} {:>10}", "set", xlabel, "SBWQ%", "bcast%");
        for r in rows {
            println!(
                "{:<20} {:>10} {:>8.1} {:>10.1}",
                r.set, r.x, r.pct_peers, r.pct_broadcast
            );
        }
    }
}

// ----------------------------------------------------------------------
// Table 3
// ----------------------------------------------------------------------

/// Prints the Table 3 parameter sets (verbatim paper values plus the
/// scaled values actually used at this [`ExpScale`]).
pub fn table3(scale: &ExpScale) {
    println!("\n## Table 3 — simulation parameter sets");
    println!(
        "{:<16} {:>10} {:>10} {:>8} {:>12} {:>10} {:>6} {:>8} {:>9}",
        "set", "POIs", "MHs", "CSize", "Query/min", "TxRange", "kNN", "window%", "dist(mi)"
    );
    for p in params::all() {
        println!(
            "{:<16} {:>10} {:>10} {:>8} {:>12.0} {:>10.0} {:>6} {:>8.0} {:>9.2}",
            p.name, p.poi_number, p.mh_number, p.cache_size, p.query_rate, p.tx_range_m,
            p.knn_k, p.window_pct, p.distance_mi
        );
    }
    if scale.area < 1.0 {
        println!("-- scaled ×{} (densities preserved):", scale.area);
        for p in params::all() {
            let s = p.scaled(scale.area);
            println!(
                "{:<16} {:>10} {:>10} {:>8} {:>12.1} {:>10.0} {:>6} {:>8.0} {:>9.2}",
                s.name, s.poi_number, s.mh_number, s.cache_size, s.query_rate, s.tx_range_m,
                s.knn_k, s.window_pct, s.distance_mi
            );
        }
    }
}

// ----------------------------------------------------------------------
// kNN figures (10, 11, 12)
// ----------------------------------------------------------------------

/// Figure 10: % of kNN queries resolved vs wireless transmission range.
pub fn fig10(scale: &ExpScale) -> Vec<Row> {
    let mut points = Vec::new();
    for p in params::all() {
        for range in scale.tx_grid() {
            let mut cfg = scale.config(p, QueryKind::Knn, 10);
            cfg.params.tx_range_m = range;
            points.push((p.name, range, cfg));
        }
    }
    let rows = run_points(points);
    print_rows(
        "Figure 10 — kNN queries resolved vs transmission range (m)",
        "range(m)",
        true,
        &rows,
    );
    rows
}

/// Figure 11: % of kNN queries resolved vs cache capacity.
pub fn fig11(scale: &ExpScale) -> Vec<Row> {
    let mut points = Vec::new();
    for p in params::all() {
        for cs in scale.cache_grid() {
            let mut cfg = scale.config(p, QueryKind::Knn, 11);
            cfg.params.cache_size = cs;
            points.push((p.name, cs as f64, cfg));
        }
    }
    let rows = run_points(points);
    print_rows(
        "Figure 11 — kNN queries resolved vs cache capacity (POIs)",
        "cache",
        true,
        &rows,
    );
    rows
}

/// Figure 12: % of kNN queries resolved vs the number of neighbors `k`.
pub fn fig12(scale: &ExpScale) -> Vec<Row> {
    let mut points = Vec::new();
    for p in params::all() {
        for k in scale.k_grid() {
            let mut cfg = scale.config(p, QueryKind::Knn, 12);
            cfg.params.knn_k = k;
            points.push((p.name, k as f64, cfg));
        }
    }
    let rows = run_points(points);
    print_rows(
        "Figure 12 — kNN queries resolved vs k",
        "k",
        true,
        &rows,
    );
    rows
}

// ----------------------------------------------------------------------
// Window figures (13, 14, 15)
// ----------------------------------------------------------------------

/// Figure 13: % of window queries resolved vs transmission range.
pub fn fig13(scale: &ExpScale) -> Vec<Row> {
    let mut points = Vec::new();
    for p in params::all() {
        for range in scale.tx_grid() {
            let mut cfg = scale.config(p, QueryKind::Window, 13);
            cfg.params.tx_range_m = range;
            points.push((p.name, range, cfg));
        }
    }
    let rows = run_points(points);
    print_rows(
        "Figure 13 — window queries resolved vs transmission range (m)",
        "range(m)",
        false,
        &rows,
    );
    rows
}

/// Figure 14: % of window queries resolved vs cache capacity.
pub fn fig14(scale: &ExpScale) -> Vec<Row> {
    let mut points = Vec::new();
    for p in params::all() {
        for cs in scale.cache_grid() {
            let mut cfg = scale.config(p, QueryKind::Window, 14);
            cfg.params.cache_size = cs;
            points.push((p.name, cs as f64, cfg));
        }
    }
    let rows = run_points(points);
    print_rows(
        "Figure 14 — window queries resolved vs cache capacity (POIs)",
        "cache",
        false,
        &rows,
    );
    rows
}

/// Figure 15: % of window queries resolved vs query window size.
pub fn fig15(scale: &ExpScale) -> Vec<Row> {
    let mut points = Vec::new();
    for p in params::all() {
        for pct in scale.window_grid() {
            let mut cfg = scale.config(p, QueryKind::Window, 15);
            cfg.params.window_pct = pct;
            points.push((p.name, pct, cfg));
        }
    }
    let rows = run_points(points);
    print_rows(
        "Figure 15 — window queries resolved vs window size (% of space)",
        "window%",
        false,
        &rows,
    );
    rows
}

// ----------------------------------------------------------------------
// Latency / tuning headline (§1, §5)
// ----------------------------------------------------------------------

/// One latency-comparison row.
#[derive(Clone, Debug)]
pub struct LatencyRow {
    /// Parameter set name.
    pub set: &'static str,
    /// Mean access latency with sharing (ticks; peer-solved ≈ 0).
    pub shared_latency: f64,
    /// Mean access latency of the pure on-air baseline (ticks).
    pub baseline_latency: f64,
    /// Mean tuning time of broadcast-solved queries (ticks).
    pub shared_tuning: f64,
    /// Mean tuning time of the baseline (ticks).
    pub baseline_tuning: f64,
    /// % of queries that avoided the channel entirely.
    pub pct_avoided: f64,
    /// p95 access latency of broadcast-solved queries (ticks).
    pub latency_p95: u64,
    /// p99 access latency of broadcast-solved queries (ticks).
    pub latency_p99: u64,
    /// p95 tuning time of broadcast-solved queries (ticks).
    pub tuning_p95: u64,
}

/// The paper's headline: access-latency reduction from sharing ("up to
/// 80 % in a dense urban area").
pub fn latency(scale: &ExpScale) -> Vec<LatencyRow> {
    let mut rows = Vec::new();
    println!("\n## Access latency & tuning: sharing vs pure on-air baseline");
    println!(
        "{:<20} {:>12} {:>12} {:>9} {:>12} {:>12} {:>8} {:>8} {:>8}",
        "set", "shared lat", "on-air lat", "saved%", "tuning(bc)", "tuning(base)", "lat p95", "lat p99", "tun p95"
    );
    let points: Vec<(&'static str, SimConfig)> = params::all()
        .into_iter()
        .map(|p| (p.name, scale.config(p, QueryKind::Knn, 42)))
        .collect();
    let reports = sweep_pool().map(points, |_, (set, cfg)| (set, run(cfg)));
    for (set, r) in reports {
        let shared = r.overall_mean_latency();
        let base = r.baseline_latency.mean();
        let saved = if base > 0.0 { 100.0 * (1.0 - shared / base) } else { 0.0 };
        println!(
            "{:<20} {:>12.1} {:>12.1} {:>9.1} {:>12.1} {:>12.1} {:>8} {:>8} {:>8}",
            set,
            shared,
            base,
            saved,
            r.broadcast_tuning.mean(),
            r.baseline_tuning.mean(),
            r.broadcast_latency.p95(),
            r.broadcast_latency.p99(),
            r.broadcast_tuning.p95()
        );
        rows.push(LatencyRow {
            set,
            shared_latency: shared,
            baseline_latency: base,
            shared_tuning: r.broadcast_tuning.mean(),
            baseline_tuning: r.baseline_tuning.mean(),
            pct_avoided: r.queries.pct_peers() + r.queries.pct_approx(),
            latency_p95: r.broadcast_latency.p95(),
            latency_p99: r.broadcast_latency.p99(),
            tuning_p95: r.broadcast_tuning.p95(),
        });
    }
    rows
}

// ----------------------------------------------------------------------
// Lemma 3.2 calibration (§3.3.2)
// ----------------------------------------------------------------------

/// Calibration bin: predicted correctness vs empirical accuracy.
#[derive(Clone, Copy, Debug)]
pub struct CalibrationBin {
    /// Bin lower edge (predicted probability).
    pub lo: f64,
    /// Bin upper edge.
    pub hi: f64,
    /// Approximate answers falling in the bin.
    pub count: usize,
    /// Fraction that were actually fully correct.
    pub accuracy: f64,
}

/// Validates Lemma 3.2: bucket approximate answers by their predicted
/// correctness probability and compare against ground truth.
pub fn probability_calibration(scale: &ExpScale) -> Vec<CalibrationBin> {
    let p = params::la_city();
    let mut bins = Vec::new();
    for clip in [false, true] {
        let mut cfg = scale.config(p, QueryKind::Knn, 77);
        cfg.validate = true;
        cfg.min_correctness = 0.05; // accept almost everything: we *want* risky answers
        cfg.clip_domain = clip;
        let r = run(cfg);
        let edges = [0.05, 0.3, 0.5, 0.7, 0.85, 0.95, 1.000001];
        println!(
            "\n## Lemma 3.2 calibration — predicted e^(-λu) vs empirical accuracy ({})",
            if clip {
                "clipped to the bounded world"
            } else {
                "paper's unbounded-field estimator"
            }
        );
        println!("{:>14} {:>8} {:>10}", "predicted", "n", "actual%");
        for w in edges.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let in_bin: Vec<bool> = r
                .calibration
                .iter()
                .filter(|(p, _)| *p >= lo && *p < hi)
                .map(|&(_, ok)| ok)
                .collect();
            let count = in_bin.len();
            let accuracy = if count == 0 {
                0.0
            } else {
                in_bin.iter().filter(|&&b| b).count() as f64 / count as f64
            };
            println!(
                "{:>6.2} – {:<5.2} {:>8} {:>10.1}",
                lo,
                hi.min(1.0),
                count,
                100.0 * accuracy
            );
            if clip {
                bins.push(CalibrationBin { lo, hi, count, accuracy });
            }
        }
        println!(
            "(exact answers validated: {} mismatches out of {} queries)",
            r.exact_mismatches, r.queries.total
        );
    }
    bins
}

// ----------------------------------------------------------------------
// Ablations (DESIGN.md §3)
// ----------------------------------------------------------------------

/// One ablation row: a configuration label and its key metrics.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// % solved without the channel.
    pub pct_peers_total: f64,
    /// Mean buckets downloaded per broadcast-solved query.
    pub mean_buckets: f64,
    /// Mean broadcast tuning time.
    pub mean_tuning: f64,
    /// Ground-truth mismatches (only meaningful for the VR ablation).
    pub mismatches: u64,
}

fn ablation_run(label: &str, cfg: SimConfig, rows: &mut Vec<AblationRow>) {
    let r = run(cfg);
    let row = AblationRow {
        label: label.to_string(),
        pct_peers_total: r.queries.pct_peers() + r.queries.pct_approx(),
        mean_buckets: r.broadcast_buckets.mean(),
        mean_tuning: r.broadcast_tuning.mean(),
        mismatches: r.exact_mismatches,
    };
    println!(
        "{:<34} {:>9.1} {:>9.2} {:>9.1} {:>9}",
        row.label, row.pct_peers_total, row.mean_buckets, row.mean_tuning, row.mismatches
    );
    rows.push(row);
}

/// Runs every design-choice ablation DESIGN.md calls out, on the
/// suburbia set (mid density).
pub fn ablations(scale: &ExpScale) -> Vec<AblationRow> {
    let p = params::synthetic_suburbia();
    let mut rows = Vec::new();
    println!("\n## Ablations (Synthetic Suburbia, kNN unless noted)");
    println!(
        "{:<34} {:>9} {:>9} {:>9} {:>9}",
        "config", "peers%", "buckets", "tuning", "wrong"
    );

    let base = |seed: u64| {
        let mut c = scale.config(p, QueryKind::Knn, seed);
        c.validate = true;
        // A tight cache so replacement actually happens — at CSize = 50
        // the scaled world rarely evicts and every policy looks alike.
        c.params.cache_size = 8;
        c
    };

    ablation_run("baseline (paper defaults)", base(1), &mut rows);

    let mut c = base(1);
    c.use_bound_filtering = false;
    ablation_run("bound filtering OFF (§3.3.3)", c, &mut rows);

    let mut c = base(1);
    c.policy = ReplacementPolicy::DistanceOnly;
    ablation_run("cache policy: distance only", c, &mut rows);

    let mut c = base(1);
    c.policy = ReplacementPolicy::Lru;
    ablation_run("cache policy: LRU", c, &mut rows);

    let mut c = base(1);
    c.use_own_cache = false;
    ablation_run("own cache excluded from MVR", c, &mut rows);

    let mut c = base(1);
    c.subsume_overlap = 1.0;
    ablation_run("anti-fragmentation OFF", c, &mut rows);

    let mut c = base(1);
    c.vr_policy = VrPolicy::CircumscribedMbr;
    ablation_run("UNSOUND circumscribed-MBR VRs", c, &mut rows);

    let mut c = base(1);
    c.mobility = MobilityModel::GridRoads { spacing_milli_mi: 250 };
    ablation_run("grid-road mobility", c, &mut rows);

    let mut c = base(1);
    c.p2p_hops = 2;
    ablation_run("2-hop sharing (extension)", c, &mut rows);

    // Window-reduction ablation runs the window workload.
    let mut c = scale.config(p, QueryKind::Window, 1);
    c.validate = true;
    ablation_run("window: reduction ON (§3.4.2)", c, &mut rows);
    let mut c = scale.config(p, QueryKind::Window, 1);
    c.validate = true;
    c.use_window_reduction = false;
    ablation_run("window: reduction OFF", c, &mut rows);

    rows
}

// ----------------------------------------------------------------------
// Fault sweep (robustness — DESIGN.md "Fault model")
// ----------------------------------------------------------------------

/// One fault-sweep row: channel health on the x-axis, cost and
/// degradation on the y-axes.
#[derive(Clone, Debug)]
pub struct FaultRow {
    /// Per-appearance bucket loss probability swept (0–0.20).
    pub loss: f64,
    /// Mean access latency over all queries (ticks).
    pub mean_latency: f64,
    /// Mean tuning time of broadcast-solved queries (ticks).
    pub mean_tuning: f64,
    /// Bucket re-fetches forced by corrupt appearances.
    pub retries: u64,
    /// Buckets abandoned after the retry budget ran out.
    pub lost_buckets: u64,
    /// Queries reported degraded (possibly incomplete answers).
    pub degraded: u64,
    /// Peer replies dropped in transit.
    pub replies_dropped: u64,
    /// Ground-truth mismatches among non-degraded answers (must be 0).
    pub mismatches: u64,
}

/// Sweeps the broadcast bucket-loss probability from 0 to 20 % (with a
/// matching peer-drop rate) and reports how access latency, retries, and
/// degradation respond. Validation stays on for every point: the sweep
/// doubles as the "never silently wrong" check — lost data must surface
/// as retries or degraded queries, not as wrong exact answers.
pub fn faults(scale: &ExpScale) -> Vec<FaultRow> {
    let p = params::synthetic_suburbia();
    let mut rows = Vec::new();
    println!("\n## Fault sweep — bucket loss 0–20 % (Synthetic Suburbia, kNN)");
    println!(
        "{:>6} {:>10} {:>9} {:>8} {:>6} {:>9} {:>9} {:>6}",
        "loss%", "latency", "tuning", "retries", "lost", "degraded", "dropped", "wrong"
    );
    let points: Vec<(f64, SimConfig)> = [0.0, 0.02, 0.05, 0.10, 0.15, 0.20]
        .into_iter()
        .map(|loss| {
            let mut cfg = scale.config(p, QueryKind::Knn, 99);
            cfg.validate = true;
            cfg.faults.bucket_loss_prob = loss;
            cfg.faults.peer_drop_prob = loss / 2.0;
            cfg.faults.retry_budget = 8;
            (loss, cfg)
        })
        .collect();
    for (loss, r) in sweep_pool().map(points, |_, (loss, cfg)| (loss, run(cfg))) {
        let row = FaultRow {
            loss,
            mean_latency: r.overall_mean_latency(),
            mean_tuning: r.broadcast_tuning.mean(),
            retries: r.faults.retries_total,
            lost_buckets: r.faults.buckets_lost_total,
            degraded: r.faults.queries_degraded,
            replies_dropped: r.faults.replies_dropped,
            mismatches: r.exact_mismatches,
        };
        println!(
            "{:>6.0} {:>10.1} {:>9.1} {:>8} {:>6} {:>9} {:>9} {:>6}",
            100.0 * row.loss,
            row.mean_latency,
            row.mean_tuning,
            row.retries,
            row.lost_buckets,
            row.degraded,
            row.replies_dropped,
            row.mismatches
        );
        rows.push(row);
    }
    rows
}

// ----------------------------------------------------------------------
// Query trace (observability — DESIGN.md §9)
// ----------------------------------------------------------------------

/// Runs one small kNN simulation with a [`airshare_obs::JsonlTraceRecorder`]
/// attached and writes the per-query event trace to stdout as JSONL (one
/// JSON object per line, nothing else). The stream is byte-deterministic
/// for a fixed config and seed, so CI smoke-checks it and diffing two runs
/// answers "what changed".
///
/// Run summary goes to stderr to keep stdout machine-parsable.
pub fn trace(scale: &ExpScale) -> String {
    let p = params::synthetic_suburbia();
    let cfg = scale.config(p, QueryKind::Knn, 7);
    let mut rec = airshare_obs::JsonlTraceRecorder::new();
    let r = Simulation::try_new(cfg)
        .expect("experiment configs are valid by construction")
        .run_with(&mut rec);
    eprintln!(
        "# trace: {} events over {} measured queries (peers {:.1}%, approx {:.1}%, broadcast {:.1}%)",
        rec.lines(),
        r.queries.total,
        r.queries.pct_peers(),
        r.queries.pct_approx(),
        r.queries.pct_broadcast()
    );
    print!("{}", rec.as_str());
    rec.into_string()
}

// ----------------------------------------------------------------------
// (1, m) sweep (Figure 2 behaviour)
// ----------------------------------------------------------------------

/// One `(1, m)` sweep row.
#[derive(Clone, Copy, Debug)]
pub struct MSweepRow {
    /// Replication factor.
    pub m: usize,
    /// Cycle length (ticks).
    pub cycle: u64,
    /// Mean wait for the next index segment.
    pub probe_wait: f64,
    /// Mean kNN access latency.
    pub latency: f64,
    /// Mean kNN tuning time.
    pub tuning: f64,
}

/// Sweeps the `(1, m)` replication factor on a static channel (no
/// mobility needed), reproducing the Figure 2 trade-off.
pub fn m_sweep() -> Vec<MSweepRow> {
    use airshare_broadcast::{AirIndex, OnAirClient, Poi, Schedule};
    use airshare_geom::{Point, Rect};
    use airshare_hilbert::Grid;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let world = Rect::from_coords(0.0, 0.0, 20.0, 20.0);
    let mut rng = SmallRng::seed_from_u64(2);
    let pois: Vec<Poi> = (0..2750)
        .map(|i| {
            Poi::new(
                i,
                Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0)),
            )
        })
        .collect();
    let index = AirIndex::try_build(pois, Grid::new(world, 8), 10).unwrap();
    let q = Point::new(10.0, 10.0);

    let mut rows = Vec::new();
    println!("\n## (1, m) index replication sweep (LA City data file)");
    println!(
        "{:>4} {:>8} {:>12} {:>10} {:>8}",
        "m", "cycle", "probe wait", "latency", "tuning"
    );
    for m in [1usize, 2, 4, 8, 16] {
        let schedule = Schedule::new(index.data_buckets(), index.index_buckets(), m);
        let client = OnAirClient::new(&index, &schedule);
        let cycle = schedule.cycle_len();
        let samples = 512u64;
        let (mut probe, mut lat, mut tun) = (0u64, 0u64, 0u64);
        for i in 0..samples {
            let t = i * cycle / samples;
            probe += schedule.next_index_start(t) - t;
            let res = client.knn(t, q, 5).expect("enough POIs");
            lat += res.stats.latency;
            tun += res.stats.tuning;
        }
        let r = MSweepRow {
            m,
            cycle,
            probe_wait: probe as f64 / samples as f64,
            latency: lat as f64 / samples as f64,
            tuning: tun as f64 / samples as f64,
        };
        println!(
            "{:>4} {:>8} {:>12.1} {:>10.1} {:>8.1}",
            r.m, r.cycle, r.probe_wait, r.latency, r.tuning
        );
        rows.push(r);
    }
    rows
}

// ----------------------------------------------------------------------
// Chaos sweep (churn × outages — DESIGN.md §12)
// ----------------------------------------------------------------------

/// One chaos-sweep data point: a (crash rate, outage fraction) cell.
#[derive(Clone, Debug)]
pub struct ChaosRow {
    /// Per-host per-epoch crash probability swept.
    pub crash_prob: f64,
    /// Fraction of the measured epochs spent in base-station outage.
    pub outage_frac: f64,
    /// Measured queries answered `Exact`.
    pub exact: u64,
    /// Measured queries answered `Degraded` (lossy retrieval).
    pub degraded: u64,
    /// Measured queries answered `Stale` (outage, cached/peer data).
    pub stale: u64,
    /// Measured queries answered `Failed` (outage, no covering data).
    pub failed: u64,
    /// Mean staleness bound over `Stale` answers (minutes).
    pub mean_stale_age_min: f64,
    /// Largest staleness bound observed (minutes).
    pub max_stale_age_min: f64,
    /// Host crash transitions applied.
    pub crashes: u64,
    /// Host restart / late-join transitions applied.
    pub restarts: u64,
    /// Hosts that resynchronized after answering through an outage.
    pub resyncs: u64,
    /// Quarantine strikes recorded against malforming peers.
    pub quarantine_strikes: u64,
    /// Peer contacts skipped because the peer was quarantined.
    pub peers_quarantined: u64,
    /// Chaos-oracle bound violations (must be 0).
    pub bound_violations: u64,
    /// Ground-truth mismatches among exact answers (must be 0).
    pub mismatches: u64,
}

/// Sweeps host churn against broadcast outages on a 3×3 grid (with a
/// small peer-malform rate throughout, so quarantine is exercised) and
/// reports the per-quality answer counts plus the recovery counters.
/// Validation stays on for every cell: the sweep doubles as the chaos
/// oracle — non-`Exact` answers must respect their declared bound, and
/// `Exact` answers must match ground truth, under every fault mix.
pub fn chaos(scale: &ExpScale) -> Vec<ChaosRow> {
    use airshare_sim::ChurnConfig;

    let p = params::synthetic_suburbia();
    let mut rows = Vec::new();
    println!("\n## Chaos sweep — churn × outage (Synthetic Suburbia, kNN)");
    println!(
        "{:>7} {:>8} {:>7} {:>8} {:>6} {:>7} {:>9} {:>8} {:>8} {:>8} {:>7} {:>6}",
        "crash%", "outage%", "exact", "degraded", "stale", "failed", "stale-age", "crashes",
        "restart", "resyncs", "strikes", "wrong"
    );

    let mut points = Vec::new();
    for crash_prob in [0.0, 0.01, 0.03] {
        for outage_frac in [0.0, 0.15, 0.30] {
            let mut cfg = scale.config(p, QueryKind::Knn, 4242);
            cfg.validate = true;
            cfg.faults.peer_malform_prob = 0.05;
            cfg.churn = ChurnConfig {
                crash_prob,
                restart_prob: 0.3,
                late_join_frac: if crash_prob > 0.0 { 0.1 } else { 0.0 },
            };
            cfg.outages = outage_windows(&cfg, outage_frac);
            points.push(((crash_prob, outage_frac), cfg));
        }
    }
    for ((crash_prob, outage_frac), r) in
        sweep_pool().map(points, |_, (cell, cfg)| (cell, run(cfg)))
    {
        let row = ChaosRow {
            crash_prob,
            outage_frac,
            exact: r.quality.exact,
            degraded: r.quality.degraded,
            stale: r.quality.stale,
            failed: r.quality.failed,
            mean_stale_age_min: r.mean_stale_age_min(),
            max_stale_age_min: r.stale_age_min_max,
            crashes: r.hosts_crashed,
            restarts: r.hosts_restarted,
            resyncs: r.outage_resyncs,
            quarantine_strikes: r.faults.quarantine_strikes,
            peers_quarantined: r.faults.peers_quarantined,
            bound_violations: r.bound_violations,
            mismatches: r.exact_mismatches,
        };
        println!(
            "{:>7.0} {:>8.0} {:>7} {:>8} {:>6} {:>7} {:>9.2} {:>8} {:>8} {:>8} {:>7} {:>6}",
            100.0 * row.crash_prob,
            100.0 * row.outage_frac,
            row.exact,
            row.degraded,
            row.stale,
            row.failed,
            row.mean_stale_age_min,
            row.crashes,
            row.restarts,
            row.resyncs,
            row.quarantine_strikes,
            row.bound_violations + row.mismatches
        );
        rows.push(row);
    }
    rows
}

/// Carves `frac` of the measured epochs into two equal outage windows,
/// one early and one late in the measurement phase. Returns an empty
/// schedule for `frac <= 0`.
fn outage_windows(cfg: &SimConfig, frac: f64) -> Vec<(u64, u64)> {
    if frac <= 0.0 {
        return Vec::new();
    }
    let warm = (cfg.warmup_min / cfg.epoch_min).ceil() as u64;
    let total = (cfg.total_min() / cfg.epoch_min).ceil() as u64;
    let span = total.saturating_sub(warm);
    let silent = ((span as f64) * frac).round() as u64;
    let half = (silent / 2).max(1);
    let first = warm + span / 5;
    let second = warm + (3 * span) / 5;
    vec![(first, first + half), (second, second + half)]
}
