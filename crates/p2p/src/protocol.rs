//! The request/reply sharing exchange.
//!
//! Replies are *handle-based*: a peer ships each verified region as
//! `(Rect, Vec<PoiId>)` — the region plus the ids of the POIs it claims
//! are inside — and the receiver resolves ids against its own canonical
//! [`PoiTable`]. This both shrinks reply payloads (4 bytes per POI
//! instead of a full `Poi`) and hardens the protocol: a byzantine peer
//! can claim the wrong *membership* for a region, but it can no longer
//! forge POI *positions*, because positions only ever come from the
//! receiver's table. Claims that don't check out against the table are
//! rejected whole, exactly like the old position-carrying protocol
//! rejected POIs outside their claimed rectangle.

use crate::NeighborGrid;
use airshare_broadcast::{ChannelFaults, Poi, PoiCategory, PoiId, PoiTable};
use airshare_cache::{HostCache, QuarantineLedger};
use airshare_geom::{Point, Rect};
use airshare_obs::{NoopRecorder, Recorder, ShareStats, TraceEvent};

/// Salt xor-ed into the nonce for malform decisions so they draw an
/// independent hash from drop decisions. Without it, both events would
/// share one uniform variate per `(nonce, peer)` and a reply could
/// never malform when `malform_prob <= drop_prob`.
const MALFORM_NONCE_SALT: u64 = 0x3A1F_A17E_D000_0001;

/// A quarantine guard for one share exchange: the querying host's
/// ledger plus the current epoch the decisions are evaluated at.
pub type QuarantineGuard<'a> = Option<(&'a mut QuarantineLedger, u64)>;

/// One peer's reply to a share request: its verified regions with the
/// handles of the POIs inside each (`⟨p.VR, p.O⟩` in the paper's
/// notation, with `p.O` as [`PoiId`]s).
#[derive(Clone, Debug)]
pub struct PeerReply {
    /// Replying host id.
    pub peer: usize,
    /// Verified regions and the POI handles inside each.
    pub regions: Vec<(Rect, Vec<PoiId>)>,
}

impl PeerReply {
    /// Materializes the reply with POI payloads resolved through
    /// `table` (unresolvable handles are dropped). This is the
    /// allocating bridge for callers still working in `Vec<Poi>` terms.
    pub fn resolve(&self, table: &PoiTable) -> Vec<(Rect, Vec<Poi>)> {
        self.regions
            .iter()
            .map(|(r, ids)| {
                (
                    *r,
                    ids.iter().filter_map(|&id| table.get(id).copied()).collect(),
                )
            })
            .collect()
    }
}

/// Fault knobs for one share exchange. With the default (no decision
/// source, zero probability) nothing is ever dropped.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShareFaults<'a> {
    /// Deterministic decision source; `None` disables drops entirely.
    pub faults: Option<&'a ChannelFaults>,
    /// Probability that a contacted peer's reply is lost in transit.
    pub drop_prob: f64,
    /// Probability that a peer's reply arrives structurally malformed
    /// (bit-flipped region coordinates); sanitation rejects it whole and
    /// the quarantine guard, when present, strikes the peer.
    pub malform_prob: f64,
    /// Identifies this query so drop decisions are unique per exchange
    /// yet reproducible across runs.
    pub nonce: u64,
}

impl ShareFaults<'_> {
    /// Whether this exchange's reply from `peer` is lost in transit.
    pub fn drops_reply(&self, peer: usize) -> bool {
        match self.faults {
            Some(f) => f.event_fires(self.drop_prob, self.nonce, peer as u64),
            None => false,
        }
    }

    /// Whether this exchange's reply from `peer` arrives malformed.
    /// Hashed under a salted nonce so the decision is independent of
    /// [`ShareFaults::drops_reply`] for the same `(nonce, peer)`.
    pub fn malforms_reply(&self, peer: usize) -> bool {
        match self.faults {
            Some(f) => f.event_fires(
                self.malform_prob,
                self.nonce ^ MALFORM_NONCE_SALT,
                peer as u64,
            ),
            None => false,
        }
    }
}

/// Validates one reply's regions: structurally malformed regions and
/// regions whose POIs fall outside their claimed rectangle are rejected
/// outright (an inconsistent claim means the peer cannot be trusted about
/// that region); survivors are clipped to `world` with their POIs
/// restricted accordingly. Returns the sanitized regions and the number
/// rejected.
#[deprecated(
    since = "0.2.0",
    note = "replies carry PoiId handles now; use `sanitize_id_regions` \
            with the canonical PoiTable"
)]
pub fn sanitize_regions(
    regions: Vec<(Rect, Vec<Poi>)>,
    world: Option<&Rect>,
) -> (Vec<(Rect, Vec<Poi>)>, usize) {
    let mut out = Vec::with_capacity(regions.len());
    let mut rejected = 0usize;
    for (r, pois) in regions {
        let well_formed = r.x1.is_finite()
            && r.y1.is_finite()
            && r.x2.is_finite()
            && r.y2.is_finite()
            && r.x1 <= r.x2
            && r.y1 <= r.y2;
        if !well_formed || pois.iter().any(|p| !r.contains(p.pos)) {
            rejected += 1;
            continue;
        }
        let clipped = match world {
            Some(w) => match r.intersection(w) {
                Some(c) => c,
                None => {
                    rejected += 1;
                    continue;
                }
            },
            None => r,
        };
        let pois: Vec<Poi> = pois.into_iter().filter(|p| clipped.contains(p.pos)).collect();
        out.push((clipped, pois));
    }
    (out, rejected)
}

/// Validates one reply's handle-based regions against the canonical
/// `table`: a region is rejected whole when it is structurally
/// malformed, claims a handle the table cannot resolve, or claims a POI
/// whose canonical position lies outside the rectangle. Survivors are
/// clipped to `world` with their membership restricted accordingly.
/// Returns the sanitized regions and the number rejected.
pub fn sanitize_id_regions(
    regions: Vec<(Rect, Vec<PoiId>)>,
    table: &PoiTable,
    world: Option<&Rect>,
) -> (Vec<(Rect, Vec<PoiId>)>, usize) {
    let mut out = Vec::with_capacity(regions.len());
    let mut rejected = 0usize;
    for (r, ids) in regions {
        let well_formed = r.x1.is_finite()
            && r.y1.is_finite()
            && r.x2.is_finite()
            && r.y2.is_finite()
            && r.x1 <= r.x2
            && r.y1 <= r.y2;
        let claims_hold = well_formed
            && ids
                .iter()
                .all(|&id| table.get(id).is_some_and(|p| r.contains(p.pos)));
        if !claims_hold {
            rejected += 1;
            continue;
        }
        let clipped = match world {
            Some(w) => match r.intersection(w) {
                Some(c) => c,
                None => {
                    rejected += 1;
                    continue;
                }
            },
            None => r,
        };
        let ids: Vec<PoiId> = ids
            .into_iter()
            .filter(|&id| table.get(id).is_some_and(|p| clipped.contains(p.pos)))
            .collect();
        out.push((clipped, ids));
    }
    (out, rejected)
}

/// Collects validated replies from `peers`, applying drop and malform
/// decisions and accumulating traffic stats. Each contact, dropped
/// reply, and data-bearing reply (as a `CacheHit` with the contributed
/// region count) is traced into `rec`.
///
/// When a quarantine `guard` is present, currently-quarantined peers
/// are skipped *before* any contact (they cost no request message), and
/// a peer whose reply fails sanitation is struck and quarantined with
/// seeded exponential backoff. With `guard: None` (or an empty ledger)
/// the exchange is byte-identical to the pre-quarantine protocol.
#[allow(clippy::too_many_arguments)]
fn collect_replies(
    peers: Vec<usize>,
    category: PoiCategory,
    caches: &[HostCache],
    table: &PoiTable,
    world: Option<&Rect>,
    faults: ShareFaults<'_>,
    mut guard: QuarantineGuard<'_>,
    rec: &mut dyn Recorder,
) -> (Vec<PeerReply>, ShareStats) {
    let mut stats = ShareStats::default();
    let mut replies = Vec::new();
    for peer in peers {
        if let Some((ledger, epoch)) = guard.as_ref() {
            if ledger.is_quarantined(peer, *epoch) {
                rec.record(TraceEvent::QuarantinedPeerSkipped { peer: peer as u32 });
                stats.peers_quarantined += 1;
                continue;
            }
        }
        stats.peers_contacted += 1;
        rec.record(TraceEvent::PeerContacted { peer: peer as u32 });
        let mut regions: Vec<(Rect, Vec<PoiId>)> = caches[peer]
            .share_regions(category)
            .map(|(r, ids)| (r, ids.to_vec()))
            .collect();
        if regions.is_empty() {
            continue;
        }
        if faults.drops_reply(peer) {
            rec.record(TraceEvent::PeerReplyDropped { peer: peer as u32 });
            stats.replies_dropped += 1;
            continue;
        }
        if faults.malforms_reply(peer) {
            // Corrupt the reply in transit: a non-finite edge makes every
            // region structurally malformed, so sanitation rejects the
            // whole payload through its normal path.
            for (r, _) in &mut regions {
                r.x1 = f64::NAN;
            }
        }
        let (regions, rejected) = sanitize_id_regions(regions, table, world);
        stats.regions_rejected += rejected;
        if rejected > 0 {
            if let Some((ledger, epoch)) = guard.as_mut() {
                let until = ledger.strike(peer, *epoch);
                stats.peers_struck += 1;
                rec.record(TraceEvent::PeerQuarantined {
                    peer: peer as u32,
                    until_epoch: until,
                });
            }
        }
        if regions.is_empty() {
            continue;
        }
        rec.record(TraceEvent::CacheHit {
            regions: regions.len() as u32,
        });
        stats.peers_with_data += 1;
        stats.regions_received += regions.len();
        stats.pois_received += regions.iter().map(|(_, p)| p.len()).sum::<usize>();
        replies.push(PeerReply { peer, regions });
    }
    (replies, stats)
}

/// Performs the single-hop share exchange for a querying host.
///
/// `caches[i]` must be host `i`'s cache; `grid` must reflect current
/// positions; `table` is the canonical POI store claims resolve
/// against. Returns every non-empty peer reply plus traffic stats.
/// Empty-handed peers are counted as contacted (they cost a request
/// message) but transfer nothing.
pub fn gather_peer_data(
    querier: usize,
    querier_pos: Point,
    range: f64,
    category: PoiCategory,
    grid: &NeighborGrid,
    caches: &[HostCache],
    table: &PoiTable,
) -> (Vec<PeerReply>, ShareStats) {
    gather_peer_data_checked(
        querier,
        querier_pos,
        range,
        category,
        grid,
        caches,
        table,
        None,
        ShareFaults::default(),
    )
}

/// [`gather_peer_data`] with reply validation and fault injection: each
/// contacted peer's reply may be dropped per `faults`, and surviving
/// replies are sanitized against `world` (see [`sanitize_id_regions`]),
/// so a flaky or inconsistent peer degrades the querier to on-air
/// retrieval instead of poisoning its cache.
#[allow(clippy::too_many_arguments)]
pub fn gather_peer_data_checked(
    querier: usize,
    querier_pos: Point,
    range: f64,
    category: PoiCategory,
    grid: &NeighborGrid,
    caches: &[HostCache],
    table: &PoiTable,
    world: Option<&Rect>,
    faults: ShareFaults<'_>,
) -> (Vec<PeerReply>, ShareStats) {
    gather_peer_data_checked_rec(
        querier,
        querier_pos,
        range,
        category,
        grid,
        caches,
        table,
        world,
        faults,
        &mut NoopRecorder,
    )
}

/// [`gather_peer_data_checked`], tracing peer contacts, dropped replies,
/// and cache contributions into `rec`.
#[allow(clippy::too_many_arguments)]
pub fn gather_peer_data_checked_rec(
    querier: usize,
    querier_pos: Point,
    range: f64,
    category: PoiCategory,
    grid: &NeighborGrid,
    caches: &[HostCache],
    table: &PoiTable,
    world: Option<&Rect>,
    faults: ShareFaults<'_>,
    rec: &mut dyn Recorder,
) -> (Vec<PeerReply>, ShareStats) {
    gather_peer_data_guarded_rec(
        querier,
        querier_pos,
        range,
        category,
        grid,
        caches,
        table,
        world,
        faults,
        None,
        rec,
    )
}

/// [`gather_peer_data_checked_rec`] with a quarantine `guard`: peers the
/// querier's ledger currently quarantines are skipped before contact,
/// and peers whose replies fail sanitation are struck (see
/// [`QuarantineLedger`]). A `None` guard reproduces the unguarded
/// exchange exactly.
#[allow(clippy::too_many_arguments)]
pub fn gather_peer_data_guarded_rec(
    querier: usize,
    querier_pos: Point,
    range: f64,
    category: PoiCategory,
    grid: &NeighborGrid,
    caches: &[HostCache],
    table: &PoiTable,
    world: Option<&Rect>,
    faults: ShareFaults<'_>,
    guard: QuarantineGuard<'_>,
    rec: &mut dyn Recorder,
) -> (Vec<PeerReply>, ShareStats) {
    let peers = grid.neighbors_within(querier_pos, range, Some(querier));
    collect_replies(peers, category, caches, table, world, faults, guard, rec)
}

/// Multi-hop extension of [`gather_peer_data`]: peers relay the share
/// request up to `hops` wireless hops away (flooding with duplicate
/// suppression). The paper confines itself to single-hop exchange and
/// names richer cooperation as future work; this implements the obvious
/// next step so its benefit can be measured (see the `exp_ablations`
/// experiment).
///
/// Positions come from `grid`; contacted peers are counted once each.
/// With `hops == 1` this reduces exactly to [`gather_peer_data`].
#[allow(clippy::too_many_arguments)]
pub fn gather_peer_data_multihop(
    querier: usize,
    querier_pos: Point,
    range: f64,
    hops: usize,
    category: PoiCategory,
    grid: &NeighborGrid,
    caches: &[HostCache],
    table: &PoiTable,
) -> (Vec<PeerReply>, ShareStats) {
    gather_peer_data_multihop_checked(
        querier,
        querier_pos,
        range,
        hops,
        category,
        grid,
        caches,
        table,
        None,
        ShareFaults::default(),
    )
}

/// [`gather_peer_data_multihop`] with reply validation and fault
/// injection (see [`gather_peer_data_checked`]).
#[allow(clippy::too_many_arguments)]
pub fn gather_peer_data_multihop_checked(
    querier: usize,
    querier_pos: Point,
    range: f64,
    hops: usize,
    category: PoiCategory,
    grid: &NeighborGrid,
    caches: &[HostCache],
    table: &PoiTable,
    world: Option<&Rect>,
    faults: ShareFaults<'_>,
) -> (Vec<PeerReply>, ShareStats) {
    gather_peer_data_multihop_checked_rec(
        querier,
        querier_pos,
        range,
        hops,
        category,
        grid,
        caches,
        table,
        world,
        faults,
        &mut NoopRecorder,
    )
}

/// [`gather_peer_data_multihop_checked`], tracing peer contacts, dropped
/// replies, and cache contributions into `rec`.
#[allow(clippy::too_many_arguments)]
pub fn gather_peer_data_multihop_checked_rec(
    querier: usize,
    querier_pos: Point,
    range: f64,
    hops: usize,
    category: PoiCategory,
    grid: &NeighborGrid,
    caches: &[HostCache],
    table: &PoiTable,
    world: Option<&Rect>,
    faults: ShareFaults<'_>,
    rec: &mut dyn Recorder,
) -> (Vec<PeerReply>, ShareStats) {
    gather_peer_data_multihop_guarded_rec(
        querier,
        querier_pos,
        range,
        hops,
        category,
        grid,
        caches,
        table,
        world,
        faults,
        None,
        rec,
    )
}

/// [`gather_peer_data_multihop_checked_rec`] with a quarantine `guard`
/// (see [`gather_peer_data_guarded_rec`]). Quarantined peers still relay
/// the flood — quarantine distrusts a peer's *data*, not its radio —
/// but their own replies are skipped.
#[allow(clippy::too_many_arguments)]
pub fn gather_peer_data_multihop_guarded_rec(
    querier: usize,
    querier_pos: Point,
    range: f64,
    hops: usize,
    category: PoiCategory,
    grid: &NeighborGrid,
    caches: &[HostCache],
    table: &PoiTable,
    world: Option<&Rect>,
    faults: ShareFaults<'_>,
    guard: QuarantineGuard<'_>,
    rec: &mut dyn Recorder,
) -> (Vec<PeerReply>, ShareStats) {
    assert!(hops >= 1, "at least one hop");
    let mut visited = vec![false; caches.len()];
    if querier < visited.len() {
        visited[querier] = true;
    }
    let mut frontier: Vec<usize> = grid
        .neighbors_within(querier_pos, range, Some(querier))
        .into_iter()
        .filter(|&i| !std::mem::replace(&mut visited[i], true))
        .collect();
    let mut reached = frontier.clone();
    for _ in 1..hops {
        let mut next = Vec::new();
        for &relay in &frontier {
            for i in grid.neighbors_within(grid.position(relay), range, Some(relay)) {
                if !std::mem::replace(&mut visited[i], true) {
                    next.push(i);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        reached.extend(next.iter().copied());
        frontier = next;
    }

    collect_replies(reached, category, caches, table, world, faults, guard, rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airshare_cache::{CacheContext, RegionEntry, ReplacementPolicy};

    const CAT: PoiCategory = PoiCategory::GAS_STATION;

    fn ctx(p: Point) -> CacheContext {
        CacheContext {
            pos: p,
            heading: None,
            now: 0.0,
        }
    }

    fn cache_with_poi(poi: Poi) -> HostCache {
        let mut c = HostCache::new(10, ReplacementPolicy::default());
        let vr = Rect::centered_square(poi.pos, 1.0);
        c.insert(CAT, RegionEntry::new(vr, [poi], 0.0), &ctx(poi.pos));
        c
    }

    /// One data-bearing peer per position (unique POI ids), plus the
    /// canonical table covering them all. `caches[0]` is an empty
    /// querier cache.
    fn fleet(positions: &[Point]) -> (Vec<HostCache>, PoiTable) {
        let pois: Vec<Poi> = positions[1..]
            .iter()
            .enumerate()
            .map(|(i, p)| Poi::new(i as u32 + 1, *p))
            .collect();
        let mut caches = vec![HostCache::new(10, ReplacementPolicy::default())];
        caches.extend(pois.iter().map(|&p| cache_with_poi(p)));
        (caches, PoiTable::from_pois(pois))
    }

    #[test]
    fn gathers_only_in_range_peers() {
        let positions = vec![
            Point::new(0.0, 0.0),  // querier
            Point::new(0.1, 0.0),  // near, has data
            Point::new(50.0, 0.0), // far, has data
        ];
        let (caches, table) = fleet(&positions);
        let grid = NeighborGrid::build(positions, 1.0);
        let (replies, stats) =
            gather_peer_data(0, Point::new(0.0, 0.0), 1.0, CAT, &grid, &caches, &table);
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].peer, 1);
        assert_eq!(stats.peers_contacted, 1);
        assert_eq!(stats.peers_with_data, 1);
        assert_eq!(stats.pois_received, 1);
        // The reply resolves back to the canonical payload.
        let resolved = replies[0].resolve(&table);
        assert_eq!(resolved[0].1[0].pos, Point::new(0.1, 0.0));
    }

    #[test]
    fn empty_caches_cost_contact_but_no_transfer() {
        let positions = vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0)];
        let caches = vec![
            HostCache::new(10, ReplacementPolicy::default()),
            HostCache::new(10, ReplacementPolicy::default()),
        ];
        let table = PoiTable::new();
        let grid = NeighborGrid::build(positions, 1.0);
        let (replies, stats) =
            gather_peer_data(0, Point::new(0.0, 0.0), 1.0, CAT, &grid, &caches, &table);
        assert!(replies.is_empty());
        assert_eq!(stats.peers_contacted, 1);
        assert_eq!(stats.peers_with_data, 0);
    }

    #[test]
    fn querier_does_not_reply_to_itself() {
        let poi = Poi::new(1, Point::new(0.0, 0.0));
        let positions = vec![poi.pos];
        let caches = vec![cache_with_poi(poi)];
        let table = PoiTable::from_pois([poi]);
        let grid = NeighborGrid::build(positions, 1.0);
        let (replies, stats) =
            gather_peer_data(0, Point::new(0.0, 0.0), 5.0, CAT, &grid, &caches, &table);
        assert!(replies.is_empty());
        assert_eq!(stats.peers_contacted, 0);
    }

    #[test]
    fn multihop_reaches_a_chain() {
        // Hosts in a line, each only in range of its neighbors:
        // 0 — 1 — 2 — 3. Data sits on host 3.
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(0.9, 0.0),
            Point::new(1.8, 0.0),
            Point::new(2.7, 0.0),
        ];
        let poi = Poi::new(1, Point::new(2.7, 0.0));
        let caches = vec![
            HostCache::new(10, ReplacementPolicy::default()),
            HostCache::new(10, ReplacementPolicy::default()),
            HostCache::new(10, ReplacementPolicy::default()),
            cache_with_poi(poi),
        ];
        let table = PoiTable::from_pois([poi]);
        let grid = NeighborGrid::build(positions, 1.0);
        for (hops, expect_contacted, expect_replies) in [(1, 1, 0), (2, 2, 0), (3, 3, 1)] {
            let (replies, stats) = gather_peer_data_multihop(
                0,
                Point::new(0.0, 0.0),
                1.0,
                hops,
                CAT,
                &grid,
                &caches,
                &table,
            );
            assert_eq!(stats.peers_contacted, expect_contacted, "hops {hops}");
            assert_eq!(replies.len(), expect_replies, "hops {hops}");
        }
    }

    #[test]
    fn multihop_one_hop_matches_single_hop() {
        let positions = vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0), Point::new(5.0, 5.0)];
        let (caches, table) = fleet(&positions);
        let grid = NeighborGrid::build(positions, 1.0);
        let (r1, s1) =
            gather_peer_data(0, Point::new(0.0, 0.0), 1.0, CAT, &grid, &caches, &table);
        let (r2, s2) = gather_peer_data_multihop(
            0,
            Point::new(0.0, 0.0),
            1.0,
            1,
            CAT,
            &grid,
            &caches,
            &table,
        );
        assert_eq!(s1, s2);
        assert_eq!(r1.len(), r2.len());
        assert_eq!(r1[0].peer, r2[0].peer);
    }

    #[test]
    fn multihop_never_revisits_the_querier() {
        // Dense clique: querier reachable from everyone; must not appear
        // in its own replies at any hop depth.
        let positions: Vec<Point> = (0..6).map(|i| Point::new(i as f64 * 0.1, 0.0)).collect();
        let pois: Vec<Poi> = positions
            .iter()
            .enumerate()
            .map(|(i, p)| Poi::new(i as u32, *p))
            .collect();
        let caches: Vec<HostCache> = pois.iter().map(|&p| cache_with_poi(p)).collect();
        let table = PoiTable::from_pois(pois);
        let grid = NeighborGrid::build(positions, 1.0);
        let (replies, stats) = gather_peer_data_multihop(
            2,
            Point::new(0.2, 0.0),
            1.0,
            4,
            CAT,
            &grid,
            &caches,
            &table,
        );
        assert_eq!(stats.peers_contacted, 5);
        assert!(replies.iter().all(|r| r.peer != 2));
    }

    #[test]
    fn reply_drops_are_deterministic_and_counted() {
        // 8 peers with data, 100% drop probability: everything is lost
        // and the querier is left to the broadcast channel.
        let positions: Vec<Point> = (0..9).map(|i| Point::new(i as f64 * 0.05, 0.0)).collect();
        let (caches, table) = fleet(&positions);
        let grid = NeighborGrid::build(positions, 1.0);
        let model = ChannelFaults::from_loss_prob(11, 0.0, 0);
        let all_dropped = ShareFaults {
            faults: Some(&model),
            drop_prob: 1.0,
            malform_prob: 0.0,
            nonce: 42,
        };
        let (replies, stats) = gather_peer_data_checked(
            0,
            Point::new(0.0, 0.0),
            1.0,
            CAT,
            &grid,
            &caches,
            &table,
            None,
            all_dropped,
        );
        assert!(replies.is_empty());
        assert_eq!(stats.peers_contacted, 8);
        assert_eq!(stats.replies_dropped, 8);
        assert_eq!(stats.peers_with_data, 0);

        // Partial drops: deterministic given (seed, nonce), and disabled
        // entirely with the default faults.
        let some = ShareFaults {
            faults: Some(&model),
            drop_prob: 0.5,
            malform_prob: 0.0,
            nonce: 42,
        };
        let run = || {
            gather_peer_data_checked(
                0,
                Point::new(0.0, 0.0),
                1.0,
                CAT,
                &grid,
                &caches,
                &table,
                None,
                some,
            )
        };
        let (r1, s1) = run();
        let (r2, s2) = run();
        assert_eq!(s1, s2);
        assert_eq!(r1.len(), r2.len());
        assert_eq!(s1.replies_dropped + s1.peers_with_data, 8);

        let (r0, s0) =
            gather_peer_data(0, Point::new(0.0, 0.0), 1.0, CAT, &grid, &caches, &table);
        assert_eq!(r0.len(), 8);
        assert_eq!(s0.replies_dropped, 0);
    }

    #[test]
    fn malformed_regions_are_rejected_and_valid_ones_clipped() {
        let world = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let table = PoiTable::from_pois([
            Poi::new(1, Point::new(5.0, 5.0)),
            Poi::new(2, Point::new(25.0, 25.0)),
            Poi::new(3, Point::new(9.0, 8.5)),
            Poi::new(4, Point::new(12.0, 8.5)),
            Poi::new(5, Point::new(3.0, 3.0)),
        ]);
        let regions = vec![
            // NaN edge: structurally malformed.
            (
                Rect {
                    x1: f64::NAN,
                    y1: 0.0,
                    x2: 1.0,
                    y2: 1.0,
                },
                vec![],
            ),
            // Claims a POI whose canonical position is outside itself:
            // inconsistent, rejected whole.
            (Rect::from_coords(0.0, 0.0, 1.0, 1.0), vec![PoiId(1)]),
            // Claims a handle the table does not know: rejected whole.
            (Rect::from_coords(2.0, 2.0, 4.0, 4.0), vec![PoiId(99)]),
            // Entirely outside the world: rejected.
            (
                Rect::from_coords(20.0, 20.0, 30.0, 30.0),
                vec![PoiId(2)],
            ),
            // Straddles the world edge: clipped, outside POI dropped.
            (
                Rect::from_coords(8.0, 8.0, 14.0, 9.0),
                vec![PoiId(3), PoiId(4)],
            ),
            // Fully valid: untouched.
            (Rect::from_coords(2.0, 2.0, 4.0, 4.0), vec![PoiId(5)]),
        ];
        let (kept, rejected) = sanitize_id_regions(regions, &table, Some(&world));
        assert_eq!(rejected, 4);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].0, Rect::from_coords(8.0, 8.0, 10.0, 9.0));
        assert_eq!(kept[0].1, vec![PoiId(3)]);
        assert_eq!(kept[1].0, Rect::from_coords(2.0, 2.0, 4.0, 4.0));
        assert_eq!(kept[1].1, vec![PoiId(5)]);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_poi_sanitizer_still_works() {
        let world = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let regions = vec![
            (
                Rect::from_coords(0.0, 0.0, 1.0, 1.0),
                vec![Poi::new(1, Point::new(5.0, 5.0))],
            ),
            (
                Rect::from_coords(2.0, 2.0, 4.0, 4.0),
                vec![Poi::new(5, Point::new(3.0, 3.0))],
            ),
        ];
        let (kept, rejected) = sanitize_regions(regions, Some(&world));
        assert_eq!(rejected, 1);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].1[0].id, 5);
    }

    #[test]
    fn inconsistent_peer_cache_degrades_to_no_reply() {
        // A peer whose cache claims a POI inside a VR the canonical
        // position contradicts (possible only by constructing the entry
        // by hand) must contribute nothing.
        let positions = vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0)];
        let table = PoiTable::from_pois([Poi::new(9, Point::new(7.0, 7.0))]);
        let mut bad = HostCache::new(10, ReplacementPolicy::default());
        bad.insert_unchecked(
            CAT,
            RegionEntry {
                vr: Rect::from_coords(0.0, 0.0, 1.0, 1.0),
                pois: vec![Poi::new(9, Point::new(7.0, 7.0))],
                created_at: 0.0,
                last_used: 0.0,
            },
        );
        let caches = vec![HostCache::new(10, ReplacementPolicy::default()), bad];
        let grid = NeighborGrid::build(positions, 1.0);
        let world = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let (replies, stats) = gather_peer_data_checked(
            0,
            Point::new(0.0, 0.0),
            1.0,
            CAT,
            &grid,
            &caches,
            &table,
            Some(&world),
            ShareFaults::default(),
        );
        assert!(replies.is_empty());
        assert_eq!(stats.regions_rejected, 1);
        assert_eq!(stats.peers_with_data, 0);
    }

    #[test]
    fn traced_exchange_counts_match_share_stats() {
        use airshare_obs::MetricsRecorder;
        let positions: Vec<Point> = (0..9).map(|i| Point::new(i as f64 * 0.05, 0.0)).collect();
        let (caches, table) = fleet(&positions);
        let grid = NeighborGrid::build(positions, 1.0);
        let model = ChannelFaults::from_loss_prob(11, 0.0, 0);
        let some = ShareFaults {
            faults: Some(&model),
            drop_prob: 0.5,
            malform_prob: 0.0,
            nonce: 42,
        };
        let mut rec = MetricsRecorder::new();
        let (replies, stats) = gather_peer_data_checked_rec(
            0,
            Point::new(0.0, 0.0),
            1.0,
            CAT,
            &grid,
            &caches,
            &table,
            None,
            some,
            &mut rec,
        );
        let snap = rec.snapshot();
        assert_eq!(snap.peers_contacted_total, stats.peers_contacted as u64);
        assert_eq!(snap.peer_replies_dropped, stats.replies_dropped as u64);
        assert_eq!(snap.cache_hits_total, stats.peers_with_data as u64);
        // Tracing must not perturb the exchange.
        let (r2, s2) = gather_peer_data_checked(
            0,
            Point::new(0.0, 0.0),
            1.0,
            CAT,
            &grid,
            &caches,
            &table,
            None,
            some,
        );
        assert_eq!(stats, s2);
        assert_eq!(replies.len(), r2.len());
    }

    #[test]
    fn malform_decisions_are_independent_of_drops() {
        // With malform_prob == drop_prob == 1.0 under the *same* nonce,
        // a shared hash would make malform unobservable (the drop always
        // wins the same variate). The salted nonce keeps them
        // independent: with drops off, every reply malforms.
        let positions: Vec<Point> = (0..5).map(|i| Point::new(i as f64 * 0.05, 0.0)).collect();
        let (caches, table) = fleet(&positions);
        let grid = NeighborGrid::build(positions, 1.0);
        let model = ChannelFaults::from_loss_prob(11, 0.0, 0);
        let all_malformed = ShareFaults {
            faults: Some(&model),
            drop_prob: 0.0,
            malform_prob: 1.0,
            nonce: 42,
        };
        let (replies, stats) = gather_peer_data_checked(
            0,
            Point::new(0.0, 0.0),
            1.0,
            CAT,
            &grid,
            &caches,
            &table,
            None,
            all_malformed,
        );
        assert!(replies.is_empty());
        assert_eq!(stats.peers_contacted, 4);
        assert_eq!(stats.replies_dropped, 0);
        assert_eq!(stats.regions_rejected, 4);
    }

    #[test]
    fn quarantine_guard_skips_and_strikes() {
        use airshare_cache::{QuarantineConfig, QuarantineLedger};
        let positions: Vec<Point> = (0..4).map(|i| Point::new(i as f64 * 0.05, 0.0)).collect();
        let (caches, table) = fleet(&positions);
        let grid = NeighborGrid::build(positions, 1.0);
        let model = ChannelFaults::from_loss_prob(11, 0.0, 0);
        let all_malformed = ShareFaults {
            faults: Some(&model),
            drop_prob: 0.0,
            malform_prob: 1.0,
            nonce: 42,
        };
        let mut ledger = QuarantineLedger::new(QuarantineConfig::default(), 7);

        // Exchange 1 at epoch 0: every reply malforms, every peer struck.
        let (replies, stats) = gather_peer_data_guarded_rec(
            0,
            Point::new(0.0, 0.0),
            1.0,
            CAT,
            &grid,
            &caches,
            &table,
            None,
            all_malformed,
            Some((&mut ledger, 0)),
            &mut NoopRecorder,
        );
        assert!(replies.is_empty());
        assert_eq!(stats.peers_contacted, 3);
        assert_eq!(stats.peers_struck, 3);
        assert_eq!(stats.peers_quarantined, 0);
        assert!(ledger.is_quarantined(1, 1));

        // Exchange 2 at epoch 1: all three peers are quarantined and
        // skipped before contact — no request messages at all.
        let (replies2, stats2) = gather_peer_data_guarded_rec(
            0,
            Point::new(0.0, 0.0),
            1.0,
            CAT,
            &grid,
            &caches,
            &table,
            None,
            all_malformed,
            Some((&mut ledger, 1)),
            &mut NoopRecorder,
        );
        assert!(replies2.is_empty());
        assert_eq!(stats2.peers_contacted, 0);
        assert_eq!(stats2.peers_quarantined, 3);
        assert_eq!(stats2.peers_struck, 0);
    }

    #[test]
    fn empty_guard_matches_unguarded_exchange() {
        use airshare_cache::{QuarantineConfig, QuarantineLedger};
        let positions: Vec<Point> = (0..6).map(|i| Point::new(i as f64 * 0.05, 0.0)).collect();
        let (caches, table) = fleet(&positions);
        let grid = NeighborGrid::build(positions, 1.0);
        let model = ChannelFaults::from_loss_prob(11, 0.0, 0);
        let some = ShareFaults {
            faults: Some(&model),
            drop_prob: 0.5,
            malform_prob: 0.0,
            nonce: 42,
        };
        let mut ledger = QuarantineLedger::new(QuarantineConfig::default(), 7);
        let (rg, sg) = gather_peer_data_guarded_rec(
            0,
            Point::new(0.0, 0.0),
            1.0,
            CAT,
            &grid,
            &caches,
            &table,
            None,
            some,
            Some((&mut ledger, 3)),
            &mut NoopRecorder,
        );
        let (ru, su) = gather_peer_data_checked(
            0,
            Point::new(0.0, 0.0),
            1.0,
            CAT,
            &grid,
            &caches,
            &table,
            None,
            some,
        );
        assert_eq!(sg, su, "an empty ledger must not perturb the exchange");
        assert_eq!(rg.len(), ru.len());
        assert!(ledger.is_empty(), "clean replies book no strikes");
    }

    #[test]
    fn category_filter_applies() {
        let positions = vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0)];
        let (caches, table) = fleet(&positions);
        let grid = NeighborGrid::build(positions, 1.0);
        let (replies, _) = gather_peer_data(
            0,
            Point::new(0.0, 0.0),
            1.0,
            PoiCategory(7),
            &grid,
            &caches,
            &table,
        );
        assert!(replies.is_empty());
    }
}
