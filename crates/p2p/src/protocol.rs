//! The request/reply sharing exchange.

use crate::NeighborGrid;
use airshare_broadcast::{Poi, PoiCategory};
use airshare_cache::HostCache;
use airshare_geom::{Point, Rect};

/// One peer's reply to a share request: its verified regions with their
/// POIs (`⟨p.VR, p.O⟩` in the paper's notation).
#[derive(Clone, Debug)]
pub struct PeerReply {
    /// Replying host id.
    pub peer: usize,
    /// Verified regions and the POIs inside each.
    pub regions: Vec<(Rect, Vec<Poi>)>,
}

/// Traffic accounting for one share exchange.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShareStats {
    /// Peers within range that were contacted.
    pub peers_contacted: usize,
    /// Peers that replied with at least one region.
    pub peers_with_data: usize,
    /// Total regions transferred.
    pub regions_received: usize,
    /// Total POIs transferred.
    pub pois_received: usize,
}

/// Performs the single-hop share exchange for a querying host.
///
/// `caches[i]` must be host `i`'s cache; `grid` must reflect current
/// positions. Returns every non-empty peer reply plus traffic stats.
/// Empty-handed peers are counted as contacted (they cost a request
/// message) but transfer nothing.
pub fn gather_peer_data(
    querier: usize,
    querier_pos: Point,
    range: f64,
    category: PoiCategory,
    grid: &NeighborGrid,
    caches: &[HostCache],
) -> (Vec<PeerReply>, ShareStats) {
    let peers = grid.neighbors_within(querier_pos, range, Some(querier));
    let mut stats = ShareStats {
        peers_contacted: peers.len(),
        ..ShareStats::default()
    };
    let mut replies = Vec::new();
    for peer in peers {
        let regions = caches[peer].share_snapshot(category);
        if regions.is_empty() {
            continue;
        }
        stats.peers_with_data += 1;
        stats.regions_received += regions.len();
        stats.pois_received += regions.iter().map(|(_, p)| p.len()).sum::<usize>();
        replies.push(PeerReply { peer, regions });
    }
    (replies, stats)
}

/// Multi-hop extension of [`gather_peer_data`]: peers relay the share
/// request up to `hops` wireless hops away (flooding with duplicate
/// suppression). The paper confines itself to single-hop exchange and
/// names richer cooperation as future work; this implements the obvious
/// next step so its benefit can be measured (see the `exp_ablations`
/// experiment).
///
/// Positions come from `grid`; contacted peers are counted once each.
/// With `hops == 1` this reduces exactly to [`gather_peer_data`].
pub fn gather_peer_data_multihop(
    querier: usize,
    querier_pos: Point,
    range: f64,
    hops: usize,
    category: PoiCategory,
    grid: &NeighborGrid,
    caches: &[HostCache],
) -> (Vec<PeerReply>, ShareStats) {
    assert!(hops >= 1, "at least one hop");
    let mut visited = vec![false; caches.len()];
    if querier < visited.len() {
        visited[querier] = true;
    }
    let mut frontier: Vec<usize> = grid
        .neighbors_within(querier_pos, range, Some(querier))
        .into_iter()
        .filter(|&i| !std::mem::replace(&mut visited[i], true))
        .collect();
    let mut reached = frontier.clone();
    for _ in 1..hops {
        let mut next = Vec::new();
        for &relay in &frontier {
            for i in grid.neighbors_within(grid.position(relay), range, Some(relay)) {
                if !std::mem::replace(&mut visited[i], true) {
                    next.push(i);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        reached.extend(next.iter().copied());
        frontier = next;
    }

    let mut stats = ShareStats {
        peers_contacted: reached.len(),
        ..ShareStats::default()
    };
    let mut replies = Vec::new();
    for peer in reached {
        let regions = caches[peer].share_snapshot(category);
        if regions.is_empty() {
            continue;
        }
        stats.peers_with_data += 1;
        stats.regions_received += regions.len();
        stats.pois_received += regions.iter().map(|(_, p)| p.len()).sum::<usize>();
        replies.push(PeerReply { peer, regions });
    }
    (replies, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airshare_cache::{CacheContext, RegionEntry, ReplacementPolicy};

    const CAT: PoiCategory = PoiCategory::GAS_STATION;

    fn ctx(p: Point) -> CacheContext {
        CacheContext {
            pos: p,
            heading: None,
            now: 0.0,
        }
    }

    fn cache_with_region(center: Point) -> HostCache {
        let mut c = HostCache::new(10, ReplacementPolicy::default());
        let vr = Rect::centered_square(center, 1.0);
        c.insert(
            CAT,
            RegionEntry::new(vr, [Poi::new(1, center)], 0.0),
            &ctx(center),
        );
        c
    }

    #[test]
    fn gathers_only_in_range_peers() {
        let positions = vec![
            Point::new(0.0, 0.0),  // querier
            Point::new(0.1, 0.0),  // near, has data
            Point::new(50.0, 0.0), // far, has data
        ];
        let caches = vec![
            HostCache::new(10, ReplacementPolicy::default()),
            cache_with_region(Point::new(0.1, 0.0)),
            cache_with_region(Point::new(50.0, 0.0)),
        ];
        let grid = NeighborGrid::build(positions, 1.0);
        let (replies, stats) =
            gather_peer_data(0, Point::new(0.0, 0.0), 1.0, CAT, &grid, &caches);
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].peer, 1);
        assert_eq!(stats.peers_contacted, 1);
        assert_eq!(stats.peers_with_data, 1);
        assert_eq!(stats.pois_received, 1);
    }

    #[test]
    fn empty_caches_cost_contact_but_no_transfer() {
        let positions = vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0)];
        let caches = vec![
            HostCache::new(10, ReplacementPolicy::default()),
            HostCache::new(10, ReplacementPolicy::default()),
        ];
        let grid = NeighborGrid::build(positions, 1.0);
        let (replies, stats) =
            gather_peer_data(0, Point::new(0.0, 0.0), 1.0, CAT, &grid, &caches);
        assert!(replies.is_empty());
        assert_eq!(stats.peers_contacted, 1);
        assert_eq!(stats.peers_with_data, 0);
    }

    #[test]
    fn querier_does_not_reply_to_itself() {
        let positions = vec![Point::new(0.0, 0.0)];
        let caches = vec![cache_with_region(Point::new(0.0, 0.0))];
        let grid = NeighborGrid::build(positions, 1.0);
        let (replies, stats) =
            gather_peer_data(0, Point::new(0.0, 0.0), 5.0, CAT, &grid, &caches);
        assert!(replies.is_empty());
        assert_eq!(stats.peers_contacted, 0);
    }

    #[test]
    fn multihop_reaches_a_chain() {
        // Hosts in a line, each only in range of its neighbors:
        // 0 — 1 — 2 — 3. Data sits on host 3.
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(0.9, 0.0),
            Point::new(1.8, 0.0),
            Point::new(2.7, 0.0),
        ];
        let caches = vec![
            HostCache::new(10, ReplacementPolicy::default()),
            HostCache::new(10, ReplacementPolicy::default()),
            HostCache::new(10, ReplacementPolicy::default()),
            cache_with_region(Point::new(2.7, 0.0)),
        ];
        let grid = NeighborGrid::build(positions, 1.0);
        for (hops, expect_contacted, expect_replies) in [(1, 1, 0), (2, 2, 0), (3, 3, 1)] {
            let (replies, stats) = gather_peer_data_multihop(
                0,
                Point::new(0.0, 0.0),
                1.0,
                hops,
                CAT,
                &grid,
                &caches,
            );
            assert_eq!(stats.peers_contacted, expect_contacted, "hops {hops}");
            assert_eq!(replies.len(), expect_replies, "hops {hops}");
        }
    }

    #[test]
    fn multihop_one_hop_matches_single_hop() {
        let positions = vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0), Point::new(5.0, 5.0)];
        let caches = vec![
            HostCache::new(10, ReplacementPolicy::default()),
            cache_with_region(Point::new(0.1, 0.0)),
            cache_with_region(Point::new(5.0, 5.0)),
        ];
        let grid = NeighborGrid::build(positions, 1.0);
        let (r1, s1) = gather_peer_data(0, Point::new(0.0, 0.0), 1.0, CAT, &grid, &caches);
        let (r2, s2) =
            gather_peer_data_multihop(0, Point::new(0.0, 0.0), 1.0, 1, CAT, &grid, &caches);
        assert_eq!(s1, s2);
        assert_eq!(r1.len(), r2.len());
        assert_eq!(r1[0].peer, r2[0].peer);
    }

    #[test]
    fn multihop_never_revisits_the_querier() {
        // Dense clique: querier reachable from everyone; must not appear
        // in its own replies at any hop depth.
        let positions: Vec<Point> = (0..6).map(|i| Point::new(i as f64 * 0.1, 0.0)).collect();
        let caches: Vec<HostCache> = positions
            .iter()
            .map(|p| cache_with_region(*p))
            .collect();
        let grid = NeighborGrid::build(positions, 1.0);
        let (replies, stats) =
            gather_peer_data_multihop(2, Point::new(0.2, 0.0), 1.0, 4, CAT, &grid, &caches);
        assert_eq!(stats.peers_contacted, 5);
        assert!(replies.iter().all(|r| r.peer != 2));
    }

    #[test]
    fn category_filter_applies() {
        let positions = vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0)];
        let caches = vec![
            HostCache::new(10, ReplacementPolicy::default()),
            cache_with_region(Point::new(0.1, 0.0)), // category 0 only
        ];
        let grid = NeighborGrid::build(positions, 1.0);
        let (replies, _) = gather_peer_data(
            0,
            Point::new(0.0, 0.0),
            1.0,
            PoiCategory(7),
            &grid,
            &caches,
        );
        assert!(replies.is_empty());
    }
}
