//! Single-hop peer discovery and cached-result sharing.
//!
//! The paper's architecture (Figure 3) gives every mobile host a
//! short-range radio (IEEE 802.11b/g class): when a host poses a spatial
//! query it first broadcasts a request to all *single-hop* peers, each of
//! which replies with its verified regions and cached POIs (`⟨p.VR,
//! p.O⟩`). Crucially, "the current location of the neighboring hosts has
//! no specific significance, as long as they are within the communication
//! range" — peers contribute *where their data is*, not where they are.
//!
//! * [`NeighborGrid`] — a uniform spatial hash answering "which hosts are
//!   within `r` of this point" in O(output) for `r ≤ cell size`; the
//!   simulator rebuilds it as hosts move.
//! * [`gather_peer_data`] — the request/reply exchange, with
//!   [`airshare_obs::ShareStats`] accounting (peers contacted, regions
//!   and POIs transferred) so experiments can report P2P traffic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
mod protocol;

pub use grid::NeighborGrid;
pub use protocol::{
    gather_peer_data, gather_peer_data_checked, gather_peer_data_checked_rec,
    gather_peer_data_guarded_rec, gather_peer_data_multihop, gather_peer_data_multihop_checked,
    gather_peer_data_multihop_checked_rec, gather_peer_data_multihop_guarded_rec,
    sanitize_id_regions, PeerReply, QuarantineGuard, ShareFaults,
};
#[allow(deprecated)]
pub use protocol::sanitize_regions;
