//! Uniform-grid neighbor discovery with incremental maintenance.
//!
//! The grid survives across epochs: [`NeighborGrid::refresh_active`]
//! re-bins only the hosts whose cell (or online flag) changed since the
//! last refresh, against retained buffers — no per-epoch clone of the
//! position column and no from-scratch rebuild. Member lists are kept
//! sorted by host id, which makes an incrementally-maintained grid
//! *enumerate neighbors in exactly the order* a full
//! [`NeighborGrid::build_active`] would: the full rebuild inserts hosts
//! in increasing id order, so per-cell lists come out id-sorted either
//! way. That ordering invariant is what keeps the simulator's reports
//! bit-identical whichever maintenance path produced the grid (the
//! debug-assert oracle in `refresh_active` checks it on every refresh).

use airshare_geom::{Point, Rect};
use std::collections::HashMap;

/// Sentinel cell for hosts that are not indexed (offline, or not yet
/// refreshed in).
const NOT_INDEXED: (i64, i64) = (i64::MIN, i64::MIN);

/// Dense storage is used while the extent stays under this many cells
/// per host (with a floor for small fleets); past it the grid falls
/// back to a sparse hash map, trading lookup speed for bounded memory.
fn dense_cell_cap(hosts: usize) -> i128 {
    (8 * hosts.max(8_192)) as i128
}

/// A spatial hash over host positions.
///
/// Cells are squares of side `cell`; a radius-`r` disk query inspects the
/// `⌈r/cell⌉`-ring of cells around the query point. Pick `cell` equal to
/// the maximum transmission range for O(occupants) queries.
///
/// Per-cell member lists are stored in a *counting-sort/bucket* layout:
/// a dense `Vec` of cells spanning the world's extent (direct indexing,
/// no hashing on the hot path), with id-sorted members per cell. Inputs
/// whose extent would need an unreasonable number of cells fall back to
/// a sparse `HashMap` with identical semantics.
#[derive(Clone, Debug)]
pub struct NeighborGrid {
    cell: f64,
    positions: Vec<Point>,
    /// Each host's current cell, or [`NOT_INDEXED`]. This is the delta
    /// detector: a refresh re-bins host `i` iff its recomputed cell
    /// differs from `cell_of[i]`.
    cell_of: Vec<(i64, i64)>,
    store: BucketStore,
}

/// The per-cell member lists behind the grid.
#[derive(Clone, Debug)]
enum BucketStore {
    /// Cells spanning `[base, base + (nx, ny))`, row-major. Lists keep
    /// their allocations across refreshes.
    Dense {
        base: (i64, i64),
        nx: i64,
        ny: i64,
        cells: Vec<Vec<u32>>,
    },
    /// Unbounded-extent fallback; stale empty lists are retained so
    /// their allocations get reused.
    Sparse(HashMap<(i64, i64), Vec<u32>>),
}

impl BucketStore {
    /// An empty store sized for keys in `[min, max]` (inclusive), dense
    /// when the extent fits the cap for `hosts`.
    fn with_extent(min: (i64, i64), max: (i64, i64), hosts: usize) -> Self {
        if min.0 > max.0 || min.1 > max.1 {
            // No indexed hosts: a zero-extent dense store; any later
            // insert grows it.
            return BucketStore::Dense {
                base: (0, 0),
                nx: 0,
                ny: 0,
                cells: Vec::new(),
            };
        }
        let nx = (max.0 as i128 - min.0 as i128) + 1;
        let ny = (max.1 as i128 - min.1 as i128) + 1;
        if nx * ny <= dense_cell_cap(hosts) {
            let total = (nx * ny) as usize;
            BucketStore::Dense {
                base: min,
                nx: nx as i64,
                ny: ny as i64,
                cells: (0..total).map(|_| Vec::new()).collect(),
            }
        } else {
            BucketStore::Sparse(HashMap::new())
        }
    }

    /// Whether `key` can be stored without growing the extent.
    fn in_range(&self, key: (i64, i64)) -> bool {
        match self {
            BucketStore::Dense { base, nx, ny, .. } => {
                let dx = key.0 as i128 - base.0 as i128;
                let dy = key.1 as i128 - base.1 as i128;
                dx >= 0 && dx < *nx as i128 && dy >= 0 && dy < *ny as i128
            }
            BucketStore::Sparse(_) => true,
        }
    }

    /// Members of `key`'s cell, id-sorted; empty when out of range.
    fn get(&self, key: (i64, i64)) -> &[u32] {
        match self {
            BucketStore::Dense { base, nx, ny, cells } => {
                let dx = key.0 as i128 - base.0 as i128;
                let dy = key.1 as i128 - base.1 as i128;
                if dx >= 0 && dx < *nx as i128 && dy >= 0 && dy < *ny as i128 {
                    &cells[(dy * *nx as i128 + dx) as usize]
                } else {
                    &[]
                }
            }
            BucketStore::Sparse(map) => map.get(&key).map_or(&[], Vec::as_slice),
        }
    }

    /// The cell behind `key`, which must be in range.
    fn cell_mut(&mut self, key: (i64, i64)) -> &mut Vec<u32> {
        match self {
            BucketStore::Dense { base, nx, cells, .. } => {
                let dx = key.0 - base.0;
                let dy = key.1 - base.1;
                &mut cells[(dy * *nx + dx) as usize]
            }
            BucketStore::Sparse(map) => map.entry(key).or_default(),
        }
    }

    /// Inserts `host` into `key`'s cell, keeping the list id-sorted.
    /// The key must be in range.
    fn insert(&mut self, key: (i64, i64), host: u32) {
        let v = self.cell_mut(key);
        match v.binary_search(&host) {
            Ok(_) => {}
            Err(at) => v.insert(at, host),
        }
    }

    /// Appends `host` to `key`'s cell. Only valid when hosts are pushed
    /// in increasing id order (the full-rebuild path), which keeps the
    /// list sorted without a search.
    fn push_ascending(&mut self, key: (i64, i64), host: u32) {
        let v = self.cell_mut(key);
        debug_assert!(v.last().is_none_or(|&last| last < host));
        v.push(host);
    }

    /// Removes `host` from `key`'s cell (a no-op if absent).
    fn remove(&mut self, key: (i64, i64), host: u32) {
        if !self.in_range(key) {
            return;
        }
        let v = self.cell_mut(key);
        if let Ok(at) = v.binary_search(&host) {
            v.remove(at);
        }
    }

    /// Empties `key`'s cell, keeping its allocation.
    fn clear_cell(&mut self, key: (i64, i64)) {
        if self.in_range(key) {
            self.cell_mut(key).clear();
        }
    }
}

impl NeighborGrid {
    /// Builds a grid over host positions (index = host id).
    pub fn build(positions: Vec<Point>, cell: f64) -> Self {
        Self::build_filtered(positions, cell, |_| true)
    }

    /// Builds a grid where only hosts with `online[i] == true` are
    /// discoverable. Positions are kept for *all* hosts (so
    /// [`NeighborGrid::position`] stays total — multihop relays need
    /// it), but offline hosts never appear in any neighbor query:
    /// a crashed or not-yet-joined host is radio-silent.
    pub fn build_active(positions: Vec<Point>, cell: f64, online: &[bool]) -> Self {
        assert_eq!(positions.len(), online.len(), "one flag per host");
        Self::build_filtered(positions, cell, |i| online[i])
    }

    fn build_filtered(positions: Vec<Point>, cell: f64, keep: impl Fn(usize) -> bool) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "cell size must be positive");
        assert!(positions.len() < u32::MAX as usize, "host ids must fit u32");
        let n = positions.len();
        let mut min = (i64::MAX, i64::MAX);
        let mut max = (i64::MIN, i64::MIN);
        let mut cell_of = vec![NOT_INDEXED; n];
        for (i, p) in positions.iter().enumerate() {
            if keep(i) {
                let k = Self::key(*p, cell);
                min = (min.0.min(k.0), min.1.min(k.1));
                max = (max.0.max(k.0), max.1.max(k.1));
                cell_of[i] = k;
            }
        }
        let mut store = BucketStore::with_extent(min, max, n);
        for (i, &k) in cell_of.iter().enumerate() {
            if k != NOT_INDEXED {
                store.push_ascending(k, i as u32);
            }
        }
        Self {
            cell,
            positions,
            cell_of,
            store,
        }
    }

    /// An empty grid pre-sized to `bounds` so refreshes of a
    /// `hosts`-sized fleet whose positions stay inside `bounds` never
    /// reallocate the cell array. The first
    /// [`NeighborGrid::refresh_active`] populates it.
    pub fn with_bounds(bounds: &Rect, cell: f64, hosts: usize) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "cell size must be positive");
        let min = Self::key(Point::new(bounds.x1, bounds.y1), cell);
        let max = Self::key(Point::new(bounds.x2, bounds.y2), cell);
        Self {
            cell,
            positions: Vec::new(),
            cell_of: Vec::new(),
            store: BucketStore::with_extent(min, max, hosts),
        }
    }

    fn key(p: Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Number of indexed hosts.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// The grid indexes no hosts.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Stored position of host `i`.
    pub fn position(&self, i: usize) -> Point {
        self.positions[i]
    }

    /// Brings the grid up to date with the fleet's current positions and
    /// online flags, re-binning only hosts whose cell or online state
    /// changed since the last refresh — the steady-state maintenance
    /// path of the epoch loop. Positions are copied into the grid's
    /// retained buffer (no allocation once sized); the result is
    /// *identical* — same members, same per-cell id order, hence the
    /// same [`NeighborGrid::neighbors_within`] output order — to a
    /// from-scratch [`NeighborGrid::build_active`] over the same input,
    /// which `debug_assert!`s verify on every refresh.
    pub fn refresh_active(&mut self, positions: &[Point], online: &[bool]) {
        assert_eq!(positions.len(), online.len(), "one flag per host");
        assert!(positions.len() < u32::MAX as usize, "host ids must fit u32");
        if self.positions.len() != positions.len() {
            // Fleet size changed (first refresh, usually): evict
            // everything and start over at the new size.
            for i in 0..self.cell_of.len() {
                let k = self.cell_of[i];
                if k != NOT_INDEXED {
                    self.store.clear_cell(k);
                }
            }
            self.positions.clear();
            self.positions.extend_from_slice(positions);
            self.cell_of.clear();
            self.cell_of.resize(positions.len(), NOT_INDEXED);
            self.rebin_all(online);
        } else {
            self.positions.copy_from_slice(positions);
            // A host drifting past the pre-sized extent forces a grown
            // rebuild; world-clamped mobility never does.
            let grow = online.iter().enumerate().any(|(i, &on)| {
                on && !self.store.in_range(Self::key(self.positions[i], self.cell))
            });
            if grow {
                for k in self.cell_of.iter_mut() {
                    if *k != NOT_INDEXED {
                        self.store.clear_cell(*k);
                    }
                    *k = NOT_INDEXED;
                }
                self.rebin_all(online);
            } else {
                for (i, &on) in online.iter().enumerate() {
                    let new_key = if on {
                        Self::key(self.positions[i], self.cell)
                    } else {
                        NOT_INDEXED
                    };
                    let old_key = self.cell_of[i];
                    if old_key == new_key {
                        continue;
                    }
                    if old_key != NOT_INDEXED {
                        self.store.remove(old_key, i as u32);
                    }
                    if new_key != NOT_INDEXED {
                        self.store.insert(new_key, i as u32);
                    }
                    self.cell_of[i] = new_key;
                }
            }
        }
        // Full-rebuild oracle: in debug builds, every refresh is checked
        // against a from-scratch build over the same input.
        debug_assert!(self.matches_full_rebuild(online));
    }

    /// Re-bins every online host from scratch into a store sized to the
    /// current positions. `cell_of` must be all-[`NOT_INDEXED`] and the
    /// store's occupied cells already cleared.
    fn rebin_all(&mut self, online: &[bool]) {
        let mut min = (i64::MAX, i64::MAX);
        let mut max = (i64::MIN, i64::MIN);
        for (i, p) in self.positions.iter().enumerate() {
            if online[i] {
                let k = Self::key(*p, self.cell);
                min = (min.0.min(k.0), min.1.min(k.1));
                max = (max.0.max(k.0), max.1.max(k.1));
                self.cell_of[i] = k;
            }
        }
        if !self
            .cell_of
            .iter()
            .all(|&k| k == NOT_INDEXED || self.store.in_range(k))
        {
            self.store = BucketStore::with_extent(min, max, self.positions.len());
        }
        for (i, &k) in self.cell_of.iter().enumerate() {
            if k != NOT_INDEXED {
                self.store.push_ascending(k, i as u32);
            }
        }
    }

    /// Whether this grid is member-for-member identical (same cells,
    /// same id order) to a fresh [`NeighborGrid::build_active`] over its
    /// current positions. The incremental paths `debug_assert!` this.
    fn matches_full_rebuild(&self, online: &[bool]) -> bool {
        let fresh = Self::build_active(self.positions.clone(), self.cell, online);
        let mut indexed = 0usize;
        for (i, &k) in fresh.cell_of.iter().enumerate() {
            if self.cell_of[i] != k {
                return false;
            }
            if k != NOT_INDEXED {
                indexed += 1;
                if self.store.get(k) != fresh.store.get(k) {
                    return false;
                }
            }
        }
        // No phantom members: every indexed host was visited above, so
        // matching list contents plus a matching total rules out strays.
        let total: usize = self
            .cell_of
            .iter()
            .filter(|&&k| k != NOT_INDEXED)
            .count();
        total == indexed
    }

    /// Host ids within Euclidean distance `range` of `center`, excluding
    /// `exclude` (the querying host itself). Order is unspecified.
    pub fn neighbors_within(
        &self,
        center: Point,
        range: f64,
        exclude: Option<usize>,
    ) -> Vec<usize> {
        let mut out = Vec::new();
        let r_sq = range * range;
        let reach = (range / self.cell).ceil() as i64;
        let (cx, cy) = Self::key(center, self.cell);
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                for &i in self.store.get((cx.saturating_add(dx), cy.saturating_add(dy))) {
                    let i = i as usize;
                    if Some(i) != exclude && self.positions[i].distance_sq(center) <= r_sq {
                        out.push(i);
                    }
                }
            }
        }
        out
    }

    /// Moves one host to a new position (rebuilding its bucket links).
    pub fn update_position(&mut self, i: usize, new_pos: Point) {
        let new_key = Self::key(new_pos, self.cell);
        self.positions[i] = new_pos;
        let old_key = self.cell_of[i];
        if old_key == new_key {
            return;
        }
        if old_key != NOT_INDEXED {
            self.store.remove(old_key, i as u32);
        }
        if !self.store.in_range(new_key) {
            self.grow_to(new_key);
        }
        self.store.insert(new_key, i as u32);
        self.cell_of[i] = new_key;
    }

    /// Expands a dense store's extent to cover `key` (or degrades to
    /// sparse past the cell cap), preserving every member list.
    fn grow_to(&mut self, key: (i64, i64)) {
        let BucketStore::Dense { base, nx, ny, cells } = &mut self.store else {
            return;
        };
        let (min, max) = if *nx == 0 || *ny == 0 {
            (key, key)
        } else {
            (
                (base.0.min(key.0), base.1.min(key.1)),
                (
                    (base.0 + *nx - 1).max(key.0),
                    (base.1 + *ny - 1).max(key.1),
                ),
            )
        };
        let old_cells = std::mem::take(cells);
        let (old_base, old_nx, old_ny) = (*base, *nx, *ny);
        let mut grown = BucketStore::with_extent(min, max, self.positions.len());
        for (idx, members) in old_cells.into_iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let k = (
                old_base.0 + (idx as i64 % old_nx.max(1)),
                old_base.1 + (idx as i64 / old_nx.max(1)),
            );
            debug_assert!(idx as i64 / old_nx.max(1) < old_ny);
            *grown.cell_mut(k) = members;
        }
        self.store = grown;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(n: usize) -> Vec<Point> {
        let mut state = 11u64;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let x = (state >> 16 & 0xFFFF) as f64 / 6553.6;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let y = (state >> 16 & 0xFFFF) as f64 / 6553.6;
                Point::new(x, y)
            })
            .collect()
    }

    #[test]
    fn neighbors_match_brute_force() {
        let pts = scatter(500);
        let g = NeighborGrid::build(pts.clone(), 1.0);
        let center = Point::new(5.0, 5.0);
        for range in [0.3, 1.0, 2.5] {
            let mut got = g.neighbors_within(center, range, None);
            got.sort_unstable();
            let mut want: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.distance(center) <= range)
                .map(|(i, _)| i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "range {range}");
        }
    }

    #[test]
    fn exclude_omits_self() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0)];
        let g = NeighborGrid::build(pts, 1.0);
        let n = g.neighbors_within(Point::new(0.0, 0.0), 1.0, Some(0));
        assert_eq!(n, vec![1]);
    }

    #[test]
    fn boundary_distance_is_inclusive() {
        let pts = vec![Point::new(3.0, 4.0)];
        let g = NeighborGrid::build(pts, 1.0);
        assert_eq!(g.neighbors_within(Point::ORIGIN, 5.0, None).len(), 1);
        assert_eq!(g.neighbors_within(Point::ORIGIN, 4.999, None).len(), 0);
    }

    #[test]
    fn update_position_relocates_host() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(10.0, 10.0)];
        let mut g = NeighborGrid::build(pts, 1.0);
        assert!(g.neighbors_within(Point::new(10.0, 10.0), 0.5, None).contains(&1));
        g.update_position(1, Point::new(0.2, 0.0));
        assert!(g.neighbors_within(Point::new(10.0, 10.0), 0.5, None).is_empty());
        let near_origin = g.neighbors_within(Point::ORIGIN, 0.5, None);
        assert!(near_origin.contains(&0) && near_origin.contains(&1));
        assert_eq!(g.position(1), Point::new(0.2, 0.0));
    }

    #[test]
    fn update_position_can_leave_the_built_extent() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(3.0, 3.0)];
        let mut g = NeighborGrid::build(pts, 1.0);
        g.update_position(0, Point::new(-50.0, 120.0));
        assert_eq!(
            g.neighbors_within(Point::new(-50.0, 120.0), 0.5, None),
            vec![0]
        );
        assert_eq!(g.neighbors_within(Point::new(3.0, 3.0), 0.5, None), vec![1]);
    }

    #[test]
    fn negative_coordinates_hash_correctly() {
        let pts = vec![Point::new(-0.5, -0.5), Point::new(0.5, 0.5)];
        let g = NeighborGrid::build(pts, 1.0);
        let n = g.neighbors_within(Point::new(-0.4, -0.4), 0.3, None);
        assert_eq!(n, vec![0]);
    }

    #[test]
    fn offline_hosts_are_invisible_but_addressable() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0), Point::new(0.2, 0.0)];
        let online = [true, false, true];
        let g = NeighborGrid::build_active(pts, 1.0, &online);
        let mut n = g.neighbors_within(Point::ORIGIN, 1.0, None);
        n.sort_unstable();
        assert_eq!(n, vec![0, 2], "offline host 1 must not be discoverable");
        // Positions stay total: relays can still be located by id.
        assert_eq!(g.position(1), Point::new(0.1, 0.0));
        assert_eq!(g.len(), 3);
        // All-online build_active matches plain build.
        let pts2 = vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0)];
        let a = NeighborGrid::build_active(pts2.clone(), 1.0, &[true, true]);
        let b = NeighborGrid::build(pts2, 1.0);
        let mut na = a.neighbors_within(Point::ORIGIN, 1.0, None);
        let mut nb = b.neighbors_within(Point::ORIGIN, 1.0, None);
        na.sort_unstable();
        nb.sort_unstable();
        assert_eq!(na, nb);
    }

    #[test]
    fn empty_grid() {
        let g = NeighborGrid::build(Vec::new(), 1.0);
        assert!(g.is_empty());
        assert!(g.neighbors_within(Point::ORIGIN, 10.0, None).is_empty());
    }

    #[test]
    fn refresh_matches_fresh_build() {
        let mut pts = scatter(200);
        let mut online = vec![true; 200];
        let world = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let mut g = NeighborGrid::with_bounds(&world, 1.0, 200);
        let mut state = 77u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 16
        };
        for round in 0..12 {
            // Drift some hosts, toggle some flags.
            for _ in 0..40 {
                let i = (rng() as usize) % pts.len();
                pts[i] = Point::new((rng() % 10_000) as f64 / 1000.0, (rng() % 10_000) as f64 / 1000.0);
            }
            for _ in 0..10 {
                let i = (rng() as usize) % online.len();
                online[i] = !online[i];
            }
            g.refresh_active(&pts, &online);
            let fresh = NeighborGrid::build_active(pts.clone(), 1.0, &online);
            for probe in 0..20 {
                let c = Point::new(
                    (probe % 5) as f64 * 2.0 + 0.5,
                    (probe / 5) as f64 * 2.0 + 0.5,
                );
                assert_eq!(
                    g.neighbors_within(c, 1.5, Some(probe)),
                    fresh.neighbors_within(c, 1.5, Some(probe)),
                    "round {round}, probe {probe}: incremental grid diverged \
                     from full rebuild (order included)"
                );
            }
        }
    }

    #[test]
    fn refresh_grows_past_the_declared_bounds() {
        let world = Rect::from_coords(0.0, 0.0, 4.0, 4.0);
        let mut g = NeighborGrid::with_bounds(&world, 1.0, 3);
        let pts = vec![Point::new(1.0, 1.0), Point::new(3.0, 3.0), Point::new(2.0, 2.0)];
        g.refresh_active(&pts, &[true, true, true]);
        // One host escapes the declared world; the grid must follow it.
        let pts2 = vec![Point::new(1.0, 1.0), Point::new(90.0, -6.0), Point::new(2.0, 2.0)];
        g.refresh_active(&pts2, &[true, true, true]);
        assert_eq!(g.neighbors_within(Point::new(90.0, -6.0), 0.5, None), vec![1]);
        assert_eq!(g.neighbors_within(Point::new(1.0, 1.0), 0.5, None), vec![0]);
    }

    #[test]
    fn huge_extent_falls_back_to_sparse_storage() {
        // Two points ~1e9 cells apart: a dense array would be absurd;
        // the sparse fallback must answer identically.
        let pts = vec![Point::new(0.0, 0.0), Point::new(1e9, 1e9)];
        let g = NeighborGrid::build(pts, 1.0);
        assert!(matches!(g.store, BucketStore::Sparse(_)));
        assert_eq!(g.neighbors_within(Point::new(0.1, 0.1), 1.0, None), vec![0]);
        assert_eq!(g.neighbors_within(Point::new(1e9, 1e9), 1.0, None), vec![1]);
    }

    #[test]
    fn dense_layout_is_used_for_world_sized_extents() {
        let pts = scatter(500);
        let g = NeighborGrid::build(pts, 1.0);
        assert!(matches!(g.store, BucketStore::Dense { .. }));
    }
}
