//! Uniform-grid neighbor discovery.

use airshare_geom::Point;
use std::collections::HashMap;

/// A spatial hash over host positions.
///
/// Cells are squares of side `cell`; a radius-`r` disk query inspects the
/// `⌈r/cell⌉`-ring of cells around the query point. Pick `cell` equal to
/// the maximum transmission range for O(occupants) queries.
#[derive(Clone, Debug)]
pub struct NeighborGrid {
    cell: f64,
    buckets: HashMap<(i64, i64), Vec<usize>>,
    positions: Vec<Point>,
}

impl NeighborGrid {
    /// Builds a grid over host positions (index = host id).
    pub fn build(positions: Vec<Point>, cell: f64) -> Self {
        Self::build_filtered(positions, cell, |_| true)
    }

    /// Builds a grid where only hosts with `online[i] == true` are
    /// discoverable. Positions are kept for *all* hosts (so
    /// [`NeighborGrid::position`] stays total — multihop relays need
    /// it), but offline hosts never appear in any neighbor query:
    /// a crashed or not-yet-joined host is radio-silent.
    pub fn build_active(positions: Vec<Point>, cell: f64, online: &[bool]) -> Self {
        assert_eq!(positions.len(), online.len(), "one flag per host");
        Self::build_filtered(positions, cell, |i| online[i])
    }

    fn build_filtered(positions: Vec<Point>, cell: f64, keep: impl Fn(usize) -> bool) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "cell size must be positive");
        let mut buckets: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (i, p) in positions.iter().enumerate() {
            if keep(i) {
                buckets.entry(Self::key(*p, cell)).or_default().push(i);
            }
        }
        Self {
            cell,
            buckets,
            positions,
        }
    }

    fn key(p: Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Number of indexed hosts.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// The grid indexes no hosts.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Stored position of host `i`.
    pub fn position(&self, i: usize) -> Point {
        self.positions[i]
    }

    /// Host ids within Euclidean distance `range` of `center`, excluding
    /// `exclude` (the querying host itself). Order is unspecified.
    pub fn neighbors_within(
        &self,
        center: Point,
        range: f64,
        exclude: Option<usize>,
    ) -> Vec<usize> {
        let mut out = Vec::new();
        let r_sq = range * range;
        let reach = (range / self.cell).ceil() as i64;
        let (cx, cy) = Self::key(center, self.cell);
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                if let Some(ids) = self.buckets.get(&(cx + dx, cy + dy)) {
                    for &i in ids {
                        if Some(i) != exclude && self.positions[i].distance_sq(center) <= r_sq {
                            out.push(i);
                        }
                    }
                }
            }
        }
        out
    }

    /// Moves one host to a new position (rebuilding its bucket links).
    pub fn update_position(&mut self, i: usize, new_pos: Point) {
        let old_key = Self::key(self.positions[i], self.cell);
        let new_key = Self::key(new_pos, self.cell);
        self.positions[i] = new_pos;
        if old_key == new_key {
            return;
        }
        if let Some(v) = self.buckets.get_mut(&old_key) {
            if let Some(pos) = v.iter().position(|&x| x == i) {
                v.swap_remove(pos);
            }
            if v.is_empty() {
                self.buckets.remove(&old_key);
            }
        }
        self.buckets.entry(new_key).or_default().push(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(n: usize) -> Vec<Point> {
        let mut state = 11u64;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let x = (state >> 16 & 0xFFFF) as f64 / 6553.6;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let y = (state >> 16 & 0xFFFF) as f64 / 6553.6;
                Point::new(x, y)
            })
            .collect()
    }

    #[test]
    fn neighbors_match_brute_force() {
        let pts = scatter(500);
        let g = NeighborGrid::build(pts.clone(), 1.0);
        let center = Point::new(5.0, 5.0);
        for range in [0.3, 1.0, 2.5] {
            let mut got = g.neighbors_within(center, range, None);
            got.sort_unstable();
            let mut want: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.distance(center) <= range)
                .map(|(i, _)| i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "range {range}");
        }
    }

    #[test]
    fn exclude_omits_self() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0)];
        let g = NeighborGrid::build(pts, 1.0);
        let n = g.neighbors_within(Point::new(0.0, 0.0), 1.0, Some(0));
        assert_eq!(n, vec![1]);
    }

    #[test]
    fn boundary_distance_is_inclusive() {
        let pts = vec![Point::new(3.0, 4.0)];
        let g = NeighborGrid::build(pts, 1.0);
        assert_eq!(g.neighbors_within(Point::ORIGIN, 5.0, None).len(), 1);
        assert_eq!(g.neighbors_within(Point::ORIGIN, 4.999, None).len(), 0);
    }

    #[test]
    fn update_position_relocates_host() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(10.0, 10.0)];
        let mut g = NeighborGrid::build(pts, 1.0);
        assert!(g.neighbors_within(Point::new(10.0, 10.0), 0.5, None).contains(&1));
        g.update_position(1, Point::new(0.2, 0.0));
        assert!(g.neighbors_within(Point::new(10.0, 10.0), 0.5, None).is_empty());
        let near_origin = g.neighbors_within(Point::ORIGIN, 0.5, None);
        assert!(near_origin.contains(&0) && near_origin.contains(&1));
        assert_eq!(g.position(1), Point::new(0.2, 0.0));
    }

    #[test]
    fn negative_coordinates_hash_correctly() {
        let pts = vec![Point::new(-0.5, -0.5), Point::new(0.5, 0.5)];
        let g = NeighborGrid::build(pts, 1.0);
        let n = g.neighbors_within(Point::new(-0.4, -0.4), 0.3, None);
        assert_eq!(n, vec![0]);
    }

    #[test]
    fn offline_hosts_are_invisible_but_addressable() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0), Point::new(0.2, 0.0)];
        let online = [true, false, true];
        let g = NeighborGrid::build_active(pts, 1.0, &online);
        let mut n = g.neighbors_within(Point::ORIGIN, 1.0, None);
        n.sort_unstable();
        assert_eq!(n, vec![0, 2], "offline host 1 must not be discoverable");
        // Positions stay total: relays can still be located by id.
        assert_eq!(g.position(1), Point::new(0.1, 0.0));
        assert_eq!(g.len(), 3);
        // All-online build_active matches plain build.
        let pts2 = vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0)];
        let a = NeighborGrid::build_active(pts2.clone(), 1.0, &[true, true]);
        let b = NeighborGrid::build(pts2, 1.0);
        let mut na = a.neighbors_within(Point::ORIGIN, 1.0, None);
        let mut nb = b.neighbors_within(Point::ORIGIN, 1.0, None);
        na.sort_unstable();
        nb.sort_unstable();
        assert_eq!(na, nb);
    }

    #[test]
    fn empty_grid() {
        let g = NeighborGrid::build(Vec::new(), 1.0);
        assert!(g.is_empty());
        assert!(g.neighbors_within(Point::ORIGIN, 10.0, None).is_empty());
    }
}
