//! Property tests: incremental neighbor-grid maintenance must be
//! result-identical — members, *and enumeration order* — to a full
//! `build_active` rebuild, across arbitrary churn/mobility sequences.
//!
//! Order matters as much as membership: the simulator's reply streams
//! (and therefore its reports) depend on the order `neighbors_within`
//! returns hosts in, so the incremental grid must reproduce the full
//! rebuild's output byte for byte, not just set-for-set.

use airshare_geom::{Point, Rect};
use airshare_p2p::NeighborGrid;
use proptest::prelude::*;

/// One boundary's worth of fleet change.
#[derive(Clone, Debug)]
struct EpochDelta {
    /// (host, new position) mobility steps.
    moves: Vec<(usize, f64, f64)>,
    /// Hosts whose online flag flips (crash or restart).
    flips: Vec<usize>,
}

fn delta_strategy(hosts: usize) -> impl Strategy<Value = EpochDelta> {
    (
        prop::collection::vec(
            (0..hosts, -2.0f64..12.0, -2.0f64..12.0),
            0..hosts.max(1),
        ),
        prop::collection::vec(0..hosts, 0..hosts.max(1)),
    )
        .prop_map(|(moves, flips)| EpochDelta { moves, flips })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drive a retained grid through random churn + mobility epochs and
    /// compare every refresh against a from-scratch rebuild, probing
    /// neighbor queries whose result order must match exactly.
    #[test]
    fn refresh_active_is_identical_to_full_rebuild(
        hosts in 1usize..40,
        seed_pts in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..40),
        epochs in prop::collection::vec(delta_strategy(40), 1..12),
        cell in 0.25f64..3.0,
    ) {
        let n = hosts.min(seed_pts.len());
        let mut positions: Vec<Point> = seed_pts[..n]
            .iter()
            .map(|&(x, y)| Point::new(x, y))
            .collect();
        let mut online = vec![true; n];
        // Pre-sized to the nominal world; some moves deliberately land
        // outside it to exercise the grow path.
        let world = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let mut grid = NeighborGrid::with_bounds(&world, cell, n);

        for (e, delta) in epochs.iter().enumerate() {
            for &(h, x, y) in &delta.moves {
                if h < n {
                    positions[h] = Point::new(x, y);
                }
            }
            for &h in &delta.flips {
                if h < n {
                    online[h] = !online[h];
                }
            }
            grid.refresh_active(&positions, &online);
            let fresh = NeighborGrid::build_active(positions.clone(), cell, &online);

            // Probe from every host's position plus fixed grid points.
            for (h, &p) in positions.iter().enumerate() {
                for range in [cell * 0.6, cell * 1.4, cell * 3.0] {
                    prop_assert_eq!(
                        grid.neighbors_within(p, range, Some(h)),
                        fresh.neighbors_within(p, range, Some(h)),
                        "epoch {} host {} range {}: incremental != rebuild",
                        e, h, range
                    );
                }
            }
            for gx in 0..4 {
                for gy in 0..4 {
                    let c = Point::new(gx as f64 * 3.0, gy as f64 * 3.0);
                    prop_assert_eq!(
                        grid.neighbors_within(c, cell * 2.0, None),
                        fresh.neighbors_within(c, cell * 2.0, None),
                        "epoch {} probe ({},{}): incremental != rebuild",
                        e, gx, gy
                    );
                }
            }
            for (h, &p) in positions.iter().enumerate() {
                prop_assert_eq!(grid.position(h), p);
            }
        }
    }

    /// A grid that starts empty (every host offline, the LiveWorld
    /// case) and admits hosts one boundary at a time stays identical to
    /// full rebuilds throughout.
    #[test]
    fn staged_admission_matches_rebuild(
        pts in prop::collection::vec((0.0f64..8.0, 0.0f64..8.0), 1..30),
        order in prop::collection::vec(0usize..30, 1..60),
    ) {
        let n = pts.len();
        let positions: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let mut online = vec![false; n];
        let world = Rect::from_coords(0.0, 0.0, 8.0, 8.0);
        let mut grid = NeighborGrid::with_bounds(&world, 1.0, n);
        grid.refresh_active(&positions, &online);
        prop_assert!(grid.neighbors_within(Point::new(4.0, 4.0), 10.0, None).is_empty());

        for &h in &order {
            if h < n {
                online[h] = true;
            }
            grid.refresh_active(&positions, &online);
            let fresh = NeighborGrid::build_active(positions.clone(), 1.0, &online);
            prop_assert_eq!(
                grid.neighbors_within(Point::new(4.0, 4.0), 10.0, None),
                fresh.neighbors_within(Point::new(4.0, 4.0), 10.0, None)
            );
        }
    }
}

/// `update_position` composes with `refresh_active`: a mid-epoch manual
/// move followed by a boundary refresh converges to the rebuilt state.
#[test]
fn manual_moves_then_refresh_converge() {
    let mut positions = vec![
        Point::new(1.0, 1.0),
        Point::new(2.0, 2.0),
        Point::new(3.0, 3.0),
    ];
    let online = vec![true, true, true];
    let world = Rect::from_coords(0.0, 0.0, 4.0, 4.0);
    let mut grid = NeighborGrid::with_bounds(&world, 1.0, 3);
    grid.refresh_active(&positions, &online);

    grid.update_position(0, Point::new(3.1, 3.1));
    assert!(grid
        .neighbors_within(Point::new(3.0, 3.0), 0.5, None)
        .contains(&0));

    positions[0] = Point::new(0.2, 0.2);
    grid.refresh_active(&positions, &online);
    let fresh = NeighborGrid::build_active(positions.clone(), 1.0, &online);
    for probe in &positions {
        assert_eq!(
            grid.neighbors_within(*probe, 2.0, None),
            fresh.neighbors_within(*probe, 2.0, None)
        );
    }
}
