//! Property-based tests for the Hilbert curve codec and decomposition.

use airshare_geom::{Point, Rect};
use airshare_hilbert::{CellRect, Grid, HilbertCurve};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip_any_order(order in 1u32..=16, seed in any::<u64>()) {
        let c = HilbertCurve::new(order);
        let d = seed % c.cell_count();
        let (x, y) = c.decode(d);
        prop_assert!(x < c.side() && y < c.side());
        prop_assert_eq!(c.encode(x, y), d);
    }

    #[test]
    fn locality_consecutive_cells_adjacent(order in 2u32..=12, seed in any::<u64>()) {
        let c = HilbertCurve::new(order);
        let d = seed % (c.cell_count() - 1);
        let (x0, y0) = c.decode(d);
        let (x1, y1) = c.decode(d + 1);
        let manhattan = (x0 as i64 - x1 as i64).abs() + (y0 as i64 - y1 as i64).abs();
        prop_assert_eq!(manhattan, 1);
    }

    #[test]
    fn interval_decomposition_exact(
        order in 2u32..=6,
        ax in 0u32..64, ay in 0u32..64, bx in 0u32..64, by in 0u32..64,
    ) {
        let c = HilbertCurve::new(order);
        let m = c.side() - 1;
        let rect = CellRect::new(
            (ax % c.side()).min(bx % c.side()).min(m),
            (ay % c.side()).min(by % c.side()).min(m),
            (ax % c.side()).max(bx % c.side()).min(m),
            (ay % c.side()).max(by % c.side()).min(m),
        );
        let ivs = c.intervals_for_rect(&rect);
        // Total interval length equals the cell count.
        let total: u64 = ivs.iter().map(|&(lo, hi)| hi - lo + 1).sum();
        prop_assert_eq!(total, rect.cell_count());
        // Intervals are sorted, disjoint, and maximal.
        for w in ivs.windows(2) {
            prop_assert!(w[1].0 > w[0].1 + 1);
        }
        // Spot-check membership of every cell in a small rect.
        if rect.cell_count() <= 256 {
            for x in rect.x1..=rect.x2 {
                for y in rect.y1..=rect.y2 {
                    let d = c.encode(x, y);
                    prop_assert!(ivs.iter().any(|&(lo, hi)| d >= lo && d <= hi));
                }
            }
        }
    }

    #[test]
    fn grid_point_maps_into_its_cell_rect(
        order in 1u32..=8,
        px in 0.0..100.0f64, py in 0.0..100.0f64,
    ) {
        let g = Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), order);
        let p = Point::new(px, py);
        let (cx, cy) = g.cell_of(p);
        let r = g.cell_rect(cx, cy);
        prop_assert!(r.contains(p), "{p:?} not in {r:?}");
    }

    #[test]
    fn grid_intervals_cover_contained_points(
        order in 2u32..=7,
        x in 0.0..90.0f64, y in 0.0..90.0f64, w in 0.5..10.0f64, h in 0.5..10.0f64,
        px in 0.0..1.0f64, py in 0.0..1.0f64,
    ) {
        let g = Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), order);
        let window = Rect::from_coords(x, y, x + w, y + h);
        let ivs = g.intervals_for_world_rect(&window);
        // A point inside the window must have its curve value covered.
        let p = Point::new(x + px * w, y + py * h);
        let d = g.value_of(p);
        prop_assert!(
            ivs.iter().any(|&(lo, hi)| d >= lo && d <= hi),
            "point {p:?} value {d} escaped intervals {ivs:?}"
        );
    }

    #[test]
    fn lut_codec_matches_bitwise_reference(order in 1u32..=12, seed in any::<u64>()) {
        let c = HilbertCurve::new(order);
        // A random cell: the table-driven codec and the bitwise
        // reference loop must agree in both directions.
        let d = seed % c.cell_count();
        let (x, y) = c.decode_reference(d);
        prop_assert_eq!(c.decode(d), (x, y));
        prop_assert_eq!(c.encode(x, y), c.encode_reference(x, y));
        prop_assert_eq!(c.encode(x, y), d);
    }

    #[test]
    fn iterative_decomposition_matches_allocating_api(
        order in 2u32..=10,
        ax in any::<u32>(), ay in any::<u32>(), w in 0u32..512, h in 0u32..512,
    ) {
        let c = HilbertCurve::new(order);
        let m = c.side() - 1;
        let x1 = ax % c.side();
        let y1 = ay % c.side();
        let rect = CellRect::new(x1, y1, x1.saturating_add(w).min(m), y1.saturating_add(h).min(m));
        let alloc = c.intervals_for_rect(&rect);
        // The `_into` variant clears stale contents and produces the
        // identical interval list.
        let mut reused = vec![(9999u64, 9999u64); 3];
        c.intervals_for_rect_into(&rect, &mut reused);
        prop_assert_eq!(&reused, &alloc);
        // And both match the recursive pre-optimization oracle.
        prop_assert_eq!(alloc, c.intervals_for_rect_reference(&rect));
    }

    #[test]
    fn window_span_is_tight(order in 2u32..=6, ax in 0u32..64, ay in 0u32..64, s in 0u32..16) {
        let c = HilbertCurve::new(order);
        let m = c.side() - 1;
        let x1 = ax % c.side();
        let y1 = ay % c.side();
        let rect = CellRect::new(x1, y1, (x1 + s).min(m), (y1 + s).min(m));
        let (a, b) = c.window_span(&rect);
        // Brute force min/max.
        let mut lo = u64::MAX;
        let mut hi = 0;
        for x in rect.x1..=rect.x2 {
            for y in rect.y1..=rect.y2 {
                let d = c.encode(x, y);
                lo = lo.min(d);
                hi = hi.max(d);
            }
        }
        prop_assert_eq!((a, b), (lo, hi));
    }
}
