//! Hilbert space-filling curve support for the airshare air index.
//!
//! The broadcast server of Zheng et al. (the substrate the ICDE 2007
//! paper builds on) organizes POIs on the wireless channel in Hilbert
//! curve order: the curve's locality means spatially close objects are
//! broadcast close together in time, which is what makes on-air spatial
//! search feasible at all (see Figures 4 and 8 of the paper).
//!
//! This crate provides:
//!
//! * [`HilbertCurve`] — the order-`k` curve codec (`encode`/`decode`)
//!   over a `2^k × 2^k` cell grid, following Jagadish's analysis cited by
//!   the paper.
//! * [`CellRect`] and [`HilbertCurve::intervals_for_rect`] — exact
//!   decomposition of a rectangular cell window into maximal contiguous
//!   curve intervals, the primitive behind both the on-air window query
//!   (first point `a` / last point `b` of Figure 8) and broadcast-bucket
//!   filtering.
//! * [`Grid`] — the mapping between continuous world coordinates (miles)
//!   and curve cells.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod curve;
mod grid;

pub use curve::{CellRect, HilbertCurve};
pub use grid::Grid;
