//! Mapping between continuous world coordinates and Hilbert cells.

use crate::{CellRect, HilbertCurve};
use airshare_geom::{Point, Rect};

/// A Hilbert curve laid over a rectangular world region.
///
/// The world rectangle is divided into `2^k × 2^k` equal cells; points are
/// mapped to cells by truncation (points on the far edges land in the last
/// cell). This is how the broadcast server assigns each POI its air-index
/// value, and how clients convert Euclidean search regions into curve
/// intervals.
#[derive(Clone, Copy, Debug)]
pub struct Grid {
    world: Rect,
    curve: HilbertCurve,
}

impl Grid {
    /// Creates a grid of the given curve order over `world`.
    /// Panics when `world` is degenerate.
    pub fn new(world: Rect, order: u32) -> Self {
        assert!(
            !world.is_degenerate(),
            "world rect must have positive area"
        );
        Self {
            world,
            curve: HilbertCurve::new(order),
        }
    }

    /// The world rectangle.
    pub fn world(&self) -> Rect {
        self.world
    }

    /// The underlying curve.
    pub fn curve(&self) -> &HilbertCurve {
        &self.curve
    }

    /// Cell side lengths in world units.
    pub fn cell_size(&self) -> (f64, f64) {
        let n = self.curve.side() as f64;
        (self.world.width() / n, self.world.height() / n)
    }

    /// The cell containing `p`. Points outside the world are clamped to
    /// the nearest cell.
    pub fn cell_of(&self, p: Point) -> (u32, u32) {
        let n = self.curve.side();
        let fx = (p.x - self.world.x1) / self.world.width();
        let fy = (p.y - self.world.y1) / self.world.height();
        let cx = ((fx * n as f64).floor() as i64).clamp(0, (n - 1) as i64) as u32;
        let cy = ((fy * n as f64).floor() as i64).clamp(0, (n - 1) as i64) as u32;
        (cx, cy)
    }

    /// Curve position of the cell containing `p` — the POI's air-index
    /// value.
    pub fn value_of(&self, p: Point) -> u64 {
        let (cx, cy) = self.cell_of(p);
        self.curve.encode(cx, cy)
    }

    /// World rectangle covered by cell `(cx, cy)`.
    pub fn cell_rect(&self, cx: u32, cy: u32) -> Rect {
        let (w, h) = self.cell_size();
        let x1 = self.world.x1 + cx as f64 * w;
        let y1 = self.world.y1 + cy as f64 * h;
        Rect::from_coords(x1, y1, x1 + w, y1 + h)
    }

    /// World rectangle covered by the cell at curve position `d`.
    pub fn value_rect(&self, d: u64) -> Rect {
        let (cx, cy) = self.curve.decode(d);
        self.cell_rect(cx, cy)
    }

    /// The smallest cell rectangle covering a world rectangle (clipped to
    /// the world). Returns `None` when `r` lies entirely outside.
    pub fn cell_rect_for(&self, r: &Rect) -> Option<CellRect> {
        let clipped = r.intersection(&self.world)?;
        let (x1, y1) = self.cell_of(Point::new(clipped.x1, clipped.y1));
        // Nudge the max corner inward so an exact upper boundary does not
        // spill into the next cell row/column.
        let (w, h) = self.cell_size();
        let hi = Point::new(
            (clipped.x2 - w * 1e-9).max(clipped.x1),
            (clipped.y2 - h * 1e-9).max(clipped.y1),
        );
        let (x2, y2) = self.cell_of(hi);
        Some(CellRect::new(x1, y1, x2.max(x1), y2.max(y1)))
    }

    /// Curve intervals (inclusive) covering a world rectangle — the set of
    /// air-index ranges a client must listen to for a window query.
    ///
    /// Allocating convenience wrapper around
    /// [`Grid::intervals_for_world_rect_into`].
    pub fn intervals_for_world_rect(&self, r: &Rect) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        self.intervals_for_world_rect_into(r, &mut out);
        out
    }

    /// Like [`Grid::intervals_for_world_rect`], but writes into `out`
    /// (cleared first) so a reused buffer makes the call allocation-free.
    /// Leaves `out` empty when `r` lies entirely outside the world.
    pub fn intervals_for_world_rect_into(&self, r: &Rect, out: &mut Vec<(u64, u64)>) {
        match self.cell_rect_for(r) {
            Some(cr) => self.curve.intervals_for_rect_into(&cr, out),
            None => out.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::new(Rect::from_coords(0.0, 0.0, 16.0, 16.0), 3)
    }

    #[test]
    fn cell_mapping_and_back() {
        let g = grid();
        // 8x8 cells of 2x2 world units.
        assert_eq!(g.cell_of(Point::new(0.5, 0.5)), (0, 0));
        assert_eq!(g.cell_of(Point::new(15.9, 15.9)), (7, 7));
        assert_eq!(g.cell_of(Point::new(4.0, 6.0)), (2, 3));
        let r = g.cell_rect(2, 3);
        assert_eq!(r, Rect::from_coords(4.0, 6.0, 6.0, 8.0));
    }

    #[test]
    fn out_of_world_points_clamp() {
        let g = grid();
        assert_eq!(g.cell_of(Point::new(-5.0, 100.0)), (0, 7));
        assert_eq!(g.cell_of(Point::new(16.0, 16.0)), (7, 7));
    }

    #[test]
    fn value_roundtrip_via_cell_rect() {
        let g = grid();
        let p = Point::new(7.3, 2.9);
        let d = g.value_of(p);
        assert!(g.value_rect(d).contains(p));
    }

    #[test]
    fn cell_rect_for_covers_query() {
        let g = grid();
        let q = Rect::from_coords(3.0, 3.0, 9.0, 5.0);
        let cr = g.cell_rect_for(&q).unwrap();
        // Covering cells: x in [1,4], y in [1,2].
        assert_eq!(cr, CellRect::new(1, 1, 4, 2));
        // Query entirely outside the world: no cells.
        assert!(g.cell_rect_for(&Rect::from_coords(20.0, 20.0, 30.0, 30.0)).is_none());
    }

    #[test]
    fn cell_rect_for_exact_cell_boundaries() {
        let g = grid();
        // Window exactly equal to one cell must not spill over.
        let q = g.cell_rect(3, 4);
        assert_eq!(g.cell_rect_for(&q).unwrap(), CellRect::new(3, 4, 3, 4));
    }

    #[test]
    fn intervals_match_point_membership() {
        let g = grid();
        let q = Rect::from_coords(1.0, 1.0, 7.0, 7.0);
        let ivs = g.intervals_for_world_rect(&q);
        let inside = |d: u64| ivs.iter().any(|&(lo, hi)| d >= lo && d <= hi);
        // Every cell whose rect intersects q's covering cells is listed.
        let cr = g.cell_rect_for(&q).unwrap();
        for cx in 0..8 {
            for cy in 0..8 {
                let d = g.curve().encode(cx, cy);
                assert_eq!(inside(d), cr.contains(cx, cy));
            }
        }
    }

    #[test]
    fn negative_world_origin() {
        let g = Grid::new(Rect::from_coords(-8.0, -8.0, 8.0, 8.0), 2);
        assert_eq!(g.cell_of(Point::new(-8.0, -8.0)), (0, 0));
        assert_eq!(g.cell_of(Point::new(7.9, 7.9)), (3, 3));
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), (2, 2));
    }

    #[test]
    #[should_panic]
    fn degenerate_world_rejected() {
        Grid::new(Rect::from_coords(0.0, 0.0, 0.0, 5.0), 3);
    }
}
