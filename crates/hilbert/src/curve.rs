//! Hilbert curve codec and window-to-interval decomposition.

/// An order-`k` Hilbert curve over the `2^k × 2^k` integer cell grid.
///
/// `encode` maps a cell to its position `d ∈ [0, 4^k)` along the curve;
/// `decode` inverts it. The implementation is the classic iterative
/// quadrant-rotation algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HilbertCurve {
    order: u32,
}

/// An inclusive rectangle of cells `[x1..=x2] × [y1..=y2]` on the curve's
/// grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellRect {
    /// Leftmost column.
    pub x1: u32,
    /// Bottom row.
    pub y1: u32,
    /// Rightmost column (inclusive).
    pub x2: u32,
    /// Top row (inclusive).
    pub y2: u32,
}

impl CellRect {
    /// Creates a cell rectangle; panics in debug builds when inverted.
    pub fn new(x1: u32, y1: u32, x2: u32, y2: u32) -> Self {
        debug_assert!(x1 <= x2 && y1 <= y2);
        Self { x1, y1, x2, y2 }
    }

    /// Number of cells covered.
    pub fn cell_count(&self) -> u64 {
        (self.x2 - self.x1 + 1) as u64 * (self.y2 - self.y1 + 1) as u64
    }

    /// Closed containment of a cell.
    pub fn contains(&self, x: u32, y: u32) -> bool {
        x >= self.x1 && x <= self.x2 && y >= self.y1 && y <= self.y2
    }

    /// `self` fully contains the square `[x0, x0+s) × [y0, y0+s)`.
    fn contains_square(&self, x0: u32, y0: u32, s: u32) -> bool {
        x0 >= self.x1 && x0 + (s - 1) <= self.x2 && y0 >= self.y1 && y0 + (s - 1) <= self.y2
    }

    /// `self` is disjoint from the square `[x0, x0+s) × [y0, y0+s)`.
    fn disjoint_square(&self, x0: u32, y0: u32, s: u32) -> bool {
        x0 > self.x2 || x0 + (s - 1) < self.x1 || y0 > self.y2 || y0 + (s - 1) < self.y1
    }
}

impl HilbertCurve {
    /// Maximum supported order: indexes fit in `u64` (4^31 < 2^64) and
    /// coordinates in `u32`.
    pub const MAX_ORDER: u32 = 31;

    /// Creates an order-`order` curve. Panics if `order == 0` or
    /// `order > MAX_ORDER`.
    pub fn new(order: u32) -> Self {
        assert!(
            (1..=Self::MAX_ORDER).contains(&order),
            "Hilbert order must be in 1..={}, got {order}",
            Self::MAX_ORDER
        );
        Self { order }
    }

    /// The curve's order `k`.
    pub fn order(&self) -> u32 {
        self.order
    }

    /// Cells per side (`2^k`).
    pub fn side(&self) -> u32 {
        1u32 << self.order
    }

    /// Total number of cells (`4^k`).
    pub fn cell_count(&self) -> u64 {
        1u64 << (2 * self.order)
    }

    /// Maps cell `(x, y)` to its curve position `d ∈ [0, 4^k)`.
    ///
    /// Panics in debug builds when the coordinates exceed the grid.
    pub fn encode(&self, mut x: u32, mut y: u32) -> u64 {
        debug_assert!(x < self.side() && y < self.side());
        let mut d: u64 = 0;
        let mut s: u32 = self.side() >> 1;
        while s > 0 {
            let rx = u32::from(x & s > 0);
            let ry = u32::from(y & s > 0);
            d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
            rotate(s, &mut x, &mut y, rx, ry);
            s >>= 1;
        }
        d
    }

    /// Maps curve position `d` back to its cell `(x, y)`.
    ///
    /// Panics in debug builds when `d` exceeds the curve length.
    pub fn decode(&self, d: u64) -> (u32, u32) {
        debug_assert!(d < self.cell_count());
        let (mut x, mut y) = (0u32, 0u32);
        let mut t = d;
        let mut s: u32 = 1;
        while s < self.side() {
            let rx = (1 & (t >> 1)) as u32;
            let ry = (1 & (t ^ rx as u64)) as u32;
            rotate(s, &mut x, &mut y, rx, ry);
            x += s * rx;
            y += s * ry;
            t >>= 2;
            s <<= 1;
        }
        (x, y)
    }

    /// Decomposes a rectangular cell window into the minimal set of
    /// maximal contiguous curve intervals `[lo, hi]` (inclusive), sorted
    /// ascending.
    ///
    /// This is exact: the union of returned intervals equals the set of
    /// curve positions of the cells in `rect`. The recursion descends the
    /// curve's quadrant structure, emitting whole quadrant intervals as
    /// soon as a quadrant is fully inside the window — so the output size
    /// is proportional to the window perimeter in cells, not its area.
    pub fn intervals_for_rect(&self, rect: &CellRect) -> Vec<(u64, u64)> {
        debug_assert!(rect.x2 < self.side() && rect.y2 < self.side());
        let mut out = Vec::new();
        self.decompose(rect, 0, 0, self.side(), 0, &mut out);
        out.sort_unstable_by_key(|&(lo, _)| lo);
        // Merge adjacent intervals.
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(out.len());
        for (lo, hi) in out {
            match merged.last_mut() {
                Some(last) if lo <= last.1 + 1 => last.1 = last.1.max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        merged
    }

    /// The smallest and largest curve positions inside the window — the
    /// "first point `a` and last point `b`" of the paper's Figure 8.
    /// Returns `(a, b)` with `a ≤ b`.
    pub fn window_span(&self, rect: &CellRect) -> (u64, u64) {
        let ivs = self.intervals_for_rect(rect);
        debug_assert!(!ivs.is_empty());
        (ivs.first().map(|i| i.0).unwrap_or(0), ivs.last().map(|i| i.1).unwrap_or(0))
    }

    fn decompose(
        &self,
        rect: &CellRect,
        x0: u32,
        y0: u32,
        s: u32,
        d0: u64,
        out: &mut Vec<(u64, u64)>,
    ) {
        if rect.disjoint_square(x0, y0, s) {
            return;
        }
        let square_cells = (s as u64) * (s as u64);
        if rect.contains_square(x0, y0, s) {
            out.push((d0, d0 + square_cells - 1));
            return;
        }
        debug_assert!(s > 1, "single cell must be contained or disjoint");
        let half = s >> 1;
        let quarter = square_cells >> 2;
        for k in 0..4u64 {
            let child_d0 = d0 + k * quarter;
            // Any cell of the child quadrant identifies its square; use
            // the first cell and align down to the child grid.
            let (cx, cy) = self.decode(child_d0);
            let qx = x0 + ((cx - x0) / half) * half;
            let qy = y0 + ((cy - y0) / half) * half;
            self.decompose(rect, qx, qy, half, child_d0, out);
        }
    }
}

/// Quadrant rotation/reflection step shared by `encode` and `decode`.
#[inline]
fn rotate(s: u32, x: &mut u32, y: &mut u32, rx: u32, ry: u32) {
    if ry == 0 {
        if rx == 1 {
            *x = s.wrapping_sub(1).wrapping_sub(*x);
            *y = s.wrapping_sub(1).wrapping_sub(*y);
        }
        core::mem::swap(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_one_visits_four_cells_in_curve_order() {
        let c = HilbertCurve::new(1);
        // Standard order-1 Hilbert: (0,0) → (0,1) → (1,1) → (1,0).
        assert_eq!(c.decode(0), (0, 0));
        assert_eq!(c.decode(1), (0, 1));
        assert_eq!(c.decode(2), (1, 1));
        assert_eq!(c.decode(3), (1, 0));
    }

    #[test]
    fn encode_decode_roundtrip_small_orders() {
        for order in 1..=6 {
            let c = HilbertCurve::new(order);
            for d in 0..c.cell_count() {
                let (x, y) = c.decode(d);
                assert_eq!(c.encode(x, y), d, "order {order}, d {d}");
            }
        }
    }

    #[test]
    fn curve_is_a_bijection_and_connected() {
        let c = HilbertCurve::new(5);
        let mut seen = vec![false; c.cell_count() as usize];
        let (mut px, mut py) = c.decode(0);
        seen[0] = true;
        for d in 1..c.cell_count() {
            let (x, y) = c.decode(d);
            assert!(!seen[c.encode(x, y) as usize]);
            seen[c.encode(x, y) as usize] = true;
            // Consecutive curve cells are 4-neighbours (curve continuity).
            let step = (x as i64 - px as i64).abs() + (y as i64 - py as i64).abs();
            assert_eq!(step, 1, "discontinuity at d={d}");
            (px, py) = (x, y);
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn intervals_cover_exactly_the_window() {
        let c = HilbertCurve::new(4);
        let rect = CellRect::new(3, 5, 9, 11);
        let ivs = c.intervals_for_rect(&rect);
        // Expand intervals into a set and compare with brute force.
        let mut from_ivs: Vec<u64> = ivs.iter().flat_map(|&(lo, hi)| lo..=hi).collect();
        from_ivs.sort_unstable();
        let mut brute: Vec<u64> = (rect.x1..=rect.x2)
            .flat_map(|x| (rect.y1..=rect.y2).map(move |y| (x, y)))
            .map(|(x, y)| c.encode(x, y))
            .collect();
        brute.sort_unstable();
        assert_eq!(from_ivs, brute);
        // Intervals must be maximal: no two adjacent.
        for w in ivs.windows(2) {
            assert!(w[1].0 > w[0].1 + 1);
        }
    }

    #[test]
    fn full_grid_is_one_interval() {
        let c = HilbertCurve::new(3);
        let rect = CellRect::new(0, 0, 7, 7);
        assert_eq!(c.intervals_for_rect(&rect), vec![(0, 63)]);
    }

    #[test]
    fn single_cell_window() {
        let c = HilbertCurve::new(3);
        for (x, y) in [(0, 0), (7, 7), (3, 4)] {
            let d = c.encode(x, y);
            assert_eq!(
                c.intervals_for_rect(&CellRect::new(x, y, x, y)),
                vec![(d, d)]
            );
        }
    }

    #[test]
    fn window_span_brackets_all_intervals() {
        let c = HilbertCurve::new(5);
        let rect = CellRect::new(2, 2, 20, 9);
        let (a, b) = c.window_span(&rect);
        for &(lo, hi) in &c.intervals_for_rect(&rect) {
            assert!(lo >= a && hi <= b);
        }
        // a and b are attained by window cells.
        let (ax, ay) = c.decode(a);
        let (bx, by) = c.decode(b);
        assert!(rect.contains(ax, ay));
        assert!(rect.contains(bx, by));
    }

    #[test]
    fn paper_figure4_grid_sanity() {
        // The paper's Figure 4 uses an 8×8 grid (order 3, indexes 0..63).
        let c = HilbertCurve::new(3);
        assert_eq!(c.side(), 8);
        assert_eq!(c.cell_count(), 64);
        // Figure 4 draws index 0 at the bottom-left corner region and 63
        // at the bottom-right; the curve must start at (0,0).
        assert_eq!(c.decode(0), (0, 0));
        let (x63, y63) = c.decode(63);
        assert_eq!(y63, 0, "curve ends on the bottom row");
        assert_eq!(x63, 7);
    }

    #[test]
    fn cell_rect_counting() {
        let r = CellRect::new(1, 2, 3, 5);
        assert_eq!(r.cell_count(), 3 * 4);
        assert!(r.contains(2, 3));
        assert!(!r.contains(0, 3));
    }

    #[test]
    #[should_panic]
    fn zero_order_rejected() {
        HilbertCurve::new(0);
    }

    #[test]
    fn high_order_encode_decode() {
        let c = HilbertCurve::new(HilbertCurve::MAX_ORDER);
        for &(x, y) in &[(0u32, 0u32), (1 << 30, 1 << 29), ((1 << 31) - 1, 12345)] {
            let d = c.encode(x, y);
            assert_eq!(c.decode(d), (x, y));
        }
    }
}
