//! Hilbert curve codec and window-to-interval decomposition.
//!
//! The codec is table-driven: the classic quadrant-rotation recurrence is
//! reformulated as a four-state machine (the rotation group of the curve
//! is `{identity, swap, complement, swap∘complement}`, which is abelian),
//! and 256-entry state-transition tables process four levels — one byte of
//! interleaved output — per lookup. The tables are precomputed at compile
//! time, so [`HilbertCurve::new`] only validates the order; the original
//! bitwise loops survive as `*_reference` oracles for property tests and
//! the hot-path benchmark.

/// An order-`k` Hilbert curve over the `2^k × 2^k` integer cell grid.
///
/// `encode` maps a cell to its position `d ∈ [0, 4^k)` along the curve;
/// `decode` inverts it. Both walk precomputed 256-entry transition tables
/// byte-at-a-time; `encode_reference`/`decode_reference` keep the classic
/// iterative quadrant-rotation algorithm as a correctness oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HilbertCurve {
    order: u32,
}

/// An inclusive rectangle of cells `[x1..=x2] × [y1..=y2]` on the curve's
/// grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellRect {
    /// Leftmost column.
    pub x1: u32,
    /// Bottom row.
    pub y1: u32,
    /// Rightmost column (inclusive).
    pub x2: u32,
    /// Top row (inclusive).
    pub y2: u32,
}

impl CellRect {
    /// Creates a cell rectangle; panics in debug builds when inverted.
    pub fn new(x1: u32, y1: u32, x2: u32, y2: u32) -> Self {
        debug_assert!(x1 <= x2 && y1 <= y2);
        Self { x1, y1, x2, y2 }
    }

    /// Number of cells covered.
    pub fn cell_count(&self) -> u64 {
        (self.x2 - self.x1 + 1) as u64 * (self.y2 - self.y1 + 1) as u64
    }

    /// Closed containment of a cell.
    pub fn contains(&self, x: u32, y: u32) -> bool {
        x >= self.x1 && x <= self.x2 && y >= self.y1 && y <= self.y2
    }

    /// `self` fully contains the square `[x0, x0+s) × [y0, y0+s)`.
    fn contains_square(&self, x0: u32, y0: u32, s: u32) -> bool {
        x0 >= self.x1 && x0 + (s - 1) <= self.x2 && y0 >= self.y1 && y0 + (s - 1) <= self.y2
    }

    /// `self` is disjoint from the square `[x0, x0+s) × [y0, y0+s)`.
    fn disjoint_square(&self, x0: u32, y0: u32, s: u32) -> bool {
        x0 > self.x2 || x0 + (s - 1) < self.x1 || y0 > self.y2 || y0 + (s - 1) < self.y1
    }
}

/// Codec state: bit 0 = "swap x/y", bit 1 = "complement both". The curve's
/// per-quadrant frame transforms form this four-element abelian group, so
/// one byte of state suffices and composition order never matters.
type State = u8;

/// One encode level on original coordinate bits `(xi, yi)` under `state`;
/// returns the emitted base-4 digit and the successor state.
const fn enc_step(state: State, xi: u8, yi: u8) -> (u8, State) {
    let comp = (state >> 1) & 1;
    let swap = state & 1;
    let xc = xi ^ comp;
    let yc = yi ^ comp;
    let (rx, ry) = if swap == 1 { (yc, xc) } else { (xc, yc) };
    let digit = (3 * rx) ^ ry;
    let mut next = state;
    if ry == 0 {
        next ^= 1; // compose a swap
        if rx == 1 {
            next ^= 2; // ... and a complement
        }
    }
    (digit, next)
}

/// One decode level: base-4 digit under `state` back to the original
/// coordinate bits `(xi, yi)` plus the successor state.
const fn dec_step(state: State, digit: u8) -> (u8, u8, State) {
    let comp = (state >> 1) & 1;
    let swap = state & 1;
    let rx = (digit >> 1) & 1;
    let ry = ((digit >> 1) ^ digit) & 1;
    let (xr, yr) = if swap == 1 { (ry, rx) } else { (rx, ry) };
    let mut next = state;
    if ry == 0 {
        next ^= 1;
        if rx == 1 {
            next ^= 2;
        }
    }
    (xr ^ comp, yr ^ comp, next)
}

/// Single-level tables for the `order % 4` leading levels (levels cannot
/// be zero-padded: even an all-zero level mutates the state).
/// `STEP2_ENC[state][(xi<<1)|yi] = (next_state << 2) | digit`.
static STEP2_ENC: [[u8; 4]; 4] = build_step2_enc();
/// `STEP2_DEC[state][digit] = (next_state << 2) | (xi << 1) | yi`.
static STEP2_DEC: [[u8; 4]; 4] = build_step2_dec();

const fn build_step2_enc() -> [[u8; 4]; 4] {
    let mut t = [[0u8; 4]; 4];
    let mut s = 0;
    while s < 4 {
        let mut b = 0;
        while b < 4 {
            let (digit, next) = enc_step(s as State, (b >> 1) as u8 & 1, b as u8 & 1);
            t[s][b] = (next << 2) | digit;
            b += 1;
        }
        s += 1;
    }
    t
}

const fn build_step2_dec() -> [[u8; 4]; 4] {
    let mut t = [[0u8; 4]; 4];
    let mut s = 0;
    while s < 4 {
        let mut d = 0;
        while d < 4 {
            let (xi, yi, next) = dec_step(s as State, d as u8);
            t[s][d] = (next << 2) | (xi << 1) | yi;
            d += 1;
        }
        s += 1;
    }
    t
}

/// Byte-at-a-time transition tables: four levels per lookup.
/// `enc[state][(x_nibble<<4)|y_nibble] = (next_state << 8) | d_byte`;
/// `dec[state][d_byte] = (next_state << 8) | (x_nibble << 4) | y_nibble`.
struct CodecLuts {
    enc: [[u16; 256]; 4],
    dec: [[u16; 256]; 4],
}

static LUTS: CodecLuts = build_luts();

const fn build_luts() -> CodecLuts {
    let mut enc = [[0u16; 256]; 4];
    let mut dec = [[0u16; 256]; 4];
    let mut state = 0;
    while state < 4 {
        let mut b = 0;
        while b < 256 {
            let xn = (b >> 4) as u8;
            let yn = (b & 0xF) as u8;
            let mut s = state as State;
            let mut dd: u16 = 0;
            let mut lvl = 4;
            while lvl > 0 {
                lvl -= 1;
                let (digit, ns) = enc_step(s, (xn >> lvl) & 1, (yn >> lvl) & 1);
                dd = (dd << 2) | digit as u16;
                s = ns;
            }
            enc[state][b] = ((s as u16) << 8) | dd;

            let mut s = state as State;
            let (mut xb, mut yb) = (0u16, 0u16);
            let mut lvl = 4;
            while lvl > 0 {
                lvl -= 1;
                let digit = ((b >> (2 * lvl)) & 3) as u8;
                let (xi, yi, ns) = dec_step(s, digit);
                xb = (xb << 1) | xi as u16;
                yb = (yb << 1) | yi as u16;
                s = ns;
            }
            dec[state][b] = ((s as u16) << 8) | (xb << 4) | yb;
            b += 1;
        }
        state += 1;
    }
    CodecLuts { enc, dec }
}

/// Explicit-stack frame for the iterative decomposition: the square
/// `[x0, x0+2^k) × [y0, y0+2^k)` covering curve range `[d0, d0+4^k)`,
/// entered with codec state `state`.
#[derive(Clone, Copy)]
struct Frame {
    x0: u32,
    y0: u32,
    d0: u64,
    k: u8,
    state: State,
}

/// Upper bound on the decomposition stack: one live frame plus at most
/// three deferred siblings per level of descent.
const DECOMP_STACK: usize = 3 * HilbertCurve::MAX_ORDER as usize + 1;

impl HilbertCurve {
    /// Maximum supported order: indexes fit in `u64` (4^31 < 2^64) and
    /// coordinates in `u32`.
    pub const MAX_ORDER: u32 = 31;

    /// Creates an order-`order` curve. Panics if `order == 0` or
    /// `order > MAX_ORDER`. The codec transition tables are compile-time
    /// constants shared by all curves, so construction is free.
    pub fn new(order: u32) -> Self {
        assert!(
            (1..=Self::MAX_ORDER).contains(&order),
            "Hilbert order must be in 1..={}, got {order}",
            Self::MAX_ORDER
        );
        Self { order }
    }

    /// The curve's order `k`.
    pub fn order(&self) -> u32 {
        self.order
    }

    /// Cells per side (`2^k`).
    pub fn side(&self) -> u32 {
        1u32 << self.order
    }

    /// Total number of cells (`4^k`).
    pub fn cell_count(&self) -> u64 {
        1u64 << (2 * self.order)
    }

    /// Maps cell `(x, y)` to its curve position `d ∈ [0, 4^k)`.
    ///
    /// Panics in debug builds when the coordinates exceed the grid.
    pub fn encode(&self, x: u32, y: u32) -> u64 {
        debug_assert!(x < self.side() && y < self.side());
        let mut state = 0usize;
        let mut d: u64 = 0;
        let mut lvl = self.order;
        // Leading `order % 4` levels, one 2-bit step each.
        while lvl & 3 != 0 {
            lvl -= 1;
            let b = (((x >> lvl) & 1) << 1) | ((y >> lvl) & 1);
            let e = STEP2_ENC[state][b as usize];
            d = (d << 2) | (e & 3) as u64;
            state = (e >> 2) as usize;
        }
        // Remaining levels, four at a time.
        while lvl != 0 {
            lvl -= 4;
            let b = (((x >> lvl) & 0xF) << 4) | ((y >> lvl) & 0xF);
            let e = LUTS.enc[state][b as usize];
            d = (d << 8) | (e & 0xFF) as u64;
            state = (e >> 8) as usize;
        }
        d
    }

    /// Maps curve position `d` back to its cell `(x, y)`.
    ///
    /// Panics in debug builds when `d` exceeds the curve length.
    pub fn decode(&self, d: u64) -> (u32, u32) {
        debug_assert!(d < self.cell_count());
        let mut state = 0usize;
        let (mut x, mut y) = (0u32, 0u32);
        let mut lvl = self.order;
        while lvl & 3 != 0 {
            lvl -= 1;
            let e = STEP2_DEC[state][((d >> (2 * lvl)) & 3) as usize];
            x = (x << 1) | ((e >> 1) & 1) as u32;
            y = (y << 1) | (e & 1) as u32;
            state = (e >> 2) as usize;
        }
        while lvl != 0 {
            lvl -= 4;
            let e = LUTS.dec[state][((d >> (2 * lvl)) & 0xFF) as usize];
            x = (x << 4) | ((e >> 4) & 0xF) as u32;
            y = (y << 4) | (e & 0xF) as u32;
            state = (e >> 8) as usize;
        }
        (x, y)
    }

    /// Reference encoder: the classic per-level quadrant-rotation loop.
    /// Oracle for property tests and the `exp_hotpath` before/after
    /// benchmark; not used on any query path.
    #[doc(hidden)]
    pub fn encode_reference(&self, mut x: u32, mut y: u32) -> u64 {
        debug_assert!(x < self.side() && y < self.side());
        let mut d: u64 = 0;
        let mut s: u32 = self.side() >> 1;
        while s > 0 {
            let rx = u32::from(x & s > 0);
            let ry = u32::from(y & s > 0);
            d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
            rotate(s, &mut x, &mut y, rx, ry);
            s >>= 1;
        }
        d
    }

    /// Reference decoder: inverse of [`HilbertCurve::encode_reference`].
    #[doc(hidden)]
    pub fn decode_reference(&self, d: u64) -> (u32, u32) {
        debug_assert!(d < self.cell_count());
        let (mut x, mut y) = (0u32, 0u32);
        let mut t = d;
        let mut s: u32 = 1;
        while s < self.side() {
            let rx = (1 & (t >> 1)) as u32;
            let ry = (1 & (t ^ rx as u64)) as u32;
            rotate(s, &mut x, &mut y, rx, ry);
            x += s * rx;
            y += s * ry;
            t >>= 2;
            s <<= 1;
        }
        (x, y)
    }

    /// Decomposes a rectangular cell window into the minimal set of
    /// maximal contiguous curve intervals `[lo, hi]` (inclusive), sorted
    /// ascending.
    ///
    /// Allocating convenience wrapper around
    /// [`HilbertCurve::intervals_for_rect_into`]; hot paths should reuse a
    /// buffer through the `_into` form instead.
    pub fn intervals_for_rect(&self, rect: &CellRect) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        self.intervals_for_rect_into(rect, &mut out);
        out
    }

    /// Decomposes `rect` into sorted maximal intervals, writing them into
    /// `out` (which is cleared first). Performs no heap allocation beyond
    /// growing `out`, which amortizes to zero when the buffer is reused.
    ///
    /// This is exact: the union of the intervals equals the set of curve
    /// positions of the cells in `rect`, and the output size is
    /// proportional to the window perimeter in cells, not its area. The
    /// descent walks an explicit fixed-size stack in curve order, so the
    /// intervals emerge pre-sorted and are merged on the fly; child
    /// quadrant geometry comes from the codec state machine, not from
    /// per-child `decode` calls.
    pub fn intervals_for_rect_into(&self, rect: &CellRect, out: &mut Vec<(u64, u64)>) {
        debug_assert!(rect.x2 < self.side() && rect.y2 < self.side());
        out.clear();
        let mut stack = [Frame { x0: 0, y0: 0, d0: 0, k: 0, state: 0 }; DECOMP_STACK];
        stack[0].k = self.order as u8;
        let mut top = 1usize;
        while top > 0 {
            top -= 1;
            let f = stack[top];
            let s = 1u32 << f.k;
            if rect.disjoint_square(f.x0, f.y0, s) {
                continue;
            }
            let cells = 1u64 << (2 * f.k);
            if rect.contains_square(f.x0, f.y0, s) {
                let (lo, hi) = (f.d0, f.d0 + cells - 1);
                // Frames pop in curve order, so `lo` only ever grows:
                // merging against the last interval suffices.
                match out.last_mut() {
                    Some(last) if lo <= last.1 + 1 => last.1 = last.1.max(hi),
                    _ => out.push((lo, hi)),
                }
                continue;
            }
            debug_assert!(f.k > 0, "single cell must be contained or disjoint");
            let half = s >> 1;
            let quarter = cells >> 2;
            // Push children in reverse digit order so they pop in curve
            // order; their squares come from the decode state machine.
            let mut digit = 4u8;
            while digit > 0 {
                digit -= 1;
                let e = STEP2_DEC[f.state as usize][digit as usize];
                debug_assert!(top < DECOMP_STACK);
                stack[top] = Frame {
                    x0: f.x0 + (((e >> 1) & 1) as u32) * half,
                    y0: f.y0 + ((e & 1) as u32) * half,
                    d0: f.d0 + digit as u64 * quarter,
                    k: f.k - 1,
                    state: e >> 2,
                };
                top += 1;
            }
        }
    }

    /// Reference decomposition: the original recursive descent with a
    /// post-hoc sort+merge, its child geometry recovered via
    /// [`HilbertCurve::decode_reference`]. Oracle for property tests and
    /// the `exp_hotpath` before/after benchmark.
    #[doc(hidden)]
    pub fn intervals_for_rect_reference(&self, rect: &CellRect) -> Vec<(u64, u64)> {
        debug_assert!(rect.x2 < self.side() && rect.y2 < self.side());
        let mut out = Vec::new();
        self.decompose_reference(rect, 0, 0, self.side(), 0, &mut out);
        out.sort_unstable_by_key(|&(lo, _)| lo);
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(out.len());
        for (lo, hi) in out {
            match merged.last_mut() {
                Some(last) if lo <= last.1 + 1 => last.1 = last.1.max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        merged
    }

    /// The smallest and largest curve positions inside the window — the
    /// "first point `a` and last point `b`" of the paper's Figure 8.
    /// Returns `(a, b)` with `a ≤ b`.
    ///
    /// Runs in O(order): each endpoint is found by descending the quadrant
    /// tree greedily, taking the first (respectively last) child in curve
    /// order that intersects the window. Panics when `rect` is inverted or
    /// lies outside the grid — in every build, not just debug.
    pub fn window_span(&self, rect: &CellRect) -> (u64, u64) {
        assert!(
            rect.x1 <= rect.x2
                && rect.y1 <= rect.y2
                && rect.x2 < self.side()
                && rect.y2 < self.side(),
            "window_span: {rect:?} is inverted or outside the order-{} grid",
            self.order
        );
        (self.rect_extreme(rect, false), self.rect_extreme(rect, true))
    }

    /// Smallest (`largest == false`) or largest curve position within
    /// `rect`, by greedy quadrant descent. The caller guarantees `rect`
    /// intersects the grid, so every level has an intersecting child.
    fn rect_extreme(&self, rect: &CellRect, largest: bool) -> u64 {
        let (mut x0, mut y0) = (0u32, 0u32);
        let mut state = 0usize;
        let mut d = 0u64;
        let mut k = self.order;
        while k > 0 {
            k -= 1;
            let half = 1u32 << k;
            let quarter = 1u64 << (2 * k);
            let digits: [u8; 4] = if largest { [3, 2, 1, 0] } else { [0, 1, 2, 3] };
            let mut found = false;
            for digit in digits {
                let e = STEP2_DEC[state][digit as usize];
                let cx = x0 + (((e >> 1) & 1) as u32) * half;
                let cy = y0 + ((e & 1) as u32) * half;
                if !rect.disjoint_square(cx, cy, half) {
                    // Children in curve order occupy contiguous ascending
                    // index blocks, so the extreme lies in the first
                    // (resp. last) intersecting child.
                    (x0, y0) = (cx, cy);
                    d += digit as u64 * quarter;
                    state = (e >> 2) as usize;
                    found = true;
                    break;
                }
            }
            // The four children tile a square that intersects `rect`.
            assert!(found, "window_span descent lost the window");
        }
        d
    }

    fn decompose_reference(
        &self,
        rect: &CellRect,
        x0: u32,
        y0: u32,
        s: u32,
        d0: u64,
        out: &mut Vec<(u64, u64)>,
    ) {
        if rect.disjoint_square(x0, y0, s) {
            return;
        }
        let square_cells = (s as u64) * (s as u64);
        if rect.contains_square(x0, y0, s) {
            out.push((d0, d0 + square_cells - 1));
            return;
        }
        debug_assert!(s > 1, "single cell must be contained or disjoint");
        let half = s >> 1;
        let quarter = square_cells >> 2;
        for k in 0..4u64 {
            let child_d0 = d0 + k * quarter;
            // Any cell of the child quadrant identifies its square; use
            // the first cell and align down to the child grid.
            let (cx, cy) = self.decode_reference(child_d0);
            let qx = x0 + ((cx - x0) / half) * half;
            let qy = y0 + ((cy - y0) / half) * half;
            self.decompose_reference(rect, qx, qy, half, child_d0, out);
        }
    }
}

/// Quadrant rotation/reflection step shared by the reference codec.
#[inline]
fn rotate(s: u32, x: &mut u32, y: &mut u32, rx: u32, ry: u32) {
    if ry == 0 {
        if rx == 1 {
            *x = s.wrapping_sub(1).wrapping_sub(*x);
            *y = s.wrapping_sub(1).wrapping_sub(*y);
        }
        core::mem::swap(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_one_visits_four_cells_in_curve_order() {
        let c = HilbertCurve::new(1);
        // Standard order-1 Hilbert: (0,0) → (0,1) → (1,1) → (1,0).
        assert_eq!(c.decode(0), (0, 0));
        assert_eq!(c.decode(1), (0, 1));
        assert_eq!(c.decode(2), (1, 1));
        assert_eq!(c.decode(3), (1, 0));
    }

    #[test]
    fn encode_decode_roundtrip_small_orders() {
        for order in 1..=6 {
            let c = HilbertCurve::new(order);
            for d in 0..c.cell_count() {
                let (x, y) = c.decode(d);
                assert_eq!(c.encode(x, y), d, "order {order}, d {d}");
            }
        }
    }

    #[test]
    fn lut_codec_matches_reference_exhaustively() {
        // Orders straddling the 2-bit/byte-step boundary (order % 4 =
        // 1, 2, 3, 0): every cell must agree with the bitwise oracle.
        for order in [1, 2, 3, 4, 5, 7, 8] {
            let c = HilbertCurve::new(order);
            for d in 0..c.cell_count() {
                let (x, y) = c.decode_reference(d);
                assert_eq!(c.encode(x, y), d, "order {order}, encode({x},{y})");
                assert_eq!(c.decode(d), (x, y), "order {order}, decode({d})");
            }
        }
    }

    #[test]
    fn curve_is_a_bijection_and_connected() {
        let c = HilbertCurve::new(5);
        let mut seen = vec![false; c.cell_count() as usize];
        let (mut px, mut py) = c.decode(0);
        seen[0] = true;
        for d in 1..c.cell_count() {
            let (x, y) = c.decode(d);
            assert!(!seen[c.encode(x, y) as usize]);
            seen[c.encode(x, y) as usize] = true;
            // Consecutive curve cells are 4-neighbours (curve continuity).
            let step = (x as i64 - px as i64).abs() + (y as i64 - py as i64).abs();
            assert_eq!(step, 1, "discontinuity at d={d}");
            (px, py) = (x, y);
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn intervals_cover_exactly_the_window() {
        let c = HilbertCurve::new(4);
        let rect = CellRect::new(3, 5, 9, 11);
        let ivs = c.intervals_for_rect(&rect);
        // Expand intervals into a set and compare with brute force.
        let mut from_ivs: Vec<u64> = ivs.iter().flat_map(|&(lo, hi)| lo..=hi).collect();
        from_ivs.sort_unstable();
        let mut brute: Vec<u64> = (rect.x1..=rect.x2)
            .flat_map(|x| (rect.y1..=rect.y2).map(move |y| (x, y)))
            .map(|(x, y)| c.encode(x, y))
            .collect();
        brute.sort_unstable();
        assert_eq!(from_ivs, brute);
        // Intervals must be maximal: no two adjacent.
        for w in ivs.windows(2) {
            assert!(w[1].0 > w[0].1 + 1);
        }
    }

    #[test]
    fn iterative_decomposition_matches_reference() {
        for order in [3, 4, 6] {
            let c = HilbertCurve::new(order);
            let side = c.side();
            let mut out = Vec::new();
            for (x1, y1, x2, y2) in [
                (0, 0, side - 1, side - 1),
                (1, 1, side - 2, side - 2),
                (0, 0, 0, side - 1),
                (side / 2, 0, side / 2, side - 1),
                (1, 2, 3, 3),
            ] {
                let rect = CellRect::new(x1, y1, x2, y2);
                c.intervals_for_rect_into(&rect, &mut out);
                assert_eq!(out, c.intervals_for_rect_reference(&rect), "order {order} {rect:?}");
            }
        }
    }

    #[test]
    fn full_grid_is_one_interval() {
        let c = HilbertCurve::new(3);
        let rect = CellRect::new(0, 0, 7, 7);
        assert_eq!(c.intervals_for_rect(&rect), vec![(0, 63)]);
    }

    #[test]
    fn single_cell_window() {
        let c = HilbertCurve::new(3);
        for (x, y) in [(0, 0), (7, 7), (3, 4)] {
            let d = c.encode(x, y);
            assert_eq!(
                c.intervals_for_rect(&CellRect::new(x, y, x, y)),
                vec![(d, d)]
            );
        }
    }

    #[test]
    fn window_span_brackets_all_intervals() {
        let c = HilbertCurve::new(5);
        let rect = CellRect::new(2, 2, 20, 9);
        let (a, b) = c.window_span(&rect);
        for &(lo, hi) in &c.intervals_for_rect(&rect) {
            assert!(lo >= a && hi <= b);
        }
        // a and b are attained by window cells.
        let (ax, ay) = c.decode(a);
        let (bx, by) = c.decode(b);
        assert!(rect.contains(ax, ay));
        assert!(rect.contains(bx, by));
    }

    #[test]
    fn window_span_matches_decomposition_endpoints() {
        // The O(order) greedy descent must agree with the full
        // decomposition on every window of a small grid, and on assorted
        // windows of larger ones.
        let c = HilbertCurve::new(3);
        for x1 in 0..8 {
            for y1 in 0..8 {
                for x2 in x1..8 {
                    for y2 in y1..8 {
                        let rect = CellRect::new(x1, y1, x2, y2);
                        let ivs = c.intervals_for_rect(&rect);
                        let expect = (ivs.first().unwrap().0, ivs.last().unwrap().1);
                        assert_eq!(c.window_span(&rect), expect, "{rect:?}");
                    }
                }
            }
        }
        let c = HilbertCurve::new(9);
        for rect in [
            CellRect::new(0, 0, 511, 511),
            CellRect::new(17, 300, 200, 450),
            CellRect::new(511, 0, 511, 0),
            CellRect::new(100, 100, 100, 400),
        ] {
            let ivs = c.intervals_for_rect(&rect);
            let expect = (ivs.first().unwrap().0, ivs.last().unwrap().1);
            assert_eq!(c.window_span(&rect), expect, "{rect:?}");
        }
    }

    #[test]
    #[should_panic(expected = "outside the order-")]
    fn window_span_rejects_out_of_grid_rect() {
        let c = HilbertCurve::new(3);
        // Bypass CellRect::new's debug-only check to exercise the
        // release-mode guard too.
        let rect = CellRect { x1: 0, y1: 0, x2: 8, y2: 8 };
        c.window_span(&rect);
    }

    #[test]
    fn paper_figure4_grid_sanity() {
        // The paper's Figure 4 uses an 8×8 grid (order 3, indexes 0..63).
        let c = HilbertCurve::new(3);
        assert_eq!(c.side(), 8);
        assert_eq!(c.cell_count(), 64);
        // Figure 4 draws index 0 at the bottom-left corner region and 63
        // at the bottom-right; the curve must start at (0,0).
        assert_eq!(c.decode(0), (0, 0));
        let (x63, y63) = c.decode(63);
        assert_eq!(y63, 0, "curve ends on the bottom row");
        assert_eq!(x63, 7);
    }

    #[test]
    fn cell_rect_counting() {
        let r = CellRect::new(1, 2, 3, 5);
        assert_eq!(r.cell_count(), 3 * 4);
        assert!(r.contains(2, 3));
        assert!(!r.contains(0, 3));
    }

    #[test]
    #[should_panic]
    fn zero_order_rejected() {
        HilbertCurve::new(0);
    }

    #[test]
    fn high_order_encode_decode() {
        let c = HilbertCurve::new(HilbertCurve::MAX_ORDER);
        for &(x, y) in &[(0u32, 0u32), (1 << 30, 1 << 29), ((1 << 31) - 1, 12345)] {
            let d = c.encode(x, y);
            assert_eq!(c.decode(d), (x, y));
            assert_eq!(c.encode_reference(x, y), d);
            assert_eq!(c.decode_reference(d), (x, y));
        }
    }
}
