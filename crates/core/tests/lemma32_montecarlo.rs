//! Monte-Carlo validation of Lemma 3.2 at the algorithm level.
//!
//! The simulator's calibration experiment checks the probability model
//! end-to-end; this test isolates the lemma itself: draw many Poisson
//! POI fields, fix a merged verified region, and compare the *predicted*
//! correctness of the first unverified candidate against its *empirical*
//! frequency of being the true next neighbor.

use airshare_broadcast::Poi;
use airshare_core::approx::{correctness_probability, unverified_area};
use airshare_core::MergedRegion;
use airshare_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a Poisson(λ·area) number of uniform points in `area`.
fn poisson_field(rng: &mut StdRng, lambda: f64, area: &Rect) -> Vec<Point> {
    // Knuth's method is fine at these intensities.
    let mean = lambda * area.area();
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            break;
        }
        k += 1;
        if k > 10_000 {
            break; // safety net; unreachable at test intensities
        }
    }
    (0..k)
        .map(|_| {
            Point::new(
                rng.gen_range(area.x1..area.x2),
                rng.gen_range(area.y1..area.y2),
            )
        })
        .collect()
}

#[test]
fn predicted_correctness_matches_empirical_frequency() {
    // World and verified region fixed; the candidate is a synthetic POI
    // just outside the verified radius, at a distance that leaves a
    // nontrivial unverified crescent.
    let world = Rect::from_coords(0.0, 0.0, 20.0, 20.0);
    let vr = Rect::from_coords(6.0, 6.0, 14.0, 14.0);
    let q = Point::new(10.0, 10.0);
    let candidate_dist = 5.0; // reaches past the region's edge (4.0)
    let lambda = 0.25;

    // Predicted probability that no *hidden* POI is closer than the
    // candidate: e^{-λ·u} with u the disk area outside the VR. (The disk
    // stays inside the world here, so no domain clipping is needed.)
    let mvr = MergedRegion::from_regions([(vr, Vec::<Poi>::new())]);
    let u = unverified_area(q, candidate_dist, &mvr);
    assert!(u > 1.0, "test geometry should leave a real crescent: {u}");
    let predicted = correctness_probability(u, lambda);

    // Empirical: over many Poisson fields, how often does the uncovered
    // part of the disk contain no POI?
    let mut rng = StdRng::seed_from_u64(20070415);
    let trials = 4000;
    let mut clear = 0usize;
    for _ in 0..trials {
        let field = poisson_field(&mut rng, lambda, &world);
        let hidden = field.iter().any(|p| {
            p.distance(q) <= candidate_dist && !vr.contains(*p)
        });
        if !hidden {
            clear += 1;
        }
    }
    let empirical = clear as f64 / trials as f64;
    // Binomial std-err at p≈0.5, n=4000 is ~0.008; allow 4σ plus model
    // fuzz from the exact-area integral.
    assert!(
        (empirical - predicted).abs() < 0.04,
        "predicted {predicted:.3} vs empirical {empirical:.3}"
    );
}

#[test]
fn zero_unverified_area_is_always_correct() {
    let vr = Rect::from_coords(0.0, 0.0, 20.0, 20.0);
    let mvr = MergedRegion::from_regions([(vr, Vec::<Poi>::new())]);
    let u = unverified_area(Point::new(10.0, 10.0), 3.0, &mvr);
    assert!(u < 1e-9);
    assert_eq!(correctness_probability(u, 5.0), (5.0f64 * -u).exp());
    assert!((correctness_probability(0.0, 5.0) - 1.0).abs() < 1e-15);
}
