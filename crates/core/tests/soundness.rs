//! End-to-end soundness of the sharing-based algorithms against the
//! R-tree ground truth.
//!
//! These tests build a random global POI set, hand peers *consistent*
//! caches (each verified region contains exactly the global POIs inside
//! it — the invariant the cache layer maintains in the real system), and
//! then check the paper's central claims:
//!
//! * every SBNN-*verified* neighbor is a true nearest neighbor with the
//!   correct rank (Lemma 3.1 is never wrong, only conservative);
//! * a fully covered SBWQ window returns exactly the true window result;
//! * the broadcast fallback (with §3.3.3 bound filtering) is always
//!   exact.

use airshare_broadcast::{AirIndex, OnAirClient, Poi, PoiTable, Schedule};
use airshare_core::{nnv, sbnn, sbwq, MergedRegion, ResolvedBy, SbnnConfig, SbwqConfig, SbwqOutcome};
use airshare_geom::{Point, Rect};
use airshare_hilbert::Grid;
use airshare_p2p::PeerReply;
use airshare_rtree::RTree;
use proptest::prelude::*;

const WORLD: f64 = 32.0;

fn world() -> Rect {
    Rect::from_coords(0.0, 0.0, WORLD, WORLD)
}

/// Build the global dataset from raw coordinates.
fn dataset(coords: &[(f64, f64)]) -> (Vec<Poi>, RTree<u32>) {
    let pois: Vec<Poi> = coords
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| Poi::new(i as u32, Point::new(x, y)))
        .collect();
    let tree = RTree::bulk_load(pois.iter().map(|p| (p.pos, p.id)).collect());
    (pois, tree)
}

/// Consistent peer replies: each VR carries exactly the global POIs
/// inside it.
fn consistent_replies(pois: &[Poi], vrs: &[Rect]) -> Vec<PeerReply> {
    vrs.iter()
        .enumerate()
        .map(|(i, vr)| PeerReply {
            peer: i,
            regions: vec![(
                *vr,
                pois.iter()
                    .filter(|p| vr.contains(p.pos))
                    .map(Poi::handle)
                    .collect(),
            )],
        })
        .collect()
}

fn arb_coords(n: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0..WORLD, 0.0..WORLD), 10..n)
}

fn arb_vrs() -> impl Strategy<Value = Vec<Rect>> {
    prop::collection::vec(
        (0.0..WORLD - 6.0, 0.0..WORLD - 6.0, 0.5..6.0f64, 0.5..6.0f64),
        0..8,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(x, y, w, h)| Rect::from_coords(x, y, x + w, y + h))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn verified_neighbors_are_true_neighbors(
        coords in arb_coords(200),
        vrs in arb_vrs(),
        qx in 0.0..WORLD, qy in 0.0..WORLD,
        k in 1usize..8,
    ) {
        let (pois, tree) = dataset(&coords);
        let replies = consistent_replies(&pois, &vrs);
        let table = PoiTable::from_pois(pois.iter().copied());
        let mvr = MergedRegion::from_replies(&replies, &table);
        let q = Point::new(qx, qy);
        let heap = nnv(q, k, &mvr, 0.3);
        let truth = tree.knn(q, k);
        for (rank, entry) in heap.entries().iter().enumerate() {
            if entry.verified {
                // Lemma 3.1: a verified entry at rank i IS the true i-th NN.
                prop_assert!(
                    (entry.distance - truth[rank].distance).abs() < 1e-9,
                    "rank {rank}: verified {} vs truth {}",
                    entry.distance,
                    truth[rank].distance
                );
            }
        }
        // Verified entries form a prefix.
        let mut seen_unverified = false;
        for e in heap.entries() {
            if !e.verified {
                seen_unverified = true;
            } else {
                prop_assert!(!seen_unverified, "verified after unverified");
            }
        }
        // Unverified entries carry a probability in [0, 1] (exp may
        // underflow to exactly 0 for huge unverified areas).
        for e in heap.entries().iter().filter(|e| !e.verified) {
            let c = e.correctness.unwrap();
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
        }
    }

    #[test]
    fn sbnn_with_broadcast_fallback_is_exact(
        coords in arb_coords(150),
        vrs in arb_vrs(),
        qx in 0.0..WORLD, qy in 0.0..WORLD,
        k in 1usize..6,
        tune_in in 0u64..500,
        filtering in any::<bool>(),
    ) {
        let (pois, tree) = dataset(&coords);
        let index = AirIndex::try_build(pois.clone(), Grid::new(world(), 5), 4).unwrap();
        let schedule = Schedule::new(index.data_buckets(), index.index_buckets(), 4);
        let client = OnAirClient::new(&index, &schedule);
        let replies = consistent_replies(&pois, &vrs);
        let table = PoiTable::from_pois(pois.iter().copied());
        let mvr = MergedRegion::from_replies(&replies, &table);
        let q = Point::new(qx, qy);
        let cfg = SbnnConfig {
            accept_approx: false, // force exactness end to end
            min_correctness: 1.0,
            use_bound_filtering: filtering,
            ..SbnnConfig::paper_defaults(k, 0.3)
        };
        let res = sbnn(q, &cfg, &mvr, Some((&client.as_dyn(), tune_in)))
            .resolved()
            .expect("with a channel, exact queries always resolve");
        let truth = tree.knn(q, k);
        prop_assert_eq!(res.neighbors.len(), truth.len());
        for (got, want) in res.neighbors.iter().zip(&truth) {
            prop_assert!(
                (got.distance - want.distance).abs() < 1e-9,
                "{} vs {} (by {:?})", got.distance, want.distance, res.resolved_by
            );
        }
        // The adoptable region, when present, is sound: it contains
        // exactly the global POIs inside it.
        if let Some((vr, cached)) = &res.adoptable {
            let mut got: Vec<u32> = cached.iter().map(|p| p.id).collect();
            got.sort_unstable();
            let mut want: Vec<u32> = pois
                .iter()
                .filter(|p| vr.contains(p.pos))
                .map(|p| p.id)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want, "unsound adoptable region {:?}", vr);
        }
    }

    #[test]
    fn sbwq_resolves_exactly(
        coords in arb_coords(150),
        vrs in arb_vrs(),
        wx in 0.0..WORLD - 5.0, wy in 0.0..WORLD - 5.0,
        ww in 0.5..5.0f64, wh in 0.5..5.0f64,
        tune_in in 0u64..500,
        reduction in any::<bool>(),
    ) {
        let (pois, tree) = dataset(&coords);
        let index = AirIndex::try_build(pois.clone(), Grid::new(world(), 5), 4).unwrap();
        let schedule = Schedule::new(index.data_buckets(), index.index_buckets(), 4);
        let client = OnAirClient::new(&index, &schedule);
        let replies = consistent_replies(&pois, &vrs);
        let table = PoiTable::from_pois(pois.iter().copied());
        let mvr = MergedRegion::from_replies(&replies, &table);
        let w = Rect::from_coords(wx, wy, wx + ww, wy + wh);
        let cfg = SbwqConfig { use_window_reduction: reduction };
        let res = sbwq(&w, &cfg, &mvr, Some((&client.as_dyn(), tune_in)))
            .resolved()
            .expect("with a channel, window queries always resolve");
        let mut got: Vec<u32> = res.pois.iter().map(|p| p.id).collect();
        got.sort_unstable();
        let mut want: Vec<u32> = tree.window(&w).into_iter().map(|(_, &id)| id).collect();
        want.sort_unstable();
        prop_assert_eq!(&got, &want, "window {:?} by {:?}", w, res.resolved_by);
        // Coverage bookkeeping is consistent with the resolution path.
        if res.resolved_by == ResolvedBy::PeersVerified {
            prop_assert!(res.air.is_none());
            prop_assert!((res.coverage - 1.0).abs() < 1e-9);
        } else {
            prop_assert!(res.air.is_some());
        }
    }

    #[test]
    fn sbwq_partial_results_are_subset_of_truth(
        coords in arb_coords(150),
        vrs in arb_vrs(),
        wx in 0.0..WORLD - 5.0, wy in 0.0..WORLD - 5.0,
        ww in 0.5..5.0f64, wh in 0.5..5.0f64,
    ) {
        let (pois, tree) = dataset(&coords);
        let replies = consistent_replies(&pois, &vrs);
        let table = PoiTable::from_pois(pois.iter().copied());
        let mvr = MergedRegion::from_replies(&replies, &table);
        let w = Rect::from_coords(wx, wy, wx + ww, wy + wh);
        match sbwq(&w, &SbwqConfig::default(), &mvr, None) {
            SbwqOutcome::Resolved(res) => {
                // Fully covered: exact.
                let mut got: Vec<u32> = res.pois.iter().map(|p| p.id).collect();
                got.sort_unstable();
                let mut want: Vec<u32> =
                    tree.window(&w).into_iter().map(|(_, &id)| id).collect();
                want.sort_unstable();
                prop_assert_eq!(got, want);
            }
            SbwqOutcome::Unresolved { partial, missing } => {
                // Partial POIs are all true window members…
                let want: Vec<u32> =
                    tree.window(&w).into_iter().map(|(_, &id)| id).collect();
                for p in &partial {
                    prop_assert!(want.contains(&p.id));
                }
                // …and every true member not reported lies in a missing
                // rectangle.
                let have: Vec<u32> = partial.iter().map(|p| p.id).collect();
                for (pt, &id) in tree.window(&w) {
                    if !have.contains(&id) {
                        prop_assert!(
                            missing.iter().any(|m| m.inflate(1e-9).unwrap().contains(pt)),
                            "missing POI {id} at {pt:?} not in any gap"
                        );
                    }
                }
            }
        }
    }
}
