//! The merged verified region and the peer data behind it.

use airshare_broadcast::{Poi, PoiId, PoiTable};
use airshare_geom::{Point, Rect, RectUnion, Segment};
use airshare_p2p::PeerReply;

/// Peer knowledge merged for one query: the region union
/// `MVR = p₁.VR ∪ … ∪ pⱼ.VR` plus the deduplicated POIs inside it.
///
/// By the cache invariant every POI located inside the MVR is present in
/// `pois` — the completeness that Lemma 3.1 and the §3.3.3 search bounds
/// rely on. Replies and cache entries carry [`PoiId`] handles; the merge
/// resolves them once against the canonical [`PoiTable`], so all the
/// geometry below works on materialized positions.
#[derive(Clone, Debug)]
pub struct MergedRegion {
    region: RectUnion,
    pois: Vec<Poi>,
}

impl MergedRegion {
    /// Merges peer replies (the `MapOverlay` step of Algorithm 1,
    /// specialized to MBRs), resolving POI handles through `table`.
    /// POIs are deduplicated by id; handles the table cannot resolve
    /// are dropped (sanitation upstream already rejects such regions).
    pub fn from_replies(replies: &[PeerReply], table: &PoiTable) -> Self {
        Self::from_id_regions(
            table,
            replies
                .iter()
                .flat_map(|r| r.regions.iter().map(|(vr, ids)| (*vr, ids.as_slice()))),
        )
    }

    /// Builds from handle-based `(VR, POI ids)` pairs resolved through
    /// `table` — the zero-copy path for chaining peer reply regions with
    /// a host's own [`share_regions`](airshare_cache::HostCache::share_regions)
    /// iterator. POIs are deduplicated by id.
    pub fn from_id_regions<'a>(
        table: &PoiTable,
        regions: impl IntoIterator<Item = (Rect, &'a [PoiId])>,
    ) -> Self {
        let mut rects = Vec::new();
        let mut pois = Vec::new();
        for (vr, ids) in regions {
            rects.push(vr);
            pois.extend(ids.iter().filter_map(|&id| table.get(id).copied()));
        }
        pois.sort_by_key(|p: &Poi| p.id);
        pois.dedup_by_key(|p| p.id);
        Self {
            region: RectUnion::from_rects(rects),
            pois,
        }
    }

    /// Builds directly from `(VR, POIs)` pairs (used in tests and by
    /// hosts merging their *own* cache with peer data).
    pub fn from_regions(regions: impl IntoIterator<Item = (Rect, Vec<Poi>)>) -> Self {
        let mut rects = Vec::new();
        let mut pois = Vec::new();
        for (vr, ps) in regions {
            rects.push(vr);
            pois.extend(ps);
        }
        pois.sort_by_key(|p: &Poi| p.id);
        pois.dedup_by_key(|p| p.id);
        Self {
            region: RectUnion::from_rects(rects),
            pois,
        }
    }

    /// The union geometry.
    pub fn region(&self) -> &RectUnion {
        &self.region
    }

    /// All known POIs (deduplicated), unordered.
    pub fn pois(&self) -> &[Poi] {
        &self.pois
    }

    /// No peer contributed any region.
    pub fn is_empty(&self) -> bool {
        self.region.is_empty()
    }

    /// `q` lies inside the MVR — the precondition of Lemma 3.1.
    pub fn contains(&self, q: Point) -> bool {
        self.region.contains(q)
    }

    /// Distance from `q` to the nearest MVR boundary edge `e_s`, with the
    /// edge itself. `None` when the MVR is empty.
    pub fn nearest_edge(&self, q: Point) -> Option<(f64, Segment)> {
        self.region.distance_to_boundary(q)
    }

    /// POIs within `rect`, by reference.
    pub fn pois_in_rect<'a>(&'a self, rect: &'a Rect) -> impl Iterator<Item = &'a Poi> + 'a {
        self.pois.iter().filter(move |p| rect.contains(p.pos))
    }

    /// Restricts the merged region to the rectangles intersecting the
    /// disk `D(q, radius)` and the POIs within `radius` of `q`.
    ///
    /// This is *exact* for every question confined to the disk: for any
    /// ball `B(q, r)` with `r ≤ radius`, `B ⊆ full-union ⟺ B ⊆
    /// pruned-union` (any member rectangle covering part of `B`
    /// intersects the disk and is therefore kept). Hence the Lemma-3.1
    /// boundary distance (capped at `radius`), candidate verification,
    /// and Lemma-3.2 unverified areas for candidates within `radius` are
    /// unchanged — while the geometry shrinks from *all* peer regions to
    /// the handful near the query, which is what keeps NNV fast when
    /// peers carry dozens of cached regions each.
    pub fn pruned_to_disk(&self, q: Point, radius: f64) -> MergedRegion {
        if !radius.is_finite() {
            return self.clone();
        }
        let r_sq = radius * radius;
        let region = RectUnion::from_rects(
            self.region
                .rects()
                .iter()
                .filter(|r| r.distance_sq_to_point(q) <= r_sq)
                .copied(),
        );
        // Every POI lives inside some member rectangle; POIs within the
        // radius therefore lie in kept rectangles.
        let pois = self
            .pois
            .iter()
            .filter(|p| p.pos.distance_sq(q) <= r_sq)
            .copied()
            .collect();
        MergedRegion { region, pois }
    }

    /// A sound verified region a host may adopt after answering a query
    /// purely from peers: the largest axis-aligned square centred on `q`
    /// inside the MVR (every POI inside the MVR is known, so any
    /// sub-rectangle is verified). `max_half` caps the search.
    pub fn adoptable_region(&self, q: Point, max_half: f64) -> Option<Rect> {
        self.region.largest_inscribed_square(q, max_half)
    }

    /// `min(‖q, e_s‖, cap)` — the boundary distance of Lemma 3.1, exact
    /// whenever it is below `cap`. Returns `None` when `q` is outside the
    /// region (or the region is empty).
    ///
    /// Computed by expanding prune: boundary points of the union pruned
    /// to `D(q, r)` that lie closer than `r` are genuine boundary points
    /// of the full union (any rectangle covering their far side would
    /// intersect the disk and be kept), so the first prune radius whose
    /// boundary distance falls below it gives the exact answer — without
    /// ever sweeping the full region set.
    pub fn boundary_distance_capped(&self, q: Point, cap: f64) -> Option<f64> {
        if cap <= 0.0 || !self.contains(q) {
            return None;
        }
        let mut r = (cap / 16.0).max(1e-6);
        loop {
            let r_probe = r.min(cap);
            let pruned = RectUnion::from_rects(
                self.region
                    .rects()
                    .iter()
                    .filter(|rect| rect.distance_sq_to_point(q) <= r_probe * r_probe)
                    .copied(),
            );
            let (d, _) = pruned.distance_to_boundary(q)?;
            if d < r_probe {
                return Some(d.min(cap));
            }
            if r_probe >= cap {
                // Even the cap-radius ball is covered.
                return Some(cap);
            }
            r *= 4.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reply(peer: usize, vr: Rect, ids: Vec<PoiId>) -> PeerReply {
        PeerReply {
            peer,
            regions: vec![(vr, ids)],
        }
    }

    #[test]
    fn merge_dedups_pois_across_peers() {
        let table = PoiTable::from_pois([
            Poi::new(1, Point::new(0.5, 0.5)),
            Poi::new(2, Point::new(0.2, 0.2)),
        ]);
        let a = reply(
            0,
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            vec![PoiId(1), PoiId(2)],
        );
        let b = reply(1, Rect::from_coords(0.0, 0.0, 2.0, 2.0), vec![PoiId(1)]);
        let m = MergedRegion::from_replies(&[a, b], &table);
        assert_eq!(m.pois().len(), 2);
        assert!(m.contains(Point::new(1.5, 1.5)));
        assert!(!m.contains(Point::new(3.0, 3.0)));
    }

    #[test]
    fn empty_when_no_replies() {
        let m = MergedRegion::from_replies(&[], &PoiTable::new());
        assert!(m.is_empty());
        assert_eq!(m.nearest_edge(Point::ORIGIN), None);
        assert_eq!(m.adoptable_region(Point::ORIGIN, 1.0), None);
    }

    #[test]
    fn nearest_edge_across_merged_regions() {
        // Two abutting squares: from the seam, the nearest boundary is
        // the outer rim, not the (interior) shared edge.
        let a = reply(0, Rect::from_coords(0.0, 0.0, 1.0, 2.0), vec![]);
        let b = reply(1, Rect::from_coords(1.0, 0.0, 2.0, 2.0), vec![]);
        let m = MergedRegion::from_replies(&[a, b], &PoiTable::new());
        let (d, _) = m.nearest_edge(Point::new(1.0, 1.0)).unwrap();
        assert!((d - 1.0).abs() < 1e-9, "expected 1.0, got {d}");
    }

    #[test]
    fn boundary_distance_capped_is_exact_below_cap() {
        // L-shape; q deep in the wide arm: true boundary distance 0.5.
        let a = reply(0, Rect::from_coords(0.0, 0.0, 4.0, 1.0), vec![]);
        let b = reply(1, Rect::from_coords(0.0, 0.0, 1.0, 4.0), vec![]);
        let m = MergedRegion::from_replies(&[a, b], &PoiTable::new());
        let q = Point::new(2.0, 0.5);
        let d = m.boundary_distance_capped(q, 10.0).unwrap();
        assert!((d - 0.5).abs() < 1e-9, "d = {d}");
        // Cap below the true distance: returns the cap (ball of that
        // radius is proven covered).
        let capped = m.boundary_distance_capped(q, 0.2).unwrap();
        assert!((capped - 0.2).abs() < 1e-9);
        // Outside the region: no distance.
        assert_eq!(m.boundary_distance_capped(Point::new(9.0, 9.0), 1.0), None);
        assert_eq!(m.boundary_distance_capped(q, 0.0), None);
    }

    #[test]
    fn boundary_distance_capped_agrees_with_full_sweep() {
        // Random-ish cluster; compare against the exhaustive boundary.
        let rects = [
            Rect::from_coords(0.0, 0.0, 3.0, 2.0),
            Rect::from_coords(2.0, 1.0, 5.0, 4.0),
            Rect::from_coords(1.0, 1.5, 2.5, 3.5),
        ];
        let m = MergedRegion::from_regions(rects.iter().map(|r| (*r, Vec::<Poi>::new())));
        for q in [
            Point::new(1.0, 1.0),
            Point::new(2.5, 2.0),
            Point::new(4.0, 3.0),
            Point::new(2.2, 1.7),
        ] {
            let fast = m.boundary_distance_capped(q, 100.0).unwrap();
            let (slow, _) = m.region().distance_to_boundary(q).unwrap();
            assert!((fast - slow).abs() < 1e-9, "{q:?}: {fast} vs {slow}");
        }
    }

    #[test]
    fn pruned_region_answers_match_full_within_radius() {
        let rects = [
            Rect::from_coords(0.0, 0.0, 2.0, 2.0),
            Rect::from_coords(1.5, 0.0, 4.0, 2.0),
            Rect::from_coords(20.0, 20.0, 22.0, 22.0), // far away
        ];
        let pois = [
            Poi::new(0, Point::new(1.0, 1.0)),
            Poi::new(1, Point::new(3.0, 1.0)),
            Poi::new(2, Point::new(21.0, 21.0)),
        ];
        let m = MergedRegion::from_regions(
            rects
                .iter()
                .map(|r| (*r, pois.iter().filter(|p| r.contains(p.pos)).copied().collect())),
        );
        let q = Point::new(1.2, 1.0);
        let pruned = m.pruned_to_disk(q, 2.5);
        // The far rect and its POI are gone…
        assert_eq!(pruned.pois().len(), 2);
        assert_eq!(pruned.region().rects().len(), 2);
        // …but near-field geometry is identical.
        let (d_full, _) = m.nearest_edge(q).unwrap();
        let (d_pruned, _) = pruned.nearest_edge(q).unwrap();
        assert!((d_full - d_pruned).abs() < 1e-9);
        // Infinite radius is a no-op clone.
        let all = m.pruned_to_disk(q, f64::INFINITY);
        assert_eq!(all.pois().len(), 3);
    }

    #[test]
    fn adoptable_region_is_inside_mvr() {
        let a = reply(0, Rect::from_coords(0.0, 0.0, 4.0, 4.0), vec![]);
        let m = MergedRegion::from_replies(&[a], &PoiTable::new());
        let r = m.adoptable_region(Point::new(2.0, 2.0), 10.0).unwrap();
        assert!(Rect::from_coords(-1e-6, -1e-6, 4.0 + 1e-6, 4.0 + 1e-6).contains_rect(&r));
        assert!(r.width() > 3.9);
    }
}
