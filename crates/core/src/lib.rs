//! SBNN and SBWQ: sharing-based spatial queries in wireless broadcast
//! environments — the primary contribution of Ku, Zimmermann & Wang
//! (ICDE 2007).
//!
//! A mobile host that poses a kNN or window query first harvests cached
//! results from its single-hop peers, merges their verified regions into
//! the `MVR`, and *locally proves* which candidate POIs are guaranteed
//! answers:
//!
//! * [`nnv`] — **Nearest Neighbor Verification** (Algorithm 1): a POI `o`
//!   is a verified nearest neighbor when `‖q, o‖ ≤ ‖q, e_s‖`, the
//!   distance to the nearest edge of the MVR boundary, with `q` inside
//!   the MVR (Lemma 3.1).
//! * [`ResultHeap`] — the heap `H` of Table 2, holding verified and
//!   unverified candidates ascending by distance, with the six
//!   post-NNV states of §3.3.3 and the search bounds they induce.
//! * [`approx`] — Lemma 3.2: assuming Poisson-distributed POIs of density
//!   `λ`, an unverified candidate whose unverified region has area `u`
//!   is the true next neighbor with probability `e^{-λu}`; plus the
//!   *surpassing ratio* cost model.
//! * [`sbnn`] — Algorithm 2: answer from peers when possible (exactly,
//!   or approximately under a correctness threshold), otherwise fall
//!   back to the broadcast channel with the §3.3.3 bound filtering.
//! * [`sbwq`] — Algorithm 3: window queries; full peer coverage answers
//!   locally, partial coverage reduces the window(s) before going on air
//!   (§3.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
mod heap;
mod mvr;
mod sbnn;
mod sbwq;

pub use heap::{HeapState, NnCandidate, ResultHeap};
pub use mvr::MergedRegion;
pub use sbnn::{
    candidate_unverified_area, nnv, nnv_in_domain, sbnn, sbnn_rec, ResolvedBy, SbnnConfig,
    SbnnOutcome, SbnnResult, VrPolicy,
};
pub use sbwq::{
    adoptable_window_region, sbwq, sbwq_rec, window_coverage, SbwqConfig, SbwqOutcome, SbwqResult,
};
