//! Sharing-based nearest neighbor queries: NNV (Algorithm 1) and SBNN
//! (Algorithm 2).

use crate::approx::{candidate_correctness, surpassing_ratio, unverified_area};
use crate::{HeapState, MergedRegion, NnCandidate, ResultHeap};
use airshare_broadcast::{AirIndexBackend, OnAirClient, Poi, QueryScratch};
use airshare_geom::{Point, Rect};
use airshare_obs::{AccessStats, NoopRecorder, Recorder, ResolutionKind, TraceEvent};

/// How a peer-answered query turns its verified ball into a cacheable
/// rectangle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VrPolicy {
    /// The square **inscribed** in the verified ball — sound: every POI
    /// inside the cached region is known (this repo's default; see
    /// DESIGN.md §3).
    #[default]
    InscribedBall,
    /// The MBR **circumscribing** the verified ball — the paper's looser
    /// reading ("the MBR of that circle"). Unsound: the MBR corners
    /// reach beyond the ball, so a cached region may miss POIs. Exists
    /// for the `vr_policy` ablation, which quantifies the resulting
    /// false verifications downstream.
    CircumscribedMbr,
}

/// Configuration of one SBNN query.
#[derive(Clone, Copy, Debug)]
pub struct SbnnConfig {
    /// How many nearest neighbors are requested.
    pub k: usize,
    /// Whether the issuer accepts approximate answers (the paper's
    /// `accept` flag in Algorithm 2).
    pub accept_approx: bool,
    /// Minimum Lemma-3.2 correctness probability for every unverified
    /// entry of an accepted approximate answer (§4.2 uses 50 %).
    pub min_correctness: f64,
    /// POI density `λ` (POIs per square mile) for Lemma 3.2.
    pub lambda: f64,
    /// Apply the §3.3.3 search bounds when falling back to the channel.
    /// Disable for the `bound_filtering` ablation.
    pub use_bound_filtering: bool,
    /// Cacheable-region construction for peer-answered queries.
    pub vr_policy: VrPolicy,
    /// The bounded service area, when known: Lemma 3.2's unverified
    /// areas are clipped to it (POIs cannot hide outside the served
    /// region). `None` models an unbounded Poisson field as the paper
    /// does.
    pub domain: Option<Rect>,
}

impl SbnnConfig {
    /// The paper's evaluation defaults for a given `k` and density.
    pub fn paper_defaults(k: usize, lambda: f64) -> Self {
        Self {
            k,
            accept_approx: true,
            min_correctness: 0.5,
            lambda,
            use_bound_filtering: true,
            vr_policy: VrPolicy::InscribedBall,
            domain: None,
        }
    }
}

/// Who ultimately answered the query (the three series of Figures 10–12).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolvedBy {
    /// All `k` neighbors verified from peer data alone (Lemma 3.1).
    PeersVerified,
    /// Answered from peers with unverified entries above the correctness
    /// threshold ("approximate SBNN").
    PeersApproximate,
    /// Fell back to the broadcast channel (possibly bound-filtered).
    Broadcast,
}

impl From<ResolvedBy> for ResolutionKind {
    fn from(r: ResolvedBy) -> ResolutionKind {
        match r {
            ResolvedBy::PeersVerified => ResolutionKind::PeersVerified,
            ResolvedBy::PeersApproximate => ResolutionKind::PeersApproximate,
            ResolvedBy::Broadcast => ResolutionKind::Broadcast,
        }
    }
}

/// A resolved SBNN query.
#[derive(Clone, Debug)]
pub struct SbnnResult {
    /// The `k` answers, ascending by distance. Under
    /// [`ResolvedBy::Broadcast`] and [`ResolvedBy::PeersVerified`] these
    /// are exact; under [`ResolvedBy::PeersApproximate`] the unverified
    /// tail carries its correctness probability and surpassing ratio.
    pub neighbors: Vec<NnCandidate>,
    /// How the query was answered.
    pub resolved_by: ResolvedBy,
    /// Heap state after NNV, before any fallback (§3.3.3).
    pub heap_state: HeapState,
    /// Broadcast cost when the channel was used.
    pub air: Option<AccessStats>,
    /// A sound verified region (with its complete POI set) the issuer may
    /// cache: the on-air search MBR, or the largest square around `q`
    /// inside the MVR for peer-only answers. `None` when nothing
    /// cacheable was produced.
    pub adoptable: Option<(Rect, Vec<Poi>)>,
}

/// Outcome of [`sbnn`]: resolved, or — when no channel fallback was
/// provided and peers could not finish the job — the partial heap for the
/// caller to act on.
#[derive(Clone, Debug)]
pub enum SbnnOutcome {
    /// The query was answered.
    Resolved(SbnnResult),
    /// Peers alone could not answer and no channel was available.
    Unresolved(ResultHeap),
}

impl SbnnOutcome {
    /// The result, if resolved.
    pub fn resolved(self) -> Option<SbnnResult> {
        match self {
            SbnnOutcome::Resolved(r) => Some(r),
            SbnnOutcome::Unresolved(_) => None,
        }
    }
}

/// Algorithm 1 — Nearest Neighbor Verification.
///
/// Sorts the POIs known from peers by distance to `q` and fills the heap
/// `H` with up to `k` candidates; a candidate is **verified** when it is
/// no farther than the nearest MVR boundary edge `e_s` and `q` lies
/// inside the MVR (Lemma 3.1). Unverified candidates carry their
/// Lemma-3.2 correctness probability and surpassing ratio.
pub fn nnv(q: Point, k: usize, mvr: &MergedRegion, lambda: f64) -> ResultHeap {
    nnv_detailed(q, k, mvr, lambda, None).0
}

/// [`nnv`] with a bounded service domain for the Lemma 3.2 estimates.
pub fn nnv_in_domain(
    q: Point,
    k: usize,
    mvr: &MergedRegion,
    lambda: f64,
    domain: &Rect,
) -> ResultHeap {
    nnv_detailed(q, k, mvr, lambda, Some(*domain)).0
}

/// [`nnv`] plus the machinery SBNN reuses: a radius around `q` proven to
/// lie entirely inside the MVR (0 when `q` is outside), and the merged
/// region pruned to the query's neighborhood (exact for every question
/// within that radius).
fn nnv_detailed(
    q: Point,
    k: usize,
    mvr: &MergedRegion,
    lambda: f64,
    domain: Option<Rect>,
) -> (ResultHeap, f64, MergedRegion) {
    let mut heap = ResultHeap::new(k);
    if mvr.is_empty() {
        return (heap, 0.0, mvr.clone());
    }
    let mut by_distance: Vec<(f64, Poi)> = mvr
        .pois()
        .iter()
        .map(|p| (p.distance_to(q), *p))
        .collect();
    by_distance.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.id.cmp(&b.1.id)));
    by_distance.truncate(k);

    // Everything NNV asks of the geometry lives within the k-th
    // candidate's disk; prune the merged region to it (exact — see
    // `MergedRegion::pruned_to_disk`). With fewer than k candidates no
    // pruning radius is sound, but the heap cannot fill either way.
    let (mvr, prune_radius) = if by_distance.len() == k {
        let r = by_distance.last().map(|(d, _)| *d).unwrap_or(0.0);
        let pr = r * (1.0 + 1e-12) + 1e-9;
        (mvr.pruned_to_disk(q, pr), pr)
    } else {
        (mvr.clone(), f64::INFINITY)
    };

    // Verification radius: distance to the nearest boundary edge, valid
    // only when q is inside the MVR. On the pruned region this is exact
    // up to the prune radius; the cap keeps it sound either way.
    let d_es = if mvr.contains(q) {
        mvr.nearest_edge(q)
            .map(|(d, _)| d.min(prune_radius))
            .unwrap_or(0.0)
    } else {
        0.0
    };

    let mut last_verified: Option<f64> = None;
    for (dist, poi) in by_distance {
        if heap.is_full() {
            break;
        }
        let verified = dist <= d_es;
        if verified {
            last_verified = Some(dist);
            heap.push(NnCandidate {
                poi,
                distance: dist,
                verified: true,
                correctness: None,
                surpassing_ratio: None,
            });
        } else {
            heap.push(NnCandidate {
                poi,
                distance: dist,
                verified: false,
                correctness: Some(candidate_correctness(q, dist, &mvr, lambda, domain.as_ref())),
                surpassing_ratio: surpassing_ratio(dist, last_verified),
            });
        }
    }
    (heap, d_es, mvr)
}

/// Algorithm 2 — the sharing-based nearest neighbor query.
///
/// 1. Run [`nnv`] over the merged peer data.
/// 2. If `k` verified neighbors were found — done (`PeersVerified`).
/// 3. Else, if the heap is full and the issuer accepts approximate
///    results whose unverified entries clear the correctness threshold —
///    done (`PeersApproximate`).
/// 4. Otherwise fall back to the broadcast channel, using the §3.3.3
///    search bounds implied by the heap state to skip already-verified
///    buckets and cap the search radius.
///
/// `air` is the broadcast client plus the tick at which the host tunes
/// in; pass `None` to model a host out of coverage (the outcome is then
/// [`SbnnOutcome::Unresolved`] whenever peers cannot finish).
pub fn sbnn(
    q: Point,
    cfg: &SbnnConfig,
    mvr: &MergedRegion,
    air: Option<(&OnAirClient<'_, dyn AirIndexBackend + '_>, u64)>,
) -> SbnnOutcome {
    sbnn_rec(q, cfg, mvr, air, &mut QueryScratch::new(), &mut NoopRecorder)
}

/// [`sbnn`], tracing the channel fallback's protocol steps into `rec`
/// and emitting the terminal [`TraceEvent::QueryResolved`] (with the
/// broadcast cost, or zeros for peer-resolved queries) whenever the
/// outcome is resolved. Channel index work happens in `scratch`, so a
/// per-worker scratch keeps the fallback path allocation-free on the
/// index side.
pub fn sbnn_rec(
    q: Point,
    cfg: &SbnnConfig,
    mvr: &MergedRegion,
    air: Option<(&OnAirClient<'_, dyn AirIndexBackend + '_>, u64)>,
    scratch: &mut QueryScratch,
    rec: &mut dyn Recorder,
) -> SbnnOutcome {
    let outcome = sbnn_inner(q, cfg, mvr, air, scratch, rec);
    if let SbnnOutcome::Resolved(res) = &outcome {
        let cost = res.air.unwrap_or_default();
        rec.record(TraceEvent::QueryResolved {
            by: res.resolved_by.into(),
            tuning: cost.tuning,
            latency: cost.latency,
        });
    }
    outcome
}

fn sbnn_inner(
    q: Point,
    cfg: &SbnnConfig,
    mvr: &MergedRegion,
    air: Option<(&OnAirClient<'_, dyn AirIndexBackend + '_>, u64)>,
    scratch: &mut QueryScratch,
    rec: &mut dyn Recorder,
) -> SbnnOutcome {
    let (heap, verified_radius, pruned) = nnv_detailed(q, cfg.k, mvr, cfg.lambda, cfg.domain);
    let heap_state = heap.state();

    if heap.is_fulfilled() {
        return SbnnOutcome::Resolved(SbnnResult {
            neighbors: heap.entries().to_vec(),
            resolved_by: ResolvedBy::PeersVerified,
            heap_state,
            air: None,
            adoptable: adoptable_ball_square(q, verified_radius, &pruned, cfg.vr_policy),
        });
    }

    if cfg.accept_approx && heap.approximate_acceptable(cfg.min_correctness) {
        return SbnnOutcome::Resolved(SbnnResult {
            neighbors: heap.entries().to_vec(),
            resolved_by: ResolvedBy::PeersApproximate,
            heap_state,
            air: None,
            adoptable: adoptable_ball_square(q, verified_radius, &pruned, cfg.vr_policy),
        });
    }

    let Some((client, tune_in)) = air else {
        return SbnnOutcome::Unresolved(heap);
    };

    let (inner, outer) = if cfg.use_bound_filtering {
        (heap.lower_bound(), heap.upper_bound())
    } else {
        (None, None)
    };
    let result =
        match client.knn_filtered_rec(tune_in, q, cfg.k, mvr.pois(), inner, outer, scratch, rec) {
            Some(r) => Some(r),
            None => client.knn_rec(tune_in, q, cfg.k, scratch, rec),
        };
    let Some(res) = result else {
        // Fewer than k POIs exist in the whole dataset.
        return SbnnOutcome::Unresolved(heap);
    };
    let neighbors = res
        .neighbors
        .iter()
        .map(|p| NnCandidate {
            poi: *p,
            distance: p.distance_to(q),
            verified: true,
            correctness: None,
            surpassing_ratio: None,
        })
        .collect();
    let pois_in_vr: Vec<Poi> = res
        .retrieved
        .iter()
        .filter(|p| res.verified_mbr.contains(p.pos))
        .copied()
        .collect();
    SbnnOutcome::Resolved(SbnnResult {
        neighbors,
        resolved_by: ResolvedBy::Broadcast,
        heap_state,
        air: Some(res.stats),
        adoptable: Some((res.verified_mbr, pois_in_vr)),
    })
}

/// The cacheable region for a peer-answered query: the square inscribed
/// in the ball `B(q, r)` that NNV proved to lie inside the MVR, with the
/// POIs inside it — the peer-side analogue of caching a broadcast-solved
/// query's search MBR. `pruned` must be the NNV-pruned region (its POI
/// list is complete within the prune radius ≥ `r`).
fn adoptable_ball_square(
    q: Point,
    r: f64,
    pruned: &MergedRegion,
    policy: VrPolicy,
) -> Option<(Rect, Vec<Poi>)> {
    let half = match policy {
        VrPolicy::InscribedBall => r / std::f64::consts::SQRT_2,
        // Deliberately unsound (ablation): the MBR of the ball.
        VrPolicy::CircumscribedMbr => r,
    };
    if half <= 1e-9 {
        return None;
    }
    let vr = Rect::centered_square(q, half);
    let pois = pruned.pois_in_rect(&vr).copied().collect();
    Some((vr, pois))
}

/// Diagnostic: the unverified area of the i-th candidate (exposed for the
/// Lemma-3.2 validation experiment).
pub fn candidate_unverified_area(q: Point, dist: f64, mvr: &MergedRegion) -> f64 {
    unverified_area(q, dist, mvr)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A merged region from explicit (VR, POI) pairs.
    fn region(rects: &[Rect], pois: &[(u32, f64, f64)]) -> MergedRegion {
        // Attach every POI to the rect containing it (entries must be
        // complete per-VR; tests construct consistent data).
        let pairs: Vec<(Rect, Vec<Poi>)> = rects
            .iter()
            .map(|r| {
                (
                    *r,
                    pois.iter()
                        .filter(|&&(_, x, y)| r.contains(Point::new(x, y)))
                        .map(|&(id, x, y)| Poi::new(id, Point::new(x, y)))
                        .collect(),
                )
            })
            .collect();
        MergedRegion::from_regions(pairs)
    }

    #[test]
    fn nnv_verifies_figure5_scenario() {
        // Paper Figure 5: o1 within the nearest-edge distance → verified
        // 1-NN; farther POIs unverified.
        let mvr = region(
            &[Rect::from_coords(0.0, 0.0, 10.0, 10.0)],
            &[(1, 5.0, 5.5), (2, 5.0, 8.0), (3, 1.0, 1.0)],
        );
        let q = Point::new(5.0, 5.0);
        // d_es = 5 (to any edge of the square from the centre... actually
        // 5 exactly); o1 at 0.5, o2 at 3.0, o3 at ~5.66 (> 5, unverified).
        let heap = nnv(q, 3, &mvr, 0.1);
        assert_eq!(heap.len(), 3);
        assert!(heap.entries()[0].verified && heap.entries()[0].poi.id == 1);
        assert!(heap.entries()[1].verified && heap.entries()[1].poi.id == 2);
        assert!(!heap.entries()[2].verified && heap.entries()[2].poi.id == 3);
        let c = heap.entries()[2].correctness.unwrap();
        assert!(c > 0.0 && c < 1.0, "correctness = {c}");
        let sr = heap.entries()[2].surpassing_ratio.unwrap();
        assert!((sr - heap.entries()[2].distance / 3.0).abs() < 1e-9);
    }

    #[test]
    fn nnv_nothing_verified_when_q_outside_mvr() {
        let mvr = region(
            &[Rect::from_coords(0.0, 0.0, 2.0, 2.0)],
            &[(1, 1.0, 1.0)],
        );
        let heap = nnv(Point::new(5.0, 5.0), 1, &mvr, 0.1);
        assert_eq!(heap.len(), 1);
        assert!(!heap.entries()[0].verified);
    }

    #[test]
    fn nnv_empty_region_yields_empty_heap() {
        let mvr = MergedRegion::from_regions(Vec::<(Rect, Vec<Poi>)>::new());
        let heap = nnv(Point::ORIGIN, 3, &mvr, 0.1);
        assert!(heap.is_empty());
        assert_eq!(heap.state(), HeapState::Empty);
    }

    #[test]
    fn sbnn_resolves_from_peers_when_k_verified() {
        let mvr = region(
            &[Rect::from_coords(-10.0, -10.0, 10.0, 10.0)],
            &[(1, 0.5, 0.0), (2, 0.0, 1.0), (3, -2.0, 0.0)],
        );
        let cfg = SbnnConfig::paper_defaults(3, 0.1);
        let out = sbnn(Point::ORIGIN, &cfg, &mvr, None);
        let res = out.resolved().expect("resolved");
        assert_eq!(res.resolved_by, ResolvedBy::PeersVerified);
        assert_eq!(res.neighbors.len(), 3);
        assert!(res.air.is_none());
        // Adoptable region is sound: contains q, holds exactly the known
        // POIs inside it (the inscribed square of the 3-NN ball).
        let (vr, pois) = res.adoptable.unwrap();
        assert!(vr.contains(Point::ORIGIN));
        for p in &pois {
            assert!(vr.contains(p.pos));
        }
        let expect = mvr.pois_in_rect(&vr).count();
        assert_eq!(pois.len(), expect);
        assert!(pois.len() >= 2, "the two closest POIs fit the square");
    }

    #[test]
    fn sbnn_approximate_acceptance_depends_on_threshold() {
        // One verified neighbor, one unverified slightly beyond the MVR
        // edge; sparse density → high correctness.
        let mvr = region(
            &[Rect::from_coords(-2.0, -2.0, 2.0, 2.0)],
            &[(1, 0.5, 0.0), (2, 1.9, 1.9)],
        );
        let mut cfg = SbnnConfig::paper_defaults(2, 0.001);
        let out = sbnn(Point::ORIGIN, &cfg, &mvr, None);
        let res = out.resolved().expect("approximate accept");
        assert_eq!(res.resolved_by, ResolvedBy::PeersApproximate);
        // With a brutal threshold the same query is unresolved.
        cfg.min_correctness = 0.999999;
        let out2 = sbnn(Point::ORIGIN, &cfg, &mvr, None);
        assert!(matches!(out2, SbnnOutcome::Unresolved(_)));
        // With approximation disabled, also unresolved.
        cfg.min_correctness = 0.0;
        cfg.accept_approx = false;
        let out3 = sbnn(Point::ORIGIN, &cfg, &mvr, None);
        assert!(matches!(out3, SbnnOutcome::Unresolved(_)));
    }

    #[test]
    fn unresolved_heap_carries_partial_results() {
        let mvr = region(
            &[Rect::from_coords(-1.0, -1.0, 1.0, 1.0)],
            &[(1, 0.1, 0.0)],
        );
        let cfg = SbnnConfig {
            accept_approx: false,
            ..SbnnConfig::paper_defaults(5, 0.1)
        };
        match sbnn(Point::ORIGIN, &cfg, &mvr, None) {
            SbnnOutcome::Unresolved(h) => {
                assert_eq!(h.len(), 1);
                assert!(h.entries()[0].verified);
                assert_eq!(h.state(), HeapState::PartialVerified);
            }
            SbnnOutcome::Resolved(_) => panic!("should be unresolved"),
        }
    }
}
