//! Sharing-based window queries (Algorithm 3, §3.4).

use crate::MergedRegion;
use airshare_broadcast::{AirIndexBackend, OnAirClient, Poi, QueryScratch};
use airshare_geom::{Rect, RectUnion};
use airshare_obs::{AccessStats, NoopRecorder, Recorder, TraceEvent};

use crate::ResolvedBy;

/// Configuration of one SBWQ query.
#[derive(Clone, Copy, Debug)]
pub struct SbwqConfig {
    /// Reduce the query window to the uncovered remainder before going on
    /// air (§3.4.2). Disable for the ablation (the fallback then fetches
    /// the whole window).
    pub use_window_reduction: bool,
}

impl Default for SbwqConfig {
    fn default() -> Self {
        Self {
            use_window_reduction: true,
        }
    }
}

/// A resolved window query.
#[derive(Clone, Debug)]
pub struct SbwqResult {
    /// All POIs inside the query window (exact).
    pub pois: Vec<Poi>,
    /// How the query was answered. Window queries have no approximate
    /// tier: either the MVR covers the window, or the channel fills the
    /// gaps.
    pub resolved_by: ResolvedBy,
    /// The reduced windows `w′` that had to be fetched on air (empty when
    /// peers covered everything).
    pub reduced_windows: Vec<Rect>,
    /// Fraction of the window's area covered by the MVR at query time.
    pub coverage: f64,
    /// Broadcast cost when the channel was used.
    pub air: Option<AccessStats>,
}

/// Outcome of [`sbwq`].
#[derive(Clone, Debug)]
pub enum SbwqOutcome {
    /// The query was answered exactly.
    Resolved(SbwqResult),
    /// Peers covered only part of the window and no channel was
    /// available; carries the partial POIs and the missing windows.
    Unresolved {
        /// POIs known inside the covered part of the window.
        partial: Vec<Poi>,
        /// The uncovered remainder.
        missing: Vec<Rect>,
    },
}

impl SbwqOutcome {
    /// The result, if resolved.
    pub fn resolved(self) -> Option<SbwqResult> {
        match self {
            SbwqOutcome::Resolved(r) => Some(r),
            SbwqOutcome::Unresolved { .. } => None,
        }
    }
}

/// Algorithm 3 — the sharing-based window query.
///
/// 1. Merge peer verified regions into the MVR.
/// 2. If the window `w` is entirely covered, return the known POIs inside
///    `w` (exact, `PeersVerified`).
/// 3. Otherwise compute the reduced windows `w′ = w \ MVR` and fetch only
///    those on air, merging with the POIs already known in `w ∩ MVR`.
pub fn sbwq(
    w: &Rect,
    cfg: &SbwqConfig,
    mvr: &MergedRegion,
    air: Option<(&OnAirClient<'_, dyn AirIndexBackend + '_>, u64)>,
) -> SbwqOutcome {
    sbwq_rec(w, cfg, mvr, air, &mut QueryScratch::new(), &mut NoopRecorder)
}

/// [`sbwq`], tracing the channel fallback's protocol steps into `rec`
/// and emitting the terminal [`TraceEvent::QueryResolved`] (with the
/// broadcast cost, or zeros for peer-resolved queries) whenever the
/// outcome is resolved. Channel index work happens in `scratch`, so a
/// per-worker scratch keeps the fallback path allocation-free on the
/// index side.
pub fn sbwq_rec(
    w: &Rect,
    cfg: &SbwqConfig,
    mvr: &MergedRegion,
    air: Option<(&OnAirClient<'_, dyn AirIndexBackend + '_>, u64)>,
    scratch: &mut QueryScratch,
    rec: &mut dyn Recorder,
) -> SbwqOutcome {
    let outcome = sbwq_inner(w, cfg, mvr, air, scratch, rec);
    if let SbwqOutcome::Resolved(res) = &outcome {
        let cost = res.air.unwrap_or_default();
        rec.record(TraceEvent::QueryResolved {
            by: res.resolved_by.into(),
            tuning: cost.tuning,
            latency: cost.latency,
        });
    }
    outcome
}

fn sbwq_inner(
    w: &Rect,
    cfg: &SbwqConfig,
    mvr: &MergedRegion,
    air: Option<(&OnAirClient<'_, dyn AirIndexBackend + '_>, u64)>,
    scratch: &mut QueryScratch,
    rec: &mut dyn Recorder,
) -> SbwqOutcome {
    let missing = mvr.region().rect_difference(w);
    let covered_area = (w.area() - missing.iter().map(Rect::area).sum::<f64>()).max(0.0);
    let coverage = if w.area() > 0.0 {
        covered_area / w.area()
    } else {
        1.0
    };

    let known_in_window: Vec<Poi> = mvr.pois_in_rect(w).copied().collect();

    if missing.is_empty() {
        return SbwqOutcome::Resolved(SbwqResult {
            pois: known_in_window,
            resolved_by: ResolvedBy::PeersVerified,
            reduced_windows: Vec::new(),
            coverage: 1.0,
            air: None,
        });
    }

    let Some((client, tune_in)) = air else {
        return SbwqOutcome::Unresolved {
            partial: known_in_window,
            missing,
        };
    };

    let (fetched, reduced_windows) = if cfg.use_window_reduction {
        (
            client.window_reduced_rec(tune_in, &missing, scratch, rec),
            missing,
        )
    } else {
        (client.window_rec(tune_in, w, scratch, rec), vec![*w])
    };
    let stats = fetched.stats;

    // Merge: known POIs in the covered part + fetched POIs in the
    // remainder, deduplicated by id (a fetched bucket may repeat POIs the
    // peers already supplied when reduction is off).
    let mut pois = known_in_window;
    pois.extend(fetched.pois.into_iter().filter(|p| w.contains(p.pos)));
    pois.sort_by_key(|p| p.id);
    pois.dedup_by_key(|p| p.id);

    SbwqOutcome::Resolved(SbwqResult {
        pois,
        resolved_by: ResolvedBy::Broadcast,
        reduced_windows,
        coverage,
        air: Some(stats),
    })
}

/// The verified region a host may cache after a window query: the window
/// itself when resolved (it is then fully known), regardless of how the
/// gaps were filled.
pub fn adoptable_window_region(w: &Rect, result: &SbwqResult) -> (Rect, Vec<Poi>) {
    debug_assert!({
        // All POIs lie inside w.
        result.pois.iter().all(|p| w.contains(p.pos))
    });
    (*w, result.pois.clone())
}

/// Convenience for tests and diagnostics: the fraction of `w` covered by
/// a region union.
pub fn window_coverage(w: &Rect, region: &RectUnion) -> f64 {
    if w.area() <= 0.0 {
        return 1.0;
    }
    let missing: f64 = region.rect_difference(w).iter().map(Rect::area).sum();
    ((w.area() - missing) / w.area()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airshare_geom::Point;

    fn mvr(pairs: Vec<(Rect, Vec<Poi>)>) -> MergedRegion {
        MergedRegion::from_regions(pairs)
    }

    fn poi(id: u32, x: f64, y: f64) -> Poi {
        Poi::new(id, Point::new(x, y))
    }

    #[test]
    fn fully_covered_window_resolves_from_peers() {
        // Paper Figure 9, WQ1: the window falls inside the MVR.
        let m = mvr(vec![(
            Rect::from_coords(0.0, 0.0, 10.0, 10.0),
            vec![poi(1, 2.0, 2.0), poi(4, 3.0, 3.0), poi(9, 9.0, 9.0)],
        )]);
        let w = Rect::from_coords(1.0, 1.0, 4.0, 4.0);
        let res = sbwq(&w, &SbwqConfig::default(), &m, None)
            .resolved()
            .expect("covered window resolves");
        assert_eq!(res.resolved_by, ResolvedBy::PeersVerified);
        assert_eq!(res.coverage, 1.0);
        let mut ids: Vec<u32> = res.pois.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 4]);
    }

    #[test]
    fn partial_coverage_without_channel_is_unresolved() {
        let m = mvr(vec![(
            Rect::from_coords(0.0, 0.0, 2.0, 4.0),
            vec![poi(1, 1.0, 2.0)],
        )]);
        let w = Rect::from_coords(1.0, 1.0, 5.0, 3.0);
        match sbwq(&w, &SbwqConfig::default(), &m, None) {
            SbwqOutcome::Unresolved { partial, missing } => {
                assert_eq!(partial.len(), 1);
                assert!(!missing.is_empty());
                let miss_area: f64 = missing.iter().map(Rect::area).sum();
                assert!((miss_area - 6.0).abs() < 1e-9, "missing {miss_area}");
            }
            SbwqOutcome::Resolved(_) => panic!("should be unresolved"),
        }
    }

    #[test]
    fn coverage_fraction_reported() {
        let m = mvr(vec![(Rect::from_coords(0.0, 0.0, 2.0, 2.0), vec![])]);
        let w = Rect::from_coords(0.0, 0.0, 4.0, 2.0);
        match sbwq(&w, &SbwqConfig::default(), &m, None) {
            SbwqOutcome::Unresolved { .. } => {}
            _ => panic!(),
        }
        assert!((window_coverage(&w, m.region()) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_window_is_trivially_covered() {
        let m = mvr(vec![]);
        let w = Rect::from_coords(1.0, 1.0, 1.0, 5.0); // zero width
        let res = sbwq(&w, &SbwqConfig::default(), &m, None)
            .resolved()
            .expect("degenerate window");
        assert!(res.pois.is_empty());
        assert_eq!(res.resolved_by, ResolvedBy::PeersVerified);
    }
}
