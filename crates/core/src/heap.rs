//! The result heap `H` of Table 2 and its six states (§3.3.3).

use airshare_broadcast::Poi;

/// One candidate nearest neighbor in the heap.
#[derive(Clone, Copy, Debug)]
pub struct NnCandidate {
    /// The POI.
    pub poi: Poi,
    /// Euclidean distance to the query point.
    pub distance: f64,
    /// Proven by Lemma 3.1 to be a true top-k neighbor.
    pub verified: bool,
    /// For unverified entries: probability the candidate is the true
    /// next neighbor (Lemma 3.2, `e^{-λu}`). `None` for verified entries.
    pub correctness: Option<f64>,
    /// For unverified entries: the surpassing ratio `‖q,o_u‖ / ‖q,o_lv‖`
    /// against the last verified entry (Table 2). `None` when there is
    /// no verified entry or the entry is verified.
    pub surpassing_ratio: Option<f64>,
}

/// The six post-NNV heap states of §3.3.3, which determine the on-air
/// search bounds available to the broadcast fallback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeapState {
    /// State 1: full, verified and unverified entries → upper and lower
    /// bounds.
    FullMixed,
    /// State 2: full, only unverified entries → upper bound only.
    FullUnverified,
    /// State 3: not full, verified and unverified entries → lower bound.
    PartialMixed,
    /// State 4: not full, only verified entries → lower bound.
    PartialVerified,
    /// State 5: not full, only unverified entries → no bounds.
    PartialUnverified,
    /// State 6: empty → no bounds.
    Empty,
}

/// The heap `H`: up to `k` candidates ascending by distance, the verified
/// ones forming a prefix (NNV verifies by a single distance threshold, so
/// any verified candidate is closer than every unverified one).
#[derive(Clone, Debug)]
pub struct ResultHeap {
    k: usize,
    entries: Vec<NnCandidate>,
}

impl ResultHeap {
    /// An empty heap for a k-NN query.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self {
            k,
            entries: Vec::with_capacity(k),
        }
    }

    /// The query's `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Candidates ascending by distance.
    pub fn entries(&self) -> &[NnCandidate] {
        &self.entries
    }

    /// Number of candidates held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// No candidates held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The heap holds `k` candidates.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.k
    }

    /// Number of verified candidates (`H.verified` in the paper).
    pub fn verified_count(&self) -> usize {
        self.entries.iter().filter(|e| e.verified).count()
    }

    /// All `k` requested neighbors are verified — the query is fulfilled
    /// exactly from peer data.
    pub fn is_fulfilled(&self) -> bool {
        self.is_full() && self.verified_count() == self.k
    }

    /// Pushes a candidate; the caller must push in ascending distance
    /// order (NNV iterates a sorted list). Ignored once full.
    pub(crate) fn push(&mut self, c: NnCandidate) {
        if self.entries.len() >= self.k {
            return;
        }
        debug_assert!(
            self.entries
                .last()
                .map(|l| l.distance <= c.distance + 1e-12)
                .unwrap_or(true),
            "heap must be filled in ascending distance order"
        );
        debug_assert!(
            !(c.verified && self.entries.last().map(|l| !l.verified).unwrap_or(false)),
            "verified candidate after an unverified one breaks the prefix"
        );
        self.entries.push(c);
    }

    /// The state of the heap per §3.3.3.
    pub fn state(&self) -> HeapState {
        let full = self.is_full();
        let v = self.verified_count();
        let u = self.len() - v;
        match (full, v > 0, u > 0) {
            (_, false, false) => HeapState::Empty,
            (true, true, true) => HeapState::FullMixed,
            (true, false, true) => HeapState::FullUnverified,
            (true, true, false) => HeapState::FullMixed, // fully verified ⊂ state 1 semantics
            (false, true, true) => HeapState::PartialMixed,
            (false, true, false) => HeapState::PartialVerified,
            (false, false, true) => HeapState::PartialUnverified,
        }
    }

    /// The on-air *upper* search bound: the distance of the last (k-th)
    /// entry when the heap is full — the true k-th NN can be no farther
    /// (States 1 and 2).
    pub fn upper_bound(&self) -> Option<f64> {
        self.is_full().then(|| {
            self.entries
                .last()
                .map(|e| e.distance)
                .expect("full heap is non-empty")
        })
    }

    /// The on-air *lower* search bound `d_v`: the distance of the last
    /// verified entry. Every POI within the circle `C_i(q, d_v)` is
    /// already known, so buckets fully covered by it can be skipped
    /// (States 1, 3, 4).
    pub fn lower_bound(&self) -> Option<f64> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.verified)
            .map(|e| e.distance)
    }

    /// Every unverified entry clears the correctness threshold — the
    /// condition for an *approximate* SBNN answer (§4.2 counts answers
    /// with correctness probability above 50 %).
    pub fn approximate_acceptable(&self, min_correctness: f64) -> bool {
        self.is_full()
            && self
                .entries
                .iter()
                .filter(|e| !e.verified)
                .all(|e| e.correctness.unwrap_or(0.0) >= min_correctness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airshare_geom::Point;

    fn cand(id: u32, d: f64, verified: bool) -> NnCandidate {
        NnCandidate {
            poi: Poi::new(id, Point::new(d, 0.0)),
            distance: d,
            verified,
            correctness: (!verified).then_some(0.7),
            surpassing_ratio: None,
        }
    }

    #[test]
    fn states_enumerate_correctly() {
        // State 6: empty.
        let h = ResultHeap::new(3);
        assert_eq!(h.state(), HeapState::Empty);

        // State 4: partial, verified only.
        let mut h = ResultHeap::new(3);
        h.push(cand(0, 1.0, true));
        assert_eq!(h.state(), HeapState::PartialVerified);
        assert_eq!(h.lower_bound(), Some(1.0));
        assert_eq!(h.upper_bound(), None);

        // State 3: partial, mixed.
        h.push(cand(1, 2.0, false));
        assert_eq!(h.state(), HeapState::PartialMixed);
        assert_eq!(h.lower_bound(), Some(1.0));

        // State 1: full, mixed.
        h.push(cand(2, 3.0, false));
        assert_eq!(h.state(), HeapState::FullMixed);
        assert_eq!(h.upper_bound(), Some(3.0));
        assert_eq!(h.lower_bound(), Some(1.0));

        // State 5: partial, unverified only.
        let mut h = ResultHeap::new(3);
        h.push(cand(0, 1.0, false));
        assert_eq!(h.state(), HeapState::PartialUnverified);
        assert_eq!(h.lower_bound(), None);
        assert_eq!(h.upper_bound(), None);

        // State 2: full, unverified only.
        h.push(cand(1, 2.0, false));
        h.push(cand(2, 3.0, false));
        assert_eq!(h.state(), HeapState::FullUnverified);
        assert_eq!(h.upper_bound(), Some(3.0));
        assert_eq!(h.lower_bound(), None);
    }

    #[test]
    fn fulfilled_requires_k_verified() {
        let mut h = ResultHeap::new(2);
        h.push(cand(0, 1.0, true));
        assert!(!h.is_fulfilled());
        h.push(cand(1, 2.0, true));
        assert!(h.is_fulfilled());
    }

    #[test]
    fn push_ignores_overflow() {
        let mut h = ResultHeap::new(1);
        h.push(cand(0, 1.0, true));
        h.push(cand(1, 2.0, false));
        assert_eq!(h.len(), 1);
        assert_eq!(h.entries()[0].poi.id, 0);
    }

    #[test]
    fn approximate_acceptance_threshold() {
        let mut h = ResultHeap::new(2);
        h.push(cand(0, 1.0, true));
        let mut weak = cand(1, 2.0, false);
        weak.correctness = Some(0.4);
        h.push(weak);
        assert!(!h.approximate_acceptable(0.5));
        assert!(h.approximate_acceptable(0.3));
        // A partial heap is never acceptable.
        let mut p = ResultHeap::new(3);
        p.push(cand(0, 1.0, true));
        assert!(!p.approximate_acceptable(0.0));
    }

    #[test]
    fn fully_verified_full_heap_reports_bounds() {
        let mut h = ResultHeap::new(2);
        h.push(cand(0, 1.0, true));
        h.push(cand(1, 2.0, true));
        assert!(h.is_fulfilled());
        assert_eq!(h.upper_bound(), Some(2.0));
        assert_eq!(h.lower_bound(), Some(2.0));
    }
}
