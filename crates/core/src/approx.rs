//! Approximate-answer quality estimation (Lemma 3.2 and the surpassing
//! ratio of §3.3.2).
//!
//! When NNV cannot verify a candidate `o`, the reason is always a region
//! of the disk `C(q, ‖q,o‖)` not covered by the merged verified region —
//! the *unverified region* `U`. If POIs follow a Poisson process of
//! density `λ` (per square mile), the probability that no POI hides in
//! `U` — i.e. that `o` really is the next nearest neighbor — is
//! `e^{-λ·area(U)}`.

use crate::MergedRegion;
use airshare_geom::disk::{disk_rect_area, disk_region_area, Disk};
use airshare_geom::{Point, Rect};

/// Area of the unverified region of a candidate at distance `dist` from
/// `q`: the part of the disk `C(q, dist)` not covered by the MVR.
///
/// Clamped at zero: floating-point noise must never produce a negative
/// area (which would yield a probability above 1).
pub fn unverified_area(q: Point, dist: f64, mvr: &MergedRegion) -> f64 {
    let disk = Disk::new(q, dist);
    let covered = disk_region_area(disk, mvr.region());
    (disk.area() - covered).max(0.0)
}

/// [`unverified_area`] restricted to a bounded service domain: disk area
/// beyond the domain boundary cannot hide POIs (there are none outside
/// the served region), so counting it would systematically underestimate
/// correctness for hosts near the edge of the world.
pub fn unverified_area_in(q: Point, dist: f64, mvr: &MergedRegion, domain: &Rect) -> f64 {
    let disk = Disk::new(q, dist);
    let in_domain = disk_rect_area(disk, domain);
    let covered = disk_region_area(disk, mvr.region());
    // MVR entries may poke past the domain (e.g. an adopted square near
    // the edge); covered area outside the domain is harmless because it
    // is also excluded from `in_domain`. Clamp for fp safety.
    (in_domain - covered).max(0.0)
}

/// Lemma 3.2: the probability that a candidate with unverified area `u`
/// is the true next nearest neighbor, for POI density `lambda`
/// (POIs per square mile).
pub fn correctness_probability(u: f64, lambda: f64) -> f64 {
    debug_assert!(u >= 0.0 && lambda >= 0.0);
    (-lambda * u).exp()
}

/// Convenience: probability for a candidate at `dist` from `q` given the
/// MVR, per Lemma 3.2. `domain` bounds the service area when known.
pub fn candidate_correctness(
    q: Point,
    dist: f64,
    mvr: &MergedRegion,
    lambda: f64,
    domain: Option<&Rect>,
) -> f64 {
    let u = match domain {
        Some(d) => unverified_area_in(q, dist, mvr, d),
        None => unverified_area(q, dist, mvr),
    };
    correctness_probability(u, lambda)
}

/// The surpassing ratio `‖q,o_u‖ / ‖q,o_lv‖` of an unverified candidate
/// against the last verified one (Table 2). Returns `None` when there is
/// no verified anchor or it is at distance zero.
pub fn surpassing_ratio(unverified_dist: f64, last_verified_dist: Option<f64>) -> Option<f64> {
    match last_verified_dist {
        Some(d) if d > 0.0 => Some(unverified_dist / d),
        _ => None,
    }
}

/// Worst-case extra travel if the user accepts an unverified candidate
/// and it turns out wrong (§3.3.2's motorist example: with last verified
/// distance `r` and ratio `ρ`, the detour is about `r(ρ − 1)`).
pub fn worst_case_detour(last_verified_dist: f64, ratio: f64) -> f64 {
    (last_verified_dist * (ratio - 1.0)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airshare_broadcast::Poi;
    use airshare_geom::Rect;
    use std::f64::consts::PI;

    fn mvr(rects: &[Rect]) -> MergedRegion {
        MergedRegion::from_regions(rects.iter().map(|r| (*r, Vec::<Poi>::new())))
    }

    #[test]
    fn fully_covered_disk_has_probability_one() {
        let m = mvr(&[Rect::from_coords(-10.0, -10.0, 10.0, 10.0)]);
        let u = unverified_area(Point::ORIGIN, 2.0, &m);
        assert!(u < 1e-9);
        assert!(
            (candidate_correctness(Point::ORIGIN, 2.0, &m, 0.3, None) - 1.0).abs() < 1e-9
        );
    }

    #[test]
    fn domain_clipping_raises_correctness_at_the_edge() {
        // Query in the world's corner: most of the candidate disk lies
        // outside the served region and cannot hide POIs.
        let world = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let m = mvr(&[]);
        let q = Point::new(0.0, 0.0);
        let unbounded = candidate_correctness(q, 2.0, &m, 0.5, None);
        let bounded = candidate_correctness(q, 2.0, &m, 0.5, Some(&world));
        assert!(bounded > unbounded);
        // A quarter of the disk is inside: u = π·4/4.
        let u = unverified_area_in(q, 2.0, &m, &world);
        assert!((u - std::f64::consts::PI) .abs() < 1e-9);
    }

    #[test]
    fn uncovered_disk_probability_decays_with_lambda() {
        let m = mvr(&[]);
        let u = unverified_area(Point::ORIGIN, 1.0, &m);
        assert!((u - PI).abs() < 1e-9);
        let p_sparse = correctness_probability(u, 0.1);
        let p_dense = correctness_probability(u, 2.0);
        assert!(p_sparse > p_dense);
        assert!((p_sparse - (-0.1 * PI).exp()).abs() < 1e-12);
    }

    #[test]
    fn paper_worked_example() {
        // §3.3.2: λ = 0.3 POIs per square unit, unverified region of 2
        // square units → e^{-0.6} ≈ 0.5488 → "the probability that o4 is
        // the true third nearest POI of q is 55 %".
        let p = correctness_probability(2.0, 0.3);
        assert!((p - 0.5488).abs() < 1e-3, "p = {p}");
    }

    #[test]
    fn half_covered_disk() {
        // MVR covers exactly the right half-plane portion of the disk.
        let m = mvr(&[Rect::from_coords(0.0, -10.0, 10.0, 10.0)]);
        let u = unverified_area(Point::ORIGIN, 2.0, &m);
        assert!((u - 0.5 * PI * 4.0).abs() < 1e-6, "u = {u}");
    }

    #[test]
    fn surpassing_ratio_matches_table2() {
        // Table 2: last verified o5 at 3 miles; o4 at 5 → 1.67; o3 at 6 → 2.0.
        let r4 = surpassing_ratio(5.0, Some(3.0)).unwrap();
        let r3 = surpassing_ratio(6.0, Some(3.0)).unwrap();
        assert!((r4 - 5.0 / 3.0).abs() < 1e-12);
        assert!((r3 - 2.0).abs() < 1e-12);
        assert_eq!(surpassing_ratio(5.0, None), None);
        assert_eq!(surpassing_ratio(5.0, Some(0.0)), None);
    }

    #[test]
    fn detour_from_papers_motorist() {
        // "he has to drive approximately two more miles (3·(1.67−1) ≈ 2)".
        let d = worst_case_detour(3.0, 5.0 / 3.0);
        assert!((d - 2.0).abs() < 1e-9);
        assert_eq!(worst_case_detour(3.0, 0.9), 0.0);
    }

    #[test]
    fn probability_monotone_in_distance() {
        // Larger candidate distance ⇒ (weakly) larger unverified area ⇒
        // lower correctness.
        let m = mvr(&[Rect::from_coords(-1.0, -1.0, 1.0, 1.0)]);
        let p1 = candidate_correctness(Point::ORIGIN, 1.0, &m, 0.5, None);
        let p2 = candidate_correctness(Point::ORIGIN, 2.0, &m, 0.5, None);
        let p3 = candidate_correctness(Point::ORIGIN, 3.0, &m, 0.5, None);
        assert!(p1 >= p2 && p2 >= p3);
        assert!(p1 <= 1.0 && p3 > 0.0);
    }
}
