//! The fleet-scale memory claim, measured: once a 10,000-host fleet of
//! arena-backed caches is warm, a full epoch of steady-state cache
//! traffic — handle-native inserts (with eviction and pool compaction),
//! LRU touches, and the per-epoch snapshot refresh — performs **zero**
//! heap allocations. A counting global allocator makes the claim
//! checkable instead of an audit comment.
//!
//! This is the cache-layer half of the streaming-epoch memory model
//! (DESIGN.md §15): the simulator's per-epoch costs are bounded by
//! buffers that reach their high-water marks during warm-up and are
//! reused forever after. The test lives in an integration test because
//! the library is `#![forbid(unsafe_code)]` and implementing
//! [`GlobalAlloc`] requires `unsafe`.

use airshare_broadcast::{Poi, PoiCategory, PoiId, PoiTable};
use airshare_cache::{CacheContext, HostCache, ReplacementPolicy};
use airshare_geom::{Point, Rect};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// [`System`], with every allocation counted.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

const HOSTS: usize = 10_000;
const CAT: PoiCategory = PoiCategory::GAS_STATION;
const CAPACITY: usize = 12;
/// Distinct regions a host rotates through; > capacity in POIs, so
/// every steady-state insert evicts and the arenas keep compacting.
const VARIANTS: usize = 5;
const POIS_PER_REGION: u32 = 6;

/// A deterministic world of `VARIANTS` disjoint regions, each carrying
/// `POIS_PER_REGION` POIs.
fn world() -> (PoiTable, Vec<(Rect, Vec<PoiId>)>) {
    let mut pois = Vec::new();
    let mut regions = Vec::new();
    for v in 0..VARIANTS {
        let x0 = v as f64 * 10.0;
        let vr = Rect::from_coords(x0, 0.0, x0 + 8.0, 8.0);
        let ids: Vec<PoiId> = (0..POIS_PER_REGION)
            .map(|i| {
                let id = v as u32 * 100 + i;
                pois.push(Poi::new(
                    id,
                    Point::new(x0 + 1.0 + i as f64, 1.0 + i as f64),
                ));
                PoiId(id)
            })
            .collect();
        regions.push((vr, ids));
    }
    (PoiTable::from_pois(pois), regions)
}

/// One epoch of cache traffic for the whole fleet: every host inserts
/// its next region variant (forcing eviction once warm), touches an
/// area for LRU upkeep, then the epoch snapshot is refreshed in place.
fn run_epoch(
    epoch: usize,
    fleet: &mut [HostCache],
    snapshot: &mut [HostCache],
    table: &PoiTable,
    regions: &[(Rect, Vec<PoiId>)],
) -> usize {
    let now = epoch as f64;
    let mut stored = 0usize;
    for (h, cache) in fleet.iter_mut().enumerate() {
        let (vr, ids) = &regions[(h + epoch) % VARIANTS];
        let ctx = CacheContext {
            pos: Point::new((h % 50) as f64, (h % 8) as f64),
            heading: Some((1.0, 0.0)),
            now,
        };
        cache.insert_ids(table, CAT, *vr, ids, now, &ctx);
        cache.touch(CAT, vr, now + 0.5);
        stored += cache.region_count(CAT);
    }
    // The engine's per-epoch snapshot refresh: buffer-reusing clones.
    for (s, c) in snapshot.iter_mut().zip(fleet.iter()) {
        s.clone_from(c);
    }
    stored
}

#[test]
fn warm_fleet_epoch_does_not_allocate() {
    let (table, regions) = world();
    let mut fleet: Vec<HostCache> = (0..HOSTS)
        .map(|_| HostCache::new(CAPACITY, ReplacementPolicy::DirectionDistance))
        .collect();
    let mut snapshot: Vec<HostCache> = fleet.clone();

    // Warm-up: arenas, pools, free lists, category lists, and snapshot
    // buffers all grow to their high-water marks. Several epochs so
    // every host cycles through all region variants (worst-case pool
    // occupancy) and compaction scratch buffers are sized.
    let mut expected = 0;
    for epoch in 0..2 * VARIANTS {
        expected = run_epoch(epoch, &mut fleet, &mut snapshot, &table, &regions);
    }
    assert!(expected > 0, "fleet cached nothing; test is vacuous");

    // Steady state: one more full epoch, zero allocations.
    let before = allocations();
    let got = run_epoch(
        2 * VARIANTS,
        &mut fleet,
        &mut snapshot,
        &table,
        &regions,
    );
    let after = allocations();
    assert_eq!(got, expected, "steady state drifted");
    assert_eq!(
        after - before,
        0,
        "a warm {HOSTS}-host epoch allocated {} times",
        after - before
    );
}
