//! Arena/interning equivalence against the pre-refactor cache.
//!
//! The fleet-scale refactor moved cache entries into an [`EntryArena`]
//! (generational handles, shared POI pool, amortized in-place
//! compaction) and POI payloads into the canonical [`PoiTable`]. These
//! properties pin that the move is *invisible*: a reference
//! implementation of the pre-refactor cache — owned `Vec<RegionEntry>`
//! storage, the exact same shrink/subsume/evict arithmetic — is driven
//! with the identical operation sequence, and the arena-backed
//! [`HostCache`] must match it entry for entry (regions, timestamps,
//! POI membership and order) at every step. A second property drives
//! the arena itself through insert/remove/compact/clone churn against a
//! shadow list and checks that every live handle round-trips exactly
//! and every dead handle stays dead.

use airshare_broadcast::{Poi, PoiCategory, PoiId, PoiTable};
use airshare_cache::{
    CacheContext, EntryArena, EntryId, HostCache, RegionEntry, ReplacementPolicy,
};
use airshare_geom::{Point, Rect};
use proptest::prelude::*;

const CAT: PoiCategory = PoiCategory::GAS_STATION;

/// The cache as it was before the arena refactor: one owned
/// [`RegionEntry`] per region, no handles, no interning. Mirrors the
/// production insert/touch paths operation for operation (same
/// `shrink_to_fit`, same subsumption test, same `score_parts` eviction
/// scan, same `swap_remove`), so any divergence is the arena's fault.
struct ReferenceCache {
    capacity: usize,
    max_regions: usize,
    subsume_overlap: f64,
    policy: ReplacementPolicy,
    entries: Vec<RegionEntry>,
}

impl ReferenceCache {
    fn new(capacity: usize, policy: ReplacementPolicy, subsume_overlap: f64) -> Self {
        Self {
            capacity,
            max_regions: capacity,
            subsume_overlap,
            policy,
            entries: Vec::new(),
        }
    }

    fn insert(&mut self, entry: RegionEntry, ctx: &CacheContext) {
        if !entry.is_consistent() || self.capacity == 0 {
            return;
        }
        let entry = entry.shrink_to_fit(ctx.pos, self.capacity);
        let threshold = self.subsume_overlap;
        let new_vr = entry.vr;
        self.entries.retain(|e| {
            let subsumed = new_vr.contains_rect(&e.vr)
                || (threshold < 1.0
                    && e.vr.area() > 0.0
                    && new_vr
                        .intersection(&e.vr)
                        .is_some_and(|i| i.area() >= threshold * e.vr.area()));
            !subsumed
        });
        let budget = self.capacity.saturating_sub(entry.len());
        while !self.entries.is_empty()
            && (self.entries.iter().map(RegionEntry::len).sum::<usize>() > budget
                || self.entries.len() + 1 > self.max_regions)
        {
            let (worst, _) = self
                .entries
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    let score = self.policy.score_parts(
                        &e.vr,
                        e.last_used,
                        ctx.pos,
                        ctx.heading,
                        ctx.now,
                    );
                    (i, score)
                })
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty");
            self.entries.swap_remove(worst);
        }
        self.entries.push(entry);
    }

    fn touch(&mut self, area: &Rect, now: f64) {
        for e in &mut self.entries {
            if e.vr.intersects(area) {
                e.last_used = now;
            }
        }
    }
}

/// One generated step: `kind` selects insert (most draws) vs touch;
/// the geometry fields are interpreted per kind.
type OpTuple = (
    u8,                  // kind: 0 = touch, else insert
    f64,                 // cx
    f64,                 // cy
    f64,                 // half-extent
    Vec<(f64, f64)>,     // POI offsets inside the region (inserts)
    f64,                 // host x
    f64,                 // host y
    Option<(f64, f64)>,  // raw heading (normalized before use)
);

fn arb_op() -> impl Strategy<Value = OpTuple> {
    (
        0u8..5,
        0.0..20.0f64,
        0.0..20.0f64,
        0.2..3.0f64,
        prop::collection::vec((-1.0..1.0f64, -1.0..1.0f64), 0..12),
        0.0..20.0f64,
        0.0..20.0f64,
        prop::option::of((-1.0..1.0f64, -1.0..1.0f64)),
    )
}

/// POIs of one insertion, with ids unique across the whole sequence so
/// the canonical table resolves each handle to its carried position.
fn pois_of(cx: f64, cy: f64, half: f64, offs: &[(f64, f64)], id0: u32) -> Vec<Poi> {
    offs.iter()
        .enumerate()
        .map(|(i, &(fx, fy))| {
            Poi::new(id0 + i as u32, Point::new(cx + fx * half, cy + fy * half))
        })
        .collect()
}

fn normalize(h: Option<(f64, f64)>) -> Option<(f64, f64)> {
    h.and_then(|(x, y)| {
        let n = x.hypot(y);
        (n > 1e-6).then(|| (x / n, y / n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The arena-backed cache equals the owned-storage reference at
    /// every step of an arbitrary insert/touch sequence: same regions
    /// in the same order, same timestamps, same POI membership in the
    /// same stored order. Eviction churn keeps the arena compacting
    /// (garbage crosses the half-pool threshold constantly at these
    /// capacities), so pool compaction is exercised under the
    /// equivalence check, not just in isolation.
    #[test]
    fn arena_cache_matches_prerefactor_reference(
        ops in prop::collection::vec(arb_op(), 1..50),
        capacity in 1usize..25,
        policy_idx in 0usize..3,
        subsume_raw in 0.5..1.5f64,
    ) {
        let policy = [
            ReplacementPolicy::DirectionDistance,
            ReplacementPolicy::DistanceOnly,
            ReplacementPolicy::Lru,
        ][policy_idx];
        // Half the draws land on 1.0 (subsumption = strict containment
        // only), half on a fractional-overlap threshold.
        let subsume = if subsume_raw >= 1.0 { 1.0 } else { subsume_raw };
        let table = PoiTable::from_pois(ops.iter().enumerate().flat_map(
            |(i, (kind, cx, cy, half, offs, ..))| {
                if *kind == 0 {
                    Vec::new()
                } else {
                    pois_of(*cx, *cy, *half, offs, (i * 100) as u32)
                }
            },
        ));
        let mut cache = HostCache::new(capacity, policy).with_subsume_overlap(subsume);
        let mut reference = ReferenceCache::new(capacity, policy, subsume);

        for (i, (kind, cx, cy, half, offs, host_x, host_y, heading)) in
            ops.iter().enumerate()
        {
            let now = i as f64;
            if *kind == 0 {
                let area = Rect::centered_square(Point::new(*cx, *cy), *half);
                cache.touch(CAT, &area, now);
                reference.touch(&area, now);
            } else {
                let vr = Rect::centered_square(Point::new(*cx, *cy), *half);
                let pois = pois_of(*cx, *cy, *half, offs, (i * 100) as u32);
                let ctx = CacheContext {
                    pos: Point::new(*host_x, *host_y),
                    heading: normalize(*heading),
                    now,
                };
                cache.insert(CAT, RegionEntry::new(vr, pois.iter().copied(), now), &ctx);
                reference.insert(RegionEntry::new(vr, pois.iter().copied(), now), &ctx);
            }

            // Entry-for-entry equality, in storage order, after every op.
            prop_assert_eq!(cache.region_count(CAT), reference.entries.len());
            for (got, want) in cache.entries(CAT).zip(&reference.entries) {
                prop_assert_eq!(got.vr, want.vr);
                prop_assert_eq!(got.created_at, want.created_at);
                prop_assert_eq!(got.last_used, want.last_used);
                let want_ids: Vec<PoiId> = want.pois.iter().map(Poi::handle).collect();
                prop_assert_eq!(got.poi_ids, want_ids.as_slice());
                // And interning round-trips: resolving the handles
                // through the canonical table recovers the owned POIs.
                let resolved = got.resolve(&table);
                prop_assert_eq!(resolved.pois.len(), want.pois.len());
                for (rp, wp) in resolved.pois.iter().zip(&want.pois) {
                    prop_assert_eq!(rp.id, wp.id);
                    prop_assert_eq!(rp.pos, wp.pos);
                }
            }
        }
    }

    /// Arena handles round-trip exactly through arbitrary
    /// insert/remove/compact/clone churn: every live handle resolves to
    /// the values it was inserted with (compaction moves pool spans but
    /// must not change them), every removed handle stays dead even
    /// after its slot is reused, and `clone`/`clone_from` reproduce the
    /// arena handle-for-handle.
    #[test]
    fn arena_compaction_round_trips(
        steps in prop::collection::vec((0u8..10, 0usize..64, 0u32..16), 1..120),
    ) {
        let mut arena = EntryArena::new();
        let mut live: Vec<(EntryId, Rect, Vec<PoiId>, f64, f64)> = Vec::new();
        let mut dead: Vec<EntryId> = Vec::new();
        let mut next_id = 0u32;

        for (i, &(kind, pick, n)) in steps.iter().enumerate() {
            match kind {
                // Remove a live entry (pool span becomes garbage).
                0 | 1 if !live.is_empty() => {
                    let (id, ..) = live.remove(pick % live.len());
                    prop_assert!(arena.remove(id));
                    dead.push(id);
                }
                // Explicit compaction on top of the automatic ones.
                2 => arena.compact(),
                // Clone round-trip: handles stay valid in the copy.
                3 => {
                    let copy = arena.clone();
                    for (id, vr, ids, created, used) in &live {
                        let v = copy.get(*id).expect("live handle lost by clone");
                        prop_assert_eq!(v.vr, *vr);
                        prop_assert_eq!(v.poi_ids, ids.as_slice());
                        prop_assert_eq!(v.created_at, *created);
                        prop_assert_eq!(v.last_used, *used);
                    }
                    // clone_from into a dirty destination too.
                    let mut dst = EntryArena::new();
                    dst.insert(Rect::from_coords(0.0, 0.0, 1.0, 1.0), 0.0, 0.0, [PoiId(0)]);
                    dst.clone_from(&arena);
                    for (id, _, ids, ..) in &live {
                        prop_assert_eq!(
                            dst.get(*id).expect("clone_from lost handle").poi_ids,
                            ids.as_slice()
                        );
                    }
                }
                // Insert a fresh entry.
                _ => {
                    let t = i as f64;
                    let vr = Rect::from_coords(0.0, 0.0, 1.0 + t, 2.0 + t);
                    let ids: Vec<PoiId> = (next_id..next_id + n).map(PoiId).collect();
                    next_id += n;
                    let id = arena.insert(vr, t, t + 0.5, ids.iter().copied());
                    live.push((id, vr, ids, t, t + 0.5));
                }
            }

            prop_assert_eq!(arena.len(), live.len());
            prop_assert_eq!(
                arena.pool_live(),
                live.iter().map(|(_, _, ids, ..)| ids.len()).sum::<usize>()
            );
            for (id, vr, ids, created, used) in &live {
                let v = arena.get(*id).expect("live handle must resolve");
                prop_assert_eq!(v.vr, *vr);
                prop_assert_eq!(v.poi_ids, ids.as_slice());
                prop_assert_eq!(v.created_at, *created);
                prop_assert_eq!(v.last_used, *used);
            }
            for id in &dead {
                prop_assert!(arena.get(*id).is_none(), "dead handle resurrected");
            }
        }
    }
}
