//! Property tests for the host cache: the capacity and soundness
//! invariants must survive arbitrary insertion sequences under every
//! replacement policy.

use airshare_broadcast::{Poi, PoiCategory, PoiTable};
use airshare_cache::{CacheContext, HostCache, RegionEntry, ReplacementPolicy};
use airshare_geom::{Point, Rect};
use proptest::prelude::*;

const CAT: PoiCategory = PoiCategory::GAS_STATION;

#[derive(Clone, Debug)]
struct Insertion {
    cx: f64,
    cy: f64,
    half: f64,
    pois: Vec<(f64, f64)>, // offsets inside the region
    host_x: f64,
    host_y: f64,
    heading: Option<(f64, f64)>,
}

fn arb_insertion() -> impl Strategy<Value = Insertion> {
    (
        0.0..20.0f64,
        0.0..20.0f64,
        0.2..3.0f64,
        prop::collection::vec((-1.0..1.0f64, -1.0..1.0f64), 0..12),
        0.0..20.0f64,
        0.0..20.0f64,
        prop::option::of((-1.0..1.0f64, -1.0..1.0f64)),
    )
        .prop_map(|(cx, cy, half, pois, host_x, host_y, heading)| Insertion {
            cx,
            cy,
            half,
            pois,
            host_x,
            host_y,
            heading: heading.and_then(|(x, y)| {
                let n = x.hypot(y);
                (n > 1e-6).then(|| (x / n, y / n))
            }),
        })
}

fn pois_of(ins: &Insertion, id0: u32) -> Vec<Poi> {
    ins.pois
        .iter()
        .enumerate()
        .map(|(i, &(fx, fy))| {
            Poi::new(
                id0 + i as u32,
                Point::new(ins.cx + fx * ins.half, ins.cy + fy * ins.half),
            )
        })
        .collect()
}

fn table_for(inserts: &[Insertion]) -> PoiTable {
    PoiTable::from_pois(
        inserts
            .iter()
            .enumerate()
            .flat_map(|(i, ins)| pois_of(ins, (i * 100) as u32)),
    )
}

fn apply(cache: &mut HostCache, ins: &Insertion, id0: u32, now: f64) {
    let vr = Rect::centered_square(Point::new(ins.cx, ins.cy), ins.half);
    let pois = pois_of(ins, id0);
    cache.insert(
        CAT,
        RegionEntry::new(vr, pois, now),
        &CacheContext {
            pos: Point::new(ins.host_x, ins.host_y),
            heading: ins.heading,
            now,
        },
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn capacity_and_region_bounds_always_hold(
        inserts in prop::collection::vec(arb_insertion(), 1..40),
        capacity in 0usize..30,
        policy_idx in 0usize..3,
    ) {
        let policy = [
            ReplacementPolicy::DirectionDistance,
            ReplacementPolicy::DistanceOnly,
            ReplacementPolicy::Lru,
        ][policy_idx];
        let mut cache = HostCache::new(capacity, policy);
        for (i, ins) in inserts.iter().enumerate() {
            apply(&mut cache, ins, (i * 100) as u32, i as f64);
            prop_assert!(cache.poi_count(CAT) <= capacity);
            prop_assert!(cache.region_count(CAT) <= cache.max_regions().max(1));
            // Entry-local soundness: every cached POI is inside its region.
            let table = table_for(&inserts);
            for e in cache.entries(CAT) {
                prop_assert!(e.is_consistent(&table));
            }
        }
    }

    #[test]
    fn newest_entry_always_survives_its_own_insert(
        inserts in prop::collection::vec(arb_insertion(), 1..20),
        capacity in 1usize..20,
    ) {
        let mut cache = HostCache::new(capacity, ReplacementPolicy::default());
        for (i, ins) in inserts.iter().enumerate() {
            apply(&mut cache, ins, (i * 100) as u32, i as f64);
            // The just-inserted region (possibly shrunk) must be present:
            // it answered the query in flight.
            let host = Point::new(ins.host_x, ins.host_y);
            let orig = Rect::centered_square(Point::new(ins.cx, ins.cy), ins.half);
            let found = cache
                .entries(CAT)
                .any(|e| orig.inflate(1e-9).unwrap().contains_rect(&e.vr)
                    && (e.vr.contains(orig.clamp_point(host))));
            prop_assert!(found, "fresh entry evicted at step {i}");
        }
    }

    #[test]
    fn subsumption_never_loses_reachable_pois(
        a in arb_insertion(),
        capacity in 10usize..40,
    ) {
        // Insert an entry, then a strictly larger one centred the same:
        // the union of cached POI ids must cover everything the larger
        // region carried.
        let mut cache = HostCache::new(capacity, ReplacementPolicy::default());
        apply(&mut cache, &a, 0, 0.0);
        let mut big = a.clone();
        big.half *= 2.0;
        apply(&mut cache, &big, 1000, 1.0);
        // The small region was subsumed: only one region remains (the
        // big one), carrying its own POIs.
        prop_assert_eq!(cache.region_count(CAT), 1);
        let kept = cache.entries(CAT).next().unwrap();
        prop_assert!(kept.len() <= capacity);
    }

    #[test]
    fn share_snapshot_reflects_contents(
        inserts in prop::collection::vec(arb_insertion(), 1..10),
        capacity in 1usize..30,
    ) {
        let mut cache = HostCache::new(capacity, ReplacementPolicy::default());
        for (i, ins) in inserts.iter().enumerate() {
            apply(&mut cache, ins, (i * 100) as u32, i as f64);
        }
        let table = table_for(&inserts);
        let snap = cache.with_table(&table).share_snapshot(CAT);
        prop_assert_eq!(snap.len(), cache.region_count(CAT));
        let snap_pois: usize = snap.iter().map(|(_, p)| p.len()).sum();
        prop_assert_eq!(snap_pois, cache.poi_count(CAT));
        for (vr, pois) in &snap {
            for p in pois {
                prop_assert!(vr.contains(p.pos));
            }
        }
    }
}
