//! Resolving views: a [`HostCache`] paired with the canonical
//! [`PoiTable`] it stores handles into.
//!
//! The cache itself holds only [`PoiId`](airshare_broadcast::PoiId)
//! handles; any accessor that wants POI *payloads* back needs the table.
//! [`HostCacheRef`] packages that pairing so call sites migrating off
//! the old owned-`Vec<Poi>` accessors have a one-line path:
//! `cache.with_table(&table).share_snapshot(cat)`.

use crate::{EntryView, HostCache, RegionEntry};
use airshare_broadcast::{Poi, PoiCategory, PoiTable};
use airshare_geom::Rect;

/// A borrowed, resolving view over one host's cache.
///
/// Thin by construction — two references — and `Copy`, so it can be
/// passed around freely. All mutation stays on [`HostCache`] itself;
/// the view is read-only.
#[derive(Clone, Copy, Debug)]
pub struct HostCacheRef<'a> {
    cache: &'a HostCache,
    table: &'a PoiTable,
}

impl<'a> HostCacheRef<'a> {
    /// Pairs a cache with the table its handles resolve against.
    /// (Usually reached via [`HostCache::with_table`].)
    pub fn new(cache: &'a HostCache, table: &'a PoiTable) -> Self {
        Self { cache, table }
    }

    /// The underlying cache.
    pub fn cache(&self) -> &'a HostCache {
        self.cache
    }

    /// The canonical table handles resolve against.
    pub fn table(&self) -> &'a PoiTable {
        self.table
    }

    /// Handle-level entry views for a category, in storage order.
    pub fn entries(&self, category: PoiCategory) -> impl Iterator<Item = EntryView<'a>> + 'a {
        self.cache.entries(category)
    }

    /// The verified regions for a category, materialized as owned
    /// [`RegionEntry`] values.
    pub fn regions(&self, category: PoiCategory) -> Vec<RegionEntry> {
        let table = self.table;
        self.cache
            .entries(category)
            .map(|v| v.resolve(table))
            .collect()
    }

    /// The share snapshot as owned `(region, POIs)` pairs — the shape
    /// the pre-handle API returned.
    pub fn share_snapshot(&self, category: PoiCategory) -> Vec<(Rect, Vec<Poi>)> {
        let table = self.table;
        self.cache
            .entries(category)
            .map(|v| {
                (
                    v.vr,
                    v.poi_ids
                        .iter()
                        .filter_map(|&id| table.get(id).copied())
                        .collect(),
                )
            })
            .collect()
    }

    /// Cached POI count for a category.
    pub fn poi_count(&self, category: PoiCategory) -> usize {
        self.cache.poi_count(category)
    }

    /// Number of verified regions cached for a category.
    pub fn region_count(&self, category: PoiCategory) -> usize {
        self.cache.region_count(category)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheContext, ReplacementPolicy};
    use airshare_geom::Point;

    #[test]
    fn view_resolves_what_the_cache_stores() {
        const CAT: PoiCategory = PoiCategory::GAS_STATION;
        let pois = [
            Poi::new(0, Point::new(0.25, 0.25)),
            Poi::new(1, Point::new(0.75, 0.75)),
        ];
        let table = PoiTable::from_pois(pois);
        let mut cache = HostCache::new(10, ReplacementPolicy::default());
        cache.insert(
            CAT,
            RegionEntry::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0), pois, 0.0),
            &CacheContext {
                pos: Point::new(0.5, 0.5),
                heading: None,
                now: 0.0,
            },
        );
        let view = cache.with_table(&table);
        assert_eq!(view.region_count(CAT), 1);
        assert_eq!(view.poi_count(CAT), 2);
        let regions = view.regions(CAT);
        assert_eq!(regions[0].pois, pois.to_vec());
        let snap = view.share_snapshot(CAT);
        assert_eq!(snap[0].1, pois.to_vec());
    }
}
